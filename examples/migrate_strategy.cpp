// Strategy migration: move a live temporal database between physical
// designs (snapshot / integrated / separated) via the dump facility,
// and verify the move preserved every answer.
//
// Usage:
//   migrate_strategy                       (demo with a generated DB)
//
// The demo builds a company database under the snapshot layout, measures
// a few queries, migrates it to the separated layout, re-measures, and
// prints a before/after comparison — the "upgrade path" a user of the
// paper's system would follow after reading its evaluation.

#include <cstdio>
#include <cstdlib>

#include "common/temp_dir.h"
#include "db/database.h"
#include "db/dump.h"
#include "workload/bench_util.h"
#include "workload/company.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "%s failed: %s\n", what,
            result.status().ToString().c_str());
    exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

double TimeQuery(Database* db, const std::string& mql, size_t* rows) {
  Check(db->pool()->Reset(), "cold cache");
  WallTimer timer;
  auto r = db->Execute(mql);
  Check(r.status(), mql.c_str());
  *rows = r.value().RowCount();
  return timer.ElapsedMillis();
}

}  // namespace

int main() {
  TempDir dir;

  // 1. A database under the naive snapshot layout, with real history.
  DatabaseOptions snapshot_options;
  snapshot_options.strategy = StorageStrategy::kSnapshot;
  auto src = Must(Database::Open(dir.path() + "/snapshot", snapshot_options),
                  "open source");
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 32;
  printf("building company database (snapshot layout, %u versions/atom)...\n",
         config.versions_per_atom);
  Must(BuildCompany(src.get(), config), "build workload");

  const char* kQueries[] = {
      "SELECT ALL FROM DeptMol VALID AT NOW",
      "SELECT Emp.name FROM DeptMol WHERE Emp.salary > 3000 VALID AT NOW",
      "SELECT COUNT(*) FROM DeptMol HISTORY",
  };

  printf("\n%-64s %12s %8s\n", "query", "snapshot", "rows");
  double before[3];
  for (int i = 0; i < 3; ++i) {
    size_t rows = 0;
    before[i] = TimeQuery(src.get(), kQueries[i], &rows);
    printf("%-64s %9.2f ms %8zu\n", kQueries[i], before[i], rows);
  }

  // 2. Migrate: dump + import into a separated-layout database.
  std::string dump_path = dir.path() + "/company.tcobdump";
  printf("\nexporting dump...\n");
  Check(ExportDump(src.get(), dump_path), "export");
  DatabaseOptions separated_options;
  separated_options.strategy = StorageStrategy::kSeparated;
  auto dst = Must(Database::Open(dir.path() + "/separated",
                                 separated_options),
                  "open target");
  printf("importing into the separated layout...\n");
  Check(ImportDump(dst.get(), dump_path), "import");

  // 3. Verify and compare.
  printf("\n%-64s %12s %12s\n", "query", "snapshot", "separated");
  for (int i = 0; i < 3; ++i) {
    size_t src_rows = 0, dst_rows = 0;
    double src_ms = TimeQuery(src.get(), kQueries[i], &src_rows);
    double dst_ms = TimeQuery(dst.get(), kQueries[i], &dst_rows);
    if (src_rows != dst_rows) {
      fprintf(stderr, "MIGRATION BUG: row counts differ (%zu vs %zu)\n",
              src_rows, dst_rows);
      return 1;
    }
    printf("%-64s %9.2f ms %9.2f ms  (%zu rows, identical)\n", kQueries[i],
           src_ms, dst_ms, src_rows);
  }

  printf("\nstorage statistics after migration:\n");
  auto stats = dst->Execute("SHOW STATS");
  Check(stats.status(), "SHOW STATS");
  printf("%s\n", stats.value().ToString().c_str());
  printf("migration complete — same answers, different physics.\n");
  return 0;
}
