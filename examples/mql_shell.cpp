// Interactive MQL shell over a TCOB database.
//
// Usage:
//   mql_shell [db-directory] [--tiered[=AGE]] [--readonly]
//   (default directory: ./tcob-shell-db)
//
// --tiered enables cold-history tiering (versions older than AGE time
// units, default 64, migrate to compressed segments on .tier_migrate).
// --readonly opens the database read-only: every mutation is refused
// and nothing in the directory is touched.
//
// Type MQL statements terminated by ';'. Meta commands:
//   .help         show a cheat sheet
//   .checkpoint   flush everything and truncate the WAL
//   .now [t]      show or set the valid-time clock
//   .strategy     show the storage strategy
//   .metrics      dump the metrics registry (Prometheus text format)
//   .tiering      cold-tier report: segments, fences, cold/hot bytes
//   .tier_migrate migrate cold-eligible history into segments
//   .timing       toggle per-statement timing (first row vs total)
//   .timeout [ms] show or set the per-query deadline (0 disables)
//   .trace        flight recorder: on/off, or dump Perfetto JSON to FILE
//   .health       show the degradation state and its cause
//   .recover      try to return a read-only database to full service
//   .begin        open the session transaction (same as BEGIN;)
//   .commit       commit it (same as COMMIT;) — may report a conflict
//   .abort        discard it (same as ABORT;)
//   .quit         exit
//
// SELECT results stream: rows print as the engine produces them (a
// cursor pulls 64 rows at a time), so the first rows of a huge history
// scan appear immediately.
//
// The database persists: restart the shell with the same directory and
// your schema and history are still there (WAL recovery included).

#include <cstdio>
#include <cstring>
#include <string>

#include "db/database.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

constexpr char kHelp[] = R"(MQL cheat sheet
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  INSERT ATOM Emp (name='ada', salary=100) VALID FROM 10;
  UPDATE ATOM Emp 3 SET salary=200 VALID FROM 20;
  DELETE ATOM Emp 3 VALID FROM 30;
  CONNECT DeptEmp FROM 1 TO 3 VALID FROM 10;
  DISCONNECT DeptEmp FROM 1 TO 3 VALID FROM 30;
  SELECT ALL FROM DeptMol VALID AT 15;
  SELECT Emp.name FROM DeptMol WHERE Emp.salary > 150 VALID AT NOW;
  SELECT ALL FROM DeptMol VALID IN [10, 30);
  SELECT Emp.salary FROM DeptMol HISTORY;
  SELECT ALL FROM Dept VIA DeptEmp, EmpProj VALID AT NOW;  -- inline molecule
  SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol GROUP BY ROOT VALID AT NOW;
  CREATE INDEX idx_salary ON Emp (salary);
  EXPLAIN SELECT ALL FROM DeptMol WHERE Emp.salary = 5 VALID AT 9;
  EXPLAIN ANALYZE SELECT ALL FROM DeptMol HISTORY;  -- run + trace
  VACUUM BEFORE 100;
  SHOW CATALOG;
  SHOW STATS;
  BEGIN; ... COMMIT;  -- snapshot-isolated transaction (or ABORT;)
Meta: .help .checkpoint .now [t] .strategy .metrics .tiering
      .tier_migrate .timing .timeout [ms] .trace [on|off|dump FILE]
      .health .recover .begin .commit .abort .quit
Attribute types: BOOL INT DOUBLE STRING TIMESTAMP ID
Temporal predicates: OVERLAPS CONTAINS BEFORE MEETS DURING, VALID(Type),
BEGIN(...), END(...), interval literals [a, b), NOW.
Aggregates: COUNT(*) COUNT/SUM/AVG/MIN/MAX(Type.attr), GROUP BY ROOT.
)";

/// .tiering report: per atom type, every cold segment with its time
/// fence and atom range, then the cold/hot on-disk byte split.
void PrintTiering(Database* db) {
  if (db->cold_tier() == nullptr) {
    printf("tiering disabled — start the shell with --tiered\n");
    return;
  }
  uint64_t cold_bytes = 0, cold_segments = 0, cold_versions = 0;
  for (const AtomTypeDef* type : db->catalog().AtomTypes()) {
    auto segments = db->cold_tier()->Segments(*type);
    if (!segments.ok()) {
      printf("error: %s\n", segments.status().ToString().c_str());
      return;
    }
    if (segments->empty()) continue;
    printf("%s:\n", type->name.c_str());
    for (const auto& seg : *segments) {
      printf("  segment fence=%s atoms=[%llu..%llu] (%u atoms) "
             "versions=%llu bytes=%llu\n",
             seg.fence.ToString().c_str(),
             static_cast<unsigned long long>(seg.min_atom),
             static_cast<unsigned long long>(seg.max_atom), seg.atom_count,
             static_cast<unsigned long long>(seg.version_count),
             static_cast<unsigned long long>(seg.bytes));
      ++cold_segments;
      cold_versions += seg.version_count;
      cold_bytes += seg.bytes;
    }
  }
  auto space = db->store()->SpaceStats();
  if (!space.ok()) {
    printf("error: %s\n", space.status().ToString().c_str());
    return;
  }
  uint64_t hot_bytes =
      (space->heap_pages + space->index_pages) * uint64_t{kPageSize};
  printf("cold: %llu segment(s), %llu version(s), %llu bytes\n",
         static_cast<unsigned long long>(cold_segments),
         static_cast<unsigned long long>(cold_versions),
         static_cast<unsigned long long>(cold_bytes));
  printf("hot:  %llu bytes (%llu pages)\n",
         static_cast<unsigned long long>(hot_bytes),
         static_cast<unsigned long long>(space->heap_pages +
                                         space->index_pages));
}

bool HandleMeta(Database* db, const std::string& line, bool* timing) {
  if (line == ".help") {
    fputs(kHelp, stdout);
  } else if (line == ".timing") {
    *timing = !*timing;
    printf("timing %s\n", *timing ? "on" : "off");
  } else if (line == ".checkpoint") {
    Status s = db->Checkpoint();
    printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
  } else if (line.rfind(".now", 0) == 0) {
    std::string arg = line.size() > 4 ? line.substr(5) : "";
    if (!arg.empty()) db->SetNow(strtoll(arg.c_str(), nullptr, 10));
    printf("now = %s\n", TimestampToString(db->Now()).c_str());
  } else if (line == ".strategy") {
    printf("%s\n", StorageStrategyName(db->options().strategy));
  } else if (line == ".metrics") {
    fputs(db->MetricsSnapshot().ToText().c_str(), stdout);
  } else if (line.rfind(".timeout", 0) == 0) {
    std::string arg = line.size() > 8 ? line.substr(9) : "";
    if (!arg.empty()) {
      uint64_t ms = strtoull(arg.c_str(), nullptr, 10);
      db->set_default_query_deadline(ms * 1000);
    }
    uint64_t micros = db->options().default_query_deadline_micros;
    if (micros == 0) {
      printf("timeout off\n");
    } else {
      printf("timeout = %llu ms\n",
             static_cast<unsigned long long>(micros / 1000));
    }
  } else if (line == ".health") {
    printf("health: %s\n", HealthStateName(db->health_state()));
    if (!db->health().ok()) {
      printf("cause: %s\n", db->health().ToString().c_str());
    }
  } else if (line == ".recover") {
    Status s = db->TryRecover();
    if (s.ok()) {
      printf("health: %s\n", HealthStateName(db->health_state()));
    } else {
      printf("recovery failed: %s\n", s.ToString().c_str());
    }
  } else if (line.rfind(".trace", 0) == 0) {
    std::string arg = line.size() > 6 ? line.substr(7) : "";
    if (arg == "on") {
      db->trace_recorder()->set_enabled(true);
    } else if (arg == "off") {
      db->trace_recorder()->set_enabled(false);
    } else if (arg.rfind("dump", 0) == 0) {
      std::string path = arg.size() > 4 ? arg.substr(5) : "";
      if (path.empty()) path = "trace.json";
      Status s = db->DumpTraceToFile(path);
      if (s.ok()) {
        printf("trace dumped to %s — open in https://ui.perfetto.dev or "
               "chrome://tracing\n",
               path.c_str());
      } else {
        printf("error: %s\n", s.ToString().c_str());
      }
      return true;
    } else if (!arg.empty()) {
      printf("usage: .trace [on|off|dump FILE]\n");
      return true;
    }
    printf("trace %s\n",
           db->trace_recorder()->is_enabled() ? "on" : "off");
  } else if (line == ".begin") {
    Status s = db->BeginSession();
    printf("%s\n", s.ok() ? "transaction started" : s.ToString().c_str());
  } else if (line == ".commit") {
    Status s = db->CommitSession();
    printf("%s\n", s.ok() ? "committed" : s.ToString().c_str());
  } else if (line == ".abort") {
    Status s = db->AbortSession();
    printf("%s\n", s.ok() ? "aborted" : s.ToString().c_str());
  } else if (line == ".tiering") {
    PrintTiering(db);
  } else if (line == ".tier_migrate") {
    if (db->cold_tier() == nullptr) {
      printf("tiering disabled — start the shell with --tiered\n");
    } else {
      auto migrated = db->TierMigrate();
      if (!migrated.ok()) {
        printf("error: %s\n", migrated.status().ToString().c_str());
      } else {
        printf("migrated %llu version(s) to cold segments\n",
               static_cast<unsigned long long>(migrated.value()));
      }
    }
  } else {
    printf("unknown meta command; try .help\n");
  }
  return true;
}

void PrintRow(const std::vector<Value>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    fputs(i == 0 ? "" : " | ", stdout);
    fputs(row[i].ToString().c_str(), stdout);
  }
  fputc('\n', stdout);
}

/// Runs one statement through the cursor API, printing rows as they
/// stream in instead of waiting for the whole result.
void RunStatement(Database* db, const std::string& mql, bool timing) {
  auto opened = db->Query(mql);
  if (!opened.ok()) {
    printf("error: %s\n", opened.status().ToString().c_str());
    return;
  }
  Cursor* cursor = opened.value().get();
  const bool tabular = !cursor->columns().empty();
  if (tabular) {
    std::string header;
    for (size_t i = 0; i < cursor->columns().size(); ++i) {
      header += (i == 0 ? "" : " | ") + cursor->columns()[i];
    }
    printf("%s\n%s\n", header.c_str(),
           std::string(header.size(), '-').c_str());
    fflush(stdout);
  }
  size_t total = 0;
  std::vector<std::vector<Value>> batch;
  for (;;) {
    auto pulled = cursor->NextBatch(64, &batch);
    if (!pulled.ok()) {
      printf("error: %s\n", pulled.status().ToString().c_str());
      break;
    }
    for (const std::vector<Value>& row : batch) PrintRow(row);
    fflush(stdout);
    total += pulled.value();
    if (pulled.value() < 64) break;
  }
  if (tabular) printf("(%zu rows)\n", total);
  if (!cursor->message().empty()) printf("%s\n", cursor->message().c_str());
  cursor->Close();
  if (timing && tabular) {
    const QueryStats& stats = db->last_query_stats();
    printf("first row %.1f us | total %.1f us | %llu rows streamed | "
           "peak buffered %llu rows\n",
           stats.first_row_us, stats.total_us,
           static_cast<unsigned long long>(stats.rows_streamed),
           static_cast<unsigned long long>(stats.peak_buffered_rows));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "./tcob-shell-db";
  DatabaseOptions options;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--tiered", 8) == 0) {
      options.tiering.enabled = true;
      if (argv[i][8] == '=') {
        options.tiering.cold_age = strtoll(argv[i] + 9, nullptr, 10);
      }
    } else if (strcmp(argv[i], "--readonly") == 0) {
      options.read_only = true;
    } else {
      dir = argv[i];
    }
  }
  auto opened = Database::Open(dir, options);
  if (!opened.ok()) {
    fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
            opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();
  printf("tcob shell — database at %s (strategy: %s%s). "
         ".help for help, .quit to exit.\n",
         dir.c_str(), StorageStrategyName(db->options().strategy),
         db->options().read_only ? ", read-only" : "");

  std::string buffer;
  bool timing = false;
  char line[4096];
  for (;;) {
    fputs(buffer.empty() ? "mql> " : "...> ", stdout);
    fflush(stdout);
    if (!fgets(line, sizeof(line), stdin)) break;
    std::string text(line);
    // Trim trailing whitespace.
    while (!text.empty() && isspace(static_cast<unsigned char>(text.back()))) {
      text.pop_back();
    }
    if (buffer.empty()) {
      // Leading whitespace trim for meta detection.
      size_t start = text.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string trimmed = text.substr(start);
      if (trimmed == ".quit" || trimmed == ".exit") break;
      if (!trimmed.empty() && trimmed[0] == '.') {
        HandleMeta(db.get(), trimmed, &timing);
        continue;
      }
    }
    buffer += text;
    if (buffer.empty()) continue;
    if (buffer.back() != ';') {
      buffer += ' ';
      continue;  // statement continues on the next line
    }
    RunStatement(db.get(), buffer, timing);
    buffer.clear();
  }
  printf("bye\n");
  return 0;
}
