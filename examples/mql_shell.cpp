// Interactive MQL shell over a TCOB database.
//
// Usage:
//   mql_shell [db-directory]          (default: ./tcob-shell-db)
//
// Type MQL statements terminated by ';'. Meta commands:
//   .help        show a cheat sheet
//   .checkpoint  flush everything and truncate the WAL
//   .now [t]     show or set the valid-time clock
//   .strategy    show the storage strategy
//   .metrics     dump the metrics registry (Prometheus text format)
//   .quit        exit
//
// The database persists: restart the shell with the same directory and
// your schema and history are still there (WAL recovery included).

#include <cstdio>
#include <cstring>
#include <string>

#include "db/database.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

constexpr char kHelp[] = R"(MQL cheat sheet
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  INSERT ATOM Emp (name='ada', salary=100) VALID FROM 10;
  UPDATE ATOM Emp 3 SET salary=200 VALID FROM 20;
  DELETE ATOM Emp 3 VALID FROM 30;
  CONNECT DeptEmp FROM 1 TO 3 VALID FROM 10;
  DISCONNECT DeptEmp FROM 1 TO 3 VALID FROM 30;
  SELECT ALL FROM DeptMol VALID AT 15;
  SELECT Emp.name FROM DeptMol WHERE Emp.salary > 150 VALID AT NOW;
  SELECT ALL FROM DeptMol VALID IN [10, 30);
  SELECT Emp.salary FROM DeptMol HISTORY;
  SELECT ALL FROM Dept VIA DeptEmp, EmpProj VALID AT NOW;  -- inline molecule
  SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol GROUP BY ROOT VALID AT NOW;
  CREATE INDEX idx_salary ON Emp (salary);
  EXPLAIN SELECT ALL FROM DeptMol WHERE Emp.salary = 5 VALID AT 9;
  EXPLAIN ANALYZE SELECT ALL FROM DeptMol HISTORY;  -- run + trace
  VACUUM BEFORE 100;
  SHOW CATALOG;
  SHOW STATS;
Attribute types: BOOL INT DOUBLE STRING TIMESTAMP ID
Temporal predicates: OVERLAPS CONTAINS BEFORE MEETS DURING, VALID(Type),
BEGIN(...), END(...), interval literals [a, b), NOW.
Aggregates: COUNT(*) COUNT/SUM/AVG/MIN/MAX(Type.attr), GROUP BY ROOT.
)";

bool HandleMeta(Database* db, const std::string& line) {
  if (line == ".help") {
    fputs(kHelp, stdout);
  } else if (line == ".checkpoint") {
    Status s = db->Checkpoint();
    printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
  } else if (line.rfind(".now", 0) == 0) {
    std::string arg = line.size() > 4 ? line.substr(5) : "";
    if (!arg.empty()) db->SetNow(strtoll(arg.c_str(), nullptr, 10));
    printf("now = %s\n", TimestampToString(db->Now()).c_str());
  } else if (line == ".strategy") {
    printf("%s\n", StorageStrategyName(db->options().strategy));
  } else if (line == ".metrics") {
    fputs(db->MetricsSnapshot().ToText().c_str(), stdout);
  } else {
    printf("unknown meta command; try .help\n");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "./tcob-shell-db";
  auto opened = Database::Open(dir, {});
  if (!opened.ok()) {
    fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
            opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();
  printf("tcob shell — database at %s (strategy: %s). "
         ".help for help, .quit to exit.\n",
         dir.c_str(), StorageStrategyName(db->options().strategy));

  std::string buffer;
  char line[4096];
  for (;;) {
    fputs(buffer.empty() ? "mql> " : "...> ", stdout);
    fflush(stdout);
    if (!fgets(line, sizeof(line), stdin)) break;
    std::string text(line);
    // Trim trailing whitespace.
    while (!text.empty() && isspace(static_cast<unsigned char>(text.back()))) {
      text.pop_back();
    }
    if (buffer.empty()) {
      // Leading whitespace trim for meta detection.
      size_t start = text.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string trimmed = text.substr(start);
      if (trimmed == ".quit" || trimmed == ".exit") break;
      if (!trimmed.empty() && trimmed[0] == '.') {
        HandleMeta(db.get(), trimmed);
        continue;
      }
    }
    buffer += text;
    if (buffer.empty()) continue;
    if (buffer.back() != ';') {
      buffer += ' ';
      continue;  // statement continues on the next line
    }
    auto result = db->Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    printf("%s\n", result.value().ToString().c_str());
  }
  printf("bye\n");
  return 0;
}
