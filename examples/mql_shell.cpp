// Interactive MQL shell over a TCOB database.
//
// Usage:
//   mql_shell [db-directory]          (default: ./tcob-shell-db)
//
// Type MQL statements terminated by ';'. Meta commands:
//   .help        show a cheat sheet
//   .checkpoint  flush everything and truncate the WAL
//   .now [t]     show or set the valid-time clock
//   .strategy    show the storage strategy
//   .metrics     dump the metrics registry (Prometheus text format)
//   .timing      toggle per-statement timing (first row vs total)
//   .quit        exit
//
// SELECT results stream: rows print as the engine produces them (a
// cursor pulls 64 rows at a time), so the first rows of a huge history
// scan appear immediately.
//
// The database persists: restart the shell with the same directory and
// your schema and history are still there (WAL recovery included).

#include <cstdio>
#include <cstring>
#include <string>

#include "db/database.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

constexpr char kHelp[] = R"(MQL cheat sheet
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  INSERT ATOM Emp (name='ada', salary=100) VALID FROM 10;
  UPDATE ATOM Emp 3 SET salary=200 VALID FROM 20;
  DELETE ATOM Emp 3 VALID FROM 30;
  CONNECT DeptEmp FROM 1 TO 3 VALID FROM 10;
  DISCONNECT DeptEmp FROM 1 TO 3 VALID FROM 30;
  SELECT ALL FROM DeptMol VALID AT 15;
  SELECT Emp.name FROM DeptMol WHERE Emp.salary > 150 VALID AT NOW;
  SELECT ALL FROM DeptMol VALID IN [10, 30);
  SELECT Emp.salary FROM DeptMol HISTORY;
  SELECT ALL FROM Dept VIA DeptEmp, EmpProj VALID AT NOW;  -- inline molecule
  SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol GROUP BY ROOT VALID AT NOW;
  CREATE INDEX idx_salary ON Emp (salary);
  EXPLAIN SELECT ALL FROM DeptMol WHERE Emp.salary = 5 VALID AT 9;
  EXPLAIN ANALYZE SELECT ALL FROM DeptMol HISTORY;  -- run + trace
  VACUUM BEFORE 100;
  SHOW CATALOG;
  SHOW STATS;
Attribute types: BOOL INT DOUBLE STRING TIMESTAMP ID
Temporal predicates: OVERLAPS CONTAINS BEFORE MEETS DURING, VALID(Type),
BEGIN(...), END(...), interval literals [a, b), NOW.
Aggregates: COUNT(*) COUNT/SUM/AVG/MIN/MAX(Type.attr), GROUP BY ROOT.
)";

bool HandleMeta(Database* db, const std::string& line, bool* timing) {
  if (line == ".help") {
    fputs(kHelp, stdout);
  } else if (line == ".timing") {
    *timing = !*timing;
    printf("timing %s\n", *timing ? "on" : "off");
  } else if (line == ".checkpoint") {
    Status s = db->Checkpoint();
    printf("%s\n", s.ok() ? "checkpointed" : s.ToString().c_str());
  } else if (line.rfind(".now", 0) == 0) {
    std::string arg = line.size() > 4 ? line.substr(5) : "";
    if (!arg.empty()) db->SetNow(strtoll(arg.c_str(), nullptr, 10));
    printf("now = %s\n", TimestampToString(db->Now()).c_str());
  } else if (line == ".strategy") {
    printf("%s\n", StorageStrategyName(db->options().strategy));
  } else if (line == ".metrics") {
    fputs(db->MetricsSnapshot().ToText().c_str(), stdout);
  } else {
    printf("unknown meta command; try .help\n");
  }
  return true;
}

void PrintRow(const std::vector<Value>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    fputs(i == 0 ? "" : " | ", stdout);
    fputs(row[i].ToString().c_str(), stdout);
  }
  fputc('\n', stdout);
}

/// Runs one statement through the cursor API, printing rows as they
/// stream in instead of waiting for the whole result.
void RunStatement(Database* db, const std::string& mql, bool timing) {
  auto opened = db->Query(mql);
  if (!opened.ok()) {
    printf("error: %s\n", opened.status().ToString().c_str());
    return;
  }
  Cursor* cursor = opened.value().get();
  const bool tabular = !cursor->columns().empty();
  if (tabular) {
    std::string header;
    for (size_t i = 0; i < cursor->columns().size(); ++i) {
      header += (i == 0 ? "" : " | ") + cursor->columns()[i];
    }
    printf("%s\n%s\n", header.c_str(),
           std::string(header.size(), '-').c_str());
    fflush(stdout);
  }
  size_t total = 0;
  std::vector<std::vector<Value>> batch;
  for (;;) {
    auto pulled = cursor->NextBatch(64, &batch);
    if (!pulled.ok()) {
      printf("error: %s\n", pulled.status().ToString().c_str());
      break;
    }
    for (const std::vector<Value>& row : batch) PrintRow(row);
    fflush(stdout);
    total += pulled.value();
    if (pulled.value() < 64) break;
  }
  if (tabular) printf("(%zu rows)\n", total);
  if (!cursor->message().empty()) printf("%s\n", cursor->message().c_str());
  cursor->Close();
  if (timing && tabular) {
    const QueryStats& stats = db->last_query_stats();
    printf("first row %.1f us | total %.1f us | %llu rows streamed | "
           "peak buffered %llu rows\n",
           stats.first_row_us, stats.total_us,
           static_cast<unsigned long long>(stats.rows_streamed),
           static_cast<unsigned long long>(stats.peak_buffered_rows));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "./tcob-shell-db";
  auto opened = Database::Open(dir, {});
  if (!opened.ok()) {
    fprintf(stderr, "cannot open %s: %s\n", dir.c_str(),
            opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();
  printf("tcob shell — database at %s (strategy: %s). "
         ".help for help, .quit to exit.\n",
         dir.c_str(), StorageStrategyName(db->options().strategy));

  std::string buffer;
  bool timing = false;
  char line[4096];
  for (;;) {
    fputs(buffer.empty() ? "mql> " : "...> ", stdout);
    fflush(stdout);
    if (!fgets(line, sizeof(line), stdin)) break;
    std::string text(line);
    // Trim trailing whitespace.
    while (!text.empty() && isspace(static_cast<unsigned char>(text.back()))) {
      text.pop_back();
    }
    if (buffer.empty()) {
      // Leading whitespace trim for meta detection.
      size_t start = text.find_first_not_of(" \t");
      if (start == std::string::npos) continue;
      std::string trimmed = text.substr(start);
      if (trimmed == ".quit" || trimmed == ".exit") break;
      if (!trimmed.empty() && trimmed[0] == '.') {
        HandleMeta(db.get(), trimmed, &timing);
        continue;
      }
    }
    buffer += text;
    if (buffer.empty()) continue;
    if (buffer.back() != ';') {
      buffer += ' ';
      continue;  // statement continues on the next line
    }
    RunStatement(db.get(), buffer, timing);
    buffer.clear();
  }
  printf("bye\n");
  return 0;
}
