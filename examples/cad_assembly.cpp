// CAD assembly versioning: the MAD model's motivating engineering domain.
//
// A bill-of-materials network: assemblies contain sub-assemblies and
// parts (a recursive, DAG-shaped complex object). Design revisions change
// part attributes and composition over time; releases are time slices.
// The example reconstructs the full product structure as of each release
// and diffs consecutive releases — exactly the "design object management"
// workload the temporal complex-object model targets.

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/temp_dir.h"
#include "db/database.h"
#include "mad/materializer.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "%s failed: %s\n", what,
            result.status().ToString().c_str());
    exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  TempDir dir;
  DatabaseOptions options;
  options.strategy = StorageStrategy::kSeparated;
  auto db = Must(Database::Open(dir.path() + "/db", options), "open");

  // Assemblies and parts are one atom type each; "Contains" nests
  // assemblies recursively (a cyclic *type* graph — legal in the model,
  // materialization handles it via its fixpoint).
  Must(db->CreateAtomType("Assembly", {{"name", AttrType::kString},
                                       {"revision", AttrType::kInt}}),
       "create Assembly");
  Must(db->CreateAtomType("Part", {{"name", AttrType::kString},
                                   {"material", AttrType::kString},
                                   {"weight_g", AttrType::kInt}}),
       "create Part");
  Must(db->CreateLinkType("Contains", "Assembly", "Assembly"),
       "create Contains");
  Must(db->CreateLinkType("Uses", "Assembly", "Part"), "create Uses");
  Must(db->CreateMoleculeType("ProductStructure", "Assembly",
                              {{"Contains", true}, {"Uses", true}}),
       "create ProductStructure");

  // ---- revision 1 (chronon 1000): initial design ----
  AtomId drone = Must(
      db->InsertAtom("Assembly",
                     {{"name", Value::String("drone")},
                      {"revision", Value::Int(1)}},
                     1000),
      "drone");
  AtomId frame = Must(
      db->InsertAtom("Assembly",
                     {{"name", Value::String("frame")},
                      {"revision", Value::Int(1)}},
                     1000),
      "frame");
  AtomId rotor = Must(
      db->InsertAtom("Assembly",
                     {{"name", Value::String("rotor")},
                      {"revision", Value::Int(1)}},
                     1000),
      "rotor");
  AtomId arm = Must(db->InsertAtom("Part",
                                   {{"name", Value::String("arm")},
                                    {"material", Value::String("plastic")},
                                    {"weight_g", Value::Int(40)}},
                                   1000),
                    "arm");
  AtomId blade = Must(db->InsertAtom("Part",
                                     {{"name", Value::String("blade")},
                                      {"material", Value::String("plastic")},
                                      {"weight_g", Value::Int(8)}},
                                     1000),
                      "blade");
  AtomId battery = Must(
      db->InsertAtom("Part",
                     {{"name", Value::String("battery")},
                      {"material", Value::String("li-ion")},
                      {"weight_g", Value::Int(180)}},
                     1000),
      "battery");
  Check(db->Connect("Contains", drone, frame, 1000), "drone>frame");
  Check(db->Connect("Contains", drone, rotor, 1000), "drone>rotor");
  Check(db->Connect("Uses", frame, arm, 1000), "frame>arm");
  Check(db->Connect("Uses", rotor, blade, 1000), "rotor>blade");
  Check(db->Connect("Uses", drone, battery, 1000), "drone>battery");

  // ---- revision 2 (chronon 2000): carbon arms, bigger battery ----
  Check(db->UpdateAtom("Part", arm,
                       {{"material", Value::String("carbon")},
                        {"weight_g", Value::Int(25)}},
                       2000),
        "arm rev2");
  Check(db->UpdateAtom("Part", battery, {{"weight_g", Value::Int(220)}},
                       2000),
        "battery rev2");
  Check(db->UpdateAtom("Assembly", drone, {{"revision", Value::Int(2)}},
                       2000),
        "drone rev2");

  // ---- revision 3 (chronon 3000): add a camera gimbal sub-assembly,
  //      drop the heavy battery for a lighter one ----
  AtomId gimbal = Must(
      db->InsertAtom("Assembly",
                     {{"name", Value::String("gimbal")},
                      {"revision", Value::Int(1)}},
                     3000),
      "gimbal");
  AtomId camera = Must(db->InsertAtom("Part",
                                      {{"name", Value::String("camera")},
                                       {"material", Value::String("mixed")},
                                       {"weight_g", Value::Int(30)}},
                                      3000),
                       "camera");
  Check(db->Connect("Contains", drone, gimbal, 3000), "drone>gimbal");
  Check(db->Connect("Uses", gimbal, camera, 3000), "gimbal>camera");
  Check(db->Disconnect("Uses", drone, battery, 3000), "drop battery");
  AtomId light_battery = Must(
      db->InsertAtom("Part",
                     {{"name", Value::String("battery-lite")},
                      {"material", Value::String("li-po")},
                      {"weight_g", Value::Int(150)}},
                     3000),
      "battery-lite");
  Check(db->Connect("Uses", drone, light_battery, 3000), "use battery-lite");
  Check(db->UpdateAtom("Assembly", drone, {{"revision", Value::Int(3)}},
                       3000),
        "drone rev3");
  db->SetNow(3500);

  // ---- reconstruct each release and diff ----
  Materializer mat = db->materializer();
  const MoleculeTypeDef* structure = Must(
      db->catalog().GetMoleculeTypeByName("ProductStructure"), "lookup");

  auto weight_of = [&](const Molecule& m) {
    int64_t total = 0;
    for (const auto& [id, v] : m.atoms) {
      (void)id;
      const AtomTypeDef* t =
          db->catalog().GetAtomType(v.type).value();
      int idx = t->AttrIndex("weight_g");
      if (idx >= 0 && !v.attrs[idx].is_null()) total += v.attrs[idx].AsInt();
    }
    return total;
  };

  std::set<AtomId> prev_atoms;
  for (Timestamp release : {Timestamp{1500}, Timestamp{2500}, Timestamp{3500}}) {
    Molecule m = Must(mat.MaterializeAsOf(*structure, drone, release),
                      "materialize release");
    printf("release as of %ld: %zu atoms, %zu links, total weight %ldg\n",
           static_cast<long>(release), m.AtomCount(), m.edges.size(),
           static_cast<long>(weight_of(m)));
    std::set<AtomId> atoms;
    for (const auto& [id, v] : m.atoms) {
      (void)v;
      atoms.insert(id);
    }
    if (!prev_atoms.empty()) {
      for (AtomId id : atoms) {
        if (!prev_atoms.count(id)) printf("  + atom #%lu added\n",
                                          static_cast<unsigned long>(id));
      }
      for (AtomId id : prev_atoms) {
        if (!atoms.count(id)) printf("  - atom #%lu removed\n",
                                     static_cast<unsigned long>(id));
      }
    }
    prev_atoms = std::move(atoms);
  }

  // ---- the design history as one query ----
  printf("\n== when did the arm's design change? ==\n");
  auto arm_history = db->Execute(
      "SELECT Part.material, Part.weight_g FROM ProductStructure "
      "WHERE Part.name = 'arm' HISTORY");
  Check(arm_history.status(), "arm history");
  printf("%s\n", arm_history.value().ToString().c_str());

  printf("== full structural evolution (state count per root) ==\n");
  MoleculeHistory h =
      Must(mat.History(*structure, drone, Interval::All()), "history");
  for (const MoleculeState& state : h.states) {
    printf("  %s: %zu atoms\n", state.valid.ToString().c_str(),
           state.molecule.AtomCount());
  }
  return 0;
}
