// Company history: the classic temporal-database motivating scenario.
//
// An HR database tracks departments, employees and projects as they
// evolve: hires, raises, transfers between departments, project
// (re)assignments, and a resignation. The example then answers the
// questions a personnel department actually asks:
//   * who worked where at a given date,
//   * how did a department's composition evolve,
//   * reconstruct an employee's salary history,
//   * which employees were affected by a reorganization window.
//
// This example drives the *programmatic* API (db->InsertAtom etc.)
// rather than MQL text, showing the embedded-library usage style.

#include <cstdio>
#include <cstdlib>

#include "common/temp_dir.h"
#include "db/database.h"
#include "mad/materializer.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, result.status().ToString().c_str());
    exit(1);
  }
  return std::move(result).value();
}

void Show(Database* db, const std::string& mql) {
  printf("mql> %s\n", mql.c_str());
  auto r = db->Execute(mql);
  Check(r.status(), "query");
  printf("%s\n", r.value().ToString().c_str());
}

}  // namespace

int main() {
  TempDir dir;
  auto db = Must(Database::Open(dir.path() + "/db", {}), "open");

  // ---- schema ----
  Must(db->CreateAtomType("Dept", {{"name", AttrType::kString},
                                   {"budget", AttrType::kInt}}),
       "create Dept");
  Must(db->CreateAtomType("Emp", {{"name", AttrType::kString},
                                  {"salary", AttrType::kInt},
                                  {"title", AttrType::kString}}),
       "create Emp");
  Must(db->CreateAtomType("Proj", {{"title", AttrType::kString}}),
       "create Proj");
  Must(db->CreateLinkType("WorksIn", "Dept", "Emp"), "create WorksIn");
  Must(db->CreateLinkType("AssignedTo", "Emp", "Proj"), "create AssignedTo");
  Must(db->CreateMoleculeType(
           "DeptMol", "Dept", {{"WorksIn", true}, {"AssignedTo", true}}),
       "create DeptMol");
  // A second complex-object view over the same network: the employee
  // dossier (employee + department via the *backward* link + projects).
  Must(db->CreateMoleculeType(
           "EmpDossier", "Emp", {{"WorksIn", false}, {"AssignedTo", true}}),
       "create EmpDossier");

  // ---- timeline (chronons are days since 0) ----
  // Day 100: the company forms. Two departments, three employees.
  AtomId rnd = Must(db->InsertAtom("Dept",
                                   {{"name", Value::String("R&D")},
                                    {"budget", Value::Int(1000)}},
                                   100),
                    "insert R&D");
  AtomId sales = Must(db->InsertAtom("Dept",
                                     {{"name", Value::String("Sales")},
                                      {"budget", Value::Int(400)}},
                                     100),
                      "insert Sales");
  AtomId ada = Must(db->InsertAtom("Emp",
                                   {{"name", Value::String("ada")},
                                    {"salary", Value::Int(120)},
                                    {"title", Value::String("engineer")}},
                                   100),
                    "hire ada");
  AtomId bob = Must(db->InsertAtom("Emp",
                                   {{"name", Value::String("bob")},
                                    {"salary", Value::Int(90)},
                                    {"title", Value::String("analyst")}},
                                   100),
                    "hire bob");
  AtomId eve = Must(db->InsertAtom("Emp",
                                   {{"name", Value::String("eve")},
                                    {"salary", Value::Int(150)},
                                    {"title", Value::String("manager")}},
                                   100),
                    "hire eve");
  AtomId compiler = Must(
      db->InsertAtom("Proj", {{"title", Value::String("compiler")}}, 100),
      "create compiler project");
  Check(db->Connect("WorksIn", rnd, ada, 100), "ada joins R&D");
  Check(db->Connect("WorksIn", rnd, bob, 100), "bob joins R&D");
  Check(db->Connect("WorksIn", sales, eve, 100), "eve joins Sales");
  Check(db->Connect("AssignedTo", ada, compiler, 100), "ada on compiler");

  // Day 130: ada gets a raise and a new title.
  Check(db->UpdateAtom("Emp", ada,
                       {{"salary", Value::Int(160)},
                        {"title", Value::String("senior engineer")}},
                       130),
        "ada raise");

  // Day 150: reorganization — bob transfers from R&D to Sales, and is
  // assigned to the compiler project anyway (matrix organization).
  Check(db->Disconnect("WorksIn", rnd, bob, 150), "bob leaves R&D");
  Check(db->Connect("WorksIn", sales, bob, 150), "bob joins Sales");
  Check(db->Connect("AssignedTo", bob, compiler, 150), "bob on compiler");

  // Day 180: eve resigns.
  Check(db->Disconnect("WorksIn", sales, eve, 180), "eve unlinked");
  Check(db->DeleteAtom("Emp", eve, 180), "eve resigns");

  // Day 200: budgets are adjusted.
  Check(db->UpdateAtom("Dept", rnd, {{"budget", Value::Int(1500)}}, 200),
        "R&D budget");
  db->SetNow(210);

  // ---- the questions ----
  printf("== Who worked where on day 120? ==\n");
  Show(db.get(), "SELECT Dept.name, Emp.name FROM DeptMol VALID AT 120");

  printf("== ... and on day 160, after the reorganization? ==\n");
  Show(db.get(), "SELECT Dept.name, Emp.name FROM DeptMol VALID AT 160");

  printf("== Evolution of the Sales department ==\n");
  Show(db.get(),
       "SELECT Emp.name FROM DeptMol WHERE Dept.name = 'Sales' HISTORY");

  printf("== ada's full dossier history (salary and title over time) ==\n");
  Show(db.get(),
       "SELECT Emp.salary, Emp.title FROM EmpDossier "
       "WHERE Emp.name = 'ada' HISTORY");

  printf("== Who was affected during the reorganization window? ==\n");
  Show(db.get(),
       "SELECT Dept.name, Emp.name FROM DeptMol VALID IN [145, 155)");

  printf("== Temporal predicate: who was employed on day 175 "
         "but not today? ==\n");
  Show(db.get(),
       "SELECT Emp.name FROM EmpDossier "
       "WHERE VALID(Emp) CONTAINS 175 AND NOT VALID(Emp) CONTAINS NOW "
       "HISTORY");

  // ---- programmatic molecule access ----
  printf("== Programmatic: R&D molecule as of day 120 vs day 160 ==\n");
  Materializer mat = db->materializer();
  const MoleculeTypeDef* dept_mol =
      Must(db->catalog().GetMoleculeTypeByName("DeptMol"), "lookup DeptMol");
  for (Timestamp day : {Timestamp{120}, Timestamp{160}}) {
    Molecule m = Must(mat.MaterializeAsOf(*dept_mol, rnd, day), "materialize");
    printf("day %ld: R&D molecule has %zu atoms, %zu links\n",
           static_cast<long>(day), m.AtomCount(), m.edges.size());
  }
  return 0;
}
