// Sensor fleet monitoring: calendar-mapped chronons, state histories,
// aggregates and retention (vacuuming) in one scenario.
//
// A fleet of sensors reports state changes (status, battery level) over
// several weeks; sites group sensors. Chronons are HOURS via
// tcob::Calendar, so valid-time stamps and query instants are written
// and rendered as civil datetimes. The example answers monitoring
// questions ("which sensors were degraded on the 21st at 09:00?",
// "battery trend of one device") and then applies a retention policy.

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "time/calendar.h"

using namespace tcob;  // NOLINT: example brevity

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "%s failed: %s\n", what,
            result.status().ToString().c_str());
    exit(1);
  }
  return std::move(result).value();
}

void Show(Database* db, const std::string& mql) {
  printf("mql> %s\n", mql.c_str());
  auto r = db->Execute(mql);
  Check(r.status(), "query");
  printf("%s\n", r.value().ToString().c_str());
}

}  // namespace

int main() {
  TempDir dir;
  auto db = Must(Database::Open(dir.path() + "/db", {}), "open");
  const Calendar cal(Granularity::kHour);
  auto at = [&cal](const char* text) {
    auto t = cal.Parse(text);
    if (!t.ok()) {
      fprintf(stderr, "bad datetime %s\n", text);
      exit(1);
    }
    return std::to_string(t.value());
  };

  // Schema through the script API.
  Must(db->ExecuteScript(R"(
    CREATE ATOM_TYPE Site (name STRING, region STRING);
    CREATE ATOM_TYPE Sensor (serial STRING, status STRING, battery INT);
    CREATE LINK Hosts FROM Site TO Sensor;
    CREATE MOLECULE_TYPE SiteMol ROOT Site EDGES (Hosts FORWARD);
    CREATE INDEX idx_status ON Sensor (status);
  )"),
       "schema");

  // Two sites, six sensors, commissioned 2025-06-01 08:00.
  Random rng(2025);
  std::vector<AtomId> sensors;
  for (const char* site_name : {"alpine", "harbor"}) {
    AtomId site = Must(db->InsertAtom("Site",
                                      {{"name", Value::String(site_name)},
                                       {"region", Value::String("west")}},
                                      Must(cal.Parse("2025-06-01 08:00:00"),
                                           "parse")),
                       "insert site");
    for (int i = 0; i < 3; ++i) {
      AtomId sensor = Must(
          db->InsertAtom(
              "Sensor",
              {{"serial", Value::String(std::string(site_name) + "-" +
                                        std::to_string(i))},
               {"status", Value::String("ok")},
               {"battery", Value::Int(100)}},
              Must(cal.Parse("2025-06-01 08:00:00"), "parse")),
          "insert sensor");
      Check(db->Connect("Hosts", site, sensor,
                        Must(cal.Parse("2025-06-01 08:00:00"), "parse")),
            "connect");
      sensors.push_back(sensor);
    }
  }

  // Three weeks of state changes: battery drains ~1%/6h; sensors dip
  // into "degraded" below 30% and "critical" below 10%.
  Timestamp t = Must(cal.Parse("2025-06-01 14:00:00"), "parse");
  std::vector<int> battery(sensors.size(), 100);
  for (int step = 0; step < 3 * 7 * 4; ++step) {  // every 6 hours
    for (size_t i = 0; i < sensors.size(); ++i) {
      if (!rng.Bernoulli(0.8)) continue;
      battery[i] = std::max(0, battery[i] - static_cast<int>(rng.Uniform(3)));
      const char* status = battery[i] < 10   ? "critical"
                           : battery[i] < 30 ? "degraded"
                                             : "ok";
      Check(db->UpdateAtom("Sensor", sensors[i],
                           {{"status", Value::String(status)},
                            {"battery", Value::Int(battery[i])}},
                           t),
            "report");
    }
    t += 6;
  }
  db->SetNow(t + 1);

  printf("== fleet status as of %s ==\n", cal.Format(db->Now()).c_str());
  Show(db.get(),
       "SELECT Site.name, Sensor.serial, Sensor.status, Sensor.battery "
       "FROM SiteMol ORDER BY Sensor.battery VALID AT NOW");

  printf("== which sensors were degraded on 2025-06-21 09:00? "
         "(indexed time slice) ==\n");
  Show(db.get(),
       "SELECT Sensor.serial, Sensor.battery FROM SiteMol "
       "WHERE Sensor.status = 'degraded' VALID AT " +
           at("2025-06-21 09:00:00"));

  printf("== per-site battery statistics, current ==\n");
  Show(db.get(),
       "SELECT COUNT(Sensor.battery), AVG(Sensor.battery), "
       "MIN(Sensor.battery) FROM SiteMol GROUP BY ROOT VALID AT NOW");

  printf("== one device's state history, first week ==\n");
  Show(db.get(),
       "SELECT Sensor.status, Sensor.battery FROM Sensor VIA Hosts BACKWARD "
       "WHERE Sensor.serial = 'alpine-0' VALID IN [" +
           at("2025-06-01 08:00:00") + ", " + at("2025-06-08 08:00:00") +
           ")");

  // Retention: keep only the last week of history.
  std::string cutoff = at("2025-06-15 00:00:00");
  printf("== retention: VACUUM BEFORE %s (chronon %s) ==\n",
         "2025-06-15 00:00", cutoff.c_str());
  Show(db.get(), "VACUUM BEFORE " + cutoff);
  Show(db.get(), "SELECT COUNT(*) FROM SiteMol HISTORY");

  printf("== storage after retention ==\n");
  Show(db.get(), "SHOW STATS");
  return 0;
}
