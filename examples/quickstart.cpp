// Quickstart: create a temporal complex-object database, define a small
// schema, record some history, and ask temporal questions — all through
// the public MQL interface.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "common/temp_dir.h"
#include "db/database.h"

using tcob::Database;
using tcob::DatabaseOptions;
using tcob::ResultSet;

namespace {

/// Executes one statement, printing the statement and its result; exits
/// on error (this is a demo, not a library).
ResultSet Run(Database* db, const std::string& mql) {
  printf("mql> %s\n", mql.c_str());
  auto result = db->Execute(mql);
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    exit(1);
  }
  printf("%s\n", result.value().ToString().c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  tcob::TempDir dir;
  DatabaseOptions options;  // defaults: separated store, 1024-page pool
  auto opened = Database::Open(dir.path() + "/db", options);
  if (!opened.ok()) {
    fprintf(stderr, "open failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(opened).value();

  // 1. Schema: atom types, a link type, and a molecule (complex object)
  //    type spanning them.
  Run(db.get(), "CREATE ATOM_TYPE Dept (name STRING, budget INT)");
  Run(db.get(), "CREATE ATOM_TYPE Emp (name STRING, salary INT)");
  Run(db.get(), "CREATE LINK DeptEmp FROM Dept TO Emp");
  Run(db.get(),
      "CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");

  // 2. Facts with valid time. Chronon 10 = "the beginning of recorded
  //    history" in this demo.
  ResultSet dept =
      Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=500) VALID FROM 10");
  ResultSet ada =
      Run(db.get(), "INSERT ATOM Emp (name='ada', salary=100) VALID FROM 10");
  std::string dept_id = std::to_string(dept.inserted_id);
  std::string ada_id = std::to_string(ada.inserted_id);
  Run(db.get(),
      "CONNECT DeptEmp FROM " + dept_id + " TO " + ada_id + " VALID FROM 10");

  // 3. History: ada gets a raise at 20 and another at 30.
  Run(db.get(), "UPDATE ATOM Emp " + ada_id + " SET salary=200 VALID FROM 20");
  Run(db.get(), "UPDATE ATOM Emp " + ada_id + " SET salary=400 VALID FROM 30");

  // 4. Temporal queries.
  printf("-- the world as of chronon 15 (ada earns 100):\n");
  Run(db.get(), "SELECT Emp.name, Emp.salary FROM DeptMol VALID AT 15");

  printf("-- the current world (ada earns 400):\n");
  Run(db.get(), "SELECT Emp.name, Emp.salary FROM DeptMol VALID AT NOW");

  printf("-- the full evolution of the molecule:\n");
  Run(db.get(), "SELECT Emp.salary FROM DeptMol HISTORY");

  printf("-- when did ada earn more than 150? (window query)\n");
  Run(db.get(),
      "SELECT Emp.salary FROM DeptMol WHERE Emp.salary > 150 "
      "VALID IN [10, NOW)");

  printf("-- temporal predicate: versions valid during [20, 30)\n");
  Run(db.get(),
      "SELECT Emp.salary FROM DeptMol WHERE VALID(Emp) OVERLAPS [20, 30) "
      "HISTORY");

  Run(db.get(), "SHOW CATALOG");
  return 0;
}
