// Table 2 (reconstructed): update costs per physical design.
//
// Latency of the three mutations against employees that already carry a
// history of {1, 16, 64} versions:
//   update    close the live version, open a successor
//   insert    brand-new atom (history length is irrelevant; baseline row)
//
// Expected shape: snapshot updates are cheap appends at any history
// length; separated adds one history append; integrated rewrites the
// whole version cluster, so its update cost grows with history length.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace tcob {
namespace bench {
namespace {

CompanyConfig ConfigFor(int64_t versions) {
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(versions);
  return config;
}

void BM_UpdateAtom(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config = ConfigFor(state.range(1));
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();

  size_t cursor = 0;
  for (auto _ : state) {
    AtomId emp =
        bench_db->handles.emps[cursor++ % bench_db->handles.emps.size()];
    Timestamp t = db->Now();
    Status s = db->UpdateAtomValues(
        "Emp", emp,
        {Value::String("bench"), Value::Int(static_cast<int64_t>(cursor)),
         Value::Int(1)},
        t);
    BenchCheck(s, "update");
  }
  state.SetLabel(StorageStrategyName(strategy));
}

// Fixed iteration count: the measured history drifts by only
// iterations / #employees extra versions.
BENCHMARK(BM_UpdateAtom)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {1, 16, 64}})
    ->Iterations(300)
    ->Unit(benchmark::kMicrosecond);

void BM_InsertAtom(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config = ConfigFor(16);
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();

  for (auto _ : state) {
    auto id = db->InsertAtomValues(
        "Emp",
        {Value::String("fresh"), Value::Int(1), Value::Int(1)}, db->Now());
    BenchCheck(id.status(), "insert");
    benchmark::DoNotOptimize(id.value());
  }
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_InsertAtom)
    ->ArgNames({"strategy"})
    ->ArgsProduct({{0, 1, 2}})
    ->Iterations(300)
    ->Unit(benchmark::kMicrosecond);

void BM_DeleteAtom(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config = ConfigFor(static_cast<uint32_t>(state.range(1)));
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();

  // Deleting is a one-shot operation per atom: pre-insert victims outside
  // the timed region, delete them inside it.
  std::vector<AtomId> victims;
  for (auto _ : state) {
    state.PauseTiming();
    auto id = db->InsertAtomValues(
        "Emp", {Value::String("victim"), Value::Int(1), Value::Int(1)},
        db->Now());
    BenchCheck(id.status(), "insert victim");
    Timestamp t = db->Now();
    state.ResumeTiming();
    BenchCheck(db->DeleteAtom("Emp", id.value(), t), "delete");
  }
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_DeleteAtom)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {16}})
    ->Iterations(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
