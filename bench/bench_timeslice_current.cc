// Figure 5 (reconstructed): current time-slice cost vs history length.
//
// Query: materialize every DeptMol molecule VALID AT NOW over a company
// database whose employees carry {1..128} versions. The reported time is
// one full "reconstruct the current world" pass; `pool_misses` counts
// buffer-pool misses per pass (cold cache each iteration).
//
// Expected shape: separated is flat in history length (the current store
// holds exactly the live versions); snapshot grows (the id index and the
// heap fill with old versions); integrated grows fastest (every cluster
// read drags the whole history through the pool).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

void BM_TimeSliceCurrent(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(state.range(1));
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();

  uint64_t molecules = 0;
  uint64_t misses = 0;
  uint64_t passes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    db->pool()->ResetStats();
    state.ResumeTiming();
    Materializer mat = db->materializer();
    molecules = 0;
    Status s = mat.AllMoleculesAsOf(*mol, db->Now(), [&](Molecule m) {
      benchmark::DoNotOptimize(m.AtomCount());
      ++molecules;
      return Result<bool>(true);
    });
    BenchCheck(s, "time slice");
    misses += db->pool()->stats().misses;
    ++passes;
  }
  state.counters["molecules"] = static_cast<double>(molecules);
  state.counters["pool_misses"] =
      static_cast<double>(misses) / static_cast<double>(passes);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_TimeSliceCurrent)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64, 128}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
