// Table 1 (reconstructed): storage consumption per physical design.
//
// Company database: 10 departments x 10 employees x 1 project, with
// versions/atom in {1, 4, 16, 64}. Reported counters per configuration:
//   pages            total pages across heaps and indexes
//   bytes_per_ver    bytes of storage per stored atom version
//   versions         number of employee versions in the database
//
// Expected shape: snapshot >> integrated ~ separated in bytes/version at
// long histories (snapshot repeats the whole record and an index entry
// per version); separated pays a small chain-pointer overhead.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace tcob {
namespace bench {
namespace {

void BM_StorageConsumption(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(state.range(1));
  BenchDb* bench_db = GetCompanyDb(strategy, config);

  StoreSpaceStats stats;
  for (auto _ : state) {
    auto space = bench_db->db->store()->SpaceStats();
    BenchCheck(space.status(), "space stats");
    stats = space.value();
    benchmark::DoNotOptimize(stats.total_bytes);
  }
  // Employee versions dominate; projects and departments mostly have 1.
  uint64_t versions =
      static_cast<uint64_t>(bench_db->handles.emps.size()) *
      config.versions_per_atom;
  state.counters["pages"] =
      static_cast<double>(stats.heap_pages + stats.index_pages);
  state.counters["heap_pages"] = static_cast<double>(stats.heap_pages);
  state.counters["index_pages"] = static_cast<double>(stats.index_pages);
  state.counters["bytes_per_ver"] =
      static_cast<double>(stats.total_bytes) / static_cast<double>(versions);
  state.counters["versions"] = static_cast<double>(versions);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_StorageConsumption)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
