// Figure 10 (reconstructed): version-index ablation for the separated
// store.
//
// Point query: the version of one employee valid at the *oldest* instant
// of its history (worst case for a chain walk), with chain lengths of
// {4, 16, 64, 256} closed versions. With the version index the lookup is
// a B+-tree floor probe; without it the store walks the chain
// newest-to-oldest. `chain_hops` counts history-record fetches per op.
//
// Expected shape: without the index the cost is linear in the chain
// length; with it, logarithmic. The crossover appears by chain length
// ~16; at 256 the indexed lookup wins by more than an order of
// magnitude in record fetches.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "tstore/separated_store.h"

namespace tcob {
namespace bench {
namespace {

void BM_OldestVersionLookup(benchmark::State& state) {
  bool with_index = state.range(0) != 0;
  CompanyConfig config;
  config.depts = 5;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(state.range(1)) + 1;
  BenchDb* bench_db =
      GetCompanyDb(StorageStrategy::kSeparated, config, with_index);
  Database* db = bench_db->db.get();
  const AtomTypeDef* emp_type =
      db->catalog().GetAtomTypeByName("Emp").value();
  AtomId emp = bench_db->handles.emps[0];
  Timestamp oldest = config.base;  // inside the first version

  const auto* separated = dynamic_cast<const SeparatedStore*>(db->store());
  uint64_t hops_before = separated->chain_hops();
  uint64_t ops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    state.ResumeTiming();
    auto v = db->store()->GetAsOf(*emp_type, emp, oldest);
    BenchCheck(v.status(), "oldest lookup");
    benchmark::DoNotOptimize(v.value()->version_no);
    ++ops;
  }
  state.counters["chain_hops"] =
      static_cast<double>(separated->chain_hops() - hops_before) /
      static_cast<double>(ops);
  state.SetLabel(with_index ? "with_version_index" : "chain_walk");
}

BENCHMARK(BM_OldestVersionLookup)
    ->ArgNames({"vidx", "chain"})
    ->ArgsProduct({{0, 1}, {4, 16, 64, 256}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
