#ifndef TCOB_BENCH_BENCH_COMMON_H_
#define TCOB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/temp_dir.h"
#include "db/database.h"
#include "workload/bench_util.h"
#include "workload/company.h"

namespace tcob {
namespace bench {

/// Query-path worker threads for benchmark databases (1 = serial).
/// Set with --threads N (or TCOB_THREADS); read by GetCompanyDb.
inline size_t& BenchThreadsRef() {
  static size_t threads = 1;
  return threads;
}
inline size_t BenchThreads() { return BenchThreadsRef(); }

/// Strips TCOB-specific flags (currently --threads N / --threads=N)
/// from argv before google-benchmark sees them; TCOB_THREADS in the
/// environment supplies the default.
inline void ParseBenchFlags(int* argc, char** argv) {
  if (const char* env = std::getenv("TCOB_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int v = std::atoi(arg + 10);
      if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < *argc) {
      int v = std::atoi(argv[++i]);
      if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// A fully built company database plus its handles, kept alive and
/// shared across benchmark iterations so the (expensive) load phase is
/// paid once per configuration.
struct BenchDb {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<Database> db;
  CompanyHandles handles;
};

/// Cache key for one configuration.
inline std::string ConfigKey(StorageStrategy strategy,
                             const CompanyConfig& config, bool version_index,
                             size_t pool_pages) {
  return std::string(StorageStrategyName(strategy)) + "/" +
         std::to_string(config.depts) + "x" +
         std::to_string(config.emps_per_dept) + "x" +
         std::to_string(config.projs_per_emp) + "/v" +
         std::to_string(config.versions_per_atom) + "/idx" +
         std::to_string(version_index) + "/pool" +
         std::to_string(pool_pages) + "/t" +
         std::to_string(BenchThreads());
}

/// Builds (or returns the cached) company database for a configuration.
inline BenchDb* GetCompanyDb(StorageStrategy strategy,
                             const CompanyConfig& config,
                             bool version_index = true,
                             size_t pool_pages = 1024) {
  static std::map<std::string, std::unique_ptr<BenchDb>>* cache =
      new std::map<std::string, std::unique_ptr<BenchDb>>();
  std::string key = ConfigKey(strategy, config, version_index, pool_pages);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto bench_db = std::make_unique<BenchDb>();
  bench_db->dir = std::make_unique<TempDir>();
  DatabaseOptions options;
  options.strategy = strategy;
  options.buffer_pool_pages = pool_pages;
  options.store.separated_version_index = version_index;
  options.parallelism = BenchThreads();
  auto db = Database::Open(bench_db->dir->path() + "/db", options);
  BenchCheck(db.status(), "open database");
  bench_db->db = std::move(db).value();
  auto handles = BuildCompany(bench_db->db.get(), config);
  BenchCheck(handles.status(), "build company workload");
  bench_db->handles = std::move(handles).value();
  BenchCheck(bench_db->db->Checkpoint(), "checkpoint");
  BenchDb* out = bench_db.get();
  (*cache)[key] = std::move(bench_db);
  return out;
}

/// Timestamp in the middle of version round `round` (0-based) of a
/// company database built with `config`.
inline Timestamp RoundTime(const CompanyConfig& config, uint32_t round) {
  return config.base + static_cast<Timestamp>(round) * config.stride +
         config.stride / 2;
}

}  // namespace bench
}  // namespace tcob

/// BENCHMARK_MAIN() with TCOB flag handling: --threads is consumed
/// before google-benchmark parses argv (it rejects unknown flags).
#define TCOB_BENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                       \
    char arg0_default[] = "benchmark";                                    \
    char* args_default = arg0_default;                                    \
    if (!argv) {                                                          \
      argc = 1;                                                           \
      argv = &args_default;                                               \
    }                                                                     \
    ::tcob::bench::ParseBenchFlags(&argc, argv);                          \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)

#endif  // TCOB_BENCH_BENCH_COMMON_H_
