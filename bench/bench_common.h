#ifndef TCOB_BENCH_BENCH_COMMON_H_
#define TCOB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/metrics.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "workload/bench_util.h"
#include "workload/company.h"

namespace tcob {
namespace bench {

/// Query-path worker threads for benchmark databases (1 = serial).
/// Set with --threads N (or TCOB_THREADS); read by GetCompanyDb.
inline size_t& BenchThreadsRef() {
  static size_t threads = 1;
  return threads;
}
inline size_t BenchThreads() { return BenchThreadsRef(); }

/// Smoke mode (--smoke): clamp workload sizes so every benchmark
/// executes in a fraction of a second — used by CI to validate that the
/// binaries run and emit well-formed JSON, not to measure anything.
inline bool& BenchSmokeRef() {
  static bool smoke = false;
  return smoke;
}
inline bool BenchSmoke() { return BenchSmokeRef(); }

/// Output path for the machine-readable run artifact. Empty selects the
/// default `BENCH_<name>.json` in the working directory.
inline std::string& BenchJsonOutRef() {
  static std::string* path = new std::string();
  return *path;
}

/// Output path for a flight-recorder dump (--trace_out=PATH). After the
/// benchmarks finish, the most recently built database's trace ring is
/// dumped here as Chrome trace_event JSON. Empty = no dump.
inline std::string& BenchTraceOutRef() {
  static std::string* path = new std::string();
  return *path;
}

/// The database whose trace --trace_out dumps: the last one GetCompanyDb
/// built with tracing enabled (cached databases outlive BenchMain).
inline Database*& TraceDumpDbRef() {
  static Database* db = nullptr;
  return db;
}

/// Strips TCOB-specific flags (--threads N, --smoke, --json_out=PATH,
/// --trace_out=PATH) from argv before google-benchmark sees them;
/// TCOB_THREADS in the environment supplies the default thread count.
inline void ParseBenchFlags(int* argc, char** argv) {
  if (const char* env = std::getenv("TCOB_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int v = std::atoi(arg + 10);
      if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
      continue;
    }
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < *argc) {
      int v = std::atoi(argv[++i]);
      if (v > 0) BenchThreadsRef() = static_cast<size_t>(v);
      continue;
    }
    if (std::strcmp(arg, "--smoke") == 0) {
      BenchSmokeRef() = true;
      continue;
    }
    if (std::strncmp(arg, "--json_out=", 11) == 0) {
      BenchJsonOutRef() = arg + 11;
      continue;
    }
    if (std::strcmp(arg, "--json_out") == 0 && i + 1 < *argc) {
      BenchJsonOutRef() = argv[++i];
      continue;
    }
    if (std::strncmp(arg, "--trace_out=", 12) == 0) {
      BenchTraceOutRef() = arg + 12;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

/// A fully built company database plus its handles, kept alive and
/// shared across benchmark iterations so the (expensive) load phase is
/// paid once per configuration.
struct BenchDb {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<Database> db;
  CompanyHandles handles;
  // The config the database was actually built with (smoke mode clamps
  // the requested one) — use this, not the requested config, when
  // deriving timestamps inside the recorded history.
  CompanyConfig config;
};

/// Cache key for one configuration.
inline std::string ConfigKey(StorageStrategy strategy,
                             const CompanyConfig& config, bool version_index,
                             size_t pool_pages,
                             const TieringOptions& tiering = {},
                             bool trace_enabled = true) {
  return std::string(StorageStrategyName(strategy)) + "/" +
         std::to_string(config.depts) + "x" +
         std::to_string(config.emps_per_dept) + "x" +
         std::to_string(config.projs_per_emp) + "/v" +
         std::to_string(config.versions_per_atom) + "/idx" +
         std::to_string(version_index) + "/pool" +
         std::to_string(pool_pages) + "/t" +
         std::to_string(BenchThreads()) +
         (tiering.enabled ? "/tier" + std::to_string(tiering.cold_age) : "") +
         (trace_enabled ? "" : "/notrace");
}

/// Builds (or returns the cached) company database for a configuration.
/// In smoke mode the config is clamped to a tiny workload BEFORE the
/// cache key is computed, so smoke runs of different nominal sizes
/// share one database.
inline BenchDb* GetCompanyDb(StorageStrategy strategy,
                             const CompanyConfig& requested,
                             bool version_index = true,
                             size_t pool_pages = 1024,
                             const TieringOptions& tiering = {},
                             bool trace_enabled = true) {
  static std::map<std::string, std::unique_ptr<BenchDb>>* cache =
      new std::map<std::string, std::unique_ptr<BenchDb>>();
  CompanyConfig config = requested;
  if (BenchSmoke()) {
    config.depts = std::min<size_t>(config.depts, 2);
    config.emps_per_dept = std::min<size_t>(config.emps_per_dept, 3);
    config.projs_per_emp = std::min<size_t>(config.projs_per_emp, 2);
    config.versions_per_atom = std::min<uint32_t>(config.versions_per_atom, 4);
  }
  std::string key = ConfigKey(strategy, config, version_index, pool_pages,
                              tiering, trace_enabled);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto bench_db = std::make_unique<BenchDb>();
  bench_db->dir = std::make_unique<TempDir>();
  DatabaseOptions options;
  options.strategy = strategy;
  options.buffer_pool_pages = pool_pages;
  options.store.separated_version_index = version_index;
  options.parallelism = BenchThreads();
  options.tiering = tiering;
  options.trace.enabled = trace_enabled;
  auto db = Database::Open(bench_db->dir->path() + "/db", options);
  BenchCheck(db.status(), "open database");
  bench_db->db = std::move(db).value();
  if (trace_enabled) TraceDumpDbRef() = bench_db->db.get();
  auto handles = BuildCompany(bench_db->db.get(), config);
  BenchCheck(handles.status(), "build company workload");
  bench_db->handles = std::move(handles).value();
  bench_db->config = config;
  BenchCheck(bench_db->db->Checkpoint(), "checkpoint");
  BenchDb* out = bench_db.get();
  (*cache)[key] = std::move(bench_db);
  return out;
}

/// Timestamp in the middle of version round `round` (0-based) of a
/// company database built with `config`.
inline Timestamp RoundTime(const CompanyConfig& config, uint32_t round) {
  return config.base + static_cast<Timestamp>(round) * config.stride +
         config.stride / 2;
}

// ---- machine-readable run artifact ----

/// Process peak resident set size in bytes (0 where unavailable).
/// Monotone over the process lifetime: a record's value is the high-water
/// mark up to the moment its run finished, so ordering matters when two
/// benchmarks in one binary are compared on memory.
inline double CurrentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// One per-iteration benchmark run, as captured by CollectingReporter.
struct BenchRunRecord {
  std::string name;
  std::string label;
  int64_t iterations = 0;
  double real_ns_per_iter = 0;
  double cpu_ns_per_iter = 0;
  /// Process peak RSS when the run finished (schema v2).
  double peak_rss_bytes = 0;
  /// Statement-start-to-first-row latency, hoisted from the benchmark's
  /// "first_row_micros" counter when it reports one; negative = absent.
  double first_row_micros = -1;
  std::map<std::string, double> counters;
};

/// Console reporter that additionally captures every non-aggregate,
/// non-errored run so BenchMain can serialize them after the fact.
class CollectingReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Aggregate || run.error_occurred) continue;
      BenchRunRecord rec;
      rec.name = run.benchmark_name();
      rec.label = run.report_label;
      rec.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rec.real_ns_per_iter = run.real_accumulated_time * 1e9 / iters;
      rec.cpu_ns_per_iter = run.cpu_accumulated_time * 1e9 / iters;
      rec.peak_rss_bytes = CurrentPeakRssBytes();
      for (const auto& [cname, counter] : run.counters) {
        rec.counters[cname] = counter.value;
      }
      auto frm = rec.counters.find("first_row_micros");
      if (frm != rec.counters.end()) rec.first_row_micros = frm->second;
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<BenchRunRecord>& records() const { return records_; }

 private:
  std::vector<BenchRunRecord> records_;
};

/// JSON number formatting: non-finite values (a zero-iteration run can
/// produce NaN) are not representable in JSON — emit 0 instead.
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Derives the artifact's bench name from argv[0]: basename minus any
/// "bench_" prefix (build/bench/bench_history -> "history").
inline std::string BenchNameFromArgv0(const char* argv0) {
  std::string name = argv0 != nullptr ? argv0 : "benchmark";
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  if (name.empty()) name = "benchmark";
  return name;
}

/// Serializes the captured runs to the artifact schema
/// (bench/bench_schema.json) and writes them to `path`.
inline bool WriteBenchJson(const std::string& path, const std::string& bench,
                           const std::vector<BenchRunRecord>& records) {
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"bench\": \"" + JsonEscape(bench) + "\",\n";
  out += "  \"threads\": " + std::to_string(BenchThreads()) + ",\n";
  out += std::string("  \"smoke\": ") + (BenchSmoke() ? "true" : "false") +
         ",\n";
  out += "  \"benchmarks\": [";
  bool first = true;
  for (const BenchRunRecord& rec : records) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\n";
    out += "      \"name\": \"" + JsonEscape(rec.name) + "\",\n";
    if (!rec.label.empty()) {
      out += "      \"label\": \"" + JsonEscape(rec.label) + "\",\n";
    }
    out += "      \"iterations\": " + std::to_string(rec.iterations) + ",\n";
    out += "      \"real_ns_per_iter\": " + JsonNumber(rec.real_ns_per_iter) +
           ",\n";
    out += "      \"cpu_ns_per_iter\": " + JsonNumber(rec.cpu_ns_per_iter) +
           ",\n";
    out += "      \"peak_rss_bytes\": " + JsonNumber(rec.peak_rss_bytes) +
           ",\n";
    if (rec.first_row_micros >= 0) {
      out += "      \"first_row_micros\": " +
             JsonNumber(rec.first_row_micros) + ",\n";
    }
    out += "      \"counters\": {";
    bool cfirst = true;
    for (const auto& [cname, value] : rec.counters) {
      out += cfirst ? "" : ", ";
      cfirst = false;
      out += "\"" + JsonEscape(cname) + "\": " + JsonNumber(value);
    }
    out += "}\n    }";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fclose(f) == 0 && ok;
  if (ok) std::fprintf(stderr, "wrote %s\n", path.c_str());
  return ok;
}

/// Shared main: parse TCOB flags, in smoke mode force a minimal
/// measuring time, run all benchmarks under the collecting reporter,
/// and emit the JSON artifact. Every bench_* binary uses this via
/// TCOB_BENCH_MAIN().
inline int BenchMain(int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (!argv) {
    argc = 1;
    argv = &args_default;
  }
  ParseBenchFlags(&argc, argv);
  std::string bench_name = BenchNameFromArgv0(argv[0]);
  // google-benchmark wants its flags in argv; rebuild it so smoke mode
  // can append --benchmark_min_time (storage must outlive Initialize).
  static std::vector<std::string>* arg_storage =
      new std::vector<std::string>();
  for (int i = 0; i < argc; ++i) arg_storage->push_back(argv[i]);
  if (BenchSmoke()) {
    arg_storage->push_back("--benchmark_min_time=0.001");
  }
  std::vector<char*> bench_argv;
  for (std::string& s : *arg_storage) bench_argv.push_back(s.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  ::benchmark::Initialize(&bench_argc, bench_argv.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data())) {
    return 1;
  }
  CollectingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  if (!BenchTraceOutRef().empty()) {
    if (Database* db = TraceDumpDbRef()) {
      Status s = db->DumpTraceToFile(BenchTraceOutRef());
      if (!s.ok()) {
        std::fprintf(stderr, "trace dump failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", BenchTraceOutRef().c_str());
    } else {
      std::fprintf(stderr,
                   "--trace_out: no traced database was built by this run\n");
      return 1;
    }
  }
  std::string path = BenchJsonOutRef();
  if (path.empty()) path = "BENCH_" + bench_name + ".json";
  if (!WriteBenchJson(path, bench_name, reporter.records())) return 1;
  return 0;
}

}  // namespace bench
}  // namespace tcob

/// BENCHMARK_MAIN() with TCOB flag handling (--threads, --smoke,
/// --json_out) and a machine-readable BENCH_<name>.json artifact.
#define TCOB_BENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                       \
    return ::tcob::bench::BenchMain(argc, argv);                          \
  }                                                                       \
  int main(int, char**)

#endif  // TCOB_BENCH_BENCH_COMMON_H_
