// F22: transaction commit throughput under concurrent writers.
//
// Committed-txns/sec at 1, 4 and 16 writer threads, with group commit
// on vs. off. Every writer commits small disjoint transactions (each
// inserts fresh atoms, so first-committer-wins validation never fires)
// against a sync_wal database: each commit must be durable before it
// returns. With group commit off every commit pays its own fsync; with
// it on, concurrent committers enqueue and one leader fsyncs for the
// whole group, so throughput should scale with writers instead of
// flatlining at the fsync rate.
//
// Reported counters: wal_fsyncs (cumulative completed fsyncs),
// group_size_mean (mean of the tcob_wal_group_commit_size histogram —
// ~1.0 with group commit off, >1 under concurrency with it on).

#include <benchmark/benchmark.h>

#include <mutex>

#include "bench_common.h"
#include "db/transaction.h"

namespace tcob {
namespace bench {
namespace {

struct TxnBenchDb {
  std::unique_ptr<TempDir> dir;
  std::unique_ptr<Database> db;
};

/// One database per group-commit setting, shared by all writer threads
/// and reused across thread counts (transactions only insert, so the
/// workload never depends on prior state).
TxnBenchDb* GetTxnDb(bool group_commit) {
  static std::mutex mu;
  static TxnBenchDb* dbs[2] = {nullptr, nullptr};
  std::lock_guard<std::mutex> lock(mu);
  TxnBenchDb*& slot = dbs[group_commit ? 1 : 0];
  if (slot == nullptr) {
    slot = new TxnBenchDb();
    slot->dir = std::make_unique<TempDir>();
    DatabaseOptions options;
    options.strategy = StorageStrategy::kSeparated;
    options.sync_wal = true;  // a commit ack must mean durable
    options.group_commit = group_commit;
    auto db = Database::Open(slot->dir->path() + "/db", options);
    BenchCheck(db.status(), "open txn database");
    slot->db = std::move(db.value());
    BenchCheck(
        slot->db->CreateAtomType("Item", {{"v", AttrType::kInt}}).status(),
        "create Item");
  }
  return slot;
}

void BM_CommitThroughput(benchmark::State& state) {
  bool group_commit = state.range(0) != 0;
  Database* db = GetTxnDb(group_commit)->db.get();

  int64_t v = 0;
  for (auto _ : state) {
    Transaction txn = db->Begin();
    auto id = txn.InsertAtom("Item", {{"v", Value::Int(++v)}}, db->Now());
    BenchCheck(id.status(), "buffer insert");
    BenchCheck(txn.Commit(), "commit");
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    tcob::MetricsSnapshot snap = db->MetricsSnapshot();
    state.counters["wal_fsyncs"] = static_cast<double>(
        snap.CounterOr("tcob_wal_syncs_total", 0));
    auto it = snap.histograms.find("tcob_wal_group_commit_size");
    if (it != snap.histograms.end()) {
      state.counters["group_size_mean"] = it->second.Mean();
    }
    state.SetLabel(group_commit ? "group-commit" : "per-commit-fsync");
  }
}

BENCHMARK(BM_CommitThroughput)
    ->ArgNames({"group_commit"})
    ->Args({0})
    ->Args({1})
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Iterations(200)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
