// Table 3 (reconstructed): end-to-end MQL query suite.
//
// Eight representative statements of the temporal molecule query
// language, executed through the full stack (parser -> analyzer ->
// molecule engine -> stores) against the company database (10 x 10 x 1,
// 16 versions/atom), for each storage strategy. `rows` reports the
// result cardinality (identical across strategies — checked by the test
// suite; here it documents the workload).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace tcob {
namespace bench {
namespace {

struct QueryCase {
  const char* label;
  const char* mql;  // "{PAST}" is replaced by an instant in the past
};

const QueryCase kQueries[] = {
    {"Q1_current_all", "SELECT ALL FROM DeptMol VALID AT NOW"},
    {"Q2_current_predicate",
     "SELECT Emp.name, Emp.salary FROM DeptMol WHERE Emp.salary > 3000 "
     "VALID AT NOW"},
    {"Q3_past_slice", "SELECT ALL FROM DeptMol VALID AT {PAST}"},
    {"Q4_window",
     "SELECT Dept.name, Emp.salary FROM DeptMol VALID IN [{PAST}, NOW)"},
    {"Q5_full_history", "SELECT Dept.name FROM DeptMol HISTORY"},
    // Departments are updated rarely, so many current Dept versions
    // reach back past the history midpoint — a discriminating predicate.
    {"Q6_temporal_predicate",
     "SELECT Dept.name FROM DeptMol WHERE VALID(Dept) CONTAINS {PAST} "
     "VALID AT NOW"},
    {"Q7_root_predicate",
     "SELECT ALL FROM DeptMol WHERE Dept.budget > 500 VALID AT NOW"},
    {"Q8_cross_type",
     "SELECT Emp.name FROM DeptMol WHERE Emp.salary > Dept.budget "
     "VALID AT NOW"},
};

std::string Instantiate(const char* mql, Timestamp past) {
  std::string out = mql;
  std::string needle = "{PAST}";
  for (size_t pos = out.find(needle); pos != std::string::npos;
       pos = out.find(needle)) {
    out.replace(pos, needle.size(), std::to_string(past));
  }
  return out;
}

void BM_MqlQuery(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  const QueryCase& q = kQueries[state.range(1)];
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 16;
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  // "The past": the middle of the recorded history (of the database as
  // built — smoke mode clamps the requested config).
  const CompanyConfig& built = bench_db->config;
  Timestamp past = RoundTime(built, built.versions_per_atom / 2);
  std::string mql = Instantiate(q.mql, past);

  size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    state.ResumeTiming();
    auto result = db->Execute(mql);
    BenchCheck(result.status(), q.label);
    rows = result.value().RowCount();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(std::string(StorageStrategyName(strategy)) + "/" + q.label);
}

BENCHMARK(BM_MqlQuery)
    ->ArgNames({"strategy", "query"})
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6, 7}})
    ->Unit(benchmark::kMillisecond);

// Streaming cursor vs materialized execution as the result grows 64x
// (depts 1 -> 64). The claim under test: cursor first-row latency and
// buffered memory stay flat in the result size while the materialized
// path grows linearly. `first_row_micros` is measured at the consumer
// (statement submitted -> first row in hand); `peak_buffered_rows`
// comes from the engine trace and is exact. Cursor cases run first
// (path=0) so the process-wide peak-RSS record of a cursor run is never
// inflated by an earlier materialized result of the same scale.
void BM_StreamingScan(benchmark::State& state) {
  const bool use_cursor = state.range(0) == 0;
  CompanyConfig config;
  config.depts = static_cast<size_t>(state.range(1));
  config.emps_per_dept = 8;
  config.versions_per_atom = 8;
  const bool history = state.range(2) == 0;
  BenchDb* bench_db = GetCompanyDb(StorageStrategy::kSnapshot, config);
  Database* db = bench_db->db.get();
  const CompanyConfig& built = bench_db->config;
  Timestamp past = RoundTime(built, built.versions_per_atom / 2);
  std::string mql =
      history ? std::string("SELECT ALL FROM DeptMol HISTORY")
              : Instantiate("SELECT ALL FROM DeptMol VALID IN [{PAST}, NOW)",
                            past);

  double first_row_us = 0;
  double total_us = 0;
  size_t rows = 0;
  double peak_buffered = 0;
  for (auto _ : state) {
    StopwatchUs timer;
    if (use_cursor) {
      auto cursor = db->Query(mql);
      BenchCheck(cursor.status(), "open cursor");
      std::vector<Value> row;
      auto first = cursor.value()->Next(&row);
      BenchCheck(first.status(), "first row");
      first_row_us = timer.ElapsedUs();
      rows = first.value() ? 1 : 0;
      std::vector<std::vector<Value>> batch;
      while (true) {
        auto n = cursor.value()->NextBatch(256, &batch);
        BenchCheck(n.status(), "drain cursor");
        rows += n.value();
        if (n.value() < 256) break;
      }
      cursor.value()->Close();
    } else {
      auto result = db->Execute(mql);
      BenchCheck(result.status(), "execute");
      // The materialized surface has no earlier "first row" instant:
      // every row exists only once Execute returns.
      first_row_us = timer.ElapsedUs();
      rows = result.value().RowCount();
    }
    total_us = timer.ElapsedUs();
    peak_buffered =
        static_cast<double>(db->last_query_stats().peak_buffered_rows);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["first_row_micros"] = first_row_us;
  state.counters["total_micros"] = total_us;
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["peak_buffered_rows"] = peak_buffered;
  state.SetLabel(std::string(use_cursor ? "cursor" : "materialized") + "/" +
                 (history ? "history" : "window") + "/depts" +
                 std::to_string(config.depts));
}

BENCHMARK(BM_StreamingScan)
    ->ArgNames({"path", "depts", "mode"})
    ->ArgsProduct({{0, 1}, {1, 8, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Flight-recorder overhead twins: the same hot-cache query against two
// otherwise-identical databases, one with the trace ring recording
// (production default) and one with it disabled. The claim under test:
// always-on tracing costs < 3% — every emit is one branch plus four
// relaxed stores into a thread-local ring, never a lock or allocation.
// Hot cache (no pool reset) is the adversarial case: with I/O out of
// the picture, the emit cost is the largest fraction of the iteration.
void BM_TraceOverhead(benchmark::State& state) {
  const bool trace_on = state.range(0) == 1;
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 16;
  BenchDb* bench_db =
      GetCompanyDb(StorageStrategy::kSnapshot, config, /*version_index=*/true,
                   /*pool_pages=*/1024, /*tiering=*/{}, trace_on);
  Database* db = bench_db->db.get();
  const CompanyConfig& built = bench_db->config;
  Timestamp past = RoundTime(built, built.versions_per_atom / 2);
  std::string mql = Instantiate(kQueries[1].mql, past);  // Q2 predicate scan

  size_t rows = 0;
  for (auto _ : state) {
    auto result = db->Execute(mql);
    BenchCheck(result.status(), "trace overhead query");
    rows = result.value().RowCount();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["trace_events_recorded"] = static_cast<double>(
      db->trace_recorder()->recorded(kTraceCatQuery) +
      db->trace_recorder()->recorded(kTraceCatSpan));
  state.SetLabel(trace_on ? "trace_on" : "trace_off");
}

BENCHMARK(BM_TraceOverhead)
    ->ArgNames({"trace"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
