// Figure 12 (extension): secondary-index ablation for selective
// time-slice queries.
//
// Query: "departments with budget in a narrow range as of t" over {100, 400, 1600}
// departments, answered (a) by the full root scan and (b) via a
// version-grained attribute index on Dept.budget. The index prunes the
// root set before molecule materialization, so its advantage grows with
// the database size; the scan is linear in the number of departments.
//
// This experiment ablates a design choice DESIGN.md calls out: the
// paper-era system relies on full scans for value predicates; TCOB adds
// temporal attribute indexes as an extension.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace tcob {
namespace bench {
namespace {

/// Builds (cached) a company database and gives every department a
/// deterministic budget i*10, plus an index when `with_index`.
BenchDb* SetupDepts(size_t depts, bool with_index) {
  CompanyConfig config;
  config.depts = depts;
  config.emps_per_dept = 2;
  config.versions_per_atom = 4;
  // Cache separation between indexed / non-indexed variants: reuse the
  // version-index flag slot of the cache key.
  BenchDb* bench_db =
      GetCompanyDb(StorageStrategy::kSeparated, config, with_index);
  Database* db = bench_db->db.get();
  if (with_index &&
      !db->catalog().GetAttrIndexByName("idx_budget").ok()) {
    BenchCheck(db->CreateAttrIndex("idx_budget", "Dept", "budget").status(),
               "create index");
  }
  return bench_db;
}

void BM_SelectiveSlice(benchmark::State& state) {
  bool with_index = state.range(0) != 0;
  size_t depts = static_cast<size_t>(state.range(1));
  BenchDb* bench_db = SetupDepts(depts, with_index);
  Database* db = bench_db->db.get();
  // A selective predicate: hits at most a handful of departments
  // (budgets are random in [100, 1000); a narrow range).
  const std::string query =
      "SELECT Dept.name, Dept.budget FROM DeptMol "
      "WHERE Dept.budget >= 500 AND Dept.budget < 550 VALID AT NOW";

  size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    state.ResumeTiming();
    auto result = db->Execute(query);
    BenchCheck(result.status(), "selective slice");
    rows = result.value().RowCount();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["depts"] = static_cast<double>(depts);
  state.SetLabel(with_index ? "attr_index" : "full_scan");
}

BENCHMARK(BM_SelectiveSlice)
    ->ArgNames({"index", "depts"})
    ->ArgsProduct({{0, 1}, {100, 400, 1600}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
