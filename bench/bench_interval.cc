// Figure 9 (reconstructed): interval (VALID IN) query cost vs window
// width.
//
// Employees carry 32 versions spanning the database lifetime; the query
// reconstructs the molecule states of one department overlapping a
// window covering {1, 5, 10, 25, 50, 100} percent of the lifetime,
// anchored at the current end (the common "recent history" pattern).
//
// Expected shape: cost grows with the window width and converges to the
// full HISTORY cost (Fig. 8) at 100%; the strategy ordering matches
// Fig. 8 for wide windows and Fig. 5/6 for narrow ones.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

void BM_IntervalQuery(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  int percent = static_cast<int>(state.range(1));
  CompanyConfig config;
  config.depts = 5;
  config.emps_per_dept = 10;
  config.versions_per_atom = 32;
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();
  AtomId root = bench_db->handles.depts[0];

  Timestamp span = bench_db->handles.last_time - bench_db->handles.first_time;
  Timestamp width = std::max<Timestamp>(1, span * percent / 100);
  Interval window(bench_db->handles.last_time - width,
                  bench_db->handles.last_time);

  size_t states = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    state.ResumeTiming();
    Materializer mat = db->materializer();
    auto history = mat.History(*mol, root, window);
    BenchCheck(history.status(), "interval query");
    states = history.value().states.size();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["window"] = static_cast<double>(width);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_IntervalQuery)
    ->ArgNames({"strategy", "percent"})
    ->ArgsProduct({{0, 1, 2}, {1, 5, 10, 25, 50, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
