// Figure 11 (reconstructed): buffer-pool sensitivity of the current
// time slice.
//
// Steady-state current-world reconstruction (no cache reset between
// iterations) with pool capacities of {8, 16, 32, 256} pages, for the
// separated and integrated designs (250 employees, 32 versions/atom).
// `hit_rate` reports the buffer pool hit rate over the measurement.
//
// Expected shape: separated's current working set (current store +
// current index) fits in a small pool, so its curve flattens early;
// integrated drags every atom's full cluster through the pool, needs a
// much larger capacity to flatten, and thrashes at small pools.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

void BM_PoolSensitivity(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  size_t pool_pages = static_cast<size_t>(state.range(1));
  CompanyConfig config;
  config.depts = 25;
  config.emps_per_dept = 10;
  config.versions_per_atom = 32;
  BenchDb* bench_db = GetCompanyDb(strategy, config, true, pool_pages);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();

  // Warm the pool with one untimed pass.
  {
    Materializer mat = db->materializer();
    BenchCheck(mat.AllMoleculesAsOf(*mol, db->Now(),
                                    [](Molecule) { return Result<bool>(true); }),
               "warmup");
  }
  db->pool()->ResetStats();
  for (auto _ : state) {
    Materializer mat = db->materializer();
    Status s = mat.AllMoleculesAsOf(*mol, db->Now(), [](Molecule m) {
      benchmark::DoNotOptimize(m.AtomCount());
      return Result<bool>(true);
    });
    BenchCheck(s, "steady-state slice");
  }
  state.counters["hit_rate"] = db->pool()->stats().HitRate();
  state.counters["pool_pages"] = static_cast<double>(pool_pages);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_PoolSensitivity)
    ->ArgNames({"strategy", "pool"})
    ->ArgsProduct({{1, 2}, {8, 16, 32, 256}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
