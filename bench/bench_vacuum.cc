// Figure 13 (extension): temporal vacuuming ablation.
//
// A company database accumulates 64 versions/atom; we measure (a) the
// live version count, and (b) the cost of a current time slice and of a
// recent-window history query, before and after vacuuming everything
// older than the last quarter of the lifetime. Per strategy.
//
// Expected shape: vacuuming collapses snapshot's and integrated's
// current-slice cost toward separated's (their penalty is exactly the
// dead-version ballast the vacuum removes); separated, already flat,
// barely moves. Recent-window queries are unaffected for all three
// (their data survives the cutoff).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

double TimeCurrentSlice(Database* db, const MoleculeTypeDef* mol) {
  BenchCheck(db->pool()->Reset(), "cold cache");
  WallTimer timer;
  Materializer mat = db->materializer();
  BenchCheck(mat.AllMoleculesAsOf(*mol, db->Now(),
                                  [](Molecule m) {
                                    benchmark::DoNotOptimize(m.AtomCount());
                                    return Result<bool>(true);
                                  }),
             "current slice");
  return timer.ElapsedMicros();
}

void BM_VacuumEffect(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  bool vacuumed = state.range(1) != 0;
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 64;
  // Dedicated database per (strategy, vacuumed) cell: vary the pool-size
  // slot of the cache key by one page to separate the two variants
  // without changing any other knob.
  BenchDb* bench_db =
      GetCompanyDb(strategy, config, true, vacuumed ? 1025 : 1024);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();

  if (vacuumed) {
    // Cut away the oldest three quarters of the history (idempotent:
    // later iterations remove 0).
    Timestamp cutoff = bench_db->handles.first_time +
                       (bench_db->handles.last_time -
                        bench_db->handles.first_time) *
                           3 / 4;
    auto removed = db->VacuumBefore(cutoff);
    BenchCheck(removed.status(), "vacuum");
  }

  for (auto _ : state) {
    double micros = TimeCurrentSlice(db, mol);
    benchmark::DoNotOptimize(micros);
  }
  auto space = db->store()->SpaceStats();
  BenchCheck(space.status(), "space stats");
  state.counters["heap_pages"] = static_cast<double>(space->heap_pages);
  state.counters["index_pages"] = static_cast<double>(space->index_pages);
  state.SetLabel(std::string(StorageStrategyName(strategy)) +
                 (vacuumed ? "/vacuumed" : "/full_history"));
}

BENCHMARK(BM_VacuumEffect)
    ->ArgNames({"strategy", "vacuumed"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
