// Figure 13 (extension): temporal vacuuming ablation.
//
// A company database accumulates 64 versions/atom; we measure (a) the
// live version count, and (b) the cost of a current time slice and of a
// recent-window history query, before and after vacuuming everything
// older than the last quarter of the lifetime. Per strategy.
//
// Expected shape: vacuuming collapses snapshot's and integrated's
// current-slice cost toward separated's (their penalty is exactly the
// dead-version ballast the vacuum removes); separated, already flat,
// barely moves. Recent-window queries are unaffected for all three
// (their data survives the cutoff).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

double TimeCurrentSlice(Database* db, const MoleculeTypeDef* mol) {
  BenchCheck(db->pool()->Reset(), "cold cache");
  WallTimer timer;
  Materializer mat = db->materializer();
  BenchCheck(mat.AllMoleculesAsOf(*mol, db->Now(),
                                  [](Molecule m) {
                                    benchmark::DoNotOptimize(m.AtomCount());
                                    return Result<bool>(true);
                                  }),
             "current slice");
  return timer.ElapsedMicros();
}

void BM_VacuumEffect(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  bool vacuumed = state.range(1) != 0;
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 64;
  // Dedicated database per (strategy, vacuumed) cell: vary the pool-size
  // slot of the cache key by one page to separate the two variants
  // without changing any other knob.
  BenchDb* bench_db =
      GetCompanyDb(strategy, config, true, vacuumed ? 1025 : 1024);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();

  if (vacuumed) {
    // Cut away the oldest three quarters of the history (idempotent:
    // later iterations remove 0).
    Timestamp cutoff = bench_db->handles.first_time +
                       (bench_db->handles.last_time -
                        bench_db->handles.first_time) *
                           3 / 4;
    auto removed = db->VacuumBefore(cutoff);
    BenchCheck(removed.status(), "vacuum");
  }

  for (auto _ : state) {
    double micros = TimeCurrentSlice(db, mol);
    benchmark::DoNotOptimize(micros);
  }
  auto space = db->store()->SpaceStats();
  BenchCheck(space.status(), "space stats");
  state.counters["heap_pages"] = static_cast<double>(space->heap_pages);
  state.counters["index_pages"] = static_cast<double>(space->index_pages);
  state.SetLabel(std::string(StorageStrategyName(strategy)) +
                 (vacuumed ? "/vacuumed" : "/full_history"));
}

BENCHMARK(BM_VacuumEffect)
    ->ArgNames({"strategy", "vacuumed"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Cold-history tiering ablation (Figure 13 extension, part 2).
//
// Same 64-versions/atom database; roughly the oldest three quarters of
// the history is migrated to delta-compressed cold segments. Two query
// shapes per (strategy, tiered) cell:
//   hot_tail:   a current time slice — touches only live/hot versions,
//               so tiering must PRUNE every cold segment and shed the
//               dead-version ballast from the hot stores.
//   long_range: full-lifetime histories — must decode cold segments,
//               paying the merge cost for byte-identical results.
// Counters expose the mechanism: per-iteration store accesses, page
// fetches and segment prune/scan counts, plus the static cold/hot
// on-disk page split and the migration compression ratio.
void BM_TieringEffect(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  bool tiered = state.range(1) != 0;
  bool hot_tail = state.range(2) != 0;
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 64;
  uint32_t versions = config.versions_per_atom;
  if (BenchSmoke()) versions = std::min<uint32_t>(versions, 4);
  TieringOptions tiering;
  tiering.enabled = tiered;
  // Watermark = a quarter of the recorded lifetime back from "now":
  // the newest quarter stays hot, everything older is cold-eligible.
  tiering.cold_age = static_cast<Timestamp>(versions) * config.stride / 4;
  BenchDb* bench_db = GetCompanyDb(strategy, config, true, 1024, tiering);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();

  if (tiered) {
    // Idempotent across cells sharing this database: later calls find
    // nothing left to migrate.
    auto migrated = db->TierMigrate();
    BenchCheck(migrated.status(), "tier migrate");
  }

  const Interval lifetime{bench_db->handles.first_time,
                          bench_db->handles.last_time + 1};
  StoreAccessStats store_before = db->store()->access_stats();
  ColdTierAccessStats cold_before = db->store()->cold_access_stats();
  uint64_t fetches_before = db->pool()->stats().fetches;
  for (auto _ : state) {
    BenchCheck(db->pool()->Reset(), "cold cache");
    Materializer mat = db->materializer();
    if (hot_tail) {
      BenchCheck(mat.AllMoleculesAsOf(*mol, db->Now(),
                                      [](Molecule m) {
                                        benchmark::DoNotOptimize(m.AtomCount());
                                        return Result<bool>(true);
                                      }),
                 "hot-tail slice");
    } else {
      BenchCheck(mat.AllHistories(*mol, lifetime,
                                  [](MoleculeHistory h) {
                                    benchmark::DoNotOptimize(h.states.size());
                                    return Result<bool>(true);
                                  }),
                 "long-range history");
    }
  }
  StoreAccessStats store_delta = db->store()->access_stats();
  store_delta -= store_before;
  ColdTierAccessStats cold_delta = db->store()->cold_access_stats();
  cold_delta -= cold_before;
  const double iters =
      state.iterations() > 0 ? static_cast<double>(state.iterations()) : 1.0;
  state.counters["store_accesses"] =
      static_cast<double>(store_delta.Total()) / iters;
  state.counters["pool_fetches"] =
      static_cast<double>(db->pool()->stats().fetches - fetches_before) /
      iters;
  state.counters["segments_pruned"] =
      static_cast<double>(cold_delta.segments_pruned) / iters;
  state.counters["segments_scanned"] =
      static_cast<double>(cold_delta.segments_scanned) / iters;
  state.counters["cold_versions_read"] =
      static_cast<double>(cold_delta.cold_versions) / iters;

  auto space = db->store()->SpaceStats();
  BenchCheck(space.status(), "space stats");
  double hot_pages =
      static_cast<double>(space->heap_pages + space->index_pages);
  double cold_pages = 0;
  if (db->cold_tier() != nullptr) {
    for (const AtomTypeDef* type : db->catalog().AtomTypes()) {
      auto cold_space = db->cold_tier()->SpaceStats(*type);
      BenchCheck(cold_space.status(), "cold space stats");
      cold_pages += static_cast<double>(cold_space->total_pages);
    }
    ColdTierMigrationStats mig = db->cold_tier()->migration_stats();
    state.counters["compression_ratio"] =
        mig.output_bytes > 0 ? static_cast<double>(mig.input_bytes) /
                                   static_cast<double>(mig.output_bytes)
                             : 0;
  }
  state.counters["hot_pages"] = hot_pages;
  state.counters["cold_pages"] = cold_pages;
  state.counters["cold_fraction"] =
      hot_pages + cold_pages > 0 ? cold_pages / (hot_pages + cold_pages) : 0;
  state.SetLabel(std::string(StorageStrategyName(strategy)) +
                 (tiered ? "/tiered" : "/untiered") +
                 (hot_tail ? "/hot_tail" : "/long_range"));
}

BENCHMARK(BM_TieringEffect)
    ->ArgNames({"strategy", "tiered", "hot_tail"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
