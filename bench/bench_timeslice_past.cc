// Figure 6 (reconstructed): past time-slice cost vs temporal distance.
//
// Employees carry 64 versions spanning [base, base+63*stride). The query
// materializes every DeptMol molecule VALID AT t, with t swept from the
// oldest decile of the history (decile 0) to the newest (decile 9).
// `chain_hops` reports the separated store's history-chain accesses.
//
// Expected shape: separated cost grows as t moves into the past (longer
// chain walks / deeper version-index positions); integrated is roughly
// flat (the whole cluster is read regardless of t); snapshot is flat and
// high (every version of an atom is visited no matter the instant).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"
#include "tstore/separated_store.h"

namespace tcob {
namespace bench {
namespace {

void BM_TimeSlicePast(benchmark::State& state) {
  // Strategy code 3 = separated with the version index disabled (pure
  // chain walking), where the temporal-distance gradient is starkest.
  bool no_vidx = state.range(0) == 3;
  StorageStrategy strategy =
      no_vidx ? StorageStrategy::kSeparated
              : static_cast<StorageStrategy>(state.range(0));
  int decile = static_cast<int>(state.range(1));
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 64;
  BenchDb* bench_db = GetCompanyDb(strategy, config, !no_vidx);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();
  // Decile d of the update history: round ~ 64 * d / 10.
  Timestamp t = RoundTime(config, static_cast<uint32_t>(
                                      (config.versions_per_atom - 1) *
                                      decile / 9));

  const auto* separated =
      dynamic_cast<const SeparatedStore*>(db->store());
  uint64_t hops_before = separated ? separated->chain_hops() : 0;
  uint64_t passes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    state.ResumeTiming();
    Materializer mat = db->materializer();
    size_t molecules = 0;
    Status s = mat.AllMoleculesAsOf(*mol, t, [&](Molecule m) {
      benchmark::DoNotOptimize(m.AtomCount());
      ++molecules;
      return Result<bool>(true);
    });
    BenchCheck(s, "past time slice");
    benchmark::DoNotOptimize(molecules);
    ++passes;
  }
  if (separated != nullptr && passes > 0) {
    state.counters["chain_hops"] =
        static_cast<double>(separated->chain_hops() - hops_before) /
        static_cast<double>(passes);
  }
  state.counters["t"] = static_cast<double>(t);
  state.SetLabel(no_vidx ? "separated_chain_walk"
                         : StorageStrategyName(strategy));
}

BENCHMARK(BM_TimeSlicePast)
    ->ArgNames({"strategy", "decile"})
    ->ArgsProduct({{0, 1, 2, 3}, {0, 3, 6, 9}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
