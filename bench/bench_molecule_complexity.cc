// Figure 7 (reconstructed): time-slice cost vs molecule complexity.
//
// One department molecule with fan-out (employees per department) swept
// over {1..64}, each employee on one project (3-level molecule, size =
// 1 + 2*fanout atoms), employees carrying 8 versions. The query
// materializes a single molecule as of NOW on a cold cache.
//
// Expected shape: all strategies are linear in molecule size; the
// vertical ordering from Fig. 5 (separated < snapshot < integrated at
// this history length) is preserved at every fan-out.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

void BM_MoleculeComplexity(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 5;
  config.emps_per_dept = static_cast<size_t>(state.range(1));
  config.versions_per_atom = 8;
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();
  AtomId root = bench_db->handles.depts[0];

  size_t atoms = 0;
  uint64_t store_accesses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    db->store()->ResetAccessStats();
    state.ResumeTiming();
    Materializer mat = db->materializer();
    auto molecule = mat.MaterializeAsOf(*mol, root, db->Now());
    BenchCheck(molecule.status(), "materialize");
    atoms = molecule.value().AtomCount();
    benchmark::DoNotOptimize(atoms);
    store_accesses = db->store()->access_stats().Total();
  }
  state.counters["molecule_atoms"] = static_cast<double>(atoms);
  state.counters["store_accesses"] = static_cast<double>(store_accesses);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_MoleculeComplexity)
    ->ArgNames({"strategy", "fanout"})
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8, 16, 32, 64}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
