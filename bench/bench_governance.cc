// Resource governance and graceful degradation (EXPERIMENTS.md F20).
//
// Four claims, one benchmark each:
//   abort_latency:  a deadline on a deep-history query aborts close to
//                   the deadline — counters report the p50/p99 overshoot
//                   (abort time minus armed deadline) in microseconds.
//   idle_overhead:  with every governance feature armed but never
//                   binding (huge budget, generous deadline, wide
//                   admission gate) a current time slice costs within
//                   noise of the ungoverned baseline.
//   budgeted_sweep: a full-history sweep under a memory budget capped at
//                   a fraction of its unbudgeted peak still completes,
//                   and the charged bytes never exceed the cap.
//   governance_fires: deterministic micro-scenarios that make the
//                   cancel / admission / retry instrumentation fire, so
//                   CI can assert the counters exist and move.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "storage/fault_env.h"
#include "storage/retry_env.h"

namespace tcob {
namespace bench {
namespace {

constexpr char kDeepHistory[] = "SELECT ALL FROM DeptMol HISTORY";
constexpr char kCurrentSlice[] = "SELECT ALL FROM DeptMol VALID AT NOW";

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples->size()));
  if (idx >= samples->size()) idx = samples->size() - 1;
  return (*samples)[idx];
}

/// Drains a cursor to completion (or error) with small pulls, so the
/// deadline check runs at every batch boundary.
Status DrainAll(Cursor* cursor, size_t batch_rows, uint64_t* rows) {
  std::vector<std::vector<Value>> batch;
  for (;;) {
    Result<size_t> pulled = cursor->NextBatch(batch_rows, &batch);
    if (!pulled.ok()) return pulled.status();
    *rows += pulled.value();
    if (pulled.value() < batch_rows) return Status::OK();
  }
}

/// A dedicated governed/ungoverned database pair per strategy (the
/// shared GetCompanyDb cache cannot carry open-time governance options).
Database* GetGovernedDb(StorageStrategy strategy, bool governed) {
  static std::map<std::string, std::unique_ptr<BenchDb>>* cache =
      new std::map<std::string, std::unique_ptr<BenchDb>>();
  std::string key = std::string(StorageStrategyName(strategy)) +
                    (governed ? "/governed" : "/plain") + "/t" +
                    std::to_string(BenchThreads());
  auto it = cache->find(key);
  if (it != cache->end()) return it->second->db.get();
  auto bench_db = std::make_unique<BenchDb>();
  bench_db->dir = std::make_unique<TempDir>();
  DatabaseOptions options;
  options.strategy = strategy;
  options.parallelism = BenchThreads();
  if (governed) {
    // Armed but never binding: idle-overhead measurements compare this
    // against the plain twin.
    options.default_query_deadline_micros = 10ull * 1000 * 1000;
    options.memory_budget_bytes = 4ull << 30;
    options.max_inflight_queries = 64;
  }
  auto db = Database::Open(bench_db->dir->path() + "/db", options);
  BenchCheck(db.status(), "open governed database");
  bench_db->db = std::move(db).value();
  CompanyConfig config;
  config.depts = 8;
  config.emps_per_dept = 8;
  config.versions_per_atom = BenchSmoke() ? 4 : 16;
  auto handles = BuildCompany(bench_db->db.get(), config);
  BenchCheck(handles.status(), "build governed workload");
  bench_db->handles = std::move(handles).value();
  Database* out = bench_db->db.get();
  (*cache)[key] = std::move(bench_db);
  return out;
}

// ---- abort latency ----------------------------------------------------

void BM_DeadlineAbortLatency(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 10;
  config.emps_per_dept = 10;
  config.versions_per_atom = 64;
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();

  // Short enough that a 64-version sweep can never finish (in smoke
  // mode the clamped 4-version sweep sometimes can — aborted_fraction
  // reports how often the deadline actually hit).
  const uint64_t deadline_us = 500;
  std::vector<double> overshoot_us;
  uint64_t aborted = 0, completed = 0;
  for (auto _ : state) {
    db->set_default_query_deadline(deadline_us);
    WallTimer timer;
    uint64_t rows = 0;
    auto cursor = db->Query(kDeepHistory);
    Status outcome = cursor.ok()
                         ? DrainAll(cursor.value().get(), 16, &rows)
                         : cursor.status();
    if (cursor.ok()) cursor.value()->Close();
    double elapsed = timer.ElapsedMicros();
    db->set_default_query_deadline(0);
    if (outcome.IsDeadlineExceeded()) {
      ++aborted;
      overshoot_us.push_back(
          std::max(0.0, elapsed - static_cast<double>(deadline_us)));
    } else {
      BenchCheck(outcome, "governed drain");
      ++completed;
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["deadline_us"] = static_cast<double>(deadline_us);
  state.counters["aborted_fraction"] =
      aborted + completed > 0
          ? static_cast<double>(aborted) /
                static_cast<double>(aborted + completed)
          : 0;
  state.counters["abort_overshoot_p50_us"] = Percentile(&overshoot_us, 0.50);
  state.counters["abort_overshoot_p99_us"] = Percentile(&overshoot_us, 0.99);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_DeadlineAbortLatency)
    ->ArgNames({"strategy"})
    ->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// ---- idle overhead ----------------------------------------------------

void BM_GovernanceIdleOverhead(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  bool governed = state.range(1) != 0;
  Database* db = GetGovernedDb(strategy, governed);
  uint64_t rows = 0;
  for (auto _ : state) {
    auto cursor = db->Query(kCurrentSlice);
    BenchCheck(cursor.status(), "open slice");
    BenchCheck(DrainAll(cursor.value().get(), 64, &rows), "drain slice");
    cursor.value()->Close();
  }
  benchmark::DoNotOptimize(rows);
  state.counters["governed"] = governed ? 1 : 0;
  state.SetLabel(std::string(StorageStrategyName(strategy)) +
                 (governed ? "/governed" : "/plain"));
}

BENCHMARK(BM_GovernanceIdleOverhead)
    ->ArgNames({"strategy", "governed"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// ---- flight-recorder overhead (streaming path) ------------------------

// Trace on/off twins over a cursor-drained current slice: unlike the
// bench_queries twin (materialized Execute), this one exercises the
// streaming producer and its span/queue emits. The drop counters ride
// along so ring overwrite pressure under sustained load is visible in
// the artifact.
void BM_TraceOverheadStreaming(benchmark::State& state) {
  const bool trace_on = state.range(0) == 1;
  CompanyConfig config;
  config.depts = 8;
  config.emps_per_dept = 8;
  config.versions_per_atom = 16;
  BenchDb* bench_db =
      GetCompanyDb(StorageStrategy::kSnapshot, config, /*version_index=*/true,
                   /*pool_pages=*/1024, /*tiering=*/{}, trace_on);
  Database* db = bench_db->db.get();
  uint64_t rows = 0;
  for (auto _ : state) {
    auto cursor = db->Query(kCurrentSlice);
    BenchCheck(cursor.status(), "open traced slice");
    BenchCheck(DrainAll(cursor.value().get(), 64, &rows), "drain slice");
    cursor.value()->Close();
  }
  benchmark::DoNotOptimize(rows);
  uint64_t recorded = 0, dropped = 0;
  for (int i = 0; i < kTraceCategoryCount; ++i) {
    recorded += db->trace_recorder()->recorded(1u << i);
    dropped += db->trace_recorder()->dropped(1u << i);
  }
  state.counters["trace_events_recorded"] = static_cast<double>(recorded);
  state.counters["trace_events_dropped"] = static_cast<double>(dropped);
  state.SetLabel(trace_on ? "trace_on" : "trace_off");
}

BENCHMARK(BM_TraceOverheadStreaming)
    ->ArgNames({"trace"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- budgeted full-history sweep --------------------------------------

void BM_BudgetedAllHistories(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  // Pass 1 (setup, unmeasured): the unbudgeted peak on the plain twin.
  Database* plain = GetGovernedDb(strategy, false);
  uint64_t rows = 0;
  {
    auto cursor = plain->Query(kDeepHistory);
    BenchCheck(cursor.status(), "open unbudgeted sweep");
    BenchCheck(DrainAll(cursor.value().get(), 64, &rows), "unbudgeted sweep");
    cursor.value()->Close();
  }
  uint64_t peak_unbounded = plain->memory_budget().peak();

  // Pass 2 (measured): the same sweep under a cap of 1/8 of that peak.
  static std::map<std::string, std::unique_ptr<BenchDb>>* cache =
      new std::map<std::string, std::unique_ptr<BenchDb>>();
  std::string key = std::string(StorageStrategyName(strategy)) + "/capped/t" +
                    std::to_string(BenchThreads());
  if (cache->find(key) == cache->end()) {
    auto bench_db = std::make_unique<BenchDb>();
    bench_db->dir = std::make_unique<TempDir>();
    DatabaseOptions options;
    options.strategy = strategy;
    options.parallelism = BenchThreads();
    options.memory_budget_bytes = peak_unbounded / 8 + 1;
    auto db = Database::Open(bench_db->dir->path() + "/db", options);
    BenchCheck(db.status(), "open capped database");
    bench_db->db = std::move(db).value();
    CompanyConfig config;
    config.depts = 8;
    config.emps_per_dept = 8;
    config.versions_per_atom = BenchSmoke() ? 4 : 16;
    auto handles = BuildCompany(bench_db->db.get(), config);
    BenchCheck(handles.status(), "build capped workload");
    bench_db->handles = std::move(handles).value();
    (*cache)[key] = std::move(bench_db);
  }
  Database* db = (*cache)[key]->db.get();
  uint64_t capped_rows = 0;
  for (auto _ : state) {
    capped_rows = 0;
    auto cursor = db->Query(kDeepHistory);
    BenchCheck(cursor.status(), "open budgeted sweep");
    BenchCheck(DrainAll(cursor.value().get(), 64, &capped_rows),
               "budgeted sweep");
    cursor.value()->Close();
  }
  const ResourceBudget& budget = db->memory_budget();
  state.counters["cap_bytes"] = static_cast<double>(budget.cap());
  state.counters["peak_charged_bytes"] = static_cast<double>(budget.peak());
  state.counters["unbounded_peak_bytes"] =
      static_cast<double>(peak_unbounded);
  state.counters["budget_rejections"] =
      static_cast<double>(budget.rejected());
  state.counters["rows"] = static_cast<double>(capped_rows);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_BudgetedAllHistories)
    ->ArgNames({"strategy"})
    ->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// ---- deterministic instrumentation firing ------------------------------

void BM_GovernanceFires(benchmark::State& state) {
  // One database with a tight admission gate; each iteration cancels a
  // cursor mid-stream, bounces a query off the full gate, and absorbs
  // injected transient read EIOs — so the cancelled/admission/retry
  // counters all provably move.
  static FaultInjectingIoEnv* env = new FaultInjectingIoEnv();
  static std::unique_ptr<Database>* held = []() {
    DatabaseOptions options;
    options.strategy = StorageStrategy::kSeparated;
    options.parallelism = BenchThreads();
    options.max_inflight_queries = 1;
    options.admission_timeout_micros = 1000;
    options.io_retry.max_attempts = 4;
    options.io_retry.base_backoff_micros = 1;
    options.io_retry.max_backoff_micros = 16;
    options.buffer_pool_pages = 16;  // keep reads hitting the disk
    options.env = env;
    auto db = Database::Open("govdb", options);
    BenchCheck(db.status(), "open fires database");
    CompanyConfig config;
    config.depts = 4;
    config.emps_per_dept = 4;
    config.versions_per_atom = 4;
    auto handles = BuildCompany(db.value().get(), config);
    BenchCheck(handles.status(), "build fires workload");
    return new std::unique_ptr<Database>(std::move(db).value());
  }();
  Database* db = held->get();
  for (auto _ : state) {
    auto cursor = db->Query(kDeepHistory);
    BenchCheck(cursor.status(), "open cancellable");
    std::vector<Value> row;
    BenchCheck(cursor.value()->Next(&row).status(), "first row");
    // Bounce a second query off the admission slot the open cursor
    // still holds (its finalize has not run yet).
    auto bounced = db->Query(kCurrentSlice);
    if (bounced.ok()) bounced.value()->Close();
    // Cancel mid-stream.
    cursor.value()->Cancel();
    uint64_t rows = 0;
    Status drained = DrainAll(cursor.value().get(), 16, &rows);
    if (!drained.IsCancelled() && !drained.ok()) {
      BenchCheck(drained, "cancelled drain");
    }
    cursor.value()->Close();
    // Absorb injected transient EIOs on a cold read.
    BenchCheck(db->pool()->Reset(), "cold cache");
    env->FailTransientReads(2);
    auto retried = db->Execute(kCurrentSlice);
    BenchCheck(retried.status(), "retried slice");
  }
  MetricsSnapshot snap = db->MetricsSnapshot();
  state.counters["query_cancelled_total"] = static_cast<double>(
      snap.CounterOr("tcob_query_cancelled_total"));
  state.counters["admission_rejected_total"] = static_cast<double>(
      snap.GaugeOr("tcob_admission_rejected_total"));
  state.counters["admission_peak_queue_depth"] = static_cast<double>(
      snap.GaugeOr("tcob_admission_peak_queue_depth"));
  state.counters["io_retries_total"] =
      static_cast<double>(snap.GaugeOr("tcob_io_retries_total"));
  state.SetLabel("separated/fires");
}

BENCHMARK(BM_GovernanceFires)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
