// Figure 8 (reconstructed): molecule history reconstruction cost.
//
// Query: the full evolution (HISTORY) of one 3-level DeptMol molecule
// (1 dept + 10 emps + 10 projects), with employee histories of
// {1, 4, 16, 64} versions. Cold cache per reconstruction. `states`
// reports the number of maximal constant molecule states produced,
// `store_accesses` the TemporalAtomStore read calls per reconstruction,
// and `cache_hit_rate` the query-scoped VersionCache hit fraction.
//
// Expected shape: integrated is the cheapest at long histories (one
// cluster fetch yields an atom's whole history); separated pays a chain
// walk per atom; snapshot pays an index probe + record fetch per
// version. All strategies are roughly linear in the version count.
//
// The Naive variant re-materializes the molecule from the store at
// every elementary interval (the pre-incremental implementation): its
// store_accesses grow with states x atoms, whereas the incremental
// sweep pins each reachable atom once — the gap widens with history
// depth (>= 5x at 16+ versions).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "mad/materializer.h"

namespace tcob {
namespace bench {
namespace {

void BM_MoleculeHistory(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 5;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(state.range(1));
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();
  AtomId root = bench_db->handles.depts[0];

  size_t states = 0;
  uint64_t store_accesses = 0;
  double hit_rate = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    db->store()->ResetAccessStats();
    state.ResumeTiming();
    Materializer mat = db->materializer();
    mat.ResetCacheStats();
    auto history = mat.History(*mol, root, Interval::All());
    BenchCheck(history.status(), "history");
    states = history.value().states.size();
    benchmark::DoNotOptimize(states);
    store_accesses = db->store()->access_stats().Total();
    hit_rate = mat.cache_stats().HitRate();
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["store_accesses"] = static_cast<double>(store_accesses);
  state.counters["cache_hit_rate"] = hit_rate;
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_MoleculeHistory)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);

void BM_MoleculeHistoryNaive(benchmark::State& state) {
  StorageStrategy strategy = static_cast<StorageStrategy>(state.range(0));
  CompanyConfig config;
  config.depts = 5;
  config.emps_per_dept = 10;
  config.versions_per_atom = static_cast<uint32_t>(state.range(1));
  BenchDb* bench_db = GetCompanyDb(strategy, config);
  Database* db = bench_db->db.get();
  const MoleculeTypeDef* mol =
      db->catalog().GetMoleculeType(bench_db->handles.dept_mol).value();
  AtomId root = bench_db->handles.depts[0];

  size_t states = 0;
  uint64_t store_accesses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    BenchCheck(db->pool()->Reset(), "cold cache");
    db->store()->ResetAccessStats();
    state.ResumeTiming();
    Materializer mat = db->materializer();
    auto history = mat.NaiveHistory(*mol, root, Interval::All());
    BenchCheck(history.status(), "history");
    states = history.value().states.size();
    benchmark::DoNotOptimize(states);
    store_accesses = db->store()->access_stats().Total();
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["store_accesses"] = static_cast<double>(store_accesses);
  state.SetLabel(StorageStrategyName(strategy));
}

BENCHMARK(BM_MoleculeHistoryNaive)
    ->ArgNames({"strategy", "versions"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace tcob

TCOB_BENCH_MAIN();
