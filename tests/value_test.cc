#include "record/value.h"

#include <gtest/gtest.h>

#include "record/record_codec.h"

namespace tcob {
namespace {

TEST(ValueTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Time(42).AsTime(), 42);
  EXPECT_EQ(Value::Id(7).AsId(), 7u);
  EXPECT_TRUE(Value::Null(AttrType::kInt).is_null());
  EXPECT_EQ(Value::Null(AttrType::kInt).type(), AttrType::kInt);
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)).value(), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")).value(), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)).value(), 0);
  EXPECT_LT(Value::Time(1).Compare(Value::Time(2)).value(), 0);
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)).value(), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)).value(), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)).value(), 0);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_TRUE(Value::Int(1).Compare(Value::String("1")).status().IsTypeError());
  EXPECT_TRUE(
      Value::Bool(true).Compare(Value::Int(1)).status().IsTypeError());
}

TEST(ValueTest, NullOrdering) {
  Value null_int = Value::Null(AttrType::kInt);
  EXPECT_LT(null_int.Compare(Value::Int(-100)).value(), 0);
  EXPECT_EQ(null_int.Compare(Value::Null(AttrType::kInt)).value(), 0);
  EXPECT_TRUE(null_int.Equals(Value::Null(AttrType::kInt)));
  EXPECT_FALSE(null_int.Equals(Value::Int(0)));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Null(AttrType::kInt).ToString(), "NULL");
  EXPECT_EQ(Value::Id(9).ToString(), "#9");
  EXPECT_EQ(Value::Time(3).ToString(), "t3");
}

TEST(ValueTest, AttrTypeNames) {
  for (AttrType t : {AttrType::kBool, AttrType::kInt, AttrType::kDouble,
                     AttrType::kString, AttrType::kTimestamp, AttrType::kId}) {
    EXPECT_EQ(AttrTypeFromName(AttrTypeName(t)).value(), t);
  }
  EXPECT_TRUE(AttrTypeFromName("BLOB").status().IsInvalidArgument());
}

class RecordCodecTest : public ::testing::Test {
 protected:
  std::vector<AttrType> schema_ = {AttrType::kString, AttrType::kInt,
                                   AttrType::kDouble, AttrType::kBool,
                                   AttrType::kTimestamp, AttrType::kId};
};

TEST_F(RecordCodecTest, RoundTripAllTypes) {
  std::vector<Value> values = {Value::String("ada"), Value::Int(-42),
                               Value::Double(3.25),  Value::Bool(true),
                               Value::Time(99),      Value::Id(1234)};
  std::string buf;
  ASSERT_TRUE(EncodeValues(schema_, values, &buf).ok());
  Slice in(buf);
  auto decoded = DecodeValues(schema_, &in);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(decoded.value()[i].Equals(values[i])) << i;
  }
  EXPECT_TRUE(in.empty());
}

TEST_F(RecordCodecTest, RoundTripWithNulls) {
  std::vector<Value> values = {Value::Null(AttrType::kString),
                               Value::Int(7),
                               Value::Null(AttrType::kDouble),
                               Value::Null(AttrType::kBool),
                               Value::Time(1),
                               Value::Null(AttrType::kId)};
  std::string buf;
  ASSERT_TRUE(EncodeValues(schema_, values, &buf).ok());
  Slice in(buf);
  auto decoded = DecodeValues(schema_, &in);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].is_null(), values[i].is_null()) << i;
    EXPECT_EQ(decoded.value()[i].type(), schema_[i]) << i;
    EXPECT_TRUE(decoded.value()[i].Equals(values[i])) << i;
  }
}

TEST_F(RecordCodecTest, ArityMismatchRejected) {
  std::string buf;
  EXPECT_TRUE(EncodeValues(schema_, {Value::Int(1)}, &buf)
                  .IsInvalidArgument());
}

TEST_F(RecordCodecTest, TypeMismatchRejected) {
  std::vector<Value> values = {Value::Int(1),       Value::Int(2),
                               Value::Double(3),    Value::Bool(true),
                               Value::Time(5),      Value::Id(6)};
  std::string buf;
  EXPECT_TRUE(EncodeValues(schema_, values, &buf).IsTypeError());
}

TEST_F(RecordCodecTest, TruncatedRecordRejected) {
  std::vector<Value> values = {Value::String("xyz"), Value::Int(1),
                               Value::Double(2),     Value::Bool(false),
                               Value::Time(3),       Value::Id(4)};
  std::string buf;
  ASSERT_TRUE(EncodeValues(schema_, values, &buf).ok());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string partial = buf.substr(0, cut);
    Slice in(partial);
    auto decoded = DecodeValues(schema_, &in);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST_F(RecordCodecTest, MultipleRecordsConcatenated) {
  std::vector<AttrType> schema = {AttrType::kInt};
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(EncodeValues(schema, {Value::Int(i)}, &buf).ok());
  }
  Slice in(buf);
  for (int i = 0; i < 10; ++i) {
    auto decoded = DecodeValues(schema, &in);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value()[0].AsInt(), i);
  }
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace tcob
