// Targeted fault-injection suite. The crash-point sweep proves recovery
// over *every* power-cut position; these tests instead pin down single
// failure modes and the exact behaviour each must produce:
//
//   - a failed WAL fsync poisons the database fail-stop (writes refused,
//     reads fine) and a reopen recovers,
//   - a failed sync inside Checkpoint likewise poisons, and no acked
//     operation is lost,
//   - an injected read error surfaces as IOError — during Open and
//     during a query — never as a crash or a wrong answer,
//   - a corrupt WAL tail is detected, dropped, and reported through
//     RecoveryStats.

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "common/coding.h"
#include "common/logging.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "storage/fault_env.h"

namespace tcob {
namespace {

constexpr char kSetup[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  INSERT ATOM Dept (name='eng', budget=100) VALID FROM 10;
  INSERT ATOM Emp (name='ada', salary=10) VALID FROM 10;
  CONNECT DeptEmp FROM 1 TO 2 VALID FROM 10;
)";

class FaultInjectionTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kSilent);  // every test here provokes errors
  }
  void TearDown() override { SetLogLevel(saved_level_); }

  DatabaseOptions Options(IoEnv* env) {
    DatabaseOptions options;
    options.strategy = GetParam();
    options.buffer_pool_pages = 8;
    options.sync_wal = true;
    options.parallelism = 1;
    options.env = env;
    return options;
  }

  std::string db_dir() const { return dir_.path() + "/db"; }

  /// Opens a fresh database and applies the setup script: one Dept
  /// (atom 1) connected to one Emp (atom 2).
  std::unique_ptr<Database> Populate(FaultInjectingIoEnv* env) {
    auto db = Database::Open(db_dir(), Options(env));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) return nullptr;
    auto r = (*db)->ExecuteScript(kSetup);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return nullptr;
    return std::move(db.value());
  }

  static size_t Rows(Database* db, const std::string& q) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? r.value().RowCount() : 0;
  }

  TempDir dir_;
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_P(FaultInjectionTest, FailedWalSyncDumpsFlightRecorder) {
  // Degrading to read-only must leave a flight-recorder dump in
  // trace.dump_dir: a well-formed Chrome trace_event JSON file whose
  // ring still holds the WAL/query events leading up to the failure.
  FaultInjectingIoEnv env;
  TempDir dump_dir;
  DatabaseOptions options = Options(&env);
  options.trace.dump_dir = dump_dir.path();
  auto db = Database::Open(db_dir(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->ExecuteScript(kSetup).ok());

  env.FailSyncAt(env.syncs() + 1);
  auto denied =
      (*db)->Execute("UPDATE ATOM Emp 2 SET salary=99 VALID FROM 20");
  ASSERT_FALSE(denied.ok());
  ASSERT_EQ((*db)->health_state(), HealthState::kReadOnly);

  const std::string path = dump_dir.path() + "/trace-read-only-1.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing dump " << path;
  std::string dump((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(dump.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(dump.compare(dump.size() - 2, 2, "]}"), 0);
  // The events that explain the failure are in the dump: WAL appends
  // from the setup script and the health transition itself.
  EXPECT_NE(dump.find("\"name\":\"wal_append\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"health_transition\""), std::string::npos);
}

TEST_P(FaultInjectionTest, FailedWalSyncPoisonsFailStop) {
  FaultInjectingIoEnv env;
  auto db = Populate(&env);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->health().ok());

  env.FailSyncAt(env.syncs() + 1);
  auto denied = db->Execute("UPDATE ATOM Emp 2 SET salary=99 VALID FROM 20");
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsIOError()) << denied.status().ToString();
  EXPECT_FALSE(db->health().ok());

  // Fail-stop: later writes are refused with the poison status even
  // though the injected fault itself was one-shot.
  auto refused = db->Execute("UPDATE ATOM Emp 2 SET salary=50 VALID FROM 21");
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsIOError()) << refused.status().ToString();
  EXPECT_FALSE(db->Checkpoint().ok());

  // ...but reads keep working against the pre-failure state.
  EXPECT_EQ(Rows(db.get(), "SELECT Emp.name FROM DeptMol VALID AT 15"), 1u);

  // Crash the poisoned instance and reopen. The update whose fsync
  // failed was never acknowledged, so it may be present (the record hit
  // the platter before the fsync error) or absent — both are honest.
  // The refused statement must NOT be present: fail-stop means it never
  // reached the log.
  (void)db.release();
  auto reopened = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->health().ok());
  EXPECT_TRUE(reopened.value()->VerifyIntegrity().ok());
  const size_t versions =
      Rows(reopened.value().get(), "SELECT Emp.salary FROM DeptMol HISTORY");
  EXPECT_GE(versions, 1u);
  EXPECT_LE(versions, 2u);
  EXPECT_EQ(Rows(reopened.value().get(),
                 "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 50 "
                 "VALID AT 25"),
            0u);
  // The recovered database accepts new work.
  EXPECT_TRUE(reopened.value()
                  ->Execute("UPDATE ATOM Emp 2 SET salary=60 VALID FROM 30")
                  .ok());
}

TEST_P(FaultInjectionTest, FailedCheckpointSyncKeepsAllAckedData) {
  FaultInjectingIoEnv env;
  auto db = Populate(&env);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->Execute("UPDATE ATOM Emp 2 SET salary=11 VALID FROM 20").ok());

  env.FailSyncAt(env.syncs() + 1);
  Status s = db->Checkpoint();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_FALSE(db->health().ok());
  // Reads still work on the poisoned instance.
  EXPECT_EQ(Rows(db.get(), "SELECT Emp.name FROM DeptMol VALID AT 25"), 1u);
  (void)db.release();

  // Every statement was acked under sync_wal, so all of them — including
  // the ones the failed checkpoint tried to flush — must survive.
  auto reopened = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->VerifyIntegrity().ok());
  EXPECT_EQ(Rows(reopened.value().get(),
                 "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 11 "
                 "VALID AT 25"),
            1u);
  // The fresh instance is healthy and can checkpoint.
  EXPECT_TRUE(reopened.value()->health().ok());
  EXPECT_TRUE(reopened.value()->Checkpoint().ok());
}

TEST_P(FaultInjectionTest, ReadErrorDuringOpenFailsCleanly) {
  FaultInjectingIoEnv env;
  {
    auto db = Populate(&env);
    ASSERT_NE(db, nullptr);
    // Clean close: the destructor checkpoints, so reopening must read
    // the catalog and meta files back.
  }
  env.FailReadAt(env.reads() + 1);
  auto failed = Database::Open(db_dir(), Options(&env));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();

  // The fault was one-shot and the failed open wrote nothing, so the
  // same directory opens intact.
  auto ok = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value()->VerifyIntegrity().ok());
  EXPECT_EQ(Rows(ok.value().get(), "SELECT Emp.name FROM DeptMol VALID AT 15"),
            1u);
}

TEST_P(FaultInjectionTest, ReadErrorDuringQuerySurfacesAsIoError) {
  FaultInjectingIoEnv env;
  {
    auto db = Populate(&env);
    ASSERT_NE(db, nullptr);
  }
  // Reopen: the buffer pool starts cold, so the query below must hit
  // the disk.
  auto db = Database::Open(db_dir(), Options(&env)).value();
  env.FailReadAt(env.reads() + 1);
  auto r = db->Execute("SELECT ALL FROM DeptMol VALID AT 15");
  ASSERT_FALSE(r.ok()) << "cold-cache query never touched the disk";
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();

  // One-shot fault: the identical query now succeeds with the right
  // answer — the error was surfaced, not cached and not destructive.
  auto retry = db->Execute("SELECT ALL FROM DeptMol VALID AT 15");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(retry.value().RowCount(), 0u);
}

TEST_P(FaultInjectionTest, CorruptWalTailIsDetectedDroppedAndReported) {
  FaultInjectingIoEnv env;
  auto db = Populate(&env);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(
      db->Execute("UPDATE ATOM Emp 2 SET salary=11 VALID FROM 20").ok());
  (void)db.release();  // crash: the WAL holds every operation

  // Fake a torn append: a plausible frame header whose payload fails
  // the checksum.
  {
    auto wal = env.OpenFile(db_dir() + "/wal.log");
    ASSERT_TRUE(wal.ok());
    auto size = (*wal)->Size();
    ASSERT_TRUE(size.ok());
    ASSERT_GT(size.value(), 0u);
    std::string frame;
    PutFixed32(&frame, 4);           // length
    PutFixed32(&frame, 0xdeadbeef);  // checksum that cannot match
    frame += "junk";
    ASSERT_TRUE((*wal)->WriteAt(size.value(), Slice(frame)).ok());
  }

  auto recovered = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryStats& stats = recovered.value()->recovery_stats();
  EXPECT_TRUE(stats.wal_tail_was_corrupt);
  EXPECT_EQ(stats.wal_dropped_tail_bytes, 12u);
  // Every record before the bad tail replays: 2 inserts + 1 connect +
  // 1 update (DDL persists through the catalog file, not the WAL).
  EXPECT_EQ(stats.replayed_ops, 4u);
  EXPECT_TRUE(recovered.value()->VerifyIntegrity().ok());
  EXPECT_EQ(Rows(recovered.value().get(),
                 "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 11 "
                 "VALID AT 25"),
            1u);
}

TEST_P(FaultInjectionTest, IsPoisonedReportsAndPreservesOriginalError) {
  FaultInjectingIoEnv env;
  auto db = Populate(&env);
  ASSERT_NE(db, nullptr);
  EXPECT_FALSE(db->IsPoisoned());

  env.FailSyncAt(env.syncs() + 1);
  auto first = db->Execute("UPDATE ATOM Emp 2 SET salary=99 VALID FROM 20");
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(db->IsPoisoned());
  const Status original = db->health();
  ASSERT_FALSE(original.ok());
  EXPECT_TRUE(original.IsIOError()) << original.ToString();

  // Every later mutation — DML, DDL, checkpoint, vacuum — must come
  // back with the *original* failure, not a fresh or generic error,
  // even though the injected fault itself was one-shot.
  auto dml = db->Execute("UPDATE ATOM Emp 2 SET salary=1 VALID FROM 21");
  ASSERT_FALSE(dml.ok());
  EXPECT_EQ(dml.status(), original) << dml.status().ToString();
  auto ddl = db->CreateAtomType("Late", {{"a", AttrType::kInt}});
  ASSERT_FALSE(ddl.ok());
  EXPECT_EQ(ddl.status(), original) << ddl.status().ToString();
  Status ckpt = db->Checkpoint();
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt, original) << ckpt.ToString();
  auto vac = db->VacuumBefore(5);
  ASSERT_FALSE(vac.ok());
  EXPECT_EQ(vac.status(), original) << vac.status().ToString();

  // Reads stay available and IsPoisoned stays sticky.
  EXPECT_EQ(Rows(db.get(), "SELECT Emp.name FROM DeptMol VALID AT 15"), 1u);
  EXPECT_TRUE(db->IsPoisoned());
}

/// Renders a materialized result for byte-exact comparison.
std::string Render(const ResultSet& rs) {
  std::string out;
  for (const std::string& c : rs.columns) out += c + "|";
  out += "\n";
  for (const auto& row : rs.rows) {
    for (const Value& v : row) out += v.ToString() + "|";
    out += "\n";
  }
  return out + rs.message;
}

TEST_P(FaultInjectionTest, DegradedReadOnlyModeServesReadsAndRecovers) {
  // A durability failure must degrade the database to read-only serving
  // — not kill it — and the degraded replica must answer a query mix
  // byte-identically to a healthy replica of the same history.
  FaultInjectingIoEnv victim_env;
  FaultInjectingIoEnv replica_env;
  auto victim = Populate(&victim_env);
  ASSERT_NE(victim, nullptr);
  auto replica_opened =
      Database::Open(dir_.path() + "/replica", Options(&replica_env));
  ASSERT_TRUE(replica_opened.ok()) << replica_opened.status().ToString();
  std::unique_ptr<Database> replica = std::move(replica_opened.value());
  ASSERT_TRUE(replica->ExecuteScript(kSetup).ok());

  ASSERT_EQ(victim->health_state(), HealthState::kHealthy);
  victim_env.FailSyncAt(victim_env.syncs() + 1);
  auto failed =
      victim->Execute("UPDATE ATOM Emp 2 SET salary=99 VALID FROM 20");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(victim->health_state(), HealthState::kReadOnly);
  EXPECT_STREQ(HealthStateName(victim->health_state()), "read-only");

  // Writes are refused with the preserved original cause.
  const Status cause = victim->health();
  ASSERT_FALSE(cause.ok());
  auto refused =
      victim->Execute("UPDATE ATOM Emp 2 SET salary=50 VALID FROM 21");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), cause) << refused.status().ToString();

  // Nine-query read mix: the degraded victim must match the healthy
  // replica byte for byte (the failed update was never acked, so both
  // instances hold the identical logical history).
  const char* const kBattery[] = {
      "SELECT ALL FROM DeptMol VALID AT 15",
      "SELECT Emp.name FROM DeptMol VALID AT 15",
      "SELECT ALL FROM DeptMol VALID IN [10, 30)",
      "SELECT Emp.salary FROM DeptMol HISTORY",
      "SELECT COUNT(*) FROM DeptMol VALID AT 15",
      "SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol GROUP BY ROOT "
      "VALID AT 15",
      "SELECT Emp.name FROM DeptMol WHERE Emp.salary > 5 VALID AT 15",
      "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 10 VALID AT 15",
      "SELECT ALL FROM DeptMol HISTORY",
  };
  for (const char* q : kBattery) {
    auto got = victim->Execute(q);
    auto want = replica->Execute(q);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    EXPECT_EQ(Render(got.value()), Render(want.value())) << q;
  }

  // Recovery probe while the environment is still failing: stays
  // read-only with the probe's failure reported.
  victim_env.FailSyncAt(victim_env.syncs() + 1);
  Status still_broken = victim->TryRecover();
  ASSERT_FALSE(still_broken.ok());
  EXPECT_EQ(victim->health_state(), HealthState::kReadOnly);

  // The injected fault was one-shot; the next probe succeeds and write
  // service resumes.
  Status recovered = victim->TryRecover();
  ASSERT_TRUE(recovered.ok()) << recovered.ToString() << " | health: "
                              << victim->health().ToString();
  EXPECT_EQ(victim->health_state(), HealthState::kHealthy);
  EXPECT_TRUE(victim->health().ok());
  EXPECT_TRUE(
      victim->Execute("UPDATE ATOM Emp 2 SET salary=60 VALID FROM 30").ok());
  EXPECT_EQ(Rows(victim.get(),
                 "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 60 "
                 "VALID AT 35"),
            1u);
}

TEST_P(FaultInjectionTest, ApplyFailureAfterLoggingEntersFailedMode) {
  // A read error *during apply*, after the record is durably in the WAL,
  // means the in-memory image no longer matches what recovery will
  // build: the instance must refuse all service (kFailed) and refuse
  // in-place recovery; a fresh open of the directory is the way back.
  FaultInjectingIoEnv env;
  {
    auto db = Populate(&env);
    ASSERT_NE(db, nullptr);
    // Clean close checkpoints, so the reopen below starts cold.
  }
  auto reopened = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<Database> db = std::move(reopened.value());

  // DELETE is log-then-apply with no preread: the WAL append sees only
  // writes/syncs, then the apply's first cold-cache heap read fails.
  env.FailReadAt(env.reads() + 1);
  auto failed = db->Execute("DELETE ATOM Emp 2 VALID FROM 20");
  ASSERT_FALSE(failed.ok());
  ASSERT_EQ(db->health_state(), HealthState::kFailed)
      << failed.status().ToString();
  EXPECT_STREQ(HealthStateName(db->health_state()), "failed");

  // kFailed refuses reads and writes with the preserved cause, and
  // refuses in-place recovery even though the environment works again.
  auto read = db->Execute("SELECT ALL FROM DeptMol VALID AT 15");
  EXPECT_FALSE(read.ok());
  auto write = db->Execute("UPDATE ATOM Emp 2 SET salary=1 VALID FROM 21");
  EXPECT_FALSE(write.ok());
  Status recover = db->TryRecover();
  ASSERT_FALSE(recover.ok());
  EXPECT_EQ(db->health_state(), HealthState::kFailed);
  db.reset();

  // A fresh open replays the durable WAL — including the delete whose
  // apply failed — and serves normally.
  auto fresh = Database::Open(db_dir(), Options(&env));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh.value()->health_state(), HealthState::kHealthy);
  EXPECT_TRUE(fresh.value()->VerifyIntegrity().ok());
  // The delete replayed: Emp 2 is gone at t=25.
  EXPECT_EQ(Rows(fresh.value().get(),
                 "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 10 "
                 "VALID AT 25"),
            0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultInjectionTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
