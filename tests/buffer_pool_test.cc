#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/temp_dir.h"

namespace tcob {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    auto file = disk_->OpenFile("data");
    ASSERT_TRUE(file.ok());
    file_ = file.value();
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  FileId file_;
};

TEST_F(BufferPoolTest, NewPageZeroedAndPinned) {
  BufferPool pool(disk_.get(), 8);
  auto page = pool.NewPage(file_);
  ASSERT_TRUE(page.ok());
  Page* p = page.value();
  EXPECT_EQ(p->pin_count, 1);
  for (uint32_t i = 0; i < kPageSize; ++i) ASSERT_EQ(p->data[i], 0);
  pool.Unpin(p, false);
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  BufferPool pool(disk_.get(), 8);
  Page* p = pool.NewPage(file_).value();
  PageNo pno = p->page_no;
  strcpy(p->data, "persisted");
  pool.Unpin(p, true);
  Page* again = pool.FetchPage(file_, pno).value();
  EXPECT_STREQ(again->data, "persisted");
  pool.Unpin(again, false);
  EXPECT_GE(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirty) {
  BufferPool pool(disk_.get(), 4);
  std::vector<PageNo> pages;
  for (int i = 0; i < 10; ++i) {
    Page* p = pool.NewPage(file_).value();
    snprintf(p->data, 32, "page-%d", i);
    pages.push_back(p->page_no);
    pool.Unpin(p, true);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // All pages readable (some from disk after eviction).
  for (int i = 0; i < 10; ++i) {
    Page* p = pool.FetchPage(file_, pages[i]).value();
    char expected[32];
    snprintf(expected, 32, "page-%d", i);
    EXPECT_STREQ(p->data, expected);
    pool.Unpin(p, false);
  }
}

TEST_F(BufferPoolTest, PinnedPagesNotEvicted) {
  BufferPool pool(disk_.get(), 2);
  Page* a = pool.NewPage(file_).value();
  Page* b = pool.NewPage(file_).value();
  // Both pinned; a third page cannot be framed.
  auto c = pool.NewPage(file_);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  pool.Unpin(a, false);
  pool.Unpin(b, false);
  auto d = pool.NewPage(file_);
  EXPECT_TRUE(d.ok());
  pool.Unpin(d.value(), false);
}

TEST_F(BufferPoolTest, FlushAllPersists) {
  {
    BufferPool pool(disk_.get(), 8);
    Page* p = pool.NewPage(file_).value();
    strcpy(p->data, "durable");
    pool.Unpin(p, true);
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Read through a brand-new pool (cold cache).
  BufferPool pool2(disk_.get(), 8);
  Page* p = pool2.FetchPage(file_, 0).value();
  EXPECT_STREQ(p->data, "durable");
  pool2.Unpin(p, false);
}

TEST_F(BufferPoolTest, StatsTrackHitsAndMisses) {
  BufferPool pool(disk_.get(), 8);
  Page* p = pool.NewPage(file_).value();
  PageNo pno = p->page_no;
  pool.Unpin(p, true);
  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    Page* q = pool.FetchPage(file_, pno).value();
    pool.Unpin(q, false);
  }
  EXPECT_EQ(pool.stats().fetches, 5u);
  EXPECT_EQ(pool.stats().hits, 5u);
  EXPECT_EQ(pool.stats().misses, 0u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRate(), 1.0);
}

TEST_F(BufferPoolTest, PageGuardUnpinsOnScopeExit) {
  BufferPool pool(disk_.get(), 8);
  Page* raw = pool.NewPage(file_).value();
  {
    PageGuard guard(&pool, raw);
    EXPECT_EQ(raw->pin_count, 1);
  }
  EXPECT_EQ(raw->pin_count, 0);
}

TEST_F(BufferPoolTest, PageGuardMoveTransfersPinAndDirty) {
  BufferPool pool(disk_.get(), 8);
  Page* raw = pool.NewPage(file_).value();
  PageGuard a(&pool, raw);
  a.MarkDirty();
  PageGuard b(std::move(a));
  // The moved-from guard is inert: no page, no pending dirty bit.
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_FALSE(a.dirty());
  EXPECT_EQ(b.get(), raw);
  EXPECT_TRUE(b.dirty());
  EXPECT_EQ(raw->pin_count, 1);
  b.Release();
  EXPECT_EQ(raw->pin_count, 0);
}

TEST_F(BufferPoolTest, PageGuardMoveAssignReleasesOldAndResetsSource) {
  BufferPool pool(disk_.get(), 8);
  Page* first = pool.NewPage(file_).value();
  Page* second = pool.NewPage(file_).value();
  PageGuard a(&pool, first);
  PageGuard b(&pool, second);
  b.MarkDirty();
  a = std::move(b);
  // `first` was released by the assignment; `second` moved into `a`.
  EXPECT_EQ(first->pin_count, 0);
  EXPECT_EQ(second->pin_count, 1);
  EXPECT_EQ(a.get(), second);
  EXPECT_TRUE(a.dirty());
  EXPECT_EQ(b.get(), nullptr);
  EXPECT_FALSE(b.dirty());
  // Reusing the moved-from guard must not resurrect the old dirty bit.
  Page* third = pool.NewPage(file_).value();
  b = PageGuard(&pool, third);
  EXPECT_FALSE(b.dirty());
}

TEST_F(BufferPoolTest, PageGuardDoubleReleaseIsIdempotent) {
  BufferPool pool(disk_.get(), 8);
  Page* raw = pool.NewPage(file_).value();
  PageGuard guard(&pool, raw);
  guard.MarkDirty();
  guard.Release();
  EXPECT_EQ(raw->pin_count, 0);
  EXPECT_FALSE(guard.dirty());
  guard.Release();  // second release: no-op, no double unpin
  EXPECT_EQ(raw->pin_count, 0);
}

TEST_F(BufferPoolTest, ReadPastEndFails) {
  BufferPool pool(disk_.get(), 8);
  auto r = pool.FetchPage(file_, 999);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST_F(BufferPoolTest, MultipleFilesShareOnePool) {
  FileId other = disk_->OpenFile("other").value();
  BufferPool pool(disk_.get(), 8);
  Page* a = pool.NewPage(file_).value();
  Page* b = pool.NewPage(other).value();
  // Same page number in different files must be distinct frames.
  EXPECT_EQ(a->page_no, b->page_no);
  strcpy(a->data, "file-a");
  strcpy(b->data, "file-b");
  pool.Unpin(a, true);
  pool.Unpin(b, true);
  Page* a2 = pool.FetchPage(file_, 0).value();
  Page* b2 = pool.FetchPage(other, 0).value();
  EXPECT_STREQ(a2->data, "file-a");
  EXPECT_STREQ(b2->data, "file-b");
  pool.Unpin(a2, false);
  pool.Unpin(b2, false);
}

}  // namespace
}  // namespace tcob
