// Cold-history tiering: logical invisibility and physical effect.
//
// Two databases — identical statement streams, one with tiering enabled
// and migrated, one without — must stay BYTE-IDENTICAL on every query
// surface (materialized Execute and streaming cursor), across all three
// storage strategies and parallelism {1, 4}, through reopen and through
// vacuum. On top of the identity, the physical claims: hot-tail queries
// prune every segment, long-range queries decode them, cold segments
// compress at least 2x against the live-store encoding of the same
// versions, and integrity holds throughout.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/temp_dir.h"
#include "db/database.h"

namespace tcob {
namespace {

/// History shape: every atom accumulates kRounds versions at t = 10,
/// 20, ..., so with now = kRounds*10 + 100 and cold_age = 150 roughly
/// the oldest 3/4 of each timeline is cold-eligible.
constexpr uint32_t kRounds = 64;
constexpr Timestamp kNow = kRounds * 10 + 100;

class TieringTest
    : public ::testing::TestWithParam<std::tuple<StorageStrategy, size_t>> {
 protected:
  void SetUp() override {
    DatabaseOptions plain;
    plain.strategy = std::get<0>(GetParam());
    plain.parallelism = std::get<1>(GetParam());
    DatabaseOptions tiered = plain;
    tiered.tiering.enabled = true;
    tiered.tiering.cold_age = 150;
    tiered.tiering.segment_target_bytes = 2048;  // several segments/type
    tiered_options_ = tiered;

    auto p = Database::Open(dir_.path() + "/plain", plain);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    plain_ = std::move(p).value();
    auto t = Database::Open(dir_.path() + "/tiered", tiered);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tiered_ = std::move(t).value();

    for (Database* db : {plain_.get(), tiered_.get()}) Populate(db);
  }

  /// Same DDL + DML on both databases: 2 depts x 3 emps, every atom
  /// updated each round, one emp deleted mid-history, links rewired.
  void Populate(Database* db) {
    auto run = [&](const std::string& mql) {
      auto r = db->Execute(mql);
      ASSERT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    };
    run("CREATE ATOM_TYPE Dept (name STRING, budget INT, head INT)");
    run("CREATE ATOM_TYPE Emp (name STRING, salary INT, grade INT, "
        "notes STRING)");
    run("CREATE LINK DeptEmp FROM Dept TO Emp");
    run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
    run("CREATE INDEX EmpSalary ON Emp (salary)");
    // Depts 1, 2; emps 3..8; dept d owns emps 3d, 3d+1, 3d+2 shifted.
    for (int d = 0; d < 2; ++d) {
      run("INSERT ATOM Dept (name='d" + std::to_string(d) +
          "', budget=100, head=" + std::to_string(3 + 3 * d) +
          ") VALID FROM 10");
    }
    for (int e = 0; e < 6; ++e) {
      run("INSERT ATOM Emp (name='e" + std::to_string(e) + "', salary=" +
          std::to_string(100 + e) + ", grade=" + std::to_string(1 + e % 3) +
          ", notes='hired in wave " + std::to_string(e % 2) +
          "') VALID FROM 10");
      run("CONNECT DeptEmp FROM " + std::to_string(1 + e / 3) + " TO " +
          std::to_string(3 + e) + " VALID FROM 10");
    }
    for (uint32_t round = 2; round <= kRounds; ++round) {
      Timestamp t = round * 10;
      for (int d = 0; d < 2; ++d) {
        run("UPDATE ATOM Dept " + std::to_string(1 + d) + " SET budget=" +
            std::to_string(100 + round * 10 + d) + " VALID FROM " +
            std::to_string(t));
      }
      for (int e = 0; e < 6; ++e) {
        if (e == 5 && round > kRounds / 2) continue;  // deleted below
        // Salary churns every round; grade moves rarely — the typical
        // mostly-stable record the delta bitmap exploits.
        std::string set = "salary=" + std::to_string(100 + round * 100 + e);
        if (round % 16 == 0) {
          set += ", grade=" + std::to_string(1 + (e + round / 16) % 5);
        }
        run("UPDATE ATOM Emp " + std::to_string(3 + e) + " SET " + set +
            " VALID FROM " + std::to_string(t));
      }
      if (round == kRounds / 2) {
        run("DISCONNECT DeptEmp FROM 2 TO 8 VALID FROM " +
            std::to_string(t + 1));
        run("DELETE ATOM Emp 8 VALID FROM " + std::to_string(t + 1));
      }
    }
    db->SetNow(kNow);
  }

  /// The query battery spanning every temporal mode and both cold and
  /// hot regions of the timelines.
  static std::vector<std::string> Battery() {
    return {
        "SELECT ALL FROM DeptMol VALID AT 15",    // deep cold
        "SELECT ALL FROM DeptMol VALID AT 205",   // mid cold
        "SELECT ALL FROM DeptMol VALID AT NOW",   // hot tail
        "SELECT Emp.name, Emp.salary FROM DeptMol VALID IN [100, 400)",
        "SELECT Dept.budget FROM DeptMol HISTORY",
        "SELECT ALL FROM DeptMol HISTORY",
        "SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol GROUP BY ROOT "
        "VALID AT 250",
        "SELECT Emp.name FROM DeptMol WHERE Emp.salary > 300 VALID AT 45",
        "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 104 VALID AT 15",
    };
  }

  /// Rows of one statement through the materialized path, rendered to
  /// strings (order preserved — identity must be exact, not set-wise).
  static std::vector<std::string> MaterializedRows(Database* db,
                                                   const std::string& q) {
    std::vector<std::string> out;
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    if (!r.ok()) return out;
    for (const auto& row : r.value().rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      out.push_back(std::move(line));
    }
    return out;
  }

  /// Same statement through the streaming cursor.
  static std::vector<std::string> CursorRows(Database* db,
                                             const std::string& q) {
    std::vector<std::string> out;
    auto opened = db->Query(q);
    EXPECT_TRUE(opened.ok()) << q << ": " << opened.status().ToString();
    if (!opened.ok()) return out;
    Cursor* cursor = opened.value().get();
    std::vector<std::vector<Value>> batch;
    for (;;) {
      auto pulled = cursor->NextBatch(7, &batch);
      EXPECT_TRUE(pulled.ok()) << q << ": " << pulled.status().ToString();
      if (!pulled.ok()) break;
      for (const auto& row : batch) {
        std::string line;
        for (const Value& v : row) line += v.ToString() + "|";
        out.push_back(std::move(line));
      }
      if (pulled.value() < 7) break;
    }
    cursor->Close();
    return out;
  }

  /// Asserts the full battery is identical between the two databases on
  /// both execution surfaces.
  void ExpectIdentical() {
    for (const std::string& q : Battery()) {
      EXPECT_EQ(MaterializedRows(plain_.get(), q),
                MaterializedRows(tiered_.get(), q))
          << "materialized divergence on: " << q;
      EXPECT_EQ(CursorRows(plain_.get(), q), CursorRows(tiered_.get(), q))
          << "cursor divergence on: " << q;
    }
  }

  Result<uint64_t> Migrate() { return tiered_->TierMigrate(); }

  TempDir dir_;
  DatabaseOptions tiered_options_;
  std::unique_ptr<Database> plain_;
  std::unique_ptr<Database> tiered_;
};

TEST_P(TieringTest, ByteIdenticalResultsAfterMigration) {
  ExpectIdentical();  // sanity before migration
  auto migrated = Migrate();
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_GT(migrated.value(), 0u);
  ExpectIdentical();
  // A second migration finds nothing new and changes nothing.
  auto again = Migrate();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value(), 0u);
  ExpectIdentical();
  Status verdict = tiered_->VerifyIntegrity();
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST_P(TieringTest, DumpIsIdenticalToUntiered) {
  ASSERT_TRUE(Migrate().ok());
  auto plain_dump = plain_->Dump();
  auto tiered_dump = tiered_->Dump();
  ASSERT_TRUE(plain_dump.ok()) << plain_dump.status().ToString();
  ASSERT_TRUE(tiered_dump.ok()) << tiered_dump.status().ToString();
  EXPECT_EQ(plain_dump.value(), tiered_dump.value());
}

TEST_P(TieringTest, SurvivesReopen) {
  ASSERT_TRUE(Migrate().ok());
  tiered_.reset();
  auto reopened = Database::Open(dir_.path() + "/tiered", tiered_options_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  tiered_ = std::move(reopened).value();
  tiered_->SetNow(kNow);
  ExpectIdentical();
  Status verdict = tiered_->VerifyIntegrity();
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST_P(TieringTest, DmlAfterMigrationStaysIdentical) {
  ASSERT_TRUE(Migrate().ok());
  // Retroactive and current DML against atoms whose history is cold.
  for (Database* db : {plain_.get(), tiered_.get()}) {
    auto run = [&](const std::string& mql) {
      auto r = db->Execute(mql);
      ASSERT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    };
    run("UPDATE ATOM Emp 3 SET salary=99999 VALID FROM " +
        std::to_string(kNow + 10));
    run("INSERT ATOM Emp (name='late', salary=1) VALID FROM " +
        std::to_string(kNow + 10));
    run("CONNECT DeptEmp FROM 1 TO 9 VALID FROM " +
        std::to_string(kNow + 10));
    db->SetNow(kNow + 20);
  }
  ExpectIdentical();
}

TEST_P(TieringTest, VacuumAfterTieringRemovesSameCount) {
  ASSERT_TRUE(Migrate().ok());
  auto plain_removed = plain_->VacuumBefore(200);
  auto tiered_removed = tiered_->VacuumBefore(200);
  ASSERT_TRUE(plain_removed.ok()) << plain_removed.status().ToString();
  ASSERT_TRUE(tiered_removed.ok()) << tiered_removed.status().ToString();
  EXPECT_EQ(plain_removed.value(), tiered_removed.value());
  ExpectIdentical();
  Status verdict = tiered_->VerifyIntegrity();
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST_P(TieringTest, HotTailPrunesAndLongRangeDecodes) {
  ASSERT_TRUE(Migrate().ok());
  // Hot-tail AS OF: no segment payload may be decoded. The snapshot and
  // integrated stores reach the cold tier and must fence-prune every
  // segment; the separated store answers from the current record
  // without consulting cold at all — zero contact is the stronger
  // outcome, so only the no-decode half applies there.
  ColdTierAccessStats before = tiered_->store()->cold_access_stats();
  for (const std::string& r :
       MaterializedRows(tiered_.get(), "SELECT ALL FROM DeptMol VALID AT "
                                       "NOW")) {
    (void)r;
  }
  ColdTierAccessStats hot = tiered_->store()->cold_access_stats();
  hot -= before;
  if (std::get<0>(GetParam()) != StorageStrategy::kSeparated) {
    EXPECT_GT(hot.segments_pruned, 0u);
  }
  EXPECT_EQ(hot.segments_scanned, 0u);
  EXPECT_EQ(hot.cold_versions, 0u);
  // Long-range history: cold segments must actually be decoded.
  before = tiered_->store()->cold_access_stats();
  for (const std::string& r :
       MaterializedRows(tiered_.get(), "SELECT ALL FROM DeptMol HISTORY")) {
    (void)r;
  }
  ColdTierAccessStats range = tiered_->store()->cold_access_stats();
  range -= before;
  EXPECT_GT(range.segments_scanned, 0u);
  EXPECT_GT(range.cold_versions, 0u);
}

TEST_P(TieringTest, ColdSegmentsCompressAtLeastTwoFold) {
  ASSERT_TRUE(Migrate().ok());
  ColdTierMigrationStats stats = tiered_->cold_tier()->migration_stats();
  ASSERT_GT(stats.versions_migrated, 0u);
  ASSERT_GT(stats.output_bytes, 0u);
  EXPECT_GE(stats.input_bytes, 2 * stats.output_bytes)
      << "input=" << stats.input_bytes << " output=" << stats.output_bytes;
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<StorageStrategy, size_t>>&
        info) {
  return std::string(StorageStrategyName(std::get<0>(info.param))) + "_p" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndParallelism, TieringTest,
    ::testing::Combine(::testing::Values(StorageStrategy::kSnapshot,
                                         StorageStrategy::kIntegrated,
                                         StorageStrategy::kSeparated),
                       ::testing::Values(size_t{1}, size_t{4})),
    ParamName);

}  // namespace
}  // namespace tcob
