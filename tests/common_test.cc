// Coverage for the common runtime layer: Status/Result, Random, hashing,
// logging, and TempDir.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/temp_dir.h"

namespace tcob {
namespace {

TEST(StatusTest, OkIsDefaultAndCheap) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::Corruption("d"), StatusCode::kCorruption, "Corruption"},
      {Status::IOError("e"), StatusCode::kIOError, "IOError"},
      {Status::NotSupported("f"), StatusCode::kNotSupported, "NotSupported"},
      {Status::OutOfRange("g"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::ParseError("j"), StatusCode::kParseError, "ParseError"},
      {Status::TypeError("k"), StatusCode::kTypeError, "TypeError"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
    EXPECT_STREQ(StatusCodeToString(c.code), c.name);
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    TCOB_RETURN_NOT_OK(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.ValueOr(-1), 42);

  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<std::string> {
    if (fail) return Status::IOError("nope");
    return std::string("data");
  };
  auto consume = [&](bool fail) -> Result<size_t> {
    TCOB_ASSIGN_OR_RETURN(std::string s, produce(fail));
    return s.size();
  };
  EXPECT_EQ(consume(false).value(), 4u);
  EXPECT_TRUE(consume(true).status().IsIOError());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(123), b(123), c(456);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(123), c2(456);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RandomTest, NextStringAlphabetAndLength) {
  Random rng(11);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(HashTest, StableAndSensitive) {
  EXPECT_EQ(Fnv1a64("abc", 3), Fnv1a64("abc", 3));
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abd", 3));
  EXPECT_NE(Fnv1a64("abc", 3), Fnv1a64("abc", 2));
  EXPECT_NE(Checksum32("payload", 7), Checksum32("paykoad", 7));
  // Distribution sanity: few collisions over many short keys.
  std::set<uint32_t> seen;
  for (int i = 0; i < 10000; ++i) {
    std::string key = "key-" + std::to_string(i);
    seen.insert(Checksum32(key.data(), key.size()));
  }
  EXPECT_GT(seen.size(), 9990u);
}

TEST(LoggingTest, LevelFilterRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Filtered-out message: must be a no-op (nothing observable to assert
  // beyond "does not crash").
  TCOB_LOG(kDebug) << "dropped " << 42;
  SetLogLevel(before);
}

TEST(TempDirTest, CreatesAndCleansUp) {
  std::string path;
  {
    TempDir dir;
    path = dir.path();
    ASSERT_FALSE(path.empty());
    struct stat st;
    ASSERT_EQ(stat(path.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    // Populate with nested content to exercise recursive removal.
    ASSERT_EQ(mkdir((path + "/sub").c_str(), 0755), 0);
    FILE* f = fopen((path + "/sub/file").c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("x", f);
    fclose(f);
  }
  struct stat st;
  EXPECT_NE(stat(path.c_str(), &st), 0);  // gone
}

TEST(TempDirTest, DistinctDirectories) {
  TempDir a, b;
  EXPECT_NE(a.path(), b.path());
}

}  // namespace
}  // namespace tcob
