// Logging hardening: pluggable sink, structured LogEntry, the
// ISO-8601 + thread-id line prefix, and level filtering.

#include <gtest/gtest.h>

#include <cctype>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace tcob {
namespace {

/// Installs a capturing sink for the lifetime of the test scope.
class SinkCapture {
 public:
  SinkCapture() {
    SetLogSink([this](const LogEntry& entry, const std::string& formatted) {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.push_back(entry);
      lines_.push_back(formatted);
    });
  }
  ~SinkCapture() { SetLogSink(nullptr); }

  std::vector<LogEntry> entries() {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<LogEntry> entries_;
  std::vector<std::string> lines_;
};

bool MatchesPrefixFormat(const std::string& line) {
  // [2026-08-07T12:34:56.789Z WARN t3 logging_test.cc:NN] msg\n
  if (line.empty() || line.front() != '[') return false;
  if (line.size() < 25 || line.back() != '\n') return false;
  // ISO-8601 UTC timestamp: YYYY-MM-DDTHH:MM:SS.mmmZ
  const std::string ts = line.substr(1, 24);
  for (size_t i = 0; i < ts.size(); ++i) {
    char c = ts[i];
    switch (i) {
      case 4:
      case 7:
        if (c != '-') return false;
        break;
      case 10:
        if (c != 'T') return false;
        break;
      case 13:
      case 16:
        if (c != ':') return false;
        break;
      case 19:
        if (c != '.') return false;
        break;
      case 23:
        if (c != 'Z') return false;
        break;
      default:
        if (!isdigit(static_cast<unsigned char>(c))) return false;
    }
  }
  // " LEVEL t<digits> file:line] "
  size_t tpos = line.find(" t", 26);
  if (tpos == std::string::npos) return false;
  if (!isdigit(static_cast<unsigned char>(line[tpos + 2]))) return false;
  size_t bracket = line.find("] ", tpos);
  if (bracket == std::string::npos) return false;
  size_t colon = line.rfind(':', bracket);
  return colon != std::string::npos && colon < bracket;
}

TEST(LoggingTest, SinkReceivesEntryAndFormattedLine) {
  SinkCapture capture;
  TCOB_LOG(kWarn) << "hello " << 42;
  auto entries = capture.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].level, LogLevel::kWarn);
  EXPECT_EQ(entries[0].message, "hello 42");
  EXPECT_NE(std::string(entries[0].file).find("logging_test"),
            std::string::npos);
  EXPECT_GT(entries[0].line, 0);

  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(MatchesPrefixFormat(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find(" WARN "), std::string::npos);
  EXPECT_NE(lines[0].find("logging_test.cc:"), std::string::npos);
  EXPECT_NE(lines[0].find("] hello 42\n"), std::string::npos);
}

TEST(LoggingTest, LevelFilterSuppressesBelowMinimum) {
  SinkCapture capture;
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  TCOB_LOG(kWarn) << "filtered";
  TCOB_LOG(kError) << "kept";
  SetLogLevel(saved);
  auto entries = capture.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].message, "kept");
  EXPECT_EQ(entries[0].level, LogLevel::kError);
}

TEST(LoggingTest, ConcurrentLoggingKeepsLinesIntact) {
  SinkCapture capture;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TCOB_LOG(kWarn) << "thread " << t << " line " << i;
      }
    });
  }
  for (auto& w : workers) w.join();
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) {
    EXPECT_TRUE(MatchesPrefixFormat(line)) << line;
    // One complete message per sink call — no interleaving.
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    EXPECT_NE(line.find("thread "), std::string::npos);
  }
}

TEST(LoggingTest, DistinctThreadsGetDistinctIds) {
  SinkCapture capture;
  std::thread a([] { TCOB_LOG(kWarn) << "a"; });
  a.join();
  std::thread b([] { TCOB_LOG(kWarn) << "b"; });
  b.join();
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  auto tid = [](const std::string& line) {
    size_t tpos = line.find(" t", 26);
    size_t end = line.find(' ', tpos + 1);
    return line.substr(tpos + 2, end - tpos - 2);
  };
  EXPECT_NE(tid(lines[0]), tid(lines[1]));
}

}  // namespace
}  // namespace tcob
