// Parallel read-path determinism: the same statements against the same
// data must render byte-identical ResultSets whether materialization
// runs serially (parallelism = 1) or fanned out across workers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/temp_dir.h"
#include "workload/company.h"

namespace tcob {
namespace {

/// Builds the company workload once per parallelism level (separate
/// directories, identical config) and renders each statement.
std::vector<std::string> RenderAll(const std::string& dir, size_t parallelism,
                                   const std::vector<std::string>& statements,
                                   StorageStrategy strategy) {
  DatabaseOptions options;
  options.strategy = strategy;
  options.parallelism = parallelism;
  auto db = Database::Open(dir, options).value();
  CompanyConfig config;
  config.depts = 6;
  config.emps_per_dept = 5;
  config.projs_per_emp = 2;
  config.versions_per_atom = 5;
  auto handles = BuildCompany(db.get(), config);
  EXPECT_TRUE(handles.ok()) << handles.status().ToString();
  // An index so the executor's index access path gets exercised too.
  EXPECT_TRUE(db->Execute("CREATE INDEX emp_salary ON Emp (salary)").ok());
  std::vector<std::string> renders;
  for (const std::string& mql : statements) {
    auto r = db->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    renders.push_back(r.ok() ? r.value().ToString() : "<error>");
  }
  return renders;
}

class ParallelQueryTest
    : public ::testing::TestWithParam<StorageStrategy> {};

TEST_P(ParallelQueryTest, SerialAndParallelResultsAreIdentical) {
  const std::vector<std::string> statements = {
      // Time-slice over every molecule (sequential-scan access path).
      "SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT NOW",
      "SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT 25",
      // Index access path (version-grained secondary index on salary).
      "SELECT Emp.name, Emp.salary FROM DeptMol WHERE Emp.salary >= 0 "
      "ORDER BY ROOT VALID AT NOW",
      // Windowed history slice.
      "SELECT ALL FROM DeptMol ORDER BY ROOT VALID IN [10, 40)",
      // Full history of every molecule.
      "SELECT ALL FROM DeptMol ORDER BY ROOT HISTORY",
      // Aggregates fold over the parallel-materialized rows.
      "SELECT COUNT(*), SUM(Emp.salary), AVG(Emp.salary) FROM DeptMol "
      "VALID AT NOW",
      "SELECT COUNT(*), MAX(Emp.salary) FROM DeptMol VALID IN [10, 60)",
  };
  TempDir dir;
  std::vector<std::string> serial =
      RenderAll(dir.path() + "/serial", 1, statements, GetParam());
  std::vector<std::string> parallel =
      RenderAll(dir.path() + "/parallel", 8, statements, GetParam());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i])
        << "statement " << i << " (" << statements[i]
        << ") diverged between parallelism=1 and parallelism=8";
  }
  // Sanity: results are non-trivial, not identical-because-empty.
  for (const std::string& render : serial) {
    EXPECT_FALSE(render.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ParallelQueryTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return std::string(
                               StorageStrategyName(info.param));
                         });

}  // namespace
}  // namespace tcob
