#include "index/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/coding.h"
#include "common/random.h"
#include "common/temp_dir.h"

namespace tcob {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 256);
    auto tree = BTree::Open(pool_.get(), "tree");
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
  }

  static std::string Key(uint64_t v) {
    std::string k;
    PutComparableU64(&k, v);
    return k;
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, PutGetSingle) {
  ASSERT_TRUE(tree_->Put("alpha", 1).ok());
  EXPECT_EQ(tree_->Get("alpha").value(), 1u);
  EXPECT_TRUE(tree_->Get("beta").status().IsNotFound());
  EXPECT_EQ(tree_->Size(), 1u);
}

TEST_F(BTreeTest, PutOverwrites) {
  ASSERT_TRUE(tree_->Put("k", 1).ok());
  ASSERT_TRUE(tree_->Put("k", 2).ok());
  EXPECT_EQ(tree_->Get("k").value(), 2u);
  EXPECT_EQ(tree_->Size(), 1u);
}

TEST_F(BTreeTest, DeleteRemoves) {
  ASSERT_TRUE(tree_->Put("k", 1).ok());
  ASSERT_TRUE(tree_->Delete("k").ok());
  EXPECT_TRUE(tree_->Get("k").status().IsNotFound());
  EXPECT_TRUE(tree_->Delete("k").IsNotFound());
  EXPECT_EQ(tree_->Size(), 0u);
}

TEST_F(BTreeTest, ManyEntriesForceSplits) {
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i * 7919 % 100003), i).ok());
  }
  EXPECT_GT(tree_->Height().value(), 1u);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(tree_->Get(Key(i * 7919 % 100003)).value(),
              static_cast<uint64_t>(i));
  }
}

TEST_F(BTreeTest, ScanRangeInOrder) {
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i * 2), i).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree_
                  ->Scan(Key(100), Key(200),
                         [&](const Slice& key, uint64_t v) -> Result<bool> {
                           seen.push_back(DecodeComparableU64(key.data()));
                           (void)v;
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 50u);  // even keys in [100, 200)
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 198u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST_F(BTreeTest, ScanUnboundedUpper) {
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree_->Put(Key(i), i).ok());
  size_t count = 0;
  ASSERT_TRUE(tree_
                  ->Scan(Key(90), Slice(),
                         [&](const Slice&, uint64_t) -> Result<bool> {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 10u);
}

TEST_F(BTreeTest, ScanPrefix) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_->Put("aa" + std::to_string(i), i).ok());
    ASSERT_TRUE(tree_->Put("ab" + std::to_string(i), i).ok());
  }
  size_t count = 0;
  ASSERT_TRUE(tree_
                  ->ScanPrefix("aa",
                               [&](const Slice& key, uint64_t) -> Result<bool> {
                                 EXPECT_TRUE(key.starts_with(Slice("aa")));
                                 ++count;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(count, 10u);
}

TEST_F(BTreeTest, FloorSemantics) {
  for (uint64_t i = 10; i <= 100; i += 10) {
    ASSERT_TRUE(tree_->Put(Key(i), i).ok());
  }
  EXPECT_EQ(tree_->Floor(Key(55)).value().second, 50u);
  EXPECT_EQ(tree_->Floor(Key(50)).value().second, 50u);  // exact hit
  EXPECT_EQ(tree_->Floor(Key(1000)).value().second, 100u);
  EXPECT_TRUE(tree_->Floor(Key(5)).status().IsNotFound());
}

TEST_F(BTreeTest, FloorAcrossLeafBoundaries) {
  // Enough entries to create many leaves; probe floors exhaustively.
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i * 3), i).ok());
  }
  for (uint64_t probe = 0; probe < 6000; probe += 7) {
    auto floor = tree_->Floor(Key(probe));
    ASSERT_TRUE(floor.ok());
    uint64_t key = DecodeComparableU64(floor.value().first.data());
    EXPECT_EQ(key, probe - probe % 3);
  }
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(tree_->Put(Key(i), i).ok());
  ASSERT_TRUE(pool_->FlushAll().ok());
  tree_.reset();
  pool_ = std::make_unique<BufferPool>(disk_.get(), 256);
  tree_ = BTree::Open(pool_.get(), "tree").value();
  EXPECT_EQ(tree_->Size(), 2000u);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(tree_->Get(Key(i)).value(), i);
  }
}

TEST_F(BTreeTest, VariableLengthKeys) {
  Random rng(55);
  std::map<std::string, uint64_t> reference;
  for (int i = 0; i < 2000; ++i) {
    std::string key = rng.NextString(1 + rng.Uniform(60));
    reference[key] = rng.Next();
    ASSERT_TRUE(tree_->Put(key, reference[key]).ok());
  }
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(tree_->Get(key).value(), value);
  }
  // Full scan returns everything in lexicographic order.
  std::vector<std::string> keys;
  ASSERT_TRUE(tree_
                  ->Scan(Slice(""), Slice(),
                         [&](const Slice& key, uint64_t) -> Result<bool> {
                           keys.push_back(key.ToString());
                           return true;
                         })
                  .ok());
  ASSERT_EQ(keys.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < keys.size(); ++i, ++it) {
    EXPECT_EQ(keys[i], it->first);
  }
}

TEST_F(BTreeTest, RandomizedAgainstReference) {
  Random rng(777);
  std::map<std::string, uint64_t> reference;
  for (int step = 0; step < 8000; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 7 || reference.empty()) {
      std::string key = Key(rng.Uniform(3000));
      uint64_t value = rng.Next();
      ASSERT_TRUE(tree_->Put(key, value).ok());
      reference[key] = value;
    } else {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(tree_->Delete(it->first).ok());
      reference.erase(it);
    }
  }
  ASSERT_EQ(tree_->Size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_EQ(tree_->Get(key).value(), value);
  }
  // Probe deleted keys.
  for (uint64_t i = 0; i < 3000; i += 13) {
    std::string key = Key(i);
    if (reference.count(key) == 0) {
      ASSERT_TRUE(tree_->Get(key).status().IsNotFound());
    }
  }
}

}  // namespace
}  // namespace tcob
