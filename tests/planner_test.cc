#include "query/planner.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace tcob {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dept_ = catalog_.CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt},
                                             {"score", AttrType::kDouble}})
                .value();
    emp_ = catalog_.CreateAtomType("Emp", {{"name", AttrType::kString},
                                           {"salary", AttrType::kInt}})
               .value();
    link_ = catalog_.CreateLinkType("DeptEmp", dept_, emp_).value();
    mol_ = catalog_.CreateMoleculeType("DeptMol", dept_, {{link_, true}})
               .value();
    budget_idx_ =
        catalog_.CreateAttrIndex("idx_budget", dept_, "budget").value();
  }

  RootAccessPath Plan(const std::string& query) {
    Statement stmt = Parser::Parse(query).value();
    const SelectStmt& select = std::get<SelectStmt>(stmt);
    return PlanRootAccess(select, catalog_,
                          *catalog_.GetMoleculeType(mol_).value());
  }

  Catalog catalog_;
  TypeId dept_, emp_;
  LinkTypeId link_;
  MoleculeTypeId mol_;
  IndexId budget_idx_;
};

TEST_F(PlannerTest, EqualityUsesIndex) {
  RootAccessPath path =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget = 5 VALID AT 3");
  ASSERT_TRUE(path.use_index);
  EXPECT_EQ(path.index, budget_idx_);
  ASSERT_TRUE(path.range.lower.has_value());
  ASSERT_TRUE(path.range.upper.has_value());
  EXPECT_TRUE(path.range.lower_inclusive);
  EXPECT_TRUE(path.range.upper_inclusive);
  EXPECT_EQ(path.range.lower->AsInt(), 5);
}

TEST_F(PlannerTest, RangeOperators) {
  RootAccessPath lt =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget < 5 VALID AT 3");
  ASSERT_TRUE(lt.use_index);
  EXPECT_FALSE(lt.range.lower.has_value());
  EXPECT_FALSE(lt.range.upper_inclusive);

  RootAccessPath ge =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget >= 5 VALID AT 3");
  ASSERT_TRUE(ge.use_index);
  EXPECT_TRUE(ge.range.lower_inclusive);
  EXPECT_FALSE(ge.range.upper.has_value());
}

TEST_F(PlannerTest, MirroredLiteralOnTheLeft) {
  // "5 < Dept.budget" is "Dept.budget > 5".
  RootAccessPath path =
      Plan("SELECT ALL FROM DeptMol WHERE 5 < Dept.budget VALID AT 3");
  ASSERT_TRUE(path.use_index);
  ASSERT_TRUE(path.range.lower.has_value());
  EXPECT_FALSE(path.range.lower_inclusive);
  EXPECT_EQ(path.range.lower->AsInt(), 5);
}

TEST_F(PlannerTest, ConjunctExtractedFromAndTree) {
  RootAccessPath path = Plan(
      "SELECT ALL FROM DeptMol WHERE Emp.salary > 1 AND "
      "(Dept.budget = 7 AND Dept.name != 'x') VALID AT 3");
  ASSERT_TRUE(path.use_index);
  EXPECT_EQ(path.range.lower->AsInt(), 7);
}

TEST_F(PlannerTest, ConjunctRangesIntersect) {
  RootAccessPath path = Plan(
      "SELECT ALL FROM DeptMol WHERE Dept.budget >= 500 AND "
      "Dept.budget < 550 VALID AT 3");
  ASSERT_TRUE(path.use_index);
  ASSERT_TRUE(path.range.lower.has_value());
  ASSERT_TRUE(path.range.upper.has_value());
  EXPECT_EQ(path.range.lower->AsInt(), 500);
  EXPECT_TRUE(path.range.lower_inclusive);
  EXPECT_EQ(path.range.upper->AsInt(), 550);
  EXPECT_FALSE(path.range.upper_inclusive);
  // Redundant bounds keep the tightest one.
  RootAccessPath tight = Plan(
      "SELECT ALL FROM DeptMol WHERE Dept.budget > 1 AND Dept.budget > 10 "
      "AND Dept.budget <= 10 VALID AT 3");
  ASSERT_TRUE(tight.use_index);
  EXPECT_EQ(tight.range.lower->AsInt(), 10);
  EXPECT_FALSE(tight.range.lower_inclusive);
  EXPECT_EQ(tight.range.upper->AsInt(), 10);
  EXPECT_TRUE(tight.range.upper_inclusive);
}

TEST_F(PlannerTest, DisjunctionCannotUseIndex) {
  RootAccessPath path = Plan(
      "SELECT ALL FROM DeptMol WHERE Dept.budget = 7 OR Dept.name = 'x' "
      "VALID AT 3");
  EXPECT_FALSE(path.use_index);
  EXPECT_NE(path.description.find("full scan"), std::string::npos);
}

TEST_F(PlannerTest, NonRootAndUnindexedAttrsScan) {
  EXPECT_FALSE(
      Plan("SELECT ALL FROM DeptMol WHERE Emp.salary = 1 VALID AT 3")
          .use_index);
  EXPECT_FALSE(
      Plan("SELECT ALL FROM DeptMol WHERE Dept.name = 'a' VALID AT 3")
          .use_index);
}

TEST_F(PlannerTest, WindowAndHistoryModesScan) {
  EXPECT_FALSE(
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget = 5 VALID IN [1, 9)")
          .use_index);
  EXPECT_FALSE(Plan("SELECT ALL FROM DeptMol WHERE Dept.budget = 5 HISTORY")
                   .use_index);
}

TEST_F(PlannerTest, IntLiteralCoercedToDoubleAttr) {
  catalog_.CreateAttrIndex("idx_score", dept_, "score").value();
  RootAccessPath path =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.score > 3 VALID AT 3");
  ASSERT_TRUE(path.use_index);
  EXPECT_EQ(path.range.lower->type(), AttrType::kDouble);
  EXPECT_DOUBLE_EQ(path.range.lower->AsDouble(), 3.0);
}

TEST_F(PlannerTest, IncompatibleLiteralFallsBack) {
  // A string literal against the INT index is unusable.
  RootAccessPath path =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget = 'x' VALID AT 3");
  EXPECT_FALSE(path.use_index);
}

TEST_F(PlannerTest, NoWhereClauseScans) {
  RootAccessPath path = Plan("SELECT ALL FROM DeptMol VALID AT 3");
  EXPECT_FALSE(path.use_index);
}

TEST_F(PlannerTest, DescriptionNamesIndexAndRange) {
  RootAccessPath path =
      Plan("SELECT ALL FROM DeptMol WHERE Dept.budget <= 9 VALID AT 3");
  EXPECT_NE(path.description.find("idx_budget"), std::string::npos);
  EXPECT_NE(path.description.find("Dept.budget"), std::string::npos);
  EXPECT_NE(path.description.find("9"), std::string::npos);
}

}  // namespace
}  // namespace tcob
