// Crash-recovery torture test.
//
// A "crash" is simulated by abandoning a Database instance without
// letting its destructor flush the buffer pool: whatever mix of pages
// happened to be written (evictions, checkpoints) is what recovery finds
// on disk, plus the WAL. A control database executing the same workload
// with a clean shutdown defines the expected answers.

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "query/parser.h"
#include "storage/fault_env.h"

namespace tcob {
namespace {

constexpr char kSchema[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
)";

class CrashRecoveryTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.strategy = GetParam();
    options.buffer_pool_pages = 32;  // tiny pool: constant dirty evictions
    return options;
  }

  static void Run(Database* db, const std::string& mql) {
    auto r = db->Execute(mql);
    ASSERT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
  }

  /// Applies a deterministic workload of `steps` DML statements.
  static void ApplyWorkload(Database* db, int steps) {
    auto stmts = Parser::ParseScript(kSchema);
    ASSERT_TRUE(stmts.ok());
    for (const Statement& stmt : stmts.value()) {
      ASSERT_TRUE(db->ExecuteStatement(stmt).ok());
    }
    Random rng(99);
    std::vector<AtomId> emps;
    auto dept =
        db->Execute("INSERT ATOM Dept (name='d', budget=1) VALID FROM 10")
            .value()
            .inserted_id;
    Timestamp clock = 10;
    for (int i = 0; i < 6; ++i) {
      auto emp = db->Execute("INSERT ATOM Emp (name='e" + std::to_string(i) +
                             "', salary=100) VALID FROM 10")
                     .value()
                     .inserted_id;
      emps.push_back(emp);
      Run(db, "CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
                  std::to_string(emp) + " VALID FROM 10");
    }
    for (int step = 0; step < steps; ++step) {
      clock += 1 + rng.Uniform(2);
      AtomId emp = emps[rng.Uniform(emps.size())];
      Run(db, "UPDATE ATOM Emp " + std::to_string(emp) + " SET salary=" +
                  std::to_string(step) + " VALID FROM " +
                  std::to_string(clock));
      if (step == steps / 2) {
        // A mid-workload checkpoint: recovery must handle a WAL that only
        // covers the tail.
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
  }

  static std::multiset<std::string> Snapshot(Database* db) {
    std::multiset<std::string> out;
    for (const char* q : {"SELECT ALL FROM DeptMol VALID AT NOW",
                          "SELECT Emp.name, Emp.salary FROM DeptMol HISTORY",
                          "SELECT ALL FROM DeptMol VALID AT 10"}) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      if (!r.ok()) continue;
      for (const auto& row : r.value().rows) {
        std::string line = std::string(q) + "::";
        for (const Value& v : row) line += v.ToString() + "|";
        out.insert(std::move(line));
      }
    }
    return out;
  }

  TempDir dir_;
};

TEST_P(CrashRecoveryTest, CrashAfterWorkloadRecoversExactly) {
  // Control: same workload, clean shutdown.
  {
    auto control = Database::Open(dir_.path() + "/control", Options()).value();
    ApplyWorkload(control.get(), 120);
  }
  auto control =
      Database::Open(dir_.path() + "/control", Options()).value();
  std::multiset<std::string> expected = Snapshot(control.get());
  ASSERT_FALSE(expected.empty());

  // Crash victim: identical workload, then the instance is abandoned
  // without flushing (deliberate leak — the OS owns the fds until exit).
  {
    auto victim = Database::Open(dir_.path() + "/crash", Options());
    ASSERT_TRUE(victim.ok());
    Database* leaked = victim.value().release();
    ApplyWorkload(leaked, 120);
    // No destructor, no flush: the on-disk state is whatever evictions
    // and the mid-workload checkpoint left behind, plus the full WAL.
  }
  auto recovered = Database::Open(dir_.path() + "/crash", Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Snapshot(recovered.value().get()), expected);

  // The recovered database accepts new work.
  auto fresh = recovered.value()->Execute(
      "INSERT ATOM Emp (name='post-crash', salary=1)");
  EXPECT_TRUE(fresh.ok()) << fresh.status().ToString();
}

TEST_P(CrashRecoveryTest, CrashImmediatelyAfterOpenIsHarmless) {
  {
    auto victim = Database::Open(dir_.path() + "/crash", Options());
    ASSERT_TRUE(victim.ok());
    (void)victim.value().release();  // leak: crash before any DML
  }
  auto recovered = Database::Open(dir_.path() + "/crash", Options());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value()->catalog().AtomTypes().empty());
}

TEST_P(CrashRecoveryTest, RepeatedCrashesConverge) {
  // Crash, recover, crash again mid-extension, recover again.
  {
    auto v1 = Database::Open(dir_.path() + "/db", Options());
    ASSERT_TRUE(v1.ok());
    Database* leaked = v1.value().release();
    ApplyWorkload(leaked, 40);
  }
  AtomId extra = kInvalidAtomId;
  {
    auto v2 = Database::Open(dir_.path() + "/db", Options());
    ASSERT_TRUE(v2.ok());
    Database* leaked = v2.value().release();
    auto r = leaked->Execute("INSERT ATOM Dept (name='late', budget=7)");
    ASSERT_TRUE(r.ok());
    extra = r.value().inserted_id;
  }
  auto final_db = Database::Open(dir_.path() + "/db", Options());
  ASSERT_TRUE(final_db.ok());
  auto r = final_db.value()->Execute(
      "SELECT Dept.name FROM DeptMol WHERE Dept.budget = 7 VALID AT NOW");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().RowCount(), 1u);
  EXPECT_EQ(r.value().rows[0][1].AsString(), "late");
  EXPECT_NE(extra, kInvalidAtomId);
}

TEST_P(CrashRecoveryTest, RecrashImmediatelyAfterRecoveryIsIdempotent) {
  // Control: same workload, clean shutdown.
  {
    auto control = Database::Open(dir_.path() + "/control", Options()).value();
    ApplyWorkload(control.get(), 80);
  }
  auto control = Database::Open(dir_.path() + "/control", Options()).value();
  std::multiset<std::string> expected = Snapshot(control.get());
  ASSERT_FALSE(expected.empty());

  {
    auto v1 = Database::Open(dir_.path() + "/crash", Options());
    ASSERT_TRUE(v1.ok());
    ApplyWorkload(v1.value().release(), 80);
  }
  // First recovery replays the WAL tail... and then crashes again before
  // checkpointing anything. The watermark must not have advanced, so the
  // second recovery sees the exact same work.
  uint64_t first_replayed = 0;
  {
    auto v2 = Database::Open(dir_.path() + "/crash", Options());
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();
    first_replayed = v2.value()->recovery_stats().replayed_ops;
    (void)v2.value().release();
  }
  ASSERT_GT(first_replayed, 0u);
  auto v3 = Database::Open(dir_.path() + "/crash", Options());
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(v3.value()->recovery_stats().replayed_ops, first_replayed);
  EXPECT_TRUE(v3.value()->VerifyIntegrity().ok());
  EXPECT_EQ(Snapshot(v3.value().get()), expected);
}

TEST_P(CrashRecoveryTest, PowerCutDuringCheckpointNeverLosesAckedOps) {
  // Every statement below is acknowledged under sync_wal, so no matter
  // where inside Checkpoint the power fails, recovery must reproduce all
  // of them: either the old image plus a full WAL replay (cut before the
  // journal commit) or the new image (cut on or after it).
  struct LogSilencer {
    LogLevel saved = GetLogLevel();
    LogSilencer() { SetLogLevel(LogLevel::kSilent); }
    ~LogSilencer() { SetLogLevel(saved); }
  } silence;

  const std::string path = dir_.path() + "/db";
  auto options = [this](FaultInjectingIoEnv* env) {
    DatabaseOptions o = Options();
    o.env = env;
    o.sync_wal = true;
    o.parallelism = 1;
    return o;
  };

  // Dry run: the expected final state and the checkpoint's event span.
  uint64_t events_before = 0;
  uint64_t span = 0;
  std::multiset<std::string> expected;
  {
    FaultInjectingIoEnv env;
    auto db = Database::Open(path, options(&env)).value();
    ApplyWorkload(db.get(), 16);
    events_before = env.events();
    ASSERT_TRUE(db->Checkpoint().ok());
    span = env.events() - events_before;
    expected = Snapshot(db.get());
  }
  ASSERT_GT(span, 5u);
  ASSERT_FALSE(expected.empty());

  bool saw_journal_apply = false;
  for (uint64_t k = 1; k <= span; ++k) {
    SCOPED_TRACE("power cut at checkpoint event +" + std::to_string(k));
    FaultInjectingIoEnv env;
    auto victim = Database::Open(path, options(&env));
    ASSERT_TRUE(victim.ok());
    Database* leaked = victim.value().release();
    ApplyWorkload(leaked, 16);
    ASSERT_EQ(env.events(), events_before) << "workload is nondeterministic";
    env.PowerCutAfterEvents(events_before + k, CutMode::kDropUnsynced);
    (void)leaked->Checkpoint();  // fails at the cut, or completes right on it
    ASSERT_TRUE(env.cut_fired());
    env.Revive();

    auto recovered = Database::Open(path, options(&env));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    saw_journal_apply |=
        recovered.value()->recovery_stats().journal_pages_applied > 0;
    EXPECT_TRUE(recovered.value()->VerifyIntegrity().ok());
    EXPECT_EQ(Snapshot(recovered.value().get()), expected);
  }
  // A cut between the journal's commit record and the in-place apply
  // leaves a committed journal behind; some reopen above must have
  // finished that checkpoint from it.
  EXPECT_TRUE(saw_journal_apply);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CrashRecoveryTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
