#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace tcob {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RunAllBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.RunAll(std::move(tasks));
  // If RunAll returned early, some increments would still be pending.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&count] { count.fetch_add(1); });
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, TasksSpreadAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.RunAll(std::move(tasks));
  // With 64 sleeping tasks on 4 workers, more than one worker must have
  // participated (exact count is scheduling-dependent).
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPoolTest, ConsecutiveBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&count] { count.fetch_add(1); });
    }
    pool.RunAll(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});  // must not hang
}

}  // namespace
}  // namespace tcob
