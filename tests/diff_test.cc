#include "mad/diff.h"

#include <gtest/gtest.h>

namespace tcob {
namespace {

AtomVersion MakeVersion(AtomId id, uint32_t vno) {
  AtomVersion v;
  v.id = id;
  v.type = 1;
  v.version_no = vno;
  v.valid = Interval(0, kForever);
  v.attrs = {Value::Int(static_cast<int64_t>(vno))};
  return v;
}

Molecule MakeMolecule(std::vector<std::pair<AtomId, uint32_t>> atoms,
                      std::vector<MoleculeEdgeInstance> edges) {
  Molecule m;
  m.root = atoms.empty() ? 0 : atoms[0].first;
  for (const auto& [id, vno] : atoms) m.atoms[id] = MakeVersion(id, vno);
  std::sort(edges.begin(), edges.end());
  m.edges = std::move(edges);
  return m;
}

TEST(DiffTest, IdenticalMoleculesAreEmpty) {
  Molecule a = MakeMolecule({{1, 1}, {2, 1}}, {{5, 1, 2}});
  Molecule b = MakeMolecule({{1, 1}, {2, 1}}, {{5, 1, 2}});
  MoleculeDiff diff = DiffMolecules(a, b);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.Summary(), "no changes");
}

TEST(DiffTest, AddedAndRemovedAtoms) {
  Molecule a = MakeMolecule({{1, 1}, {2, 1}, {3, 1}}, {});
  Molecule b = MakeMolecule({{1, 1}, {3, 1}, {4, 1}}, {});
  MoleculeDiff diff = DiffMolecules(a, b);
  ASSERT_EQ(diff.added_atoms.size(), 1u);
  EXPECT_EQ(diff.added_atoms[0], 4u);
  ASSERT_EQ(diff.removed_atoms.size(), 1u);
  EXPECT_EQ(diff.removed_atoms[0], 2u);
  EXPECT_TRUE(diff.changed_atoms.empty());
}

TEST(DiffTest, ChangedVersions) {
  Molecule a = MakeMolecule({{1, 1}, {2, 3}}, {});
  Molecule b = MakeMolecule({{1, 1}, {2, 5}}, {});
  MoleculeDiff diff = DiffMolecules(a, b);
  ASSERT_EQ(diff.changed_atoms.size(), 1u);
  EXPECT_EQ(diff.changed_atoms[0].id, 2u);
  EXPECT_EQ(diff.changed_atoms[0].old_version, 3u);
  EXPECT_EQ(diff.changed_atoms[0].new_version, 5u);
}

TEST(DiffTest, EdgeChanges) {
  Molecule a = MakeMolecule({{1, 1}, {2, 1}, {3, 1}},
                            {{7, 1, 2}, {7, 1, 3}});
  Molecule b = MakeMolecule({{1, 1}, {2, 1}, {3, 1}},
                            {{7, 1, 2}, {8, 2, 3}});
  MoleculeDiff diff = DiffMolecules(a, b);
  ASSERT_EQ(diff.removed_edges.size(), 1u);
  EXPECT_EQ(diff.removed_edges[0], (MoleculeEdgeInstance{7, 1, 3}));
  ASSERT_EQ(diff.added_edges.size(), 1u);
  EXPECT_EQ(diff.added_edges[0], (MoleculeEdgeInstance{8, 2, 3}));
}

TEST(DiffTest, SummaryMentionsEveryCategory) {
  Molecule a = MakeMolecule({{1, 1}, {2, 1}}, {{7, 1, 2}});
  Molecule b = MakeMolecule({{1, 2}, {3, 1}}, {{7, 1, 3}});
  MoleculeDiff diff = DiffMolecules(a, b);
  std::string summary = diff.Summary();
  EXPECT_NE(summary.find("added"), std::string::npos);
  EXPECT_NE(summary.find("removed"), std::string::npos);
  EXPECT_NE(summary.find("changed"), std::string::npos);
}

TEST(DiffTest, EmptyVsNonEmpty) {
  Molecule empty;
  Molecule b = MakeMolecule({{1, 1}, {2, 1}}, {{7, 1, 2}});
  MoleculeDiff diff = DiffMolecules(empty, b);
  EXPECT_EQ(diff.added_atoms.size(), 2u);
  EXPECT_EQ(diff.added_edges.size(), 1u);
  MoleculeDiff reverse = DiffMolecules(b, empty);
  EXPECT_EQ(reverse.removed_atoms.size(), 2u);
  EXPECT_EQ(reverse.removed_edges.size(), 1u);
}

}  // namespace
}  // namespace tcob
