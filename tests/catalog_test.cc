#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace tcob {
namespace {

std::vector<AttributeDef> EmpAttrs() {
  return {{"name", AttrType::kString}, {"salary", AttrType::kInt}};
}

TEST(CatalogTest, CreateAtomType) {
  Catalog cat;
  auto id = cat.CreateAtomType("Emp", EmpAttrs());
  ASSERT_TRUE(id.ok());
  const AtomTypeDef* def = cat.GetAtomType(id.value()).value();
  EXPECT_EQ(def->name, "Emp");
  EXPECT_EQ(def->attributes.size(), 2u);
  EXPECT_EQ(def->AttrIndex("salary"), 1);
  EXPECT_EQ(def->AttrIndex("nope"), -1);
  EXPECT_EQ(cat.GetAtomTypeByName("Emp").value()->id, id.value());
}

TEST(CatalogTest, AtomTypeValidation) {
  Catalog cat;
  EXPECT_TRUE(cat.CreateAtomType("", EmpAttrs()).status().IsInvalidArgument());
  EXPECT_TRUE(cat.CreateAtomType("X", {}).status().IsInvalidArgument());
  EXPECT_TRUE(cat.CreateAtomType("X", {{"a", AttrType::kInt},
                                       {"a", AttrType::kInt}})
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(cat.CreateAtomType("Emp", EmpAttrs()).ok());
  EXPECT_TRUE(cat.CreateAtomType("Emp", EmpAttrs()).status().IsAlreadyExists());
}

TEST(CatalogTest, CreateLinkTypeValidatesEndpoints) {
  Catalog cat;
  TypeId dept = cat.CreateAtomType("Dept", EmpAttrs()).value();
  TypeId emp = cat.CreateAtomType("Emp", EmpAttrs()).value();
  EXPECT_TRUE(cat.CreateLinkType("L", dept, 999).status().IsNotFound());
  auto link = cat.CreateLinkType("DeptEmp", dept, emp);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(cat.GetLinkType(link.value()).value()->from_type, dept);
  EXPECT_TRUE(
      cat.CreateLinkType("DeptEmp", dept, emp).status().IsAlreadyExists());
  EXPECT_EQ(cat.LinksOf(dept).size(), 1u);
  EXPECT_EQ(cat.LinksOf(emp).size(), 1u);
}

TEST(CatalogTest, MoleculeTypeConnectivityEnforced) {
  Catalog cat;
  TypeId dept = cat.CreateAtomType("Dept", EmpAttrs()).value();
  TypeId emp = cat.CreateAtomType("Emp", EmpAttrs()).value();
  TypeId proj = cat.CreateAtomType("Proj", EmpAttrs()).value();
  LinkTypeId de = cat.CreateLinkType("DeptEmp", dept, emp).value();
  LinkTypeId ep = cat.CreateLinkType("EmpProj", emp, proj).value();

  // Connected: Dept -> Emp -> Proj.
  EXPECT_TRUE(cat.CreateMoleculeType("DeptMol", dept,
                                     {{de, true}, {ep, true}})
                  .ok());
  // Disconnected: EmpProj edge cannot leave Dept alone.
  EXPECT_TRUE(cat.CreateMoleculeType("Bad", dept, {{ep, true}})
                  .status()
                  .IsInvalidArgument());
  // Backward edge makes Proj the entry to Emp.
  EXPECT_TRUE(
      cat.CreateMoleculeType("ProjMol", proj, {{ep, false}, {de, false}})
          .ok());
}

TEST(CatalogTest, AtomIdSequence) {
  Catalog cat;
  AtomId a = cat.NextAtomId();
  AtomId b = cat.NextAtomId();
  EXPECT_EQ(b, a + 1);
  cat.AdvanceAtomIdWatermark(100);
  EXPECT_GE(cat.NextAtomId(), 100u);
  cat.AdvanceAtomIdWatermark(5);  // never regresses
  EXPECT_GT(cat.NextAtomId(), 100u);
}

TEST(CatalogTest, SerializeRoundTrip) {
  Catalog cat;
  TypeId dept = cat.CreateAtomType("Dept", {{"name", AttrType::kString},
                                            {"budget", AttrType::kInt}})
                    .value();
  TypeId emp = cat.CreateAtomType("Emp", EmpAttrs()).value();
  LinkTypeId de = cat.CreateLinkType("DeptEmp", dept, emp).value();
  cat.CreateMoleculeType("DeptMol", dept, {{de, true}}).value();
  cat.NextAtomId();
  cat.NextAtomId();

  std::string bytes = cat.Serialize();
  auto loaded = Catalog::Deserialize(Slice(bytes));
  ASSERT_TRUE(loaded.ok());
  Catalog& cat2 = loaded.value();
  EXPECT_EQ(cat2.GetAtomTypeByName("Dept").value()->id, dept);
  EXPECT_EQ(cat2.GetAtomTypeByName("Dept").value()->attributes[1].name,
            "budget");
  EXPECT_EQ(cat2.GetLinkTypeByName("DeptEmp").value()->to_type, emp);
  const MoleculeTypeDef* mol =
      cat2.GetMoleculeTypeByName("DeptMol").value();
  EXPECT_EQ(mol->root_type, dept);
  ASSERT_EQ(mol->edges.size(), 1u);
  EXPECT_EQ(mol->edges[0].link, de);
  // The atom sequence continues where it left off.
  EXPECT_EQ(cat2.NextAtomId(), cat.CurrentAtomIdWatermark());
  // New type ids do not collide with old ones.
  TypeId fresh = cat2.CreateAtomType("New", EmpAttrs()).value();
  EXPECT_GT(fresh, de);
}

TEST(CatalogTest, DeserializeGarbageFails) {
  EXPECT_FALSE(Catalog::Deserialize(Slice("garbage")).ok());
  std::string truncated = Catalog().Serialize();
  truncated.resize(truncated.size() / 2);
  // Either corruption or parses-as-empty; must not crash. A short valid
  // prefix can decode when counts happen to be zero, so only require
  // graceful handling.
  Catalog::Deserialize(Slice(truncated));
}

TEST(CatalogTest, SaveLoadFile) {
  TempDir dir;
  Catalog cat;
  cat.CreateAtomType("Emp", EmpAttrs()).value();
  std::string path = dir.path() + "/catalog.bin";
  ASSERT_TRUE(cat.SaveToFile(path).ok());
  auto loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().GetAtomTypeByName("Emp").ok());
  EXPECT_TRUE(
      Catalog::LoadFromFile(dir.path() + "/absent").status().IsNotFound());
}

}  // namespace
}  // namespace tcob
