#include "db/transaction.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"

namespace tcob {
namespace {

class TransactionTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.strategy = GetParam();
    auto db = Database::Open(dir_.path() + "/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    ASSERT_TRUE(db_->CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(db_->CreateAtomType("Emp", {{"name", AttrType::kString},
                                            {"salary", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(db_->CreateLinkType("DeptEmp", "Dept", "Emp").ok());
    ASSERT_TRUE(
        db_->CreateMoleculeType("DeptMol", "Dept", {{"DeptEmp", true}}).ok());
  }

  size_t CountRows(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value().RowCount() : 0;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_P(TransactionTest, CommitAppliesAllOps) {
  Transaction txn = db_->Begin();
  AtomId dept = txn.InsertAtom("Dept",
                               {{"name", Value::String("R&D")},
                                {"budget", Value::Int(500)}},
                               10)
                    .value();
  AtomId emp = txn.InsertAtom("Emp",
                              {{"name", Value::String("ada")},
                               {"salary", Value::Int(100)}},
                              10)
                   .value();
  ASSERT_TRUE(txn.Connect("DeptEmp", dept, emp, 10).ok());
  EXPECT_EQ(txn.pending_ops(), 3u);
  // Nothing visible before commit.
  EXPECT_EQ(CountRows("SELECT ALL FROM DeptMol VALID AT 20"), 0u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(CountRows("SELECT ALL FROM DeptMol VALID AT 20"), 2u);
}

TEST_P(TransactionTest, AbortDiscardsEverything) {
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.InsertAtom("Dept",
                             {{"name", Value::String("X")},
                              {"budget", Value::Int(1)}},
                             10)
                  .ok());
  txn.Abort();
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(CountRows("SELECT ALL FROM DeptMol VALID AT 20"), 0u);
  EXPECT_EQ(db_->wal()->appended_records(), 0u);
}

TEST_P(TransactionTest, DestructorAborts) {
  {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(txn.InsertAtom("Dept",
                               {{"name", Value::String("X")},
                                {"budget", Value::Int(1)}},
                               10)
                    .ok());
  }  // destroyed without commit
  EXPECT_EQ(CountRows("SELECT ALL FROM DeptMol VALID AT 20"), 0u);
}

TEST_P(TransactionTest, ReadYourOwnWritesInValidation) {
  Transaction txn = db_->Begin();
  AtomId emp = txn.InsertAtom("Emp",
                              {{"name", Value::String("ada")},
                               {"salary", Value::Int(100)}},
                              10)
                   .value();
  // Update an atom only this transaction created: overlay-based partial
  // update carries the pending name over.
  ASSERT_TRUE(
      txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, 20).ok());
  ASSERT_TRUE(txn.DeleteAtom("Emp", emp, 30).ok());
  // A second delete must fail (the overlay knows it is dead).
  EXPECT_TRUE(txn.DeleteAtom("Emp", emp, 40).IsInvalidArgument());
  ASSERT_TRUE(txn.Commit().ok());

  const AtomTypeDef* emp_type = db_->catalog().GetAtomTypeByName("Emp").value();
  auto versions =
      db_->store()->GetVersions(*emp_type, emp, Interval::All()).value();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[1].attrs[0].AsString(), "ada");  // carried over
  EXPECT_EQ(versions[1].attrs[1].AsInt(), 200);
  EXPECT_EQ(versions[1].valid, Interval(20, 30));
}

TEST_P(TransactionTest, ValidationSeesCommittedState) {
  AtomId emp =
      db_->InsertAtom("Emp",
                      {{"name", Value::String("bob")},
                       {"salary", Value::Int(50)}},
                      10)
          .value();
  Transaction txn = db_->Begin();
  // Double insert of a live atom is rejected at buffering time.
  EXPECT_TRUE(txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(60)}}, 5)
                  .IsInvalidArgument());  // before live begin
  ASSERT_TRUE(
      txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(60)}}, 20).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(CountRows("SELECT Emp.salary FROM DeptMol VALID AT 25"), 0u);
}

TEST_P(TransactionTest, LinkValidation) {
  AtomId dept = db_->InsertAtom("Dept",
                                {{"name", Value::String("D")},
                                 {"budget", Value::Int(1)}},
                                10)
                    .value();
  AtomId emp = db_->InsertAtom("Emp",
                               {{"name", Value::String("e")},
                                {"salary", Value::Int(1)}},
                               10)
                   .value();
  ASSERT_TRUE(db_->Connect("DeptEmp", dept, emp, 10).ok());

  Transaction txn = db_->Begin();
  // Already connected in committed state.
  EXPECT_TRUE(txn.Connect("DeptEmp", dept, emp, 20).IsAlreadyExists());
  ASSERT_TRUE(txn.Disconnect("DeptEmp", dept, emp, 20).ok());
  // Now reconnect within the same transaction.
  ASSERT_TRUE(txn.Connect("DeptEmp", dept, emp, 30).ok());
  // Disconnect before its begin rejected.
  EXPECT_TRUE(txn.Disconnect("DeptEmp", dept, emp, 25).IsInvalidArgument());
  ASSERT_TRUE(txn.Commit().ok());

  const LinkTypeDef* link = db_->catalog().GetLinkTypeByName("DeptEmp").value();
  auto spans =
      db_->links()->NeighborsIn(*link, dept, true, Interval::All()).value();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].second, Interval(10, 20));
  EXPECT_EQ(spans[1].second, Interval(30, kForever));
}

TEST_P(TransactionTest, CommittedTransactionSurvivesRecovery) {
  AtomId dept;
  {
    Transaction txn = db_->Begin();
    dept = txn.InsertAtom("Dept",
                          {{"name", Value::String("R&D")},
                           {"budget", Value::Int(500)}},
                          10)
               .value();
    ASSERT_TRUE(
        txn.UpdateAtom("Dept", dept, {{"budget", Value::Int(600)}}, 20).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // Reopen in place: WAL replay must reproduce the transaction.
  DatabaseOptions options;
  options.strategy = GetParam();
  db_.reset();
  db_ = Database::Open(dir_.path() + "/db", options).value();
  EXPECT_EQ(CountRows("SELECT Dept.budget FROM DeptMol HISTORY"), 2u);
}

TEST_P(TransactionTest, OpsAfterCommitRejected) {
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(txn.InsertAtom("Dept", {{"name", Value::String("X")}}, 5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
}

TEST_P(TransactionTest, TxnOutlivingDatabaseFailsCleanly) {
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.InsertAtom("Dept",
                             {{"name", Value::String("X")},
                              {"budget", Value::Int(1)}},
                             10)
                  .ok());
  // Destroy the database out from under the transaction. Every further
  // use must fail with FailedPrecondition instead of dereferencing the
  // dangling Database pointer, and the destructor must not crash.
  db_.reset();
  EXPECT_TRUE(txn.InsertAtom("Dept", {{"name", Value::String("Y")}}, 20)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(txn.UpdateAtom("Dept", 1, {{"budget", Value::Int(2)}}, 20)
                  .IsFailedPrecondition());
  EXPECT_TRUE(txn.DeleteAtom("Dept", 1, 20).IsFailedPrecondition());
  EXPECT_TRUE(txn.Connect("DeptEmp", 1, 2, 20).IsFailedPrecondition());
  EXPECT_TRUE(txn.Disconnect("DeptEmp", 1, 2, 20).IsFailedPrecondition());
  EXPECT_TRUE(txn.Commit().IsFailedPrecondition());
  // Abort is safe (a no-op against the dead database) and deactivates.
  txn.Abort();
  EXPECT_FALSE(txn.active());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, TransactionTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
