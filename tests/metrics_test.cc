// MetricsRegistry semantics: counter/gauge/histogram behavior, bucket
// edge cases (Prometheus "le" means v <= bound), snapshot isolation,
// exact totals under concurrent updates, and the two render formats.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace tcob {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketEdges) {
  // Buckets: (..1], (1..5], (5..10], (10..inf)
  Histogram h({1, 5, 10});
  ASSERT_EQ(h.bucket_count(), 4u);
  h.Observe(0);
  h.Observe(1);   // le="1" — exactly on the bound lands in that bucket
  h.Observe(2);
  h.Observe(5);   // le="5"
  h.Observe(6);
  h.Observe(10);  // le="10"
  h.Observe(11);  // +Inf
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);  // 0, 1
  EXPECT_EQ(snap.counts[1], 2u);  // 2, 5
  EXPECT_EQ(snap.counts[2], 2u);  // 6, 10
  EXPECT_EQ(snap.counts[3], 1u);  // 11
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 5 + 6 + 10 + 11);
  EXPECT_DOUBLE_EQ(snap.Mean(), 35.0 / 7.0);
}

TEST(HistogramTest, ConcurrentObservesAreExact) {
  Histogram h(Histogram::LatencyBucketsUs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t) * 100 + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotIsolation) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  Histogram h({10, 100});
  registry.RegisterCounter("test_counter", &c);
  registry.RegisterGauge("test_gauge", &g);
  registry.RegisterHistogram("test_hist", &h);

  c.Add(3);
  g.Set(-7);
  h.Observe(50);
  MetricsSnapshot before = registry.Snapshot();

  // Later updates must not leak into the already-taken snapshot.
  c.Add(100);
  g.Set(99);
  h.Observe(5);

  EXPECT_EQ(before.CounterOr("test_counter", 0), 3u);
  EXPECT_EQ(before.GaugeOr("test_gauge", 0), -7);
  ASSERT_EQ(before.histograms.count("test_hist"), 1u);
  EXPECT_EQ(before.histograms.at("test_hist").count, 1u);

  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.CounterOr("test_counter", 0), 103u);
  EXPECT_EQ(after.GaugeOr("test_gauge", 0), 99);
  EXPECT_EQ(after.histograms.at("test_hist").count, 2u);
}

TEST(MetricsRegistryTest, CallbackMetrics) {
  MetricsRegistry registry;
  uint64_t calls = 0;
  registry.RegisterCounterFn("fn_counter", [&calls] { return ++calls; });
  int64_t level = 12;
  registry.RegisterGaugeFn("fn_gauge", [&level] { return level; });
  EXPECT_EQ(registry.Snapshot().CounterOr("fn_counter", 0), 1u);
  level = -4;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("fn_counter", 0), 2u);
  EXPECT_EQ(snap.GaugeOr("fn_gauge", 0), -4);
}

TEST(MetricsSnapshotTest, TextRendering) {
  MetricsRegistry registry;
  Counter c;
  c.Add(5);
  Histogram h({1, 10});
  h.Observe(1);
  h.Observe(7);
  registry.RegisterCounter("tcob_test_total", &c);
  registry.RegisterHistogram("tcob_test_us", &h);
  std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("# TYPE tcob_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("tcob_test_total 5"), std::string::npos);
  EXPECT_NE(text.find("tcob_test_us_bucket{le=\"1\"} 1"), std::string::npos);
  // Cumulative: the le="10" bucket includes the le="1" observation.
  EXPECT_NE(text.find("tcob_test_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("tcob_test_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("tcob_test_us_sum 8"), std::string::npos);
  EXPECT_NE(text.find("tcob_test_us_count 2"), std::string::npos);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10, 100, 1000});
  // 100 observations spread 10 into (0,10], 80 into (10,100], 10 into
  // (100,1000].
  for (int i = 0; i < 10; ++i) h.Observe(5);
  for (int i = 0; i < 80; ++i) h.Observe(50);
  for (int i = 0; i < 10; ++i) h.Observe(500);
  HistogramSnapshot s = h.Snapshot();
  // Rank 50 lands 40/80 into the (10,100] bucket: 10 + 90 * 0.5 = 55.
  EXPECT_DOUBLE_EQ(s.Quantile(0.50), 55.0);
  // Rank 95 lands 5/10 into the (100,1000] bucket: 100 + 900 * 0.5.
  EXPECT_DOUBLE_EQ(s.Quantile(0.95), 550.0);
  // q=1 is the far edge of the last occupied bucket.
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram h({10, 100});
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);  // empty
  h.Observe(5000);                                    // +inf bucket
  // Everything past the last finite bound clamps there.
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.99), 100.0);
}

TEST(MetricsSnapshotTest, QuantileLinesRendered) {
  MetricsRegistry registry;
  Histogram h({10, 100});
  for (int i = 0; i < 10; ++i) h.Observe(50);
  registry.RegisterHistogram("tcob_q_us", &h);
  std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("tcob_q_us_p50 "), std::string::npos);
  EXPECT_NE(text.find("tcob_q_us_p95 "), std::string::npos);
  EXPECT_NE(text.find("tcob_q_us_p99 "), std::string::npos);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonRendering) {
  MetricsRegistry registry;
  Counter c;
  c.Add(9);
  Gauge g;
  g.Set(-2);
  registry.RegisterCounter("a_total", &c);
  registry.RegisterGauge("b_gauge", &g);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"a_total\":9"), std::string::npos);
  EXPECT_NE(json.find("\"b_gauge\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(JsonEscapeTest, ControlAndQuote) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(HistogramTest, ResetClearsBucketsAndSum) {
  Histogram h({1, 2});
  h.Observe(1);
  h.Observe(100);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  for (uint64_t bucket : snap.counts) EXPECT_EQ(bucket, 0u);
}

}  // namespace
}  // namespace tcob
