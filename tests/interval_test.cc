#include "time/interval.h"

#include <gtest/gtest.h>

#include <tuple>

namespace tcob {
namespace {

TEST(IntervalTest, BasicPredicates) {
  Interval iv(10, 20);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 10);
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(9));
}

TEST(IntervalTest, EmptyCanonical) {
  EXPECT_TRUE(Interval::Empty().empty());
  EXPECT_TRUE(Interval(5, 5).empty());
  EXPECT_TRUE(Interval(7, 3).empty());
  EXPECT_EQ(Interval(5, 5), Interval(9, 2));  // all empties are equal
}

TEST(IntervalTest, OpenEnded) {
  Interval iv(10, kForever);
  EXPECT_TRUE(iv.open_ended());
  EXPECT_TRUE(iv.Contains(1'000'000'000));
  EXPECT_FALSE(Interval(10, 20).open_ended());
}

TEST(IntervalTest, AtIsSingleChronon) {
  Interval iv = Interval::At(5);
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(6));
  EXPECT_EQ(iv.length(), 1);
}

TEST(IntervalTest, OverlapSymmetric) {
  Interval a(0, 10), b(5, 15), c(10, 20);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // half-open: [0,10) and [10,20) don't meet
  EXPECT_TRUE(a.Meets(c));
  EXPECT_FALSE(a.Overlaps(Interval::Empty()));
}

TEST(IntervalTest, IntersectAndMerge) {
  Interval a(0, 10), b(5, 15);
  EXPECT_EQ(a.Intersect(b), Interval(5, 10));
  EXPECT_EQ(a.Merge(b), Interval(0, 15));
  EXPECT_TRUE(a.Intersect(Interval(20, 30)).empty());
  EXPECT_TRUE(a.Mergeable(Interval(10, 12)));   // adjacent
  EXPECT_FALSE(a.Mergeable(Interval(11, 12)));  // gap
}

TEST(IntervalTest, ContainsInterval) {
  Interval a(0, 100);
  EXPECT_TRUE(a.Contains(Interval(0, 100)));
  EXPECT_TRUE(a.Contains(Interval(10, 20)));
  EXPECT_FALSE(a.Contains(Interval(10, 101)));
  EXPECT_FALSE(a.Contains(Interval::Empty()));
}

TEST(IntervalTest, ToStringRendersForever) {
  EXPECT_EQ(Interval(3, kForever).ToString(), "[3, forever)");
  EXPECT_EQ(Interval(3, 9).ToString(), "[3, 9)");
  EXPECT_EQ(Interval::Empty().ToString(), "[empty)");
}

// Exhaustive check of the 13 Allen relations on canonical witnesses.
struct AllenCase {
  Interval a;
  Interval b;
  AllenRelation expected;
};

class AllenTest : public ::testing::TestWithParam<AllenCase> {};

TEST_P(AllenTest, Classify) {
  const AllenCase& c = GetParam();
  EXPECT_EQ(ClassifyAllen(c.a, c.b), c.expected)
      << c.a.ToString() << " vs " << c.b.ToString() << " expected "
      << AllenRelationName(c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllThirteen, AllenTest,
    ::testing::Values(
        AllenCase{{0, 5}, {7, 9}, AllenRelation::kBefore},
        AllenCase{{0, 5}, {5, 9}, AllenRelation::kMeets},
        AllenCase{{0, 5}, {3, 9}, AllenRelation::kOverlaps},
        AllenCase{{0, 5}, {0, 9}, AllenRelation::kStarts},
        AllenCase{{3, 5}, {0, 9}, AllenRelation::kDuring},
        AllenCase{{7, 9}, {0, 9}, AllenRelation::kFinishes},
        AllenCase{{0, 9}, {0, 9}, AllenRelation::kEquals},
        AllenCase{{0, 9}, {7, 9}, AllenRelation::kFinishedBy},
        AllenCase{{0, 9}, {3, 5}, AllenRelation::kContains},
        AllenCase{{0, 9}, {0, 5}, AllenRelation::kStartedBy},
        AllenCase{{3, 9}, {0, 5}, AllenRelation::kOverlappedBy},
        AllenCase{{5, 9}, {0, 5}, AllenRelation::kMetBy},
        AllenCase{{7, 9}, {0, 5}, AllenRelation::kAfter}));

// Property: ClassifyAllen is consistent with the boolean helpers.
TEST(AllenPropertyTest, ConsistentWithPredicates) {
  for (Timestamp a1 = 0; a1 < 6; ++a1) {
    for (Timestamp a2 = a1 + 1; a2 <= 6; ++a2) {
      for (Timestamp b1 = 0; b1 < 6; ++b1) {
        for (Timestamp b2 = b1 + 1; b2 <= 6; ++b2) {
          Interval a(a1, a2), b(b1, b2);
          AllenRelation r = ClassifyAllen(a, b);
          EXPECT_EQ(r == AllenRelation::kBefore, a.end < b.begin);
          EXPECT_EQ(r == AllenRelation::kMeets, a.Meets(b));
          EXPECT_EQ(r == AllenRelation::kDuring, a.During(b));
          EXPECT_EQ(r == AllenRelation::kEquals, a == b);
          // Overlap holds for every relation except before/meets/after/metby.
          bool disjoint = r == AllenRelation::kBefore ||
                          r == AllenRelation::kMeets ||
                          r == AllenRelation::kAfter ||
                          r == AllenRelation::kMetBy;
          EXPECT_EQ(!disjoint, a.Overlaps(b));
        }
      }
    }
  }
}

}  // namespace
}  // namespace tcob
