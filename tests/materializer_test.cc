#include "mad/materializer.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "tstore/store_factory.h"

namespace tcob {
namespace {

/// Builds the Dept-Emp-Proj network directly on the stores (no Database
/// facade) so the molecule engine is tested in isolation, parameterized
/// over all storage strategies.
class MaterializerTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 512);
    store_ = MakeTemporalStore(GetParam(), pool_.get(), "store", {});
    links_ = std::make_unique<LinkStore>(pool_.get(), "links");

    dept_ = catalog_.CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt}})
                .value();
    emp_ = catalog_.CreateAtomType("Emp", {{"name", AttrType::kString},
                                           {"salary", AttrType::kInt}})
               .value();
    proj_ = catalog_.CreateAtomType("Proj", {{"title", AttrType::kString}})
                .value();
    dept_emp_ = catalog_.CreateLinkType("DeptEmp", dept_, emp_).value();
    emp_proj_ = catalog_.CreateLinkType("EmpProj", emp_, proj_).value();
    mol_ = catalog_.CreateMoleculeType("DeptMol", dept_,
                                       {{dept_emp_, true}, {emp_proj_, true}})
               .value();
    mat_ = std::make_unique<Materializer>(&catalog_, store_.get(),
                                          links_.get());
  }

  const AtomTypeDef& DeptT() { return *catalog_.GetAtomType(dept_).value(); }
  const AtomTypeDef& EmpT() { return *catalog_.GetAtomType(emp_).value(); }
  const AtomTypeDef& ProjT() { return *catalog_.GetAtomType(proj_).value(); }
  const LinkTypeDef& DE() { return *catalog_.GetLinkType(dept_emp_).value(); }
  const LinkTypeDef& EP() { return *catalog_.GetLinkType(emp_proj_).value(); }
  const MoleculeTypeDef& Mol() {
    return *catalog_.GetMoleculeType(mol_).value();
  }

  /// dept #1 with emps #2, #3; emp #2 on proj #4. All at t=10.
  void BuildSmallNetwork() {
    ASSERT_TRUE(store_->Insert(DeptT(), 1,
                               {Value::String("R&D"), Value::Int(500)}, 10)
                    .ok());
    ASSERT_TRUE(store_->Insert(EmpT(), 2,
                               {Value::String("ada"), Value::Int(100)}, 10)
                    .ok());
    ASSERT_TRUE(store_->Insert(EmpT(), 3,
                               {Value::String("bob"), Value::Int(90)}, 10)
                    .ok());
    ASSERT_TRUE(
        store_->Insert(ProjT(), 4, {Value::String("compiler")}, 10).ok());
    ASSERT_TRUE(links_->Connect(DE(), 1, 2, 10).ok());
    ASSERT_TRUE(links_->Connect(DE(), 1, 3, 10).ok());
    ASSERT_TRUE(links_->Connect(EP(), 2, 4, 10).ok());
  }

  TempDir dir_;
  Catalog catalog_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TemporalAtomStore> store_;
  std::unique_ptr<LinkStore> links_;
  std::unique_ptr<Materializer> mat_;
  TypeId dept_, emp_, proj_;
  LinkTypeId dept_emp_, emp_proj_;
  MoleculeTypeId mol_;
};

TEST_P(MaterializerTest, MaterializeCollectsConnectedAtoms) {
  BuildSmallNetwork();
  Molecule mol = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  EXPECT_EQ(mol.root, 1u);
  EXPECT_EQ(mol.AtomCount(), 4u);
  EXPECT_EQ(mol.edges.size(), 3u);
  EXPECT_TRUE(mol.atoms.count(2));
  EXPECT_TRUE(mol.atoms.count(4));
}

TEST_P(MaterializerTest, MaterializeBeforeBirthFails) {
  BuildSmallNetwork();
  EXPECT_TRUE(mat_->MaterializeAsOf(Mol(), 1, 5).status().IsNotFound());
  EXPECT_TRUE(mat_->MaterializeAsOf(Mol(), 99, 20).status().IsNotFound());
}

TEST_P(MaterializerTest, TimeSliceSeesLinkChanges) {
  BuildSmallNetwork();
  // Emp #3 leaves the department at 30.
  ASSERT_TRUE(links_->Disconnect(DE(), 1, 3, 30).ok());
  Molecule before = mat_->MaterializeAsOf(Mol(), 1, 25).value();
  Molecule after = mat_->MaterializeAsOf(Mol(), 1, 35).value();
  EXPECT_EQ(before.AtomCount(), 4u);
  EXPECT_EQ(after.AtomCount(), 3u);
  EXPECT_FALSE(after.atoms.count(3));
}

TEST_P(MaterializerTest, TimeSliceSeesAtomVersions) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  Molecule before = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  Molecule after = mat_->MaterializeAsOf(Mol(), 1, 40).value();
  EXPECT_EQ(before.atoms.at(2).attrs[1].AsInt(), 100);
  EXPECT_EQ(after.atoms.at(2).attrs[1].AsInt(), 200);
  EXPECT_EQ(after.atoms.at(2).version_no, 2u);
}

TEST_P(MaterializerTest, DanglingLinkToDeadAtomSkipped) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(EmpT(), 3, 30).ok());
  // The link #1->#3 is still open, but atom #3 has no version at 35.
  Molecule mol = mat_->MaterializeAsOf(Mol(), 1, 35).value();
  EXPECT_EQ(mol.AtomCount(), 3u);
  EXPECT_FALSE(mol.atoms.count(3));
}

TEST_P(MaterializerTest, AllMoleculesAsOfStreamsEachRoot) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  size_t count = 0;
  ASSERT_TRUE(mat_->AllMoleculesAsOf(Mol(), 20, [&](Molecule m) {
                     ++count;
                     EXPECT_TRUE(m.root == 1 || m.root == 5);
                     return Result<bool>(true);
                   })
                  .ok());
  EXPECT_EQ(count, 2u);
}

TEST_P(MaterializerTest, HistoryCapturesAtomChange) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 50)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 30));
  EXPECT_EQ(h.states[1].valid, Interval(30, 50));
  EXPECT_EQ(h.states[0].molecule.atoms.at(2).attrs[1].AsInt(), 100);
  EXPECT_EQ(h.states[1].molecule.atoms.at(2).attrs[1].AsInt(), 200);
}

TEST_P(MaterializerTest, HistoryCapturesLinkChange) {
  BuildSmallNetwork();
  ASSERT_TRUE(links_->Disconnect(DE(), 1, 3, 25).ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 40)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].molecule.AtomCount(), 4u);
  EXPECT_EQ(h.states[1].molecule.AtomCount(), 3u);
  EXPECT_EQ(h.states[1].valid, Interval(25, 40));
}

TEST_P(MaterializerTest, HistoryHasGapWhenRootDead) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 30).ok());
  ASSERT_TRUE(store_->Insert(DeptT(), 1,
                             {Value::String("R&D2"), Value::Int(100)}, 50)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 70)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 30));
  EXPECT_EQ(h.states[1].valid, Interval(50, 70));
}

TEST_P(MaterializerTest, HistoryCoalescesIrrelevantChanges) {
  BuildSmallNetwork();
  // A change to an unconnected atom must not split this molecule's
  // history.
  ASSERT_TRUE(store_->Insert(EmpT(), 77,
                             {Value::String("eve"), Value::Int(1)}, 15)
                  .ok());
  ASSERT_TRUE(store_->Update(EmpT(), 77,
                             {Value::String("eve"), Value::Int(2)}, 20)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 40)).value();
  ASSERT_EQ(h.states.size(), 1u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 40));
}

TEST_P(MaterializerTest, HistoryWindowClipsStates) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(35, 45)).value();
  ASSERT_EQ(h.states.size(), 1u);
  EXPECT_EQ(h.states[0].valid, Interval(35, 45));
}

TEST_P(MaterializerTest, AllHistoriesIncludesDeadRoots) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 30).ok());
  size_t count = 0;
  ASSERT_TRUE(mat_->AllHistories(Mol(), Interval(40, 50),
                                 [&](MoleculeHistory) {
                                   ++count;
                                   return Result<bool>(true);
                                 })
                  .ok());
  EXPECT_EQ(count, 0u);  // dead during the window
  count = 0;
  ASSERT_TRUE(mat_->AllHistories(Mol(), Interval(10, 50),
                                 [&](MoleculeHistory h) {
                                   ++count;
                                   EXPECT_EQ(h.states.back().valid.end, 30);
                                   return Result<bool>(true);
                                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_P(MaterializerTest, SharedSubobjectAppearsInBothMolecules) {
  BuildSmallNetwork();
  // Dept #5 also employs emp #2 (shared sub-object, a network not a tree).
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  ASSERT_TRUE(links_->Connect(DE(), 5, 2, 10).ok());
  Molecule m1 = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  Molecule m5 = mat_->MaterializeAsOf(Mol(), 5, 20).value();
  EXPECT_TRUE(m1.atoms.count(2));
  EXPECT_TRUE(m5.atoms.count(2));
  EXPECT_TRUE(m5.atoms.count(4));  // proj via shared emp
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MaterializerTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
