#include "mad/materializer.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "tstore/store_factory.h"

namespace tcob {
namespace {

/// Builds the Dept-Emp-Proj network directly on the stores (no Database
/// facade) so the molecule engine is tested in isolation, parameterized
/// over all storage strategies.
class MaterializerTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 512);
    store_ = MakeTemporalStore(GetParam(), pool_.get(), "store", {});
    links_ = std::make_unique<LinkStore>(pool_.get(), "links");

    dept_ = catalog_.CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt}})
                .value();
    emp_ = catalog_.CreateAtomType("Emp", {{"name", AttrType::kString},
                                           {"salary", AttrType::kInt}})
               .value();
    proj_ = catalog_.CreateAtomType("Proj", {{"title", AttrType::kString}})
                .value();
    dept_emp_ = catalog_.CreateLinkType("DeptEmp", dept_, emp_).value();
    emp_proj_ = catalog_.CreateLinkType("EmpProj", emp_, proj_).value();
    mol_ = catalog_.CreateMoleculeType("DeptMol", dept_,
                                       {{dept_emp_, true}, {emp_proj_, true}})
               .value();
    mat_ = std::make_unique<Materializer>(&catalog_, store_.get(),
                                          links_.get());
  }

  const AtomTypeDef& DeptT() { return *catalog_.GetAtomType(dept_).value(); }
  const AtomTypeDef& EmpT() { return *catalog_.GetAtomType(emp_).value(); }
  const AtomTypeDef& ProjT() { return *catalog_.GetAtomType(proj_).value(); }
  const LinkTypeDef& DE() { return *catalog_.GetLinkType(dept_emp_).value(); }
  const LinkTypeDef& EP() { return *catalog_.GetLinkType(emp_proj_).value(); }
  const MoleculeTypeDef& Mol() {
    return *catalog_.GetMoleculeType(mol_).value();
  }

  /// dept #1 with emps #2, #3; emp #2 on proj #4. All at t=10.
  void BuildSmallNetwork() {
    ASSERT_TRUE(store_->Insert(DeptT(), 1,
                               {Value::String("R&D"), Value::Int(500)}, 10)
                    .ok());
    ASSERT_TRUE(store_->Insert(EmpT(), 2,
                               {Value::String("ada"), Value::Int(100)}, 10)
                    .ok());
    ASSERT_TRUE(store_->Insert(EmpT(), 3,
                               {Value::String("bob"), Value::Int(90)}, 10)
                    .ok());
    ASSERT_TRUE(
        store_->Insert(ProjT(), 4, {Value::String("compiler")}, 10).ok());
    ASSERT_TRUE(links_->Connect(DE(), 1, 2, 10).ok());
    ASSERT_TRUE(links_->Connect(DE(), 1, 3, 10).ok());
    ASSERT_TRUE(links_->Connect(EP(), 2, 4, 10).ok());
  }

  TempDir dir_;
  Catalog catalog_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TemporalAtomStore> store_;
  std::unique_ptr<LinkStore> links_;
  std::unique_ptr<Materializer> mat_;
  TypeId dept_, emp_, proj_;
  LinkTypeId dept_emp_, emp_proj_;
  MoleculeTypeId mol_;
};

TEST_P(MaterializerTest, MaterializeCollectsConnectedAtoms) {
  BuildSmallNetwork();
  Molecule mol = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  EXPECT_EQ(mol.root, 1u);
  EXPECT_EQ(mol.AtomCount(), 4u);
  EXPECT_EQ(mol.edges.size(), 3u);
  EXPECT_TRUE(mol.atoms.count(2));
  EXPECT_TRUE(mol.atoms.count(4));
}

TEST_P(MaterializerTest, MaterializeBeforeBirthFails) {
  BuildSmallNetwork();
  EXPECT_TRUE(mat_->MaterializeAsOf(Mol(), 1, 5).status().IsNotFound());
  EXPECT_TRUE(mat_->MaterializeAsOf(Mol(), 99, 20).status().IsNotFound());
}

TEST_P(MaterializerTest, TimeSliceSeesLinkChanges) {
  BuildSmallNetwork();
  // Emp #3 leaves the department at 30.
  ASSERT_TRUE(links_->Disconnect(DE(), 1, 3, 30).ok());
  Molecule before = mat_->MaterializeAsOf(Mol(), 1, 25).value();
  Molecule after = mat_->MaterializeAsOf(Mol(), 1, 35).value();
  EXPECT_EQ(before.AtomCount(), 4u);
  EXPECT_EQ(after.AtomCount(), 3u);
  EXPECT_FALSE(after.atoms.count(3));
}

TEST_P(MaterializerTest, TimeSliceSeesAtomVersions) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  Molecule before = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  Molecule after = mat_->MaterializeAsOf(Mol(), 1, 40).value();
  EXPECT_EQ(before.atoms.at(2).attrs[1].AsInt(), 100);
  EXPECT_EQ(after.atoms.at(2).attrs[1].AsInt(), 200);
  EXPECT_EQ(after.atoms.at(2).version_no, 2u);
}

TEST_P(MaterializerTest, DanglingLinkToDeadAtomSkipped) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(EmpT(), 3, 30).ok());
  // The link #1->#3 is still open, but atom #3 has no version at 35.
  Molecule mol = mat_->MaterializeAsOf(Mol(), 1, 35).value();
  EXPECT_EQ(mol.AtomCount(), 3u);
  EXPECT_FALSE(mol.atoms.count(3));
}

TEST_P(MaterializerTest, AllMoleculesAsOfStreamsEachRoot) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  size_t count = 0;
  ASSERT_TRUE(mat_->AllMoleculesAsOf(Mol(), 20, [&](Molecule m) {
                     ++count;
                     EXPECT_TRUE(m.root == 1 || m.root == 5);
                     return Result<bool>(true);
                   })
                  .ok());
  EXPECT_EQ(count, 2u);
}

TEST_P(MaterializerTest, HistoryCapturesAtomChange) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 50)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 30));
  EXPECT_EQ(h.states[1].valid, Interval(30, 50));
  EXPECT_EQ(h.states[0].molecule.atoms.at(2).attrs[1].AsInt(), 100);
  EXPECT_EQ(h.states[1].molecule.atoms.at(2).attrs[1].AsInt(), 200);
}

TEST_P(MaterializerTest, HistoryCapturesLinkChange) {
  BuildSmallNetwork();
  ASSERT_TRUE(links_->Disconnect(DE(), 1, 3, 25).ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 40)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].molecule.AtomCount(), 4u);
  EXPECT_EQ(h.states[1].molecule.AtomCount(), 3u);
  EXPECT_EQ(h.states[1].valid, Interval(25, 40));
}

TEST_P(MaterializerTest, HistoryHasGapWhenRootDead) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 30).ok());
  ASSERT_TRUE(store_->Insert(DeptT(), 1,
                             {Value::String("R&D2"), Value::Int(100)}, 50)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 70)).value();
  ASSERT_EQ(h.states.size(), 2u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 30));
  EXPECT_EQ(h.states[1].valid, Interval(50, 70));
}

TEST_P(MaterializerTest, HistoryCoalescesIrrelevantChanges) {
  BuildSmallNetwork();
  // A change to an unconnected atom must not split this molecule's
  // history.
  ASSERT_TRUE(store_->Insert(EmpT(), 77,
                             {Value::String("eve"), Value::Int(1)}, 15)
                  .ok());
  ASSERT_TRUE(store_->Update(EmpT(), 77,
                             {Value::String("eve"), Value::Int(2)}, 20)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 40)).value();
  ASSERT_EQ(h.states.size(), 1u);
  EXPECT_EQ(h.states[0].valid, Interval(10, 40));
}

TEST_P(MaterializerTest, HistoryWindowClipsStates) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(200)}, 30)
                  .ok());
  MoleculeHistory h = mat_->History(Mol(), 1, Interval(35, 45)).value();
  ASSERT_EQ(h.states.size(), 1u);
  EXPECT_EQ(h.states[0].valid, Interval(35, 45));
}

TEST_P(MaterializerTest, AllHistoriesIncludesDeadRoots) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 30).ok());
  size_t count = 0;
  ASSERT_TRUE(mat_->AllHistories(Mol(), Interval(40, 50),
                                 [&](MoleculeHistory) {
                                   ++count;
                                   return Result<bool>(true);
                                 })
                  .ok());
  EXPECT_EQ(count, 0u);  // dead during the window
  count = 0;
  ASSERT_TRUE(mat_->AllHistories(Mol(), Interval(10, 50),
                                 [&](MoleculeHistory h) {
                                   ++count;
                                   EXPECT_EQ(h.states.back().valid.end, 30);
                                   return Result<bool>(true);
                                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST_P(MaterializerTest, SharedSubobjectAppearsInBothMolecules) {
  BuildSmallNetwork();
  // Dept #5 also employs emp #2 (shared sub-object, a network not a tree).
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  ASSERT_TRUE(links_->Connect(DE(), 5, 2, 10).ok());
  Molecule m1 = mat_->MaterializeAsOf(Mol(), 1, 20).value();
  Molecule m5 = mat_->MaterializeAsOf(Mol(), 5, 20).value();
  EXPECT_TRUE(m1.atoms.count(2));
  EXPECT_TRUE(m5.atoms.count(2));
  EXPECT_TRUE(m5.atoms.count(4));  // proj via shared emp
}

/// Field-by-field equality of two histories (stricter than SameState,
/// which only compares version numbers): validity pieces, every atom
/// version including attribute payloads, and the sorted edge lists.
void ExpectIdenticalHistories(const MoleculeHistory& got,
                              const MoleculeHistory& want) {
  EXPECT_EQ(got.root, want.root);
  ASSERT_EQ(got.states.size(), want.states.size());
  for (size_t i = 0; i < got.states.size(); ++i) {
    SCOPED_TRACE("state " + std::to_string(i));
    EXPECT_EQ(got.states[i].valid, want.states[i].valid);
    const Molecule& g = got.states[i].molecule;
    const Molecule& w = want.states[i].molecule;
    EXPECT_EQ(g.type, w.type);
    EXPECT_EQ(g.root, w.root);
    EXPECT_TRUE(g.edges == w.edges);
    ASSERT_EQ(g.atoms.size(), w.atoms.size());
    auto gi = g.atoms.begin();
    auto wi = w.atoms.begin();
    for (; gi != g.atoms.end(); ++gi, ++wi) {
      SCOPED_TRACE("atom " + std::to_string(wi->first));
      EXPECT_EQ(gi->first, wi->first);
      EXPECT_EQ(gi->second.id, wi->second.id);
      EXPECT_EQ(gi->second.type, wi->second.type);
      EXPECT_EQ(gi->second.version_no, wi->second.version_no);
      EXPECT_EQ(gi->second.valid, wi->second.valid);
      ASSERT_EQ(gi->second.attrs.size(), wi->second.attrs.size());
      for (size_t k = 0; k < gi->second.attrs.size(); ++k) {
        EXPECT_TRUE(gi->second.attrs[k].Equals(wi->second.attrs[k]));
      }
    }
  }
}

TEST_P(MaterializerTest, IncrementalHistoryMatchesNaiveUnderChurn) {
  BuildSmallNetwork();
  // Version churn, link churn, inner-atom death/rebirth, root
  // death/rebirth — every delta class the sweep distinguishes.
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(120)}, 15)
                  .ok());
  ASSERT_TRUE(links_->Disconnect(DE(), 1, 3, 20).ok());
  ASSERT_TRUE(store_->Update(DeptT(), 1,
                             {Value::String("R&D"), Value::Int(600)}, 25)
                  .ok());
  ASSERT_TRUE(links_->Connect(DE(), 1, 3, 28).ok());
  ASSERT_TRUE(store_->Delete(EmpT(), 3, 30).ok());
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(140)}, 35)
                  .ok());
  ASSERT_TRUE(store_->Insert(EmpT(), 3,
                             {Value::String("bob"), Value::Int(95)}, 40)
                  .ok());
  ASSERT_TRUE(links_->Disconnect(EP(), 2, 4, 45).ok());
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 50).ok());
  ASSERT_TRUE(store_->Insert(DeptT(), 1,
                             {Value::String("R&D2"), Value::Int(50)}, 55)
                  .ok());
  ASSERT_TRUE(store_->Update(EmpT(), 2,
                             {Value::String("ada"), Value::Int(160)}, 60)
                  .ok());

  for (const Interval& window :
       {Interval(10, 70), Interval::All(), Interval(1, 70), Interval(12, 33),
        Interval(31, 49), Interval(51, 53), Interval(26, 27)}) {
    SCOPED_TRACE("window [" + std::to_string(window.begin) + "," +
                 std::to_string(window.end) + ")");
    auto incremental = mat_->History(Mol(), 1, window);
    auto naive = mat_->NaiveHistory(Mol(), 1, window);
    ASSERT_EQ(incremental.ok(), naive.ok());
    if (!incremental.ok()) continue;
    ExpectIdenticalHistories(incremental.value(), naive.value());
  }
}

TEST_P(MaterializerTest, CyclicMoleculeTypeHistoryMatchesNaive) {
  // Dept -> Emp -> Dept -> ... : the backward DeptEmp edge makes the
  // type graph cyclic; discovery and the sweep must still terminate and
  // agree with the naive path.
  MoleculeTypeId cyc =
      catalog_
          .CreateMoleculeType("CycleMol", dept_,
                              {{dept_emp_, true},
                               {dept_emp_, false},
                               {emp_proj_, true}})
          .value();
  const MoleculeTypeDef& cyc_def = *catalog_.GetMoleculeType(cyc).value();
  BuildSmallNetwork();
  // Dept #5 shares emp #2, so the cycle pulls a second department (and
  // its own churn) into dept #1's molecule.
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  ASSERT_TRUE(links_->Connect(DE(), 5, 2, 10).ok());
  ASSERT_TRUE(store_->Update(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(350)}, 22)
                  .ok());
  ASSERT_TRUE(links_->Disconnect(DE(), 5, 2, 33).ok());

  MoleculeHistory h = mat_->History(cyc_def, 1, Interval(10, 40)).value();
  ASSERT_FALSE(h.states.empty());
  // Before the disconnect, dept #5 is reachable via the shared employee.
  EXPECT_TRUE(h.states.front().molecule.atoms.count(5));
  EXPECT_FALSE(h.states.back().molecule.atoms.count(5));
  ExpectIdenticalHistories(
      h, mat_->NaiveHistory(cyc_def, 1, Interval(10, 40)).value());
}

TEST_P(MaterializerTest, InnerAtomDeathShrinksRootDeathGaps) {
  BuildSmallNetwork();
  // Inner atom #3 dies at 25 while root #1 lives: the molecule shrinks
  // but its history stays contiguous.
  ASSERT_TRUE(store_->Delete(EmpT(), 3, 25).ok());
  // Root dies at 40 and returns at 55: that is a gap.
  ASSERT_TRUE(store_->Delete(DeptT(), 1, 40).ok());
  ASSERT_TRUE(store_->Insert(DeptT(), 1,
                             {Value::String("R&D2"), Value::Int(80)}, 55)
                  .ok());

  MoleculeHistory h = mat_->History(Mol(), 1, Interval(10, 70)).value();
  ASSERT_EQ(h.states.size(), 3u);
  // Shrink: [10,25) has emp #3, [25,40) does not, no gap between them.
  EXPECT_EQ(h.states[0].valid, Interval(10, 25));
  EXPECT_TRUE(h.states[0].molecule.atoms.count(3));
  EXPECT_EQ(h.states[1].valid, Interval(25, 40));
  EXPECT_FALSE(h.states[1].molecule.atoms.count(3));
  EXPECT_TRUE(h.states[0].valid.Meets(h.states[1].valid));
  // Gap: the root's death interval [40,55) yields no state at all.
  EXPECT_EQ(h.states[2].valid, Interval(55, 70));
  EXPECT_FALSE(h.states[1].valid.Meets(h.states[2].valid));

  ExpectIdenticalHistories(
      h, mat_->NaiveHistory(Mol(), 1, Interval(10, 70)).value());
}

TEST_P(MaterializerTest, IncrementalHistoryUsesFewerStoreAccesses) {
  BuildSmallNetwork();
  // A deep history: 12 updates on emp #2 produce 12 change points.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(store_->Update(EmpT(), 2,
                               {Value::String("ada"), Value::Int(100 + i)},
                               20 + i)
                    .ok());
  }
  const Interval window(10, 60);

  store_->ResetAccessStats();
  MoleculeHistory inc = mat_->History(Mol(), 1, window).value();
  const uint64_t incremental_accesses = store_->access_stats().Total();

  store_->ResetAccessStats();
  MoleculeHistory naive = mat_->NaiveHistory(Mol(), 1, window).value();
  const uint64_t naive_accesses = store_->access_stats().Total();

  ExpectIdenticalHistories(inc, naive);
  // The sweep pins each reachable atom once; the naive path re-fetches
  // every atom at every elementary interval.
  EXPECT_GE(naive_accesses, 5 * incremental_accesses)
      << "naive=" << naive_accesses
      << " incremental=" << incremental_accesses;
}

TEST_P(MaterializerTest, CallerProvidedCacheIsSharedAcrossHistories) {
  BuildSmallNetwork();
  ASSERT_TRUE(store_->Insert(DeptT(), 5,
                             {Value::String("Sales"), Value::Int(300)}, 10)
                  .ok());
  ASSERT_TRUE(links_->Connect(DE(), 5, 2, 10).ok());
  const Interval window(10, 40);

  VersionCache cache = mat_->NewCache(window);
  MoleculeHistory h1 = mat_->History(Mol(), 1, window, &cache).value();
  MoleculeHistory h5 = mat_->History(Mol(), 5, window, &cache).value();
  EXPECT_FALSE(h1.states.empty());
  EXPECT_FALSE(h5.states.empty());
  // The shared employee/project were pinned by the first history, so the
  // second one hits the cache instead of the store.
  EXPECT_GT(cache.stats().atom_hits, 0u);

  ExpectIdenticalHistories(h1, mat_->NaiveHistory(Mol(), 1, window).value());
  ExpectIdenticalHistories(h5, mat_->NaiveHistory(Mol(), 5, window).value());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MaterializerTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
