// BoundedQueue: the MPSC channel under the streaming cursor and the
// parallel fan-out. The tests pin the contract the cursors rely on:
// backpressure actually blocks, producer errors surface exactly once at
// end of stream, and a departed consumer unblocks producers promptly.

#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace tcob {
namespace {

TEST(BoundedQueueTest, DeliversInFifoOrder) {
  BoundedQueue<int> q(/*capacity=*/8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  q.CloseProducer();
  for (int i = 0; i < 5; ++i) {
    std::optional<int> item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.producer_status().ok());
}

TEST(BoundedQueueTest, CapacityOneBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(/*capacity=*/1);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.Push(i));
      pushed.fetch_add(1);
    }
    q.CloseProducer();
  });
  // The producer can complete at most the first push (the second blocks
  // on the full queue); give it ample time to overrun if backpressure
  // were broken.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(pushed.load(), 1);
  EXPECT_EQ(q.Pop(), std::optional<int>(0));
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
  EXPECT_FALSE(q.Pop().has_value());
  producer.join();
  EXPECT_EQ(pushed.load(), 3);
}

TEST(BoundedQueueTest, OversizedItemAdmittedIntoEmptyQueue) {
  BoundedQueue<std::string> q(/*capacity=*/4);
  // Weight exceeds capacity: must be admitted (into the empty queue)
  // rather than deadlocking the producer forever.
  EXPECT_TRUE(q.Push("big", /*weight=*/64));
  q.CloseProducer();
  EXPECT_EQ(q.Pop(), std::optional<std::string>("big"));
  EXPECT_EQ(q.peak_weight(), 64u);
}

TEST(BoundedQueueTest, ProducerErrorSurfacesAfterDrain) {
  BoundedQueue<int> q(/*capacity=*/8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.CloseProducer(Status::Corruption("bad page"));
  // Buffered items still arrive, then end-of-stream with the error.
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.producer_status().IsCorruption());
}

TEST(BoundedQueueTest, FirstProducerErrorWins) {
  BoundedQueue<int> q(/*capacity=*/8, /*producers=*/2);
  q.CloseProducer(Status::Corruption("first"));
  q.CloseProducer(Status::IOError("second"));
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.producer_status().IsCorruption());
}

TEST(BoundedQueueTest, ConsumerAbandonUnblocksProducer) {
  BoundedQueue<int> q(/*capacity=*/1);
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    int i = 0;
    while (q.Push(i)) ++i;  // blocks on backpressure until the close
    producer_done.store(true);
    q.CloseProducer();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_done.load());
  q.CloseConsumer();
  producer.join();
  EXPECT_TRUE(producer_done.load());
}

TEST(BoundedQueueTest, PushAfterConsumerCloseReturnsFalse) {
  BoundedQueue<int> q(/*capacity=*/4);
  q.CloseConsumer();
  EXPECT_FALSE(q.Push(1));
}

// Multi-producer stress: run under TSan in CI (regex includes
// BoundedQueue). Every pushed item must arrive exactly once.
TEST(BoundedQueueTest, StressManyProducersOneConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(/*capacity=*/16, /*producers=*/kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
      q.CloseProducer();
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  size_t total = 0;
  while (std::optional<int> item = q.Pop()) {
    ASSERT_GE(*item, 0);
    ASSERT_LT(*item, kProducers * kPerProducer);
    ++seen[static_cast<size_t>(*item)];
    ++total;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_LE(q.peak_weight(), 16u + 1u);
  EXPECT_TRUE(q.producer_status().ok());
}

}  // namespace
}  // namespace tcob
