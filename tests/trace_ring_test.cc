#include "common/trace_ring.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tcob {
namespace {

TraceOptions SmallRing(uint64_t events = 64) {
  TraceOptions o;
  o.ring_bytes = events * 32;  // 32 bytes per event
  return o;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceRingTest, RecordsAndSnapshots) {
  TraceRecorder rec(SmallRing());
  rec.Emit(TraceEventType::kWalAppend, 123);
  rec.Emit(TraceEventType::kPoolMiss, 7);
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kWalAppend);
  EXPECT_EQ(events[0].arg, 123u);
  EXPECT_EQ(events[1].type, TraceEventType::kPoolMiss);
  EXPECT_EQ(rec.recorded(kTraceCatWal), 1u);
  EXPECT_EQ(rec.recorded(kTraceCatPool), 1u);
  EXPECT_EQ(rec.dropped(kTraceCatWal), 0u);
}

TEST(TraceRingTest, OverwritesOldestAndCountsDrops) {
  // The minimum ring is 64 events; emit 64 WAL appends to fill it, then
  // 10 pool misses that must overwrite the 10 oldest appends.
  TraceRecorder rec(SmallRing(64));
  for (uint64_t i = 0; i < 64; ++i) {
    rec.Emit(TraceEventType::kWalAppend, i);
  }
  for (uint64_t i = 0; i < 10; ++i) {
    rec.Emit(TraceEventType::kPoolMiss, i);
  }
  EXPECT_EQ(rec.recorded(kTraceCatWal), 64u);
  EXPECT_EQ(rec.recorded(kTraceCatPool), 10u);
  // The evicted events were all WAL appends, classified as such.
  EXPECT_EQ(rec.dropped(kTraceCatWal), 10u);
  EXPECT_EQ(rec.dropped(kTraceCatPool), 0u);

  // Snapshot additionally sacrifices the oldest surviving slot: a
  // writer may be mid-overwrite on it (the next emit reuses that slot)
  // before the new head is published, so the reader cannot trust it.
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 63u);
  size_t appends = 0;
  uint64_t min_append_arg = ~0ull;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceEventType::kWalAppend) {
      ++appends;
      min_append_arg = std::min(min_append_arg, ev.arg);
    }
  }
  EXPECT_EQ(appends, 53u);
  EXPECT_EQ(min_append_arg, 11u);
}

TEST(TraceRingTest, CategoryMasking) {
  TraceOptions opts = SmallRing();
  opts.categories = kTraceCatWal;
  TraceRecorder rec(opts);
  EXPECT_TRUE(rec.enabled(kTraceCatWal));
  EXPECT_FALSE(rec.enabled(kTraceCatPool));
  rec.Emit(TraceEventType::kWalAppend, 1);
  rec.Emit(TraceEventType::kPoolMiss, 2);  // masked: not recorded
  EXPECT_EQ(rec.Snapshot().size(), 1u);
  EXPECT_EQ(rec.recorded(kTraceCatPool), 0u);

  rec.set_categories(kTraceCatAll);
  rec.Emit(TraceEventType::kPoolMiss, 3);
  EXPECT_EQ(rec.Snapshot().size(), 2u);

  rec.set_enabled(false);
  EXPECT_FALSE(rec.enabled(kTraceCatWal));
  rec.Emit(TraceEventType::kWalAppend, 4);
  EXPECT_EQ(rec.Snapshot().size(), 2u);

  // Re-enabling restores the configured mask.
  rec.set_enabled(true);
  EXPECT_TRUE(rec.enabled(kTraceCatPool));
}

TEST(TraceRingTest, AmbientQueryIdStampsEvents) {
  TraceRecorder rec(SmallRing());
  rec.Emit(TraceEventType::kWalAppend, 0);
  {
    TraceQueryScope scope(42);
    EXPECT_EQ(TraceRecorder::ThreadQueryId(), 42u);
    rec.Emit(TraceEventType::kPoolMiss, 0);
    {
      TraceQueryScope inner(43);
      rec.Emit(TraceEventType::kPoolEvict, 0);
    }
    EXPECT_EQ(TraceRecorder::ThreadQueryId(), 42u);
  }
  EXPECT_EQ(TraceRecorder::ThreadQueryId(), 0u);
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].query_id, 0u);
  EXPECT_EQ(events[1].query_id, 42u);
  EXPECT_EQ(events[2].query_id, 43u);
}

TEST(TraceRingTest, MultiThreadInterleaving) {
  // Each thread gets its own ring, so a big-enough ring drops nothing.
  TraceRecorder rec(SmallRing(4096));
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      TraceQueryScope scope(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        rec.Emit(TraceEventType::kWalAppend, i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(rec.recorded(kTraceCatWal), kThreads * kPerThread);
  EXPECT_EQ(rec.dropped(kTraceCatWal), 0u);
  std::vector<TraceEvent> events = rec.Snapshot();
  EXPECT_EQ(events.size(), kThreads * kPerThread);
  // Timestamps are globally non-decreasing after the merge sort.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
}

TEST(TraceRingTest, DumpWhileRecording) {
  // Writers hammer small rings (forcing wraparound) while the reader
  // dumps concurrently; under TSan this exercises the acquire/release
  // head protocol, and every dump must be a well-formed event list.
  TraceRecorder rec(SmallRing(64));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&rec, &stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rec.Emit(TraceEventType::kWalAppend, i++);
        rec.Emit(TraceEventType::kPoolMiss, i);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    std::string json = rec.DumpJson();
    EXPECT_EQ(json.compare(0, 1, "{"), 0);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.compare(json.size() - 2, 2, "]}"), 0);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) th.join();
}

TEST(TraceRingTest, ByteStableDumpForFixedSequence) {
  // EmitAt pins timestamps and query ids, so the dump is a pure function
  // of the event sequence.
  auto build = [] {
    auto rec = std::make_unique<TraceRecorder>(SmallRing());
    rec->EmitAt(100, TraceEventType::kQueryBegin, 0, 7);
    rec->EmitAt(110, TraceEventType::kSpanBegin,
                static_cast<uint64_t>(TraceSpanId::kPlan), 7);
    rec->EmitAt(150, TraceEventType::kSpanEnd,
                static_cast<uint64_t>(TraceSpanId::kPlan), 7);
    rec->EmitAt(160, TraceEventType::kWalAppend, 512, 7);
    rec->EmitAt(200, TraceEventType::kQueryEnd, 3, 7);
    return rec;
  };
  auto a = build();
  auto b = build();
  std::string dump_a = a->DumpJson();
  EXPECT_EQ(dump_a, a->DumpJson());  // re-dump is stable
  EXPECT_EQ(dump_a, b->DumpJson());  // and a replay reproduces it
  EXPECT_NE(dump_a.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(dump_a.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(dump_a.find("\"name\":\"wal_append\""), std::string::npos);
  EXPECT_NE(dump_a.find("\"qid\":7"), std::string::npos);
}

TEST(TraceRingTest, DumpBalancesSpansAfterWrap) {
  // Fill the ring so span opens are overwritten while their closes
  // survive: the dump must drop the orphaned closes and synthetically
  // close dangling opens — B and E counts always match.
  TraceRecorder rec(SmallRing(64));
  rec.EmitAt(1, TraceEventType::kSpanBegin,
             static_cast<uint64_t>(TraceSpanId::kExecute), 1);
  for (uint64_t i = 0; i < 70; ++i) {  // overwrites the open above
    rec.EmitAt(10 + i, TraceEventType::kWalAppend, i, 1);
  }
  rec.EmitAt(100, TraceEventType::kSpanEnd,
             static_cast<uint64_t>(TraceSpanId::kExecute), 1);  // orphaned
  rec.EmitAt(110, TraceEventType::kSpanBegin,
             static_cast<uint64_t>(TraceSpanId::kSort), 1);  // dangling
  std::string json = rec.DumpJson();
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
  // The orphaned execute close is gone entirely...
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"execute\""), 0u);
  // ...and the dangling sort open was closed synthetically.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"sort\""), 2u);
}

TEST(TraceRingTest, DisabledRecorderIsSilent) {
  TraceOptions opts = SmallRing();
  opts.enabled = false;
  TraceRecorder rec(opts);
  rec.Emit(TraceEventType::kWalAppend, 1);
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_EQ(rec.recorded(kTraceCatWal), 0u);
}

}  // namespace
}  // namespace tcob
