#include "time/timeline.h"

#include <gtest/gtest.h>

namespace tcob {
namespace {

TEST(TimelineTest, AppendAndAsOf) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, 10), 1).ok());
  ASSERT_TRUE(tl.Append(Interval(10, 20), 2).ok());
  ASSERT_TRUE(tl.Append(Interval(25, kForever), 3).ok());
  EXPECT_EQ(tl.AsOf(0).value(), 1u);
  EXPECT_EQ(tl.AsOf(9).value(), 1u);
  EXPECT_EQ(tl.AsOf(10).value(), 2u);
  EXPECT_FALSE(tl.AsOf(22).has_value());  // gap (deleted period)
  EXPECT_EQ(tl.AsOf(25).value(), 3u);
  EXPECT_EQ(tl.AsOf(1'000'000).value(), 3u);
  EXPECT_TRUE(tl.IsLive());
}

TEST(TimelineTest, RejectsOverlap) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, 10), 1).ok());
  EXPECT_TRUE(tl.Append(Interval(5, 15), 2).IsInvalidArgument());
  EXPECT_TRUE(tl.Append(Interval(3, 4), 2).IsInvalidArgument());
}

TEST(TimelineTest, RejectsAppendAfterOpenEnded) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, kForever), 1).ok());
  EXPECT_TRUE(tl.Append(Interval(10, 20), 2).IsInvalidArgument());
}

TEST(TimelineTest, CloseLast) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, kForever), 1).ok());
  ASSERT_TRUE(tl.CloseLast(7).ok());
  EXPECT_FALSE(tl.IsLive());
  EXPECT_EQ(tl.back().valid, Interval(0, 7));
  ASSERT_TRUE(tl.Append(Interval(7, kForever), 2).ok());
  EXPECT_EQ(tl.AsOf(7).value(), 2u);
}

TEST(TimelineTest, CloseLastErrors) {
  VersionTimeline tl;
  EXPECT_TRUE(tl.CloseLast(5).IsInvalidArgument());  // empty
  ASSERT_TRUE(tl.Append(Interval(3, 9), 1).ok());
  EXPECT_TRUE(tl.CloseLast(5).IsInvalidArgument());  // already closed
  VersionTimeline tl2;
  ASSERT_TRUE(tl2.Append(Interval(3, kForever), 1).ok());
  EXPECT_TRUE(tl2.CloseLast(3).IsInvalidArgument());  // at begin
}

TEST(TimelineTest, Overlapping) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, 10), 1).ok());
  ASSERT_TRUE(tl.Append(Interval(10, 20), 2).ok());
  ASSERT_TRUE(tl.Append(Interval(20, 30), 3).ok());
  auto hits = tl.Overlapping(Interval(5, 25));
  ASSERT_EQ(hits.size(), 3u);
  hits = tl.Overlapping(Interval(10, 20));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].payload, 2u);
  EXPECT_TRUE(tl.Overlapping(Interval(30, 40)).empty());
  EXPECT_TRUE(tl.Overlapping(Interval::Empty()).empty());
}

TEST(TimelineTest, LifespanMergesContiguous) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, 10), 1).ok());
  ASSERT_TRUE(tl.Append(Interval(10, 20), 2).ok());
  ASSERT_TRUE(tl.Append(Interval(30, 40), 3).ok());
  TemporalElement span = tl.Lifespan();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span.intervals()[0], Interval(0, 20));
  EXPECT_EQ(span.intervals()[1], Interval(30, 40));
}

TEST(TimelineTest, BoundariesIn) {
  VersionTimeline tl;
  ASSERT_TRUE(tl.Append(Interval(0, 10), 1).ok());
  ASSERT_TRUE(tl.Append(Interval(10, 20), 2).ok());
  ASSERT_TRUE(tl.Append(Interval(25, kForever), 3).ok());
  auto b = tl.BoundariesIn(Interval(5, 30));
  // begins >= 5: 10, 25; finite ends < 30: 10, 20 -> {10, 20, 25}
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 10);
  EXPECT_EQ(b[1], 20);
  EXPECT_EQ(b[2], 25);
}

}  // namespace
}  // namespace tcob
