// EXPLAIN ANALYZE and per-query tracing: the trace ResultSet is
// well-formed for every storage strategy (serial and parallel), the
// result-level totals agree between parallelism 1 and >1, and the
// per-query trace reconciles with Database::MetricsSnapshot() deltas.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "workload/company.h"

namespace tcob {
namespace {

std::unique_ptr<Database> OpenCompanyDb(const std::string& dir,
                                        StorageStrategy strategy,
                                        size_t parallelism) {
  DatabaseOptions options;
  options.strategy = strategy;
  options.parallelism = parallelism;
  auto db = Database::Open(dir, options).value();
  CompanyConfig config;
  config.depts = 4;
  config.emps_per_dept = 3;
  config.projs_per_emp = 2;
  config.versions_per_atom = 4;
  auto handles = BuildCompany(db.get(), config);
  EXPECT_TRUE(handles.ok()) << handles.status().ToString();
  return db;
}

/// Indexes an EXPLAIN ANALYZE result as (section, metric) -> value.
std::map<std::pair<std::string, std::string>, Value> IndexTrace(
    const ResultSet& rs) {
  std::map<std::pair<std::string, std::string>, Value> out;
  for (const auto& row : rs.rows) {
    out.emplace(std::make_pair(row[0].AsString(), row[1].AsString()), row[2]);
  }
  return out;
}

class ExplainTest : public ::testing::TestWithParam<StorageStrategy> {};

TEST_P(ExplainTest, AnalyzeIsWellFormedSerialAndParallel) {
  TempDir dir;
  for (size_t parallelism : {size_t{1}, size_t{3}}) {
    auto db = OpenCompanyDb(dir.path() + "/p" + std::to_string(parallelism),
                            GetParam(), parallelism);
    auto r = db->Execute(
        "EXPLAIN ANALYZE SELECT ALL FROM DeptMol ORDER BY ROOT HISTORY");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const ResultSet& rs = r.value();
    ASSERT_EQ(rs.columns,
              (std::vector<std::string>{"SECTION", "METRIC", "VALUE"}));
    auto trace = IndexTrace(rs);

    EXPECT_EQ(trace.at({"query", "strategy"}).AsString(),
              StorageStrategyName(GetParam()));
    EXPECT_EQ(trace.at({"query", "temporal_mode"}).AsString(), "history");
    EXPECT_FALSE(trace.at({"query", "plan"}).AsString().empty());
    EXPECT_GE(trace.at({"query", "parallelism"}).AsInt(), 1);

    // Timing spans are present and sane.
    EXPECT_GT(trace.at({"timing", "total_us"}).AsDouble(), 0.0);
    EXPECT_GE(trace.at({"timing", "materialize_us"}).AsDouble(), 0.0);
    EXPECT_LE(trace.at({"timing", "execute_us"}).AsDouble(),
              trace.at({"timing", "total_us"}).AsDouble());

    // Result totals: 4 departments, multiple versions each.
    EXPECT_EQ(trace.at({"result", "molecules"}).AsInt(), 4);
    EXPECT_GT(trace.at({"result", "states"}).AsInt(), 0);
    EXPECT_GT(trace.at({"result", "rows"}).AsInt(), 0);
    EXPECT_GT(trace.at({"result", "atoms_visited"}).AsInt(), 0);

    // Storage work happened and the rates are rates.
    EXPECT_GT(trace.at({"store", "total_accesses"}).AsInt(), 0);
    double vc_rate = trace.at({"version_cache", "hit_rate"}).AsDouble();
    EXPECT_GE(vc_rate, 0.0);
    EXPECT_LE(vc_rate, 1.0);
    double bp_rate = trace.at({"buffer_pool", "hit_rate"}).AsDouble();
    EXPECT_GE(bp_rate, 0.0);
    EXPECT_LE(bp_rate, 1.0);

    // Parallel runs report per-worker timings; serial runs do not.
    size_t worker_rows = 0;
    for (const auto& [key, value] : trace) {
      if (key.first == "workers") ++worker_rows;
    }
    if (parallelism > 1) {
      EXPECT_GT(worker_rows, 1u);
      EXPECT_EQ(trace.at({"query", "parallelism"}).AsInt(),
                static_cast<int64_t>(worker_rows));
    } else {
      EXPECT_EQ(worker_rows, 0u);
    }
  }
}

TEST_P(ExplainTest, PlainExplainStillReturnsStaticPlan) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  auto r = db->Execute("EXPLAIN SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The static EXPLAIN output is a plan description, not a trace table.
  EXPECT_NE(r.value().columns,
            (std::vector<std::string>{"SECTION", "METRIC", "VALUE"}));
}

TEST_P(ExplainTest, ExplainApiWrapsSelect) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  auto traced = db->Explain("SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  auto trace = IndexTrace(traced.value());
  EXPECT_EQ(trace.at({"query", "temporal_mode"}).AsString(), "as-of");
  EXPECT_GT(trace.at({"result", "rows"}).AsInt(), 0);

  auto untraced = db->Explain("SELECT ALL FROM DeptMol VALID AT NOW",
                              /*analyze=*/false);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();

  auto bad = db->Explain("INSERT ATOM Dept (name = 'x') VALID IN [1, 2)");
  EXPECT_FALSE(bad.ok());
}

TEST_P(ExplainTest, SerialAndParallelResultTotalsAgree) {
  const std::vector<std::string> statements = {
      "SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT NOW",
      "SELECT ALL FROM DeptMol ORDER BY ROOT VALID IN [10, 40)",
      "SELECT ALL FROM DeptMol ORDER BY ROOT HISTORY",
  };
  TempDir dir;
  auto serial = OpenCompanyDb(dir.path() + "/serial", GetParam(), 1);
  auto parallel = OpenCompanyDb(dir.path() + "/parallel", GetParam(), 3);
  for (const std::string& mql : statements) {
    ASSERT_TRUE(serial->Execute(mql).ok()) << mql;
    QueryStats s = serial->last_query_stats();
    ASSERT_TRUE(parallel->Execute(mql).ok()) << mql;
    QueryStats p = parallel->last_query_stats();
    // Store-access and cache counts legitimately differ (per-worker
    // private caches re-pin shared atoms); the *results* must not.
    EXPECT_EQ(s.molecules, p.molecules) << mql;
    EXPECT_EQ(s.states, p.states) << mql;
    EXPECT_EQ(s.rows, p.rows) << mql;
    EXPECT_EQ(s.atoms_visited, p.atoms_visited) << mql;
  }
}

TEST_P(ExplainTest, TraceReconcilesWithMetricsSnapshot) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  MetricsSnapshot before = db->MetricsSnapshot();
  ASSERT_TRUE(
      db->Execute("SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT NOW").ok());
  MetricsSnapshot after = db->MetricsSnapshot();
  const QueryStats& trace = db->last_query_stats();

  auto delta = [&](const char* name) {
    return after.CounterOr(name, 0) - before.CounterOr(name, 0);
  };
  EXPECT_EQ(delta("tcob_queries_total"), 1u);
  EXPECT_EQ(delta("tcob_store_get_as_of_total"), trace.store.get_as_of);
  EXPECT_EQ(delta("tcob_store_get_versions_total"), trace.store.get_versions);
  EXPECT_EQ(delta("tcob_store_scan_as_of_total"), trace.store.scan_as_of);
  EXPECT_EQ(delta("tcob_store_scan_versions_total"),
            trace.store.scan_versions);
  EXPECT_EQ(delta("tcob_pool_fetches_total"), trace.pool.fetches);
  EXPECT_EQ(delta("tcob_pool_hits_total"), trace.pool.hits);
  EXPECT_EQ(delta("tcob_pool_misses_total"), trace.pool.misses);
  EXPECT_EQ(delta("tcob_vcache_atom_hits_total"), trace.cache.atom_hits);
  EXPECT_EQ(delta("tcob_vcache_atom_misses_total"), trace.cache.atom_misses);
  EXPECT_EQ(delta("tcob_vcache_versions_pinned_total"),
            trace.cache.versions_pinned);
  ASSERT_EQ(after.histograms.count("tcob_query_latency_us"), 1u);
  EXPECT_EQ(after.histograms.at("tcob_query_latency_us").count -
                before.histograms.at("tcob_query_latency_us").count,
            1u);
  EXPECT_GT(trace.store.Total(), 0u);
}

TEST_P(ExplainTest, RepeatedParallelQueriesGiveIdenticalCounterDeltas) {
  // The fan-out workers bump the shared store/pool counters
  // concurrently; the partitioning is deterministic, so two identical
  // runs must produce byte-identical deltas (exactness under
  // concurrency — covered by the TSan CI job).
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 4);
  const std::string mql = "SELECT ALL FROM DeptMol ORDER BY ROOT HISTORY";
  auto run = [&]() {
    MetricsSnapshot before = db->MetricsSnapshot();
    EXPECT_TRUE(db->Execute(mql).ok());
    MetricsSnapshot after = db->MetricsSnapshot();
    std::map<std::string, uint64_t> deltas;
    for (const auto& [name, value] : after.counters) {
      deltas[name] = value - before.CounterOr(name, 0);
    }
    deltas.erase("tcob_wal_size_bytes");  // gauge-like, not query work
    return deltas;
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.at("tcob_store_get_versions_total") +
                first.at("tcob_store_scan_versions_total") +
                first.at("tcob_store_get_as_of_total") +
                first.at("tcob_store_scan_as_of_total"),
            0u);
}

TEST(SlowQueryLogTest, StreamingCursorLogsOnceAtFinalize) {
  // A slowly drained cursor must produce exactly one slow-query line,
  // emitted at finalize (after the last row), stamped with the
  // streaming surface — not one line per Next() and nothing at open.
  std::mutex mu;
  std::vector<std::string> lines;
  SetLogSink([&](const LogEntry& entry, const std::string& formatted) {
    if (entry.level == LogLevel::kWarn) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(formatted);
    }
  });
  auto slow_lines = [&] {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const std::string& line : lines) {
      if (line.find("slow query") != std::string::npos) ++n;
    }
    return n;
  };
  {
    TempDir dir;
    DatabaseOptions options;
    options.slow_query_threshold_micros = 1;  // everything is "slow"
    auto db = Database::Open(dir.path() + "/db", options).value();
    CompanyConfig config;
    config.depts = 2;
    config.emps_per_dept = 2;
    config.projs_per_emp = 1;
    config.versions_per_atom = 2;
    ASSERT_TRUE(BuildCompany(db.get(), config).ok());
    auto cursor = db->Query("SELECT ALL FROM DeptMol VALID AT NOW");
    ASSERT_TRUE(cursor.ok());
    // Drain one row at a time; nothing may be logged mid-stream.
    std::vector<Value> row;
    size_t rows = 0;
    while (true) {
      auto more = cursor.value()->Next(&row);
      ASSERT_TRUE(more.ok());
      if (!more.value()) break;
      ++rows;
      if (rows == 1) {
        EXPECT_EQ(slow_lines(), 0u);
      }
    }
    EXPECT_GT(rows, 0u);
    cursor.value()->Close();
    EXPECT_EQ(slow_lines(), 1u);
    EXPECT_EQ(db->last_query_stats().surface, "streaming");
    EXPECT_EQ(db->last_query_stats().disposition, "ok");
  }
  SetLogSink(nullptr);
  bool streaming_stamp = false;
  for (const std::string& line : lines) {
    if (line.find("slow query") != std::string::npos &&
        line.find("surface: streaming") != std::string::npos) {
      streaming_stamp = true;
    }
  }
  EXPECT_TRUE(streaming_stamp);
}

TEST(SlowQueryLogTest, ThresholdTriggersWarnLog) {
  std::vector<std::string> lines;
  SetLogSink([&lines](const LogEntry& entry, const std::string& formatted) {
    if (entry.level == LogLevel::kWarn) lines.push_back(formatted);
  });
  {
    TempDir dir;
    DatabaseOptions options;
    options.slow_query_threshold_micros = 1;  // everything is "slow"
    auto db = Database::Open(dir.path() + "/db", options).value();
    CompanyConfig config;
    config.depts = 2;
    config.emps_per_dept = 2;
    config.projs_per_emp = 1;
    config.versions_per_atom = 2;
    ASSERT_TRUE(BuildCompany(db.get(), config).ok());
    ASSERT_TRUE(db->Execute("SELECT ALL FROM DeptMol VALID AT NOW").ok());
    EXPECT_GE(db->MetricsSnapshot().CounterOr("tcob_slow_queries_total", 0),
              1u);
  }
  SetLogSink(nullptr);
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("slow query") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ExplainTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return std::string(
                               StorageStrategyName(info.param));
                         });

}  // namespace
}  // namespace tcob
