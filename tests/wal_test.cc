#include "wal/wal.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/temp_dir.h"
#include "wal/log_record.h"

namespace tcob {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string Path() const { return dir_.path() + "/wal.log"; }
  TempDir dir_;
};

TEST_F(WalTest, AppendAndReadBack) {
  auto wal = WriteAheadLog::Open(Path()).value();
  ASSERT_TRUE(wal->Append(Slice("first")).ok());
  ASSERT_TRUE(wal->Append(Slice("second")).ok());
  ASSERT_TRUE(wal->Append(Slice("")).ok());
  std::vector<std::string> records;
  ASSERT_TRUE(wal->ReadAll([&](const Slice& rec) -> Result<bool> {
                   records.push_back(rec.ToString());
                   return true;
                 })
                  .ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "second");
  EXPECT_EQ(records[2], "");
}

TEST_F(WalTest, SurvivesReopen) {
  {
    auto wal = WriteAheadLog::Open(Path()).value();
    ASSERT_TRUE(wal->Append(Slice("persisted")).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(Path()).value();
  int count = 0;
  ASSERT_TRUE(wal->ReadAll([&](const Slice& rec) -> Result<bool> {
                   EXPECT_EQ(rec.ToString(), "persisted");
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 1);
  // Appends after reopen land after the existing tail.
  ASSERT_TRUE(wal->Append(Slice("more")).ok());
  count = 0;
  ASSERT_TRUE(wal->ReadAll([&](const Slice&) -> Result<bool> {
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST_F(WalTest, TornTailStopsScanCleanly) {
  {
    auto wal = WriteAheadLog::Open(Path()).value();
    ASSERT_TRUE(wal->Append(Slice("intact")).ok());
    ASSERT_TRUE(wal->Append(Slice("to-be-torn")).ok());
  }
  // Chop the last 3 bytes to simulate a crash mid-write.
  FILE* f = fopen(Path().c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(Path().c_str(), size - 3), 0);

  auto wal = WriteAheadLog::Open(Path()).value();
  std::vector<std::string> records;
  ASSERT_TRUE(wal->ReadAll([&](const Slice& rec) -> Result<bool> {
                   records.push_back(rec.ToString());
                   return true;
                 })
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "intact");
}

TEST_F(WalTest, CorruptPayloadStopsScan) {
  {
    auto wal = WriteAheadLog::Open(Path()).value();
    ASSERT_TRUE(wal->Append(Slice("good")).ok());
    ASSERT_TRUE(wal->Append(Slice("bad-checksum")).ok());
  }
  // Flip a payload byte of the second record.
  FILE* f = fopen(Path().c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  fseek(f, -1, SEEK_END);
  int c = fgetc(f);
  fseek(f, -1, SEEK_END);
  fputc(c ^ 0xFF, f);
  fclose(f);

  auto wal = WriteAheadLog::Open(Path()).value();
  int count = 0;
  ASSERT_TRUE(wal->ReadAll([&](const Slice&) -> Result<bool> {
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(WalTest, TruncateClearsLog) {
  auto wal = WriteAheadLog::Open(Path()).value();
  ASSERT_TRUE(wal->Append(Slice("gone")).ok());
  ASSERT_TRUE(wal->Truncate().ok());
  EXPECT_EQ(wal->SizeBytes().value(), 0u);
  int count = 0;
  ASSERT_TRUE(wal->ReadAll([&](const Slice&) -> Result<bool> {
                   ++count;
                   return true;
                 })
                  .ok());
  EXPECT_EQ(count, 0);
  // Still appendable afterwards.
  ASSERT_TRUE(wal->Append(Slice("new")).ok());
  EXPECT_GT(wal->SizeBytes().value(), 0u);
}

TEST_F(WalTest, EarlyStop) {
  auto wal = WriteAheadLog::Open(Path()).value();
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(wal->Append(Slice("r")).ok());
  int count = 0;
  ASSERT_TRUE(wal->ReadAll([&](const Slice&) -> Result<bool> {
                   return ++count < 4;
                 })
                  .ok());
  EXPECT_EQ(count, 4);
}

TEST(WalOpTest, EncodeDecodeAllKinds) {
  std::vector<AttrType> schema = {AttrType::kString, AttrType::kInt};
  auto lookup = [&schema](TypeId) -> Result<std::vector<AttrType>> {
    return schema;
  };

  WalOp insert;
  insert.type = WalOpType::kInsertAtom;
  insert.txn_id = 3;
  insert.atom_id = 42;
  insert.atom_type = 7;
  insert.valid_from = 100;
  insert.attrs = {Value::String("ada"), Value::Int(5)};
  std::string buf;
  ASSERT_TRUE(insert.Encode(schema, &buf).ok());
  WalOp decoded = WalOp::Decode(Slice(buf), lookup).value();
  EXPECT_EQ(decoded.type, WalOpType::kInsertAtom);
  EXPECT_EQ(decoded.atom_id, 42u);
  EXPECT_EQ(decoded.atom_type, 7u);
  EXPECT_EQ(decoded.valid_from, 100);
  ASSERT_EQ(decoded.attrs.size(), 2u);
  EXPECT_EQ(decoded.attrs[0].AsString(), "ada");

  WalOp connect;
  connect.type = WalOpType::kConnect;
  connect.link_type = 9;
  connect.from_id = 1;
  connect.to_id = 2;
  connect.valid_from = 55;
  buf.clear();
  ASSERT_TRUE(connect.Encode({}, &buf).ok());
  decoded = WalOp::Decode(Slice(buf), lookup).value();
  EXPECT_EQ(decoded.type, WalOpType::kConnect);
  EXPECT_EQ(decoded.link_type, 9u);
  EXPECT_EQ(decoded.from_id, 1u);
  EXPECT_EQ(decoded.to_id, 2u);
  EXPECT_EQ(decoded.valid_from, 55);

  WalOp del;
  del.type = WalOpType::kDeleteAtom;
  del.atom_id = 5;
  del.atom_type = 7;
  del.valid_from = 60;
  buf.clear();
  ASSERT_TRUE(del.Encode({}, &buf).ok());
  decoded = WalOp::Decode(Slice(buf), lookup).value();
  EXPECT_EQ(decoded.type, WalOpType::kDeleteAtom);
  EXPECT_EQ(decoded.atom_id, 5u);
}

}  // namespace
}  // namespace tcob
