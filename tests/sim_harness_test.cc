// Tests for the model-based simulation harness itself: the properties
// the fuzzer's verdicts rest on.
//
//   - determinism: one seed -> byte-identical run summaries,
//   - a smoke sweep across seeds passes and actually exercises the
//     interesting machinery (power cuts fire, queries get compared),
//   - instances that never lost an op produce byte-identical canonical
//     dumps across all strategies and parallelism levels,
//   - the oracle has teeth: a deliberately planted model bug is caught,
//     and the delta-debugging shrinker reduces the failing trace to a
//     handful of ops,
//   - a correct model on the same seeds stays green (the planted-bug
//     divergence is the bug, not harness noise).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.h"
#include "sim/harness.h"
#include "sim/shrink.h"
#include "sim/workload.h"

namespace tcob::sim {
namespace {

class SimHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kSilent);  // power cuts provoke error logs
  }
  void TearDown() override { SetLogLevel(saved_level_); }

  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(SimHarnessTest, RunSummaryIsBitReproducible) {
  GenOptions gen;
  gen.num_ops = 120;
  RunOptions options;
  RunResult first = RunSeed(7, gen, options);
  RunResult second = RunSeed(7, gen, options);
  EXPECT_TRUE(first.ok) << first.divergence;
  ASSERT_FALSE(first.summary_json.empty());
  EXPECT_EQ(first.summary_json, second.summary_json);
}

TEST_F(SimHarnessTest, GeneratedWorkloadIsSeedDeterministic) {
  GenOptions gen;
  gen.num_ops = 200;
  SimWorkload a = GenerateWorkload(42, gen);
  SimWorkload b = GenerateWorkload(42, gen);
  EXPECT_EQ(WorkloadToString(a), WorkloadToString(b));
  SimWorkload c = GenerateWorkload(43, gen);
  EXPECT_NE(WorkloadToString(a), WorkloadToString(c));
}

TEST_F(SimHarnessTest, SmokeSweepPassesAndExercisesCutsAndQueries) {
  GenOptions gen;
  gen.num_ops = 60;
  RunOptions options;
  uint64_t cuts = 0;
  uint64_t compared = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunResult r = RunSeed(seed, gen, options);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.divergence;
    for (const InstanceReport& inst : r.instances) {
      cuts += inst.cuts_fired;
      compared += inst.queries_compared;
    }
  }
  // The sweep must actually stress the machinery it claims to cover.
  EXPECT_GT(cuts, 0u) << "no power cut ever fired across the sweep";
  EXPECT_GT(compared, 0u) << "no query result was ever compared";
}

TEST_F(SimHarnessTest, NoCutInstancesDumpByteIdentically) {
  GenOptions gen;
  gen.num_ops = 80;
  gen.enable_cuts = false;  // identical streams on every instance
  RunOptions options;
  RunResult r = RunSeed(11, gen, options);
  ASSERT_TRUE(r.ok) << r.divergence;
  ASSERT_EQ(r.instances.size(), 6u);  // 3 strategies x parallelism {1,4}
  std::set<uint64_t> hashes;
  for (const InstanceReport& inst : r.instances) {
    EXPECT_EQ(inst.cuts_fired, 0u);
    EXPECT_FALSE(inst.retired);
    EXPECT_NE(inst.dump_hash, 0u);
    hashes.insert(inst.dump_hash);
  }
  // RunWorkload compares the dump bytes itself (a mismatch is a
  // divergence); the hashes in the report must agree too.
  EXPECT_EQ(hashes.size(), 1u);
}

TEST_F(SimHarnessTest, PlantedModelBugIsCaughtAndShrinksToFewOps) {
  GenOptions gen;
  gen.num_ops = 60;
  RunOptions options;
  options.bug = ModelBug::kIgnoreDeletes;
  options.single_instance = true;  // shrinking re-runs the harness a lot

  // The planted bug (deletes silently dropped by the model) diverges on
  // the first query that looks past a delete; some seed in a small range
  // must catch it.
  uint64_t failing_seed = 0;
  SimWorkload failing;
  for (uint64_t seed = 1; seed <= 8 && failing_seed == 0; ++seed) {
    SimWorkload w = GenerateWorkload(seed, gen);
    RunResult r = RunWorkload(w, options);
    if (!r.ok) {
      EXPECT_LT(r.failing_op, w.ops.size());
      EXPECT_FALSE(r.failing_instance.empty());
      failing_seed = seed;
      failing = std::move(w);
    }
  }
  ASSERT_NE(failing_seed, 0u) << "planted bug not caught on seeds 1..8";

  ShrinkResult shrunk = ShrinkWorkload(failing, options);
  ASSERT_TRUE(shrunk.input_failed);
  EXPECT_FALSE(shrunk.failure.ok);
  // ddmin must reduce the trace to a minimal core: in practice
  // insert + delete + query. Allow slack, but far below the input size.
  EXPECT_LE(shrunk.workload.ops.size(), 10u)
      << WorkloadToString(shrunk.workload);
  EXPECT_GE(shrunk.workload.ops.size(), 2u);

  // The same seeds with a correct model stay green: the divergence
  // above is the planted bug, not harness noise.
  RunOptions clean = options;
  clean.bug = ModelBug::kNone;
  RunResult ok_again = RunWorkload(failing, clean);
  EXPECT_TRUE(ok_again.ok) << ok_again.divergence;
}

}  // namespace
}  // namespace tcob::sim
