#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"

namespace tcob {
namespace {

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  auto tokens = Tokenize("a.b >= 12 AND s = 'it''s' [3, NOW)").value();
  ASSERT_GE(tokens.size(), 12u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[3].type, TokenType::kGe);
  EXPECT_EQ(tokens[4].int_value, 12);
  EXPECT_EQ(tokens[5].type, TokenType::kAnd);
  EXPECT_EQ(tokens[8].text, "it's");
  EXPECT_EQ(tokens[9].type, TokenType::kLBracket);
  EXPECT_EQ(tokens[11].type, TokenType::kComma);
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select Select SELECT").value();
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kSelect);
  EXPECT_EQ(tokens[2].type, TokenType::kSelect);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- comment\nALL").value();
  EXPECT_EQ(tokens[0].type, TokenType::kSelect);
  EXPECT_EQ(tokens[1].type, TokenType::kAll);
}

TEST(LexerTest, NegativeNumbersAndFloats) {
  auto tokens = Tokenize("-5 3.25 -0.5").value();
  EXPECT_EQ(tokens[0].int_value, -5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.25);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, -0.5);
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ! b").status().IsParseError());
  EXPECT_TRUE(Tokenize("@").status().IsParseError());
}

TEST(ParserTest, SelectAllDefaults) {
  Statement stmt = Parser::Parse("SELECT ALL FROM DeptMol").value();
  const auto& sel = std::get<SelectStmt>(stmt);
  EXPECT_TRUE(sel.select_all);
  EXPECT_EQ(sel.molecule_type, "DeptMol");
  EXPECT_EQ(sel.mode, TemporalMode::kAsOf);
  EXPECT_TRUE(sel.at_now);
  EXPECT_EQ(sel.where, nullptr);
}

TEST(ParserTest, SelectProjectionAndAt) {
  Statement stmt =
      Parser::Parse("SELECT Dept.name, Emp.salary FROM DeptMol VALID AT 17")
          .value();
  const auto& sel = std::get<SelectStmt>(stmt);
  ASSERT_EQ(sel.projection.size(), 2u);
  EXPECT_EQ(sel.projection[0].ToString(), "Dept.name");
  EXPECT_EQ(sel.projection[1].ToString(), "Emp.salary");
  EXPECT_FALSE(sel.at_now);
  EXPECT_EQ(sel.at, 17);
}

TEST(ParserTest, SelectWindowAndHistory) {
  Statement w =
      Parser::Parse("SELECT ALL FROM DeptMol VALID IN [5, 20)").value();
  const auto& sw = std::get<SelectStmt>(w);
  EXPECT_EQ(sw.mode, TemporalMode::kWindow);
  EXPECT_EQ(sw.window, Interval(5, 20));

  Statement wn =
      Parser::Parse("SELECT ALL FROM DeptMol VALID IN [5, NOW)").value();
  EXPECT_TRUE(std::get<SelectStmt>(wn).window_end_now);

  Statement h = Parser::Parse("SELECT ALL FROM DeptMol HISTORY").value();
  EXPECT_EQ(std::get<SelectStmt>(h).mode, TemporalMode::kHistory);
}

TEST(ParserTest, SelectWherePrecedence) {
  Statement stmt =
      Parser::Parse(
          "SELECT ALL FROM M WHERE a.x = 1 OR b.y = 2 AND NOT c.z = 3")
          .value();
  const auto& sel = std::get<SelectStmt>(stmt);
  ASSERT_NE(sel.where, nullptr);
  // Top node must be OR (AND binds tighter).
  const auto* top = std::get_if<BinaryExpr>(&sel.where->node);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->op, BinaryOp::kOr);
  const auto* right = std::get_if<BinaryExpr>(&top->right->node);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(right->op, BinaryOp::kAnd);
  EXPECT_NE(std::get_if<UnaryExpr>(&right->right->node), nullptr);
}

TEST(ParserTest, TemporalPredicates) {
  Statement stmt =
      Parser::Parse(
          "SELECT ALL FROM M WHERE VALID(Emp) OVERLAPS [5, 10) AND "
          "BEGIN(VALID(Emp)) >= 5")
          .value();
  const auto& sel = std::get<SelectStmt>(stmt);
  ASSERT_NE(sel.where, nullptr);
  const auto* top = std::get_if<BinaryExpr>(&sel.where->node);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->op, BinaryOp::kAnd);
  const auto* left = std::get_if<BinaryExpr>(&top->left->node);
  ASSERT_NE(left, nullptr);
  EXPECT_EQ(left->op, BinaryOp::kOverlaps);
  EXPECT_NE(std::get_if<ValidOfExpr>(&left->left->node), nullptr);
  EXPECT_NE(std::get_if<IntervalExpr>(&left->right->node), nullptr);
}

TEST(ParserTest, CreateAtomType) {
  Statement stmt =
      Parser::Parse("CREATE ATOM_TYPE Emp (name STRING, salary INT)")
          .value();
  const auto& s = std::get<CreateAtomTypeStmt>(stmt);
  EXPECT_EQ(s.name, "Emp");
  ASSERT_EQ(s.attributes.size(), 2u);
  EXPECT_EQ(s.attributes[0].first, "name");
  EXPECT_EQ(s.attributes[0].second, AttrType::kString);
  EXPECT_EQ(s.attributes[1].second, AttrType::kInt);
}

TEST(ParserTest, CreateLinkAndMolecule) {
  Statement link =
      Parser::Parse("CREATE LINK DeptEmp FROM Dept TO Emp").value();
  const auto& l = std::get<CreateLinkStmt>(link);
  EXPECT_EQ(l.name, "DeptEmp");
  EXPECT_EQ(l.from_type, "Dept");
  EXPECT_EQ(l.to_type, "Emp");

  Statement mol = Parser::Parse(
                      "CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES "
                      "(DeptEmp FORWARD, EmpProj, LeadBy BACKWARD)")
                      .value();
  const auto& m = std::get<CreateMoleculeTypeStmt>(mol);
  EXPECT_EQ(m.root_type, "Dept");
  ASSERT_EQ(m.edges.size(), 3u);
  EXPECT_TRUE(m.edges[0].second);
  EXPECT_TRUE(m.edges[1].second);   // default forward
  EXPECT_FALSE(m.edges[2].second);  // backward
}

TEST(ParserTest, DmlStatements) {
  Statement ins =
      Parser::Parse(
          "INSERT ATOM Emp (name='bob', salary=100) VALID FROM 5")
          .value();
  const auto& i = std::get<InsertStmt>(ins);
  EXPECT_EQ(i.type_name, "Emp");
  ASSERT_EQ(i.assignments.size(), 2u);
  EXPECT_EQ(i.assignments[0].second.AsString(), "bob");
  EXPECT_FALSE(i.from.is_now);
  EXPECT_EQ(i.from.at, 5);

  Statement ins_now =
      Parser::Parse("INSERT ATOM Emp (name='x')").value();
  EXPECT_TRUE(std::get<InsertStmt>(ins_now).from.is_now);

  Statement upd =
      Parser::Parse("UPDATE ATOM Emp 42 SET salary=120 VALID FROM 9")
          .value();
  const auto& u = std::get<UpdateStmt>(upd);
  EXPECT_EQ(u.atom_id, 42u);
  EXPECT_EQ(u.assignments[0].second.AsInt(), 120);

  Statement del = Parser::Parse("DELETE ATOM Emp 42 VALID FROM 12").value();
  EXPECT_EQ(std::get<DeleteStmt>(del).atom_id, 42u);

  Statement con =
      Parser::Parse("CONNECT DeptEmp FROM 3 TO 42 VALID FROM 5").value();
  const auto& c = std::get<ConnectStmt>(con);
  EXPECT_EQ(c.link_name, "DeptEmp");
  EXPECT_EQ(c.from_id, 3u);
  EXPECT_EQ(c.to_id, 42u);

  Statement dis =
      Parser::Parse("DISCONNECT DeptEmp FROM 3 TO 42 VALID FROM 9").value();
  EXPECT_EQ(std::get<DisconnectStmt>(dis).to_id, 42u);
}

TEST(ParserTest, NullLiteralInAssignment) {
  Statement ins =
      Parser::Parse("INSERT ATOM Emp (name=NULL, salary=1)").value();
  EXPECT_TRUE(std::get<InsertStmt>(ins).assignments[0].second.is_null());
}

TEST(ParserTest, ShowCatalog) {
  Statement stmt = Parser::Parse("SHOW CATALOG").value();
  EXPECT_TRUE(std::holds_alternative<ShowCatalogStmt>(stmt));
}

TEST(ParserTest, ScriptSplitsStatements) {
  auto stmts = Parser::ParseScript(
                   "CREATE ATOM_TYPE A (x INT); "
                   "INSERT ATOM A (x=1) VALID FROM 2;\n"
                   "SELECT ALL FROM M;")
                   .value();
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<CreateAtomTypeStmt>(stmts[0]));
  EXPECT_TRUE(std::holds_alternative<InsertStmt>(stmts[1]));
  EXPECT_TRUE(std::holds_alternative<SelectStmt>(stmts[2]));
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(Parser::Parse("SELECT").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("SELECT ALL FROM").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("SELECT ALL M").status().IsParseError());
  EXPECT_TRUE(
      Parser::Parse("SELECT ALL FROM M VALID").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("CREATE ATOM_TYPE X (a BLOB)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parser::Parse("INSERT Emp (x=1)").status().IsParseError());
  EXPECT_TRUE(
      Parser::Parse("SELECT ALL FROM M extra").status().IsParseError());
  EXPECT_TRUE(Parser::Parse("SELECT ALL FROM M VALID IN [NOW, 5)")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace tcob
