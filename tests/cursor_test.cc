// Streaming cursor execution: Database::Query must stream exactly the
// rows Database::Execute materializes — same order, same columns, same
// message — for every storage strategy and parallelism, and must clean
// up correctly when the consumer abandons the stream early.

#include "query/cursor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/temp_dir.h"
#include "db/database.h"
#include "workload/company.h"

namespace tcob {
namespace {

std::unique_ptr<Database> OpenCompanyDb(const std::string& dir,
                                        StorageStrategy strategy,
                                        size_t parallelism) {
  DatabaseOptions options;
  options.strategy = strategy;
  options.parallelism = parallelism;
  auto db = Database::Open(dir, options).value();
  CompanyConfig config;
  config.depts = 4;
  config.emps_per_dept = 3;
  config.projs_per_emp = 2;
  config.versions_per_atom = 4;
  auto handles = BuildCompany(db.get(), config);
  EXPECT_TRUE(handles.ok()) << handles.status().ToString();
  return db;
}

/// Drains a cursor with the given batch size; rows land in `*rows`.
Status Drain(Cursor* cursor, size_t batch_rows,
             std::vector<std::vector<Value>>* rows) {
  rows->clear();
  std::vector<std::vector<Value>> batch;
  for (;;) {
    Result<size_t> pulled = cursor->NextBatch(batch_rows, &batch);
    if (!pulled.ok()) return pulled.status();
    for (std::vector<Value>& row : batch) rows->push_back(std::move(row));
    if (pulled.value() < batch_rows) return Status::OK();
  }
}

const char* const kStreamableQueries[] = {
    "SELECT ALL FROM DeptMol VALID AT NOW",
    "SELECT Emp.name, Emp.salary FROM DeptMol WHERE Emp.salary > 0 "
    "VALID AT NOW",
    "SELECT ALL FROM DeptMol HISTORY",
    "SELECT Dept.name, Emp.salary FROM DeptMol VALID IN [12, 30)",
};

class CursorTest : public ::testing::TestWithParam<StorageStrategy> {};

TEST_P(CursorTest, StreamsExactlyTheMaterializedResult) {
  TempDir dir;
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    auto db = OpenCompanyDb(dir.path() + "/p" + std::to_string(parallelism),
                            GetParam(), parallelism);
    for (const char* mql : kStreamableQueries) {
      auto expected = db->Execute(mql);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      for (size_t batch_rows : {size_t{1}, size_t{7}, size_t{100000}}) {
        auto cursor = db->Query(mql);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        EXPECT_EQ(cursor.value()->columns(), expected.value().columns);
        std::vector<std::vector<Value>> rows;
        ASSERT_TRUE(Drain(cursor.value().get(), batch_rows, &rows).ok());
        EXPECT_EQ(cursor.value()->message(), expected.value().message);
        cursor.value()->Close();
        ASSERT_EQ(rows.size(), expected.value().rows.size())
            << mql << " batch " << batch_rows << " p" << parallelism;
        for (size_t i = 0; i < rows.size(); ++i) {
          EXPECT_EQ(rows[i], expected.value().rows[i])
              << mql << " row " << i;
        }
      }
    }
  }
}

TEST_P(CursorTest, PipelineBreakersFallBackToMaterializedCursor) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  for (const char* mql :
       {"SELECT COUNT(*), AVG(Emp.salary) FROM DeptMol VALID AT NOW",
        "SELECT Emp.name FROM DeptMol ORDER BY Emp.name VALID AT NOW"}) {
    auto expected = db->Execute(mql);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto cursor = db->Query(mql);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<std::vector<Value>> rows;
    ASSERT_TRUE(Drain(cursor.value().get(), 3, &rows).ok());
    cursor.value()->Close();
    ASSERT_EQ(rows.size(), expected.value().rows.size()) << mql;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i], expected.value().rows[i]) << mql;
    }
    // The materialized fallback buffers the whole result.
    EXPECT_EQ(db->last_query_stats().peak_buffered_rows, rows.size());
  }
}

TEST_P(CursorTest, EarlyCloseStopsProductionCleanly) {
  TempDir dir;
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    auto db = OpenCompanyDb(dir.path() + "/p" + std::to_string(parallelism),
                            GetParam(), parallelism);
    auto cursor = db->Query("SELECT ALL FROM DeptMol HISTORY");
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<Value> row;
    auto first = cursor.value()->Next(&row);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value());
    cursor.value()->Close();  // abandon mid-stream
    // The database stays fully usable; the finalize hook already ran,
    // so the trace reflects the truncated stream.
    EXPECT_GE(db->last_query_stats().rows_streamed, 1u);
    auto again = db->Execute("SELECT ALL FROM DeptMol VALID AT NOW");
    EXPECT_TRUE(again.ok()) << again.status().ToString();
  }
}

TEST_P(CursorTest, DestructionWithoutCloseAlsoCleansUp) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 4);
  {
    auto cursor = db->Query("SELECT ALL FROM DeptMol HISTORY");
    ASSERT_TRUE(cursor.ok());
    std::vector<Value> row;
    ASSERT_TRUE(cursor.value()->Next(&row).ok());
    // Cursor destroyed here without an explicit Close.
  }
  auto again = db->Execute("SELECT ALL FROM DeptMol VALID AT NOW");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_P(CursorTest, DatabaseTeardownRightAfterAbandonJoinsProducer) {
  // Regression: abandoning a mid-stream cursor and destroying the
  // Database immediately afterwards must join the producer thread
  // before the engine it reads from is torn down. Under TSan/ASan a
  // leaked producer racing teardown fails this test.
  TempDir dir;
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    auto db = OpenCompanyDb(dir.path() + "/p" + std::to_string(parallelism),
                            GetParam(), parallelism);
    auto cursor = db->Query("SELECT ALL FROM DeptMol HISTORY");
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<Value> row;
    ASSERT_TRUE(cursor.value()->Next(&row).ok());
    cursor.value().reset();  // abandon mid-stream, no Close
    db.reset();              // immediate teardown
  }
}

TEST_P(CursorTest, CancelFromSecondThreadAbortsDrain) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 4);
  auto cursor = db->Query("SELECT ALL FROM DeptMol HISTORY");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Value> row;
  ASSERT_TRUE(cursor.value()->Next(&row).ok());
  std::thread canceller([&]() { cursor.value()->Cancel(); });
  canceller.join();
  // Cancel is sticky: every later pull reports Cancelled, in bounded
  // time, regardless of how much of the stream was still pending.
  std::vector<std::vector<Value>> rest;
  Status drained = Drain(cursor.value().get(), 16, &rest);
  ASSERT_FALSE(drained.ok());
  EXPECT_TRUE(drained.IsCancelled()) << drained.ToString();
  cursor.value()->Close();
  // The database remains fully usable.
  auto again = db->Execute("SELECT ALL FROM DeptMol VALID AT NOW");
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_P(CursorTest, PlanTimeErrorSurfacesAtOpen) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  auto cursor = db->Query("SELECT ALL FROM NoSuchMol VALID AT NOW");
  EXPECT_FALSE(cursor.ok());
  auto materialized = db->Execute("SELECT ALL FROM NoSuchMol VALID AT NOW");
  EXPECT_EQ(cursor.status().code(), materialized.status().code());
}

TEST_P(CursorTest, TraceReportsFlatPeakBufferedRowsWhenStreaming) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  auto cursor = db->Query("SELECT ALL FROM DeptMol HISTORY");
  ASSERT_TRUE(cursor.ok());
  std::vector<std::vector<Value>> rows;
  ASSERT_TRUE(Drain(cursor.value().get(), 64, &rows).ok());
  cursor.value()->Close();
  const QueryStats& stats = db->last_query_stats();
  EXPECT_EQ(stats.rows_streamed, rows.size());
  EXPECT_EQ(stats.rows, rows.size());
  ASSERT_GT(rows.size(), 0u);
  // The queue never buffers more than its capacity (1024 rows) plus one
  // in-flight batch; with a large result this is far below the total.
  EXPECT_LE(stats.peak_buffered_rows, 1024u + 64u);
  EXPECT_GT(stats.peak_buffered_rows, 0u);
  EXPECT_GT(stats.first_row_us, 0.0);
  EXPECT_LE(stats.first_row_us, stats.total_us + 500.0);
}

TEST_P(CursorTest, NonSelectStatementsYieldMaterializedCursors) {
  TempDir dir;
  auto db = OpenCompanyDb(dir.path() + "/db", GetParam(), 1);
  auto cursor = db->Query("SHOW CATALOG;");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<std::vector<Value>> rows;
  EXPECT_TRUE(Drain(cursor.value().get(), 10, &rows).ok());
  cursor.value()->Close();
  auto insert = db->Query("CREATE ATOM_TYPE Extra (note STRING)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_FALSE(insert.value()->message().empty());
  insert.value()->Close();
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, CursorTest,
    ::testing::Values(StorageStrategy::kSnapshot, StorageStrategy::kIntegrated,
                      StorageStrategy::kSeparated),
    [](const ::testing::TestParamInfo<StorageStrategy>& info) {
      return std::string(StorageStrategyName(info.param));
    });

}  // namespace
}  // namespace tcob
