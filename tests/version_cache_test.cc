#include "mad/version_cache.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/temp_dir.h"
#include "tstore/store_factory.h"

namespace tcob {
namespace {

/// Exercises the query-scoped cache against every storage strategy: one
/// pinned fetch per object, hit/miss accounting, and probe results
/// identical to the direct store paths.
class VersionCacheTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 512);
    store_ = MakeTemporalStore(GetParam(), pool_.get(), "store", {});
    links_ = std::make_unique<LinkStore>(pool_.get(), "links");
    emp_ = catalog_.CreateAtomType("Emp", {{"name", AttrType::kString},
                                           {"salary", AttrType::kInt}})
               .value();
    emp_emp_ = catalog_.CreateLinkType("Mentor", emp_, emp_).value();
  }

  const AtomTypeDef& EmpT() { return *catalog_.GetAtomType(emp_).value(); }
  const LinkTypeDef& Mentor() {
    return *catalog_.GetLinkType(emp_emp_).value();
  }

  /// Emp #1 with versions [10,20), [20,30), gap, [40, forever).
  void BuildVersionedAtom() {
    ASSERT_TRUE(store_->Insert(EmpT(), 1,
                               {Value::String("ada"), Value::Int(100)}, 10)
                    .ok());
    ASSERT_TRUE(store_->Update(EmpT(), 1,
                               {Value::String("ada"), Value::Int(200)}, 20)
                    .ok());
    ASSERT_TRUE(store_->Delete(EmpT(), 1, 30).ok());
    ASSERT_TRUE(store_->Insert(EmpT(), 1,
                               {Value::String("ada"), Value::Int(300)}, 40)
                    .ok());
  }

  TempDir dir_;
  Catalog catalog_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TemporalAtomStore> store_;
  std::unique_ptr<LinkStore> links_;
  TypeId emp_;
  LinkTypeId emp_emp_;
};

TEST_P(VersionCacheTest, PinFetchesEachAtomOnce) {
  BuildVersionedAtom();
  VersionCache cache(store_.get(), links_.get());
  store_->ResetAccessStats();

  auto first = cache.Pin(EmpT(), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value()->found);
  EXPECT_EQ(first.value()->versions.size(), 3u);
  auto second = cache.Pin(EmpT(), 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());

  EXPECT_EQ(cache.stats().atom_misses, 1u);
  EXPECT_EQ(cache.stats().atom_hits, 1u);
  EXPECT_EQ(store_->access_stats().get_versions, 1u);
  EXPECT_EQ(store_->access_stats().Total(), 1u);
}

TEST_P(VersionCacheTest, AsOfMatchesStoreGetAsOf) {
  BuildVersionedAtom();
  VersionCache cache(store_.get(), links_.get());
  for (Timestamp t : {Timestamp(5), Timestamp(10), Timestamp(19),
                      Timestamp(25), Timestamp(35), Timestamp(40),
                      Timestamp(99)}) {
    SCOPED_TRACE("t=" + std::to_string(t));
    auto direct = store_->GetAsOf(EmpT(), 1, t);
    ASSERT_TRUE(direct.ok());
    auto cached = cache.AsOf(EmpT(), 1, t);
    ASSERT_TRUE(cached.ok());
    if (!direct.value().has_value()) {
      EXPECT_EQ(cached.value(), nullptr);
    } else {
      ASSERT_NE(cached.value(), nullptr);
      EXPECT_EQ(cached.value()->version_no, direct.value()->version_no);
      EXPECT_EQ(cached.value()->valid, direct.value()->valid);
      EXPECT_TRUE(cached.value()->attrs[1].Equals(direct.value()->attrs[1]));
    }
  }
  // 7 probes, one atom: exactly one miss.
  EXPECT_EQ(cache.stats().atom_misses, 1u);
  EXPECT_EQ(cache.stats().atom_hits, 6u);
}

TEST_P(VersionCacheTest, NeverInsertedAtomIsNegativeCached) {
  VersionCache cache(store_.get(), links_.get());
  store_->ResetAccessStats();
  EXPECT_TRUE(cache.AsOf(EmpT(), 99, 10).status().IsNotFound());
  EXPECT_TRUE(cache.AsOf(EmpT(), 99, 20).status().IsNotFound());
  // The negative result is pinned too: one store round-trip only.
  EXPECT_EQ(store_->access_stats().Total(), 1u);
  EXPECT_EQ(cache.stats().atom_hits, 1u);
}

TEST_P(VersionCacheTest, WindowClipsPinnedVersions) {
  BuildVersionedAtom();
  VersionCache cache(store_.get(), links_.get(), Interval(20, 30));
  auto entry = cache.Pin(EmpT(), 1);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ(entry.value()->versions.size(), 1u);
  EXPECT_EQ(entry.value()->versions[0].valid, Interval(20, 30));
  auto at = cache.AsOf(EmpT(), 1, 25);
  ASSERT_TRUE(at.ok());
  ASSERT_NE(at.value(), nullptr);
  EXPECT_EQ(at.value()->attrs[1].AsInt(), 200);
}

TEST_P(VersionCacheTest, NeighborsArePinnedAndFiltered) {
  BuildVersionedAtom();
  ASSERT_TRUE(store_->Insert(EmpT(), 2,
                             {Value::String("bob"), Value::Int(50)}, 10)
                  .ok());
  ASSERT_TRUE(links_->Connect(Mentor(), 1, 2, 10).ok());
  ASSERT_TRUE(links_->Disconnect(Mentor(), 1, 2, 25).ok());

  VersionCache cache(store_.get(), links_.get());
  auto pinned = cache.Neighbors(Mentor(), 1, true);
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned.value()->size(), 1u);
  EXPECT_EQ((*pinned.value())[0].second, Interval(10, 25));

  for (Timestamp t : {Timestamp(5), Timestamp(15), Timestamp(30)}) {
    SCOPED_TRACE("t=" + std::to_string(t));
    auto direct = links_->NeighborsAsOf(Mentor(), 1, true, t);
    ASSERT_TRUE(direct.ok());
    auto cached = cache.NeighborsAsOf(Mentor(), 1, true, t);
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached.value(), direct.value());
  }
  EXPECT_EQ(cache.stats().link_misses, 1u);
  EXPECT_EQ(cache.stats().link_hits, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, VersionCacheTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
