#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"

namespace tcob {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override { SlottedPage::Init(data_, PageType::kData); }

  char data_[kPageSize];
};

TEST_F(SlottedPageTest, InitState) {
  SlottedPage page(data_);
  EXPECT_EQ(page.type(), PageType::kData);
  EXPECT_EQ(page.slot_count(), 0);
  EXPECT_EQ(page.live_count(), 0);
  EXPECT_EQ(page.next_page(), kInvalidPageNo);
  EXPECT_GT(page.FreeSpace(), 4000u);
}

TEST_F(SlottedPageTest, InsertGetRoundTrip) {
  SlottedPage page(data_);
  auto slot = page.Insert(Slice("hello world"));
  ASSERT_TRUE(slot.ok());
  auto rec = page.Get(slot.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().ToString(), "hello world");
}

TEST_F(SlottedPageTest, MultipleInserts) {
  SlottedPage page(data_);
  std::vector<uint16_t> slots;
  for (int i = 0; i < 50; ++i) {
    auto slot = page.Insert(Slice("record-" + std::to_string(i)));
    ASSERT_TRUE(slot.ok());
    slots.push_back(slot.value());
  }
  EXPECT_EQ(page.live_count(), 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(page.Get(slots[i]).value().ToString(),
              "record-" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, DeleteAndSlotReuse) {
  SlottedPage page(data_);
  uint16_t s0 = page.Insert(Slice("aaa")).value();
  uint16_t s1 = page.Insert(Slice("bbb")).value();
  ASSERT_TRUE(page.Delete(s0).ok());
  EXPECT_TRUE(page.Get(s0).status().IsNotFound());
  EXPECT_EQ(page.live_count(), 1);
  // New insert reuses the vacant slot.
  uint16_t s2 = page.Insert(Slice("ccc")).value();
  EXPECT_EQ(s2, s0);
  EXPECT_EQ(page.Get(s1).value().ToString(), "bbb");
  EXPECT_EQ(page.Get(s2).value().ToString(), "ccc");
}

TEST_F(SlottedPageTest, DeleteErrors) {
  SlottedPage page(data_);
  EXPECT_TRUE(page.Delete(0).IsNotFound());
  uint16_t s = page.Insert(Slice("x")).value();
  ASSERT_TRUE(page.Delete(s).ok());
  EXPECT_TRUE(page.Delete(s).IsNotFound());
}

TEST_F(SlottedPageTest, UpdateInPlaceShrink) {
  SlottedPage page(data_);
  uint16_t s = page.Insert(Slice("a long record body")).value();
  ASSERT_TRUE(page.Update(s, Slice("tiny")).ok());
  EXPECT_EQ(page.Get(s).value().ToString(), "tiny");
}

TEST_F(SlottedPageTest, UpdateGrowViaCompaction) {
  SlottedPage page(data_);
  uint16_t s = page.Insert(Slice("small")).value();
  page.Insert(Slice("other")).value();
  std::string big(1000, 'z');
  ASSERT_TRUE(page.Update(s, Slice(big)).ok());
  EXPECT_EQ(page.Get(s).value().ToString(), big);
}

TEST_F(SlottedPageTest, FillUntilFull) {
  SlottedPage page(data_);
  std::string rec(100, 'r');
  int inserted = 0;
  for (;;) {
    auto slot = page.Insert(Slice(rec));
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++inserted;
    ASSERT_LT(inserted, 100);  // must terminate
  }
  // ~ (4096-12) / 104 records fit.
  EXPECT_GE(inserted, 35);
}

TEST_F(SlottedPageTest, MaxRecordSizeFits) {
  SlottedPage page(data_);
  std::string rec(SlottedPage::kMaxRecordSize, 'm');
  auto slot = page.Insert(Slice(rec));
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page.Get(slot.value()).value().size(),
            SlottedPage::kMaxRecordSize);
  EXPECT_TRUE(page.Insert(Slice(rec + "x")).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  SlottedPage page(data_);
  std::string rec(500, 'a');
  std::vector<uint16_t> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(page.Insert(Slice(rec)).value());
  // Page is nearly full; delete every other record.
  for (int i = 0; i < 8; i += 2) ASSERT_TRUE(page.Delete(slots[i]).ok());
  // A 1500-byte record only fits after compaction.
  std::string big(1500, 'b');
  auto slot = page.Insert(Slice(big));
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ(page.Get(slot.value()).value().ToString(), big);
  // Survivors intact.
  for (int i = 1; i < 8; i += 2) {
    EXPECT_EQ(page.Get(slots[i]).value().ToString(), rec);
  }
}

TEST_F(SlottedPageTest, NextPageChain) {
  SlottedPage page(data_);
  page.set_next_page(42);
  EXPECT_EQ(page.next_page(), 42u);
}

// Randomized differential test against a std::map reference.
TEST_F(SlottedPageTest, RandomizedAgainstReference) {
  SlottedPage page(data_);
  Random rng(123);
  std::map<uint16_t, std::string> reference;
  for (int step = 0; step < 3000; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {  // insert
      std::string rec = rng.NextString(1 + rng.Uniform(200));
      auto slot = page.Insert(Slice(rec));
      if (slot.ok()) {
        ASSERT_EQ(reference.count(slot.value()), 0u);
        reference[slot.value()] = rec;
      }
    } else if (action < 8 && !reference.empty()) {  // delete
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(page.Delete(it->first).ok());
      reference.erase(it);
    } else if (!reference.empty()) {  // update
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      std::string rec = rng.NextString(1 + rng.Uniform(300));
      Status s = page.Update(it->first, Slice(rec));
      if (s.ok()) it->second = rec;
    }
    if (step % 500 == 0) {
      for (const auto& [slot, expected] : reference) {
        auto got = page.Get(slot);
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(got.value().ToString(), expected);
      }
      ASSERT_EQ(page.live_count(), reference.size());
    }
  }
}

}  // namespace
}  // namespace tcob
