#include "query/expr_eval.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace tcob {
namespace {

/// Parses the WHERE clause of a canned SELECT to get an expression.
ExprPtr ParseExpr(const std::string& predicate) {
  Statement stmt =
      Parser::Parse("SELECT ALL FROM M WHERE " + predicate).value();
  return std::move(std::get<SelectStmt>(stmt).where);
}

class ExprEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dept_ = catalog_.CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt}})
                .value();
    emp_ = catalog_.CreateAtomType("Emp", {{"name", AttrType::kString},
                                           {"salary", AttrType::kInt}})
               .value();
    // One dept (#1) with two emps (#2 low, #3 high).
    mol_.root = 1;
    mol_.atoms[1] = AtomVersion{1, dept_, 1, Interval(10, kForever),
                                {Value::String("R&D"), Value::Int(500)}};
    mol_.atoms[2] = AtomVersion{2, emp_, 1, Interval(10, 20),
                                {Value::String("ada"), Value::Int(100)}};
    mol_.atoms[3] = AtomVersion{3, emp_, 2, Interval(20, kForever),
                                {Value::String("bob"), Value::Int(900)}};
  }

  bool Holds(const std::string& predicate, Timestamp now = 100) {
    ExprPtr expr = ParseExpr(predicate);
    ExprEvaluator eval(&catalog_, now);
    auto r = eval.Satisfies(*expr, mol_);
    EXPECT_TRUE(r.ok()) << predicate << ": " << r.status().ToString();
    return r.ok() && r.value();
  }

  Catalog catalog_;
  TypeId dept_, emp_;
  Molecule mol_;
};

TEST_F(ExprEvalTest, SimpleComparisons) {
  EXPECT_TRUE(Holds("Dept.budget = 500"));
  EXPECT_FALSE(Holds("Dept.budget = 501"));
  EXPECT_TRUE(Holds("Dept.budget >= 500"));
  EXPECT_TRUE(Holds("Dept.budget != 3"));
  EXPECT_TRUE(Holds("Dept.name = 'R&D'"));
  EXPECT_FALSE(Holds("Dept.name = 'Sales'"));
}

TEST_F(ExprEvalTest, ExistentialOverEmployees) {
  // Some employee earns > 500 (bob).
  EXPECT_TRUE(Holds("Emp.salary > 500"));
  // Some employee earns < 500 (ada).
  EXPECT_TRUE(Holds("Emp.salary < 500"));
  // No employee earns > 5000.
  EXPECT_FALSE(Holds("Emp.salary > 5000"));
}

TEST_F(ExprEvalTest, LogicalConnectives) {
  EXPECT_TRUE(Holds("Dept.budget = 500 AND Emp.salary = 900"));
  EXPECT_FALSE(Holds("Dept.budget = 1 AND Emp.salary = 900"));
  EXPECT_TRUE(Holds("Dept.budget = 1 OR Emp.salary = 900"));
  EXPECT_TRUE(Holds("NOT Dept.budget = 1"));
  // Existential subtlety: NOT (salary = 100) holds for bob's binding.
  EXPECT_TRUE(Holds("NOT Emp.salary = 100"));
}

TEST_F(ExprEvalTest, SingleBindingSeesOneAtom) {
  // Within one binding the same Emp is referenced consistently: no single
  // employee has both salaries.
  EXPECT_FALSE(Holds("Emp.salary = 100 AND Emp.salary = 900"));
  EXPECT_TRUE(Holds("Emp.salary = 100 OR Emp.salary = 900"));
}

TEST_F(ExprEvalTest, CrossTypeComparison) {
  // Some employee out-earns the department budget (bob 900 > 500).
  EXPECT_TRUE(Holds("Emp.salary > Dept.budget"));
  EXPECT_TRUE(Holds("Emp.salary < Dept.budget"));
}

TEST_F(ExprEvalTest, TemporalPredicates) {
  EXPECT_TRUE(Holds("VALID(Emp) OVERLAPS [15, 25)"));
  EXPECT_TRUE(Holds("VALID(Dept) CONTAINS [100, 200)"));
  EXPECT_FALSE(Holds("VALID(Dept) BEFORE [0, 5)"));
  EXPECT_TRUE(Holds("VALID(Emp) BEFORE [50, 60)"));  // ada's [10,20)
  EXPECT_TRUE(Holds("VALID(Emp) MEETS [20, 30)"));
  EXPECT_TRUE(Holds("VALID(Emp) DURING [5, 30)"));   // ada inside
  EXPECT_TRUE(Holds("VALID(Dept) CONTAINS 12"));
}

TEST_F(ExprEvalTest, BoundaryFunctions) {
  EXPECT_TRUE(Holds("BEGIN(VALID(Dept)) = 10"));
  EXPECT_TRUE(Holds("END(VALID(Emp)) = 20"));  // ada's version ends at 20
  EXPECT_TRUE(Holds("BEGIN(VALID(Emp)) >= 10"));
  EXPECT_FALSE(Holds("BEGIN(VALID(Dept)) > 10"));
}

TEST_F(ExprEvalTest, NowResolvesToEvaluationClock) {
  EXPECT_TRUE(Holds("VALID(Dept) CONTAINS NOW", /*now=*/50));
  EXPECT_TRUE(Holds("BEGIN(VALID(Dept)) < NOW", /*now=*/50));
  EXPECT_FALSE(Holds("BEGIN(VALID(Dept)) > NOW", /*now=*/50));
}

TEST_F(ExprEvalTest, NullComparisonsAreFalse) {
  mol_.atoms[2].attrs[1] = Value::Null(AttrType::kInt);
  EXPECT_FALSE(Holds("Emp.salary < 50 AND Emp.name = 'ada'"));
  // The non-null binding still satisfies.
  EXPECT_TRUE(Holds("Emp.salary = 900"));
}

TEST_F(ExprEvalTest, UnreferencedTypeMissingMakesUnsatisfiable) {
  catalog_.CreateAtomType("Proj", {{"title", AttrType::kString}}).value();
  EXPECT_FALSE(Holds("Proj.title = 'x'"));  // molecule has no Proj atom
}

TEST_F(ExprEvalTest, TypeErrorsSurface) {
  ExprPtr expr = ParseExpr("Emp.salary = 'abc'");
  ExprEvaluator eval(&catalog_, 100);
  auto r = eval.Satisfies(*expr, mol_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());

  ExprPtr non_bool = ParseExpr("Emp.salary");
  auto r2 = eval.Satisfies(*non_bool, mol_);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsTypeError());
}

TEST_F(ExprEvalTest, UnknownAttributeReported) {
  ExprPtr expr = ParseExpr("Emp.bogus = 1");
  ExprEvaluator eval(&catalog_, 100);
  auto r = eval.Satisfies(*expr, mol_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExprEvalTest, CollectTypesFindsAllReferences) {
  ExprPtr expr = ParseExpr(
      "Dept.budget > 0 AND (VALID(Emp) OVERLAPS [0, 5) OR "
      "BEGIN(VALID(Proj)) = 3)");
  std::set<std::string> types;
  ExprEvaluator::CollectTypes(*expr, &types);
  EXPECT_EQ(types, (std::set<std::string>{"Dept", "Emp", "Proj"}));
}

TEST_F(ExprEvalTest, EnumerateBindingsCartesian) {
  ExprEvaluator eval(&catalog_, 100);
  auto bindings =
      eval.EnumerateBindings(mol_, {"Dept", "Emp"}).value();
  EXPECT_EQ(bindings.size(), 2u);  // 1 dept x 2 emps
  auto none = eval.EnumerateBindings(mol_, {"Dept", "Proj"});
  // Proj type exists in catalog? Not created here -> lookup error.
  EXPECT_FALSE(none.ok());
}

}  // namespace
}  // namespace tcob
