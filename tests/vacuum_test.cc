#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"
#include "query/parser.h"

namespace tcob {
namespace {

class VacuumTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.strategy = GetParam();
    auto db = Database::Open(dir_.path() + "/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  /// One dept with an emp updated at t = 10, 20, ..., 100.
  void PopulateHistory() {
    dept_ = Run("INSERT ATOM Dept (name='R&D', budget=1) VALID FROM 10")
                .inserted_id;
    emp_ = Run("INSERT ATOM Emp (name='ada', salary=10) VALID FROM 10")
               .inserted_id;
    Run("CONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
        std::to_string(emp_) + " VALID FROM 10");
    for (Timestamp t = 20; t <= 100; t += 10) {
      Run("UPDATE ATOM Emp " + std::to_string(emp_) + " SET salary=" +
          std::to_string(t) + " VALID FROM " + std::to_string(t));
    }
    db_->SetNow(150);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  AtomId dept_ = kInvalidAtomId;
  AtomId emp_ = kInvalidAtomId;
};

TEST_P(VacuumTest, RemovesOnlyPreCutoffVersions) {
  PopulateHistory();
  const AtomTypeDef* emp_type = db_->catalog().GetAtomTypeByName("Emp").value();
  ASSERT_EQ(db_->store()->GetVersions(*emp_type, emp_, Interval::All())
                .value()
                .size(),
            10u);
  // Versions: [10,20) ... [90,100), [100,inf). Cutoff 50 removes the
  // four versions ending at 20, 30, 40, 50.
  auto removed = db_->VacuumBefore(50);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value(), 4u);
  auto versions =
      db_->store()->GetVersions(*emp_type, emp_, Interval::All()).value();
  ASSERT_EQ(versions.size(), 6u);
  EXPECT_EQ(versions.front().valid, Interval(50, 60));
  EXPECT_EQ(versions.back().valid, Interval(100, kForever));
  // Queries after the cutoff are intact.
  EXPECT_EQ(Run("SELECT Emp.salary FROM DeptMol VALID AT 75").rows[0][1]
                .AsInt(),
            70);
  EXPECT_EQ(Run("SELECT ALL FROM DeptMol VALID AT NOW").RowCount(), 2u);
  // Queries before the cutoff now find no employee version.
  EXPECT_EQ(Run("SELECT Emp.salary FROM DeptMol VALID AT 25").RowCount(),
            0u);
}

TEST_P(VacuumTest, MqlVacuumStatement) {
  PopulateHistory();
  ResultSet r = Run("VACUUM BEFORE 50");
  EXPECT_NE(r.message.find("vacuumed 4"), std::string::npos) << r.message;
  // Idempotent: nothing more to remove.
  r = Run("VACUUM BEFORE 50");
  EXPECT_NE(r.message.find("vacuumed 0"), std::string::npos) << r.message;
}

TEST_P(VacuumTest, FullyDeadAtomsDisappear) {
  PopulateHistory();
  AtomId doomed =
      Run("INSERT ATOM Emp (name='gone', salary=1) VALID FROM 10")
          .inserted_id;
  Run("DELETE ATOM Emp " + std::to_string(doomed) + " VALID FROM 30");
  ASSERT_TRUE(db_->VacuumBefore(40).ok());
  const AtomTypeDef* emp_type = db_->catalog().GetAtomTypeByName("Emp").value();
  auto versions = db_->store()->GetVersions(*emp_type, doomed, Interval::All());
  // Either the atom is entirely forgotten or it reports no versions.
  if (versions.ok()) {
    EXPECT_TRUE(versions.value().empty());
  } else {
    EXPECT_TRUE(versions.status().IsNotFound());
  }
  // Surviving atoms unaffected.
  EXPECT_EQ(Run("SELECT ALL FROM DeptMol VALID AT NOW").RowCount(), 2u);
}

TEST_P(VacuumTest, LinksAndIndexesVacuumedToo) {
  PopulateHistory();
  // A link that ended long ago.
  AtomId temp =
      Run("INSERT ATOM Emp (name='temp', salary=1) VALID FROM 10")
          .inserted_id;
  Run("CONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
      std::to_string(temp) + " VALID FROM 10");
  Run("DISCONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
      std::to_string(temp) + " VALID FROM 30");
  Run("DELETE ATOM Emp " + std::to_string(temp) + " VALID FROM 30");
  // And an attribute index over the employee salary history.
  Run("CREATE INDEX idx_salary ON Emp (salary)");

  ASSERT_TRUE(db_->VacuumBefore(50).ok());

  // The dead link interval is gone: even a pre-cutoff slice shows no
  // connection (its data was vacuumed).
  const LinkTypeDef* link = db_->catalog().GetLinkTypeByName("DeptEmp").value();
  auto spans =
      db_->links()->NeighborsIn(*link, dept_, true, Interval::All()).value();
  ASSERT_EQ(spans.size(), 1u);  // only the living emp's link remains
  EXPECT_EQ(spans[0].first, emp_);

  // Index entries for vacuumed versions are gone; surviving ones work.
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_salary").value();
  ValueRange all;
  auto pre = db_->attr_indexes()->LookupAsOf(*idx, all, 25).value();
  EXPECT_TRUE(pre.empty());
  auto post = db_->attr_indexes()->LookupAsOf(*idx, all, 75).value();
  EXPECT_EQ(post.size(), 1u);
}

TEST_P(VacuumTest, ReclaimsSpace) {
  PopulateHistory();
  // Blow the history up a bit to make the space delta visible.
  for (Timestamp t = 110; t <= 400; t += 1) {
    Run("UPDATE ATOM Emp " + std::to_string(emp_) + " SET salary=" +
        std::to_string(t) + " VALID FROM " + std::to_string(t));
  }
  auto before = db_->store()->SpaceStats().value();
  ASSERT_TRUE(db_->VacuumBefore(395).ok());
  auto after = db_->store()->SpaceStats().value();
  // Heap files never shrink (freed space is reused), but live version
  // count must have dropped dramatically.
  const AtomTypeDef* emp_type = db_->catalog().GetAtomTypeByName("Emp").value();
  auto versions =
      db_->store()->GetVersions(*emp_type, emp_, Interval::All()).value();
  EXPECT_LE(versions.size(), 7u);
  EXPECT_LE(after.heap_pages, before.heap_pages);
}

TEST_P(VacuumTest, DatabaseUsableAfterVacuumAndReopen) {
  PopulateHistory();
  ASSERT_TRUE(db_->VacuumBefore(50).ok());
  // Continue writing after the vacuum.
  Run("UPDATE ATOM Emp " + std::to_string(emp_) +
      " SET salary=999 VALID FROM 200");
  DatabaseOptions options;
  options.strategy = GetParam();
  db_.reset();
  db_ = Database::Open(dir_.path() + "/db", options).value();
  EXPECT_EQ(Run("SELECT Emp.salary FROM DeptMol VALID AT 250").rows[0][1]
                .AsInt(),
            999);
  const AtomTypeDef* emp_type = db_->catalog().GetAtomTypeByName("Emp").value();
  EXPECT_EQ(db_->store()->GetVersions(*emp_type, emp_, Interval::All())
                .value()
                .size(),
            7u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, VacuumTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
