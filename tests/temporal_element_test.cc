#include "time/temporal_element.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tcob {
namespace {

TEST(TemporalElementTest, AddMergesAdjacent) {
  TemporalElement e;
  e.Add(Interval(0, 5));
  e.Add(Interval(5, 10));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.intervals()[0], Interval(0, 10));
}

TEST(TemporalElementTest, AddKeepsGaps) {
  TemporalElement e;
  e.Add(Interval(0, 5));
  e.Add(Interval(7, 10));
  ASSERT_EQ(e.size(), 2u);
  EXPECT_TRUE(e.Contains(4));
  EXPECT_FALSE(e.Contains(5));
  EXPECT_FALSE(e.Contains(6));
  EXPECT_TRUE(e.Contains(7));
}

TEST(TemporalElementTest, AddBridgesGap) {
  TemporalElement e;
  e.Add(Interval(0, 5));
  e.Add(Interval(7, 10));
  e.Add(Interval(4, 8));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.intervals()[0], Interval(0, 10));
}

TEST(TemporalElementTest, AddOutOfOrder) {
  TemporalElement e;
  e.Add(Interval(20, 30));
  e.Add(Interval(0, 5));
  e.Add(Interval(10, 15));
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.intervals()[0], Interval(0, 5));
  EXPECT_EQ(e.intervals()[2], Interval(20, 30));
}

TEST(TemporalElementTest, SubtractSplits) {
  TemporalElement e(Interval(0, 10));
  e.Subtract(Interval(3, 6));
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.intervals()[0], Interval(0, 3));
  EXPECT_EQ(e.intervals()[1], Interval(6, 10));
}

TEST(TemporalElementTest, SubtractAll) {
  TemporalElement e(Interval(2, 8));
  e.Subtract(Interval(0, 10));
  EXPECT_TRUE(e.empty());
}

TEST(TemporalElementTest, IntersectTwoSets) {
  TemporalElement a;
  a.Add(Interval(0, 10));
  a.Add(Interval(20, 30));
  TemporalElement b;
  b.Add(Interval(5, 25));
  TemporalElement x = a.Intersect(b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_EQ(x.intervals()[0], Interval(5, 10));
  EXPECT_EQ(x.intervals()[1], Interval(20, 25));
}

TEST(TemporalElementTest, ComplementRoundTrip) {
  TemporalElement e;
  e.Add(Interval(5, 10));
  e.Add(Interval(20, kForever));
  TemporalElement c = e.Complement();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.intervals()[0], Interval(kMinTimestamp, 5));
  EXPECT_EQ(c.intervals()[1], Interval(10, 20));
  EXPECT_EQ(c.Complement(), e);
}

TEST(TemporalElementTest, Duration) {
  TemporalElement e;
  e.Add(Interval(0, 5));
  e.Add(Interval(10, 15));
  EXPECT_EQ(e.Duration(), 10);
  e.Add(Interval(100, kForever));
  EXPECT_EQ(e.Duration(), kForever);
}

// Property: for random sets A, B and instants t:
//   t in (A union B)      <=> t in A or t in B
//   t in (A intersect B)  <=> t in A and t in B
//   t in (A minus B)      <=> t in A and not t in B
TEST(TemporalElementPropertyTest, SetAlgebraPointwise) {
  Random rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    TemporalElement a, b;
    for (int i = 0; i < 8; ++i) {
      Timestamp s = static_cast<Timestamp>(rng.Uniform(100));
      a.Add(Interval(s, s + 1 + static_cast<Timestamp>(rng.Uniform(10))));
      Timestamp s2 = static_cast<Timestamp>(rng.Uniform(100));
      b.Add(Interval(s2, s2 + 1 + static_cast<Timestamp>(rng.Uniform(10))));
    }
    TemporalElement u = a.Union(b);
    TemporalElement x = a.Intersect(b);
    TemporalElement d = a.Difference(b);
    for (Timestamp t = 0; t < 120; ++t) {
      bool in_a = a.Contains(t), in_b = b.Contains(t);
      EXPECT_EQ(u.Contains(t), in_a || in_b) << "t=" << t;
      EXPECT_EQ(x.Contains(t), in_a && in_b) << "t=" << t;
      EXPECT_EQ(d.Contains(t), in_a && !in_b) << "t=" << t;
    }
    // Canonical form invariants: sorted, disjoint, non-adjacent.
    for (const TemporalElement* e : {&u, &x, &d}) {
      for (size_t i = 0; i + 1 < e->intervals().size(); ++i) {
        EXPECT_LT(e->intervals()[i].end, e->intervals()[i + 1].begin);
      }
    }
  }
}

}  // namespace
}  // namespace tcob
