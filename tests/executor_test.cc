// Row-shaping and statement-surface tests for the SELECT executor and
// the auxiliary statements (SHOW STATS, EXPLAIN), plus parser
// robustness sweeps.

#include "query/executor.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "query/parser.h"

namespace tcob {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.path() + "/db", {});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
    dept_ = Run("INSERT ATOM Dept (name='D', budget=9) VALID FROM 10")
                .inserted_id;
    for (int i = 0; i < 2; ++i) {
      AtomId emp = Run("INSERT ATOM Emp (name='e" + std::to_string(i) +
                       "', salary=" + std::to_string(100 * (i + 1)) +
                       ") VALID FROM 10")
                       .inserted_id;
      Run("CONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
          std::to_string(emp) + " VALID FROM 10");
      emps_.push_back(emp);
    }
    db_->SetNow(50);
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  AtomId dept_ = kInvalidAtomId;
  std::vector<AtomId> emps_;
};

TEST_F(ExecutorTest, SelectAllColumnShape) {
  ResultSet r = Run("SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[0], "ROOT");
  EXPECT_EQ(r.columns[1], "ATOM");
  EXPECT_EQ(r.columns[2], "TYPE");
  EXPECT_EQ(r.columns[3], "ATTRS");
  ASSERT_EQ(r.RowCount(), 3u);
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0].AsId(), dept_);
  }
}

TEST_F(ExecutorTest, WindowedColumnsIncludeValidity) {
  ResultSet r = Run("SELECT Dept.name FROM DeptMol HISTORY");
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[1], "VALID_FROM");
  EXPECT_EQ(r.columns[2], "VALID_TO");
  EXPECT_EQ(r.columns[3], "Dept.name");
}

TEST_F(ExecutorTest, ProjectionFansOutPerBinding) {
  ResultSet r = Run("SELECT Emp.name FROM DeptMol VALID AT NOW");
  EXPECT_EQ(r.RowCount(), 2u);  // one row per employee binding
  ResultSet cross = Run("SELECT Dept.name, Emp.name FROM DeptMol VALID AT NOW");
  EXPECT_EQ(cross.RowCount(), 2u);  // 1 dept x 2 emps
}

TEST_F(ExecutorTest, PredicateOnlyTypesDoNotDuplicateRows) {
  // Dept.name projected; Emp referenced only in the predicate. Two
  // satisfying Emp bindings must still produce ONE Dept row.
  ResultSet r = Run(
      "SELECT Dept.name FROM DeptMol WHERE Emp.salary > 0 VALID AT NOW");
  EXPECT_EQ(r.RowCount(), 1u);
}

TEST_F(ExecutorTest, ResultSetRendering) {
  ResultSet r = Run("SELECT Dept.name, Dept.budget FROM DeptMol VALID AT NOW");
  std::string table = r.ToString();
  EXPECT_NE(table.find("Dept.name"), std::string::npos);
  EXPECT_NE(table.find("'D'"), std::string::npos);
  EXPECT_NE(table.find("1 row(s)"), std::string::npos);
  ResultSet empty;
  empty.message = "done";
  EXPECT_EQ(empty.ToString(), "done");
}

TEST_F(ExecutorTest, ShowStatsExposesCoreMetrics) {
  ResultSet r = Run("SHOW STATS");
  ASSERT_GE(r.RowCount(), 10u);
  std::set<std::string> metrics;
  for (const auto& row : r.rows) metrics.insert(row[0].AsString());
  for (const char* expected :
       {"clock_now", "strategy", "store_heap_pages", "pool_fetches",
        "disk_reads", "wal_bytes"}) {
    EXPECT_TRUE(metrics.count(expected)) << expected;
  }
}

TEST_F(ExecutorTest, ExplainDoesNotExecute) {
  // EXPLAIN must not touch the data (fast even on big DBs) and must
  // describe the plan rather than return data rows.
  ResultSet r = Run("EXPLAIN SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_GE(r.RowCount(), 2u);
  EXPECT_EQ(r.columns[0], "PLAN");
  EXPECT_NE(r.rows[0][0].AsString().find("scan"), std::string::npos);
  EXPECT_NE(r.rows[1][0].AsString().find("temporal mode"),
            std::string::npos);
}

TEST_F(ExecutorTest, ParserNeverCrashesOnMangledInput) {
  // Robustness sweep: truncations and mutations of valid statements must
  // produce Status errors, never crashes.
  const std::string base =
      "SELECT Emp.name, SUM(Emp.salary) FROM DeptMol WHERE "
      "VALID(Emp) OVERLAPS [10, 20) AND Emp.salary >= 5 VALID IN [0, NOW)";
  for (size_t cut = 0; cut < base.size(); cut += 3) {
    (void)db_->Execute(base.substr(0, cut));
  }
  Random rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    for (int m = 0; m < 3; ++m) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(32 + rng.Uniform(95));
    }
    (void)db_->Execute(mutated);  // outcome irrelevant; must not crash
  }
  // Random garbage too.
  for (int trial = 0; trial < 200; ++trial) {
    (void)db_->Execute(rng.NextString(1 + rng.Uniform(80)));
  }
  SUCCEED();
}

TEST_F(ExecutorTest, BindingExplosionGuard) {
  // A degenerate molecule with many atoms of one type and a predicate
  // referencing the type twice stays within the binding cap (or errors
  // cleanly).
  for (int i = 0; i < 40; ++i) {
    AtomId emp = Run("INSERT ATOM Emp (name='x', salary=1) VALID FROM 10")
                     .inserted_id;
    Run("CONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
        std::to_string(emp) + " VALID FROM 10");
  }
  auto r = db_->Execute(
      "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 1 VALID AT NOW");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().RowCount(), 40u);
}

}  // namespace
}  // namespace tcob
