#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/temp_dir.h"

namespace tcob {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    auto heap = HeapFile::Open(pool_.get(), "heap");
    ASSERT_TRUE(heap.ok());
    heap_ = std::move(heap).value();
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  Rid rid = heap_->Insert(Slice("hello")).value();
  EXPECT_EQ(heap_->Get(rid).value(), "hello");
}

TEST_F(HeapFileTest, GetMissingSlotFails) {
  heap_->Insert(Slice("x")).value();
  auto r = heap_->Get(Rid(1, 99));
  EXPECT_FALSE(r.ok());
}

TEST_F(HeapFileTest, ManyRecordsAcrossPages) {
  std::map<uint64_t, std::string> expected;
  for (int i = 0; i < 500; ++i) {
    std::string rec = "record-" + std::to_string(i) + "-" +
                      std::string(64, static_cast<char>('a' + i % 26));
    Rid rid = heap_->Insert(Slice(rec)).value();
    expected[rid.Pack()] = rec;
  }
  for (const auto& [packed, rec] : expected) {
    EXPECT_EQ(heap_->Get(Rid::Unpack(packed)).value(), rec);
  }
  auto stats = heap_->Stats().value();
  EXPECT_EQ(stats.record_count, 500u);
  EXPECT_GT(stats.data_pages, 5u);
}

TEST_F(HeapFileTest, LongRecordUsesOverflow) {
  std::string big(20000, 'B');
  big[0] = 'S';
  big[19999] = 'E';
  Rid rid = heap_->Insert(Slice(big)).value();
  EXPECT_EQ(heap_->Get(rid).value(), big);
  auto stats = heap_->Stats().value();
  EXPECT_GE(stats.overflow_pages, 4u);  // 20000 / 4088 -> 5 pages
}

TEST_F(HeapFileTest, UpdateInPlace) {
  Rid rid = heap_->Insert(Slice("before")).value();
  Rid after = heap_->Update(rid, Slice("after!")).value();
  EXPECT_EQ(after, rid);
  EXPECT_EQ(heap_->Get(rid).value(), "after!");
}

TEST_F(HeapFileTest, UpdateGrowsIntoOverflow) {
  Rid rid = heap_->Insert(Slice("short")).value();
  std::string big(9000, 'g');
  Rid after = heap_->Update(rid, Slice(big)).value();
  EXPECT_EQ(heap_->Get(after).value(), big);
  // Shrinking back frees the overflow chain for reuse.
  Rid again = heap_->Update(after, Slice("small again")).value();
  EXPECT_EQ(heap_->Get(again).value(), "small again");
  std::string big2(9000, 'h');
  Rid rid2 = heap_->Insert(Slice(big2)).value();
  EXPECT_EQ(heap_->Get(rid2).value(), big2);
}

TEST_F(HeapFileTest, UpdateRelocatesWhenPageFull) {
  // Fill one page with mid-sized records, then grow one.
  std::vector<Rid> rids;
  std::string rec(700, 'r');
  for (int i = 0; i < 5; ++i) {
    rids.push_back(heap_->Insert(Slice(rec)).value());
  }
  std::string grown(1000, 'G');
  Rid moved = heap_->Update(rids[0], Slice(grown)).value();
  EXPECT_EQ(heap_->Get(moved).value(), grown);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(heap_->Get(rids[i]).value(), rec);
  }
}

TEST_F(HeapFileTest, DeleteRemovesRecord) {
  Rid a = heap_->Insert(Slice("keep")).value();
  Rid b = heap_->Insert(Slice("drop")).value();
  ASSERT_TRUE(heap_->Delete(b).ok());
  EXPECT_TRUE(heap_->Get(b).status().IsNotFound());
  EXPECT_EQ(heap_->Get(a).value(), "keep");
  EXPECT_EQ(heap_->Stats().value().record_count, 1u);
}

TEST_F(HeapFileTest, ScanVisitsAllRecords) {
  std::set<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    std::string rec = "scan-" + std::to_string(i);
    heap_->Insert(Slice(rec)).value();
    expected.insert(rec);
  }
  std::set<std::string> seen;
  ASSERT_TRUE(heap_
                  ->Scan([&](const Rid&, const Slice& rec) -> Result<bool> {
                    seen.insert(rec.ToString());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 50; ++i) heap_->Insert(Slice("r")).value();
  int count = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](const Rid&, const Slice&) -> Result<bool> {
                    return ++count < 10;
                  })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST_F(HeapFileTest, ScanIncludesOverflowRecords) {
  std::string big(15000, 'O');
  heap_->Insert(Slice("small")).value();
  heap_->Insert(Slice(big)).value();
  size_t found_big = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](const Rid&, const Slice& rec) -> Result<bool> {
                    if (rec.size() == big.size()) ++found_big;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(found_big, 1u);
}

TEST_F(HeapFileTest, PersistsAcrossReopen) {
  Rid rid = heap_->Insert(Slice("survivor")).value();
  std::string big(10000, 'P');
  Rid big_rid = heap_->Insert(Slice(big)).value();
  ASSERT_TRUE(pool_->FlushAll().ok());
  heap_.reset();
  pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
  heap_ = HeapFile::Open(pool_.get(), "heap").value();
  EXPECT_EQ(heap_->Get(rid).value(), "survivor");
  EXPECT_EQ(heap_->Get(big_rid).value(), big);
  EXPECT_EQ(heap_->Stats().value().record_count, 2u);
  // And the reopened file accepts inserts into existing pages.
  Rid fresh = heap_->Insert(Slice("fresh")).value();
  EXPECT_EQ(heap_->Get(fresh).value(), "fresh");
}

TEST_F(HeapFileTest, RandomizedAgainstReference) {
  Random rng(321);
  std::map<uint64_t, std::string> reference;
  for (int step = 0; step < 1500; ++step) {
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5 || reference.empty()) {
      size_t len = 1 + rng.Uniform(rng.Bernoulli(0.05) ? 8000 : 300);
      std::string rec = rng.NextString(len);
      Rid rid = heap_->Insert(Slice(rec)).value();
      ASSERT_EQ(reference.count(rid.Pack()), 0u);
      reference[rid.Pack()] = rec;
    } else if (action < 7) {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      ASSERT_TRUE(heap_->Delete(Rid::Unpack(it->first)).ok());
      reference.erase(it);
    } else {
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      size_t len = 1 + rng.Uniform(rng.Bernoulli(0.05) ? 6000 : 500);
      std::string rec = rng.NextString(len);
      Rid new_rid = heap_->Update(Rid::Unpack(it->first), Slice(rec)).value();
      if (new_rid.Pack() != it->first) {
        reference.erase(it);
        ASSERT_EQ(reference.count(new_rid.Pack()), 0u);
      }
      reference[new_rid.Pack()] = rec;
    }
  }
  for (const auto& [packed, rec] : reference) {
    ASSERT_EQ(heap_->Get(Rid::Unpack(packed)).value(), rec);
  }
  EXPECT_EQ(heap_->Stats().value().record_count, reference.size());
}

}  // namespace
}  // namespace tcob
