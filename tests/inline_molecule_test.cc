// Ad-hoc molecule definitions in the FROM clause ("FROM Root VIA ...") —
// the model's dynamically defined complex objects without a registered
// molecule type.

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"

namespace tcob {
namespace {

class InlineMoleculeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.path() + "/db", {});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE ATOM_TYPE Proj (title STRING)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE LINK EmpProj FROM Emp TO Proj");
    // No CREATE MOLECULE_TYPE — everything here is inline.
    dept_ = Run("INSERT ATOM Dept (name='D', budget=1) VALID FROM 10")
                .inserted_id;
    emp_ = Run("INSERT ATOM Emp (name='ada', salary=5) VALID FROM 10")
               .inserted_id;
    proj_ = Run("INSERT ATOM Proj (title='compiler') VALID FROM 10")
                .inserted_id;
    Run("CONNECT DeptEmp FROM " + std::to_string(dept_) + " TO " +
        std::to_string(emp_) + " VALID FROM 10");
    Run("CONNECT EmpProj FROM " + std::to_string(emp_) + " TO " +
        std::to_string(proj_) + " VALID FROM 10");
    db_->SetNow(50);
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  AtomId dept_ = 0, emp_ = 0, proj_ = 0;
};

TEST_F(InlineMoleculeTest, SingleEdgeInlineDefinition) {
  ResultSet r = Run("SELECT ALL FROM Dept VIA DeptEmp VALID AT NOW");
  EXPECT_EQ(r.RowCount(), 2u);  // dept + emp (proj not reachable)
}

TEST_F(InlineMoleculeTest, MultiEdgeInlineDefinition) {
  ResultSet r =
      Run("SELECT ALL FROM Dept VIA DeptEmp, EmpProj VALID AT NOW");
  EXPECT_EQ(r.RowCount(), 3u);
  ResultSet proj = Run(
      "SELECT Proj.title FROM Dept VIA DeptEmp, EmpProj VALID AT NOW");
  ASSERT_EQ(proj.RowCount(), 1u);
  EXPECT_EQ(proj.rows[0][1].AsString(), "compiler");
}

TEST_F(InlineMoleculeTest, BackwardEdgeRootsAtTheOtherEnd) {
  // Employee dossier rooted at Emp: department via the backward link.
  ResultSet r = Run(
      "SELECT Dept.name FROM Emp VIA DeptEmp BACKWARD VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "D");
  EXPECT_EQ(r.rows[0][0].AsId(), emp_);  // root is the employee
}

TEST_F(InlineMoleculeTest, InlineWorksWithEveryTemporalMode) {
  Run("UPDATE ATOM Emp " + std::to_string(emp_) +
      " SET salary=9 VALID FROM 20");
  EXPECT_EQ(Run("SELECT Emp.salary FROM Dept VIA DeptEmp VALID AT 15")
                .rows[0][1]
                .AsInt(),
            5);
  ResultSet history =
      Run("SELECT Emp.salary FROM Dept VIA DeptEmp HISTORY");
  EXPECT_EQ(history.RowCount(), 2u);
  ResultSet window =
      Run("SELECT Emp.salary FROM Dept VIA DeptEmp VALID IN [10, 30)");
  EXPECT_EQ(window.RowCount(), 2u);
  ResultSet agg = Run(
      "SELECT COUNT(*), MAX(Emp.salary) FROM Dept VIA DeptEmp HISTORY");
  EXPECT_EQ(agg.rows[0][1].AsInt(), 9);
}

TEST_F(InlineMoleculeTest, ExplainMentionsInlineDefinition) {
  ResultSet r =
      Run("EXPLAIN SELECT ALL FROM Dept VIA DeptEmp VALID AT NOW");
  bool mentioned = false;
  for (const auto& row : r.rows) {
    mentioned = mentioned ||
                row[0].AsString().find("inline") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST_F(InlineMoleculeTest, Validation) {
  // Unknown root type.
  EXPECT_TRUE(db_->Execute("SELECT ALL FROM Nope VIA DeptEmp")
                  .status()
                  .IsNotFound());
  // Unknown link.
  EXPECT_TRUE(db_->Execute("SELECT ALL FROM Dept VIA Nope")
                  .status()
                  .IsNotFound());
  // Disconnected edge: EmpProj does not touch Dept.
  EXPECT_TRUE(db_->Execute("SELECT ALL FROM Dept VIA EmpProj")
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tcob
