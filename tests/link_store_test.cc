#include "mad/link_store.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace tcob {
namespace {

class LinkStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    links_ = std::make_unique<LinkStore>(pool_.get(), "links");
    link_.id = 1;
    link_.name = "DeptEmp";
    link_.from_type = 1;
    link_.to_type = 2;
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LinkStore> links_;
  LinkTypeDef link_;
};

TEST_F(LinkStoreTest, ConnectAndNeighbors) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Connect(link_, 1, 11, 5).ok());
  auto fwd = links_->NeighborsAsOf(link_, 1, true, 7).value();
  ASSERT_EQ(fwd.size(), 2u);
  EXPECT_EQ(fwd[0], 10u);
  EXPECT_EQ(fwd[1], 11u);
  // Before the connection: nothing.
  EXPECT_TRUE(links_->NeighborsAsOf(link_, 1, true, 4).value().empty());
  // Reverse direction.
  auto rev = links_->NeighborsAsOf(link_, 10, false, 7).value();
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0], 1u);
}

TEST_F(LinkStoreTest, DisconnectClosesInterval) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Disconnect(link_, 1, 10, 9).ok());
  EXPECT_EQ(links_->NeighborsAsOf(link_, 1, true, 8).value().size(), 1u);
  EXPECT_TRUE(links_->NeighborsAsOf(link_, 1, true, 9).value().empty());
  // Reverse index also closed.
  EXPECT_TRUE(links_->NeighborsAsOf(link_, 10, false, 9).value().empty());
}

TEST_F(LinkStoreTest, ReconnectCreatesSecondInterval) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Disconnect(link_, 1, 10, 9).ok());
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 20).ok());
  EXPECT_EQ(links_->NeighborsAsOf(link_, 1, true, 7).value().size(), 1u);
  EXPECT_TRUE(links_->NeighborsAsOf(link_, 1, true, 15).value().empty());
  EXPECT_EQ(links_->NeighborsAsOf(link_, 1, true, 25).value().size(), 1u);
  auto spans = links_->NeighborsIn(link_, 1, true, Interval::All()).value();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].second, Interval(5, 9));
  EXPECT_EQ(spans[1].second, Interval(20, kForever));
}

TEST_F(LinkStoreTest, ErrorCases) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  // Double connect while open.
  EXPECT_TRUE(links_->Connect(link_, 1, 10, 7).IsAlreadyExists());
  // Idempotent replay of the same connect.
  EXPECT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  // Disconnect of a non-existent connection.
  EXPECT_TRUE(links_->Disconnect(link_, 2, 10, 7).IsNotFound());
  EXPECT_TRUE(links_->Disconnect(link_, 1, 99, 7).IsNotFound());
  // Disconnect before the connection began.
  EXPECT_TRUE(links_->Disconnect(link_, 1, 10, 5).IsInvalidArgument());
  ASSERT_TRUE(links_->Disconnect(link_, 1, 10, 9).ok());
  // Idempotent replay of the disconnect.
  EXPECT_TRUE(links_->Disconnect(link_, 1, 10, 9).ok());
  // Reconnect overlapping the closed interval.
  EXPECT_TRUE(links_->Connect(link_, 1, 10, 7).IsInvalidArgument());
}

TEST_F(LinkStoreTest, NeighborsInWindow) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Connect(link_, 1, 11, 50).ok());
  auto early = links_->NeighborsIn(link_, 1, true, Interval(0, 20)).value();
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].first, 10u);
  auto all = links_->NeighborsIn(link_, 1, true, Interval(0, 100)).value();
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(LinkStoreTest, PersistsAcrossReopen) {
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Connect(link_, 2, 20, 5).ok());
  ASSERT_TRUE(links_->Disconnect(link_, 1, 10, 9).ok());
  ASSERT_TRUE(links_->Flush().ok());
  links_.reset();
  pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
  links_ = std::make_unique<LinkStore>(pool_.get(), "links");
  EXPECT_TRUE(links_->NeighborsAsOf(link_, 1, true, 20).value().empty());
  EXPECT_EQ(links_->NeighborsAsOf(link_, 1, true, 7).value().size(), 1u);
  EXPECT_EQ(links_->NeighborsAsOf(link_, 2, true, 20).value().size(), 1u);
}

TEST_F(LinkStoreTest, DistinctLinkTypesIsolated) {
  LinkTypeDef other;
  other.id = 2;
  other.name = "EmpProj";
  other.from_type = 2;
  other.to_type = 3;
  ASSERT_TRUE(links_->Connect(link_, 1, 10, 5).ok());
  ASSERT_TRUE(links_->Connect(other, 1, 99, 5).ok());
  auto a = links_->NeighborsAsOf(link_, 1, true, 7).value();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 10u);
  auto b = links_->NeighborsAsOf(other, 1, true, 7).value();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 99u);
}

}  // namespace
}  // namespace tcob
