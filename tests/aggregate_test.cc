#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"

namespace tcob {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.path() + "/db", {});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
    // Two departments: R&D {100, 200, 300}, Sales {1000}.
    AtomId rnd =
        Run("INSERT ATOM Dept (name='R&D', budget=50) VALID FROM 10")
            .inserted_id;
    AtomId sales =
        Run("INSERT ATOM Dept (name='Sales', budget=60) VALID FROM 10")
            .inserted_id;
    int i = 0;
    for (int64_t salary : {100, 200, 300}) {
      AtomId emp = Run("INSERT ATOM Emp (name='r" + std::to_string(i++) +
                       "', salary=" + std::to_string(salary) +
                       ") VALID FROM 10")
                       .inserted_id;
      Run("CONNECT DeptEmp FROM " + std::to_string(rnd) + " TO " +
          std::to_string(emp) + " VALID FROM 10");
      emps_.push_back(emp);
    }
    AtomId seller =
        Run("INSERT ATOM Emp (name='s', salary=1000) VALID FROM 10")
            .inserted_id;
    Run("CONNECT DeptEmp FROM " + std::to_string(sales) + " TO " +
        std::to_string(seller) + " VALID FROM 10");
    emps_.push_back(seller);
    db_->SetNow(50);
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::vector<AtomId> emps_;
};

TEST_F(AggregateTest, CountStarCountsMolecules) {
  ResultSet r = Run("SELECT COUNT(*) FROM DeptMol VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.columns[0], "COUNT(*)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  // With a predicate: only the department with a high earner.
  r = Run("SELECT COUNT(*) FROM DeptMol WHERE Emp.salary > 500 VALID AT NOW");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(AggregateTest, SumAvgMinMaxOverEmployees) {
  ResultSet r = Run(
      "SELECT COUNT(Emp.salary), SUM(Emp.salary), AVG(Emp.salary), "
      "MIN(Emp.salary), MAX(Emp.salary) FROM DeptMol VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 1600.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 400.0);
  EXPECT_EQ(r.rows[0][3].AsInt(), 100);
  EXPECT_EQ(r.rows[0][4].AsInt(), 1000);
}

TEST_F(AggregateTest, PredicateFiltersAggregateInput) {
  ResultSet r = Run(
      "SELECT SUM(Emp.salary) FROM DeptMol WHERE Dept.name = 'R&D' "
      "VALID AT NOW");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 600.0);
}

TEST_F(AggregateTest, AggregatesSeeTimeSlices) {
  Run("UPDATE ATOM Emp " + std::to_string(emps_[0]) +
      " SET salary=900 VALID FROM 30");
  ResultSet before =
      Run("SELECT MAX(Emp.salary) FROM DeptMol WHERE Dept.name = 'R&D' "
          "VALID AT 20");
  ResultSet after =
      Run("SELECT MAX(Emp.salary) FROM DeptMol WHERE Dept.name = 'R&D' "
          "VALID AT 40");
  EXPECT_EQ(before.rows[0][0].AsInt(), 300);
  EXPECT_EQ(after.rows[0][0].AsInt(), 900);
}

TEST_F(AggregateTest, HistoryAggregatesFoldAcrossStates) {
  Run("UPDATE ATOM Emp " + std::to_string(emps_[3]) +
      " SET salary=2000 VALID FROM 30");
  // Sales molecule has two states; COUNT(*) over HISTORY counts states
  // across molecules: R&D (1 state) + Sales (2 states) = 3.
  ResultSet r = Run("SELECT COUNT(*) FROM DeptMol HISTORY");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  // MAX over the full history sees the peak salary.
  r = Run("SELECT MAX(Emp.salary) FROM DeptMol HISTORY");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2000);
}

TEST_F(AggregateTest, EmptyInputYieldsNullAndZero) {
  ResultSet r = Run(
      "SELECT COUNT(*), COUNT(Emp.salary), SUM(Emp.salary), MIN(Emp.name) "
      "FROM DeptMol WHERE Emp.salary > 99999 VALID AT NOW");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_EQ(r.rows[0][1].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][2].is_null());
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(AggregateTest, MinMaxOnStrings) {
  ResultSet r = Run(
      "SELECT MIN(Dept.name), MAX(Dept.name) FROM DeptMol VALID AT NOW");
  EXPECT_EQ(r.rows[0][0].AsString(), "R&D");
  EXPECT_EQ(r.rows[0][1].AsString(), "Sales");
}

TEST_F(AggregateTest, NullsSkipped) {
  AtomId ghost =
      Run("INSERT ATOM Emp (name='ghost') VALID FROM 10").inserted_id;
  (void)ghost;  // salary is NULL; unconnected, so not in any molecule —
  // connect it to make it visible.
  ResultSet depts = Run("SELECT COUNT(*) FROM DeptMol VALID AT NOW");
  EXPECT_EQ(depts.rows[0][0].AsInt(), 2);
}

TEST_F(AggregateTest, GroupByRootFoldsPerMolecule) {
  ResultSet r = Run(
      "SELECT COUNT(Emp.salary), SUM(Emp.salary) FROM DeptMol "
      "GROUP BY ROOT VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 2u);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.columns[0], "ROOT");
  // Groups come out in root-id order: R&D first, Sales second.
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 600.0);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 1000.0);
}

TEST_F(AggregateTest, GroupByRootWithPredicate) {
  ResultSet r = Run(
      "SELECT MAX(Emp.salary) FROM DeptMol WHERE Emp.salary >= 200 "
      "GROUP BY ROOT VALID AT NOW");
  // Both departments have an employee >= 200.
  ASSERT_EQ(r.RowCount(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 300);
  EXPECT_EQ(r.rows[1][1].AsInt(), 1000);
}

TEST_F(AggregateTest, GroupByRootOverHistory) {
  Run("UPDATE ATOM Emp " + std::to_string(emps_[3]) +
      " SET salary=5000 VALID FROM 30");
  ResultSet r =
      Run("SELECT MAX(Emp.salary) FROM DeptMol GROUP BY ROOT HISTORY");
  ASSERT_EQ(r.RowCount(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 300);   // R&D unchanged
  EXPECT_EQ(r.rows[1][1].AsInt(), 5000);  // Sales peak across states
}

TEST_F(AggregateTest, GroupByRequiresAggregates) {
  EXPECT_TRUE(db_->Execute("SELECT Emp.name FROM DeptMol GROUP BY ROOT")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(db_->Execute("SELECT ALL FROM DeptMol GROUP BY ROOT")
                  .status()
                  .IsParseError());
}

TEST_F(AggregateTest, Errors) {
  EXPECT_TRUE(db_->Execute("SELECT SUM(Dept.name) FROM DeptMol VALID AT NOW")
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(db_->Execute("SELECT SUM(*) FROM DeptMol").status()
                  .IsParseError());
  EXPECT_TRUE(db_->Execute("SELECT COUNT(*), Emp.name FROM DeptMol")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace tcob
