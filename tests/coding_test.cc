#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace tcob {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    std::string buf;
    PutFixed16(&buf, static_cast<uint16_t>(v));
    ASSERT_EQ(buf.size(), 2u);
    Slice in(buf);
    uint16_t out;
    ASSERT_TRUE(GetFixed16(&in, &out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xFFu, 0x12345678u, 0xFFFFFFFFu}) {
    std::string buf;
    PutFixed32(&buf, v);
    Slice in(buf);
    uint32_t out;
    ASSERT_TRUE(GetFixed32(&in, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEF},
                     std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutFixed64(&buf, v);
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetFixed64(&in, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> cases;
  for (int shift = 0; shift < 64; shift += 7) {
    cases.push_back(1ull << shift);
    cases.push_back((1ull << shift) - 1);
  }
  cases.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarsintRoundTripSignedValues) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345},
                    int64_t{-12345}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    std::string buf;
    PutVarsint64(&buf, v);
    Slice in(buf);
    int64_t out;
    ASSERT_TRUE(GetVarsint64(&in, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintUnderflowReported) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);  // chop the terminator
  Slice in(buf);
  uint64_t out;
  EXPECT_TRUE(GetVarint64(&in, &out).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(5000, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&in, &b).ok());
  ASSERT_TRUE(GetLengthPrefixed(&in, &c).ok());
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.size(), 5000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedUnderflow) {
  std::string buf;
  PutVarint64(&buf, 100);  // length claims 100, no payload
  Slice in(buf);
  Slice out;
  EXPECT_TRUE(GetLengthPrefixed(&in, &out).IsCorruption());
}

TEST(CodingTest, DoubleRoundTrip) {
  for (double v : {0.0, -0.0, 1.5, -123.25, 1e300, -1e-300}) {
    std::string buf;
    PutDouble(&buf, v);
    Slice in(buf);
    double out;
    ASSERT_TRUE(GetDouble(&in, &out).ok());
    EXPECT_EQ(out, v);
  }
}

// Property: the comparable encodings preserve order under memcmp.
TEST(CodingTest, ComparableU64PreservesOrder) {
  Random rng(7);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    std::string ea, eb;
    PutComparableU64(&ea, a);
    PutComparableU64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).compare(Slice(eb)) < 0);
    EXPECT_EQ(DecodeComparableU64(ea.data()), a);
  }
}

TEST(CodingTest, ComparableI64PreservesOrder) {
  Random rng(8);
  std::vector<int64_t> interesting = {
      std::numeric_limits<int64_t>::min(), -1, 0, 1,
      std::numeric_limits<int64_t>::max()};
  for (int i = 0; i < 2000; ++i) {
    interesting.push_back(static_cast<int64_t>(rng.Next()));
  }
  for (size_t i = 0; i + 1 < interesting.size(); ++i) {
    int64_t a = interesting[i];
    int64_t b = interesting[i + 1];
    std::string ea, eb;
    PutComparableI64(&ea, a);
    PutComparableI64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea).compare(Slice(eb)) < 0)
        << a << " vs " << b;
    EXPECT_EQ(DecodeComparableI64(ea.data()), a);
  }
}

TEST(CodingTest, ComparableDoublePreservesOrder) {
  std::vector<double> values = {-1e308, -100.5, -1.0, -1e-300, 0.0,
                                1e-300, 1.0,    2.5,   1e308};
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      std::string ei, ej;
      PutComparableDouble(&ei, values[i]);
      PutComparableDouble(&ej, values[j]);
      EXPECT_EQ(values[i] < values[j], Slice(ei).compare(Slice(ej)) < 0)
          << values[i] << " vs " << values[j];
    }
    std::string e;
    PutComparableDouble(&e, values[i]);
    EXPECT_EQ(DecodeComparableDouble(e.data()), values[i]);
  }
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  EXPECT_TRUE(Slice("x").starts_with(Slice("")));
}

}  // namespace
}  // namespace tcob
