#include "db/dump.h"

#include <gtest/gtest.h>

#include <set>

#include "common/temp_dir.h"
#include "db/database.h"
#include "workload/company.h"

namespace tcob {
namespace {

/// All 3x3 (source, target) strategy combinations: the dump is the
/// strategy-migration path, so every pairing must round-trip.
struct MigrationCase {
  StorageStrategy source;
  StorageStrategy target;
};

std::ostream& operator<<(std::ostream& os, const MigrationCase& c) {
  return os << StorageStrategyName(c.source) << "_to_"
            << StorageStrategyName(c.target);
}

class DumpTest : public ::testing::TestWithParam<MigrationCase> {
 protected:
  std::unique_ptr<Database> Open(const std::string& sub,
                                 StorageStrategy strategy) {
    DatabaseOptions options;
    options.strategy = strategy;
    auto db = Database::Open(dir_.path() + "/" + sub, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  /// Row order is not part of the query contract (roots stream in
  /// heap-scan order, which differs per storage layout), so snapshots
  /// compare rendered rows as sorted multisets.
  static std::vector<std::string> QuerySnapshot(Database* db) {
    std::vector<std::string> out;
    for (const char* q :
         {"SELECT ALL FROM DeptMol VALID AT 15",
          "SELECT ALL FROM DeptMol VALID AT NOW",
          "SELECT Emp.name, Emp.salary FROM DeptMol HISTORY",
          "SELECT COUNT(*), SUM(Emp.salary) FROM DeptMol VALID AT NOW",
          "SHOW CATALOG"}) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      if (!r.ok()) {
        out.push_back("ERR");
        continue;
      }
      std::multiset<std::string> lines;
      for (const auto& row : r.value().rows) {
        std::string line;
        for (const Value& v : row) line += v.ToString() + "|";
        lines.insert(std::move(line));
      }
      std::string rendered;
      for (const std::string& line : lines) rendered += line + "\n";
      out.push_back(std::move(rendered));
    }
    return out;
  }

  TempDir dir_;
};

TEST_P(DumpTest, RoundTripPreservesEverything) {
  auto src = Open("src", GetParam().source);
  CompanyConfig config;
  config.depts = 4;
  config.emps_per_dept = 3;
  config.versions_per_atom = 6;
  auto handles = BuildCompany(src.get(), config);
  ASSERT_TRUE(handles.ok());
  // Add spice: a deleted atom, a re-inserted atom, a closed link.
  const AtomId victim = handles->emps[0];
  ASSERT_TRUE(src->DeleteAtom("Emp", victim, src->Now()).ok());
  ASSERT_TRUE(src->Disconnect("DeptEmp", handles->depts[0],
                              handles->emps[1], src->Now())
                  .ok());
  std::vector<std::string> expected = QuerySnapshot(src.get());
  Timestamp src_now = src->Now();

  std::string dump_path = dir_.path() + "/db.tcobdump";
  ASSERT_TRUE(ExportDump(src.get(), dump_path).ok());

  auto dst = Open("dst", GetParam().target);
  Status imported = ImportDump(dst.get(), dump_path);
  ASSERT_TRUE(imported.ok()) << imported.ToString();

  EXPECT_EQ(dst->Now(), src_now);
  std::vector<std::string> actual = QuerySnapshot(dst.get());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query #" << i;
  }
  // The target keeps working: fresh inserts get non-colliding ids.
  auto fresh = dst->InsertAtom("Emp",
                               {{"name", Value::String("new")},
                                {"salary", Value::Int(1)},
                                {"rank", Value::Int(1)}},
                               dst->Now());
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value(), handles->projs.back());
}

TEST(DumpCrossStrategyTest, DumpBytesIdenticalAcrossStrategiesAfterReopen) {
  // Dump() is the canonical logical image: every strategy, after any
  // physical history (including a close/reopen cycle that checkpoints,
  // truncates the WAL and rewrites pages), must produce byte-identical
  // dumps for the same logical content. The simulation harness leans on
  // this for its cross-instance end-state comparison.
  TempDir dir;
  auto open = [&](const std::string& sub, StorageStrategy strategy) {
    DatabaseOptions options;
    options.strategy = strategy;
    auto db = Database::Open(dir.path() + "/" + sub, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };
  const StorageStrategy kAll[] = {StorageStrategy::kSnapshot,
                                  StorageStrategy::kIntegrated,
                                  StorageStrategy::kSeparated};
  std::string reference;
  for (StorageStrategy strategy : kAll) {
    std::string sub = std::string("x_") + StorageStrategyName(strategy);
    auto db = open(sub, strategy);
    CompanyConfig config;
    config.depts = 3;
    config.emps_per_dept = 2;
    config.versions_per_atom = 4;
    auto handles = BuildCompany(db.get(), config);
    ASSERT_TRUE(handles.ok());
    ASSERT_TRUE(db->DeleteAtom("Emp", handles->emps[0], db->Now()).ok());
    ASSERT_TRUE(db->Disconnect("DeptEmp", handles->depts[0],
                               handles->emps[1], db->Now())
                    .ok());
    // Reopen: recovery replays the WAL and the close path checkpoints —
    // the physical layout changes, the dump must not.
    db.reset();
    db = open(sub, strategy);
    auto before = db->Dump();
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    db.reset();
    db = open(sub, strategy);
    auto after = db->Dump();
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(before.value(), after.value())
        << StorageStrategyName(strategy) << ": dump unstable across reopen";
    if (reference.empty()) {
      reference = before.value();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(before.value(), reference)
          << StorageStrategyName(strategy)
          << ": dump differs from the first strategy's";
    }
  }
}

TEST_P(DumpTest, ImportIntoNonEmptyDatabaseRejected) {
  auto src = Open("src", GetParam().source);
  ASSERT_TRUE(
      src->CreateAtomType("X", {{"a", AttrType::kInt}}).ok());
  std::string dump_path = dir_.path() + "/db.tcobdump";
  ASSERT_TRUE(ExportDump(src.get(), dump_path).ok());
  EXPECT_TRUE(ImportDump(src.get(), dump_path).IsInvalidArgument());
}

TEST_P(DumpTest, MissingOrCorruptDump) {
  auto dst = Open("dst", GetParam().target);
  EXPECT_TRUE(
      ImportDump(dst.get(), dir_.path() + "/absent").IsNotFound());
  std::string garbage_path = dir_.path() + "/garbage";
  FILE* f = fopen(garbage_path.c_str(), "wb");
  fputs("not a dump", f);
  fclose(f);
  EXPECT_TRUE(ImportDump(dst.get(), garbage_path).IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DumpTest,
    ::testing::Values(
        MigrationCase{StorageStrategy::kSnapshot, StorageStrategy::kSnapshot},
        MigrationCase{StorageStrategy::kSnapshot,
                      StorageStrategy::kSeparated},
        MigrationCase{StorageStrategy::kIntegrated,
                      StorageStrategy::kSnapshot},
        MigrationCase{StorageStrategy::kIntegrated,
                      StorageStrategy::kSeparated},
        MigrationCase{StorageStrategy::kSeparated,
                      StorageStrategy::kIntegrated},
        MigrationCase{StorageStrategy::kSeparated,
                      StorageStrategy::kSeparated}),
    [](const ::testing::TestParamInfo<MigrationCase>& info) {
      return std::string(StorageStrategyName(info.param.source)) + "_to_" +
             StorageStrategyName(info.param.target);
    });

}  // namespace
}  // namespace tcob
