#include "db/database.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "query/parser.h"
#include "workload/company.h"

namespace tcob {
namespace {

class DatabaseTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.strategy = GetParam();
    return options;
  }

  std::unique_ptr<Database> OpenDb() {
    auto db = Database::Open(dir_.path() + "/db", Options());
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  /// Runs a ';'-separated script, asserting every statement succeeds;
  /// returns the last result.
  ResultSet Run(Database* db, const std::string& script) {
    auto stmts = Parser::ParseScript(script);
    EXPECT_TRUE(stmts.ok()) << stmts.status().ToString();
    ResultSet last;
    for (const Statement& stmt : stmts.value()) {
      auto r = db->ExecuteStatement(stmt);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) last = std::move(r).value();
    }
    return last;
  }

  TempDir dir_;
};

constexpr char kSchema[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
)";

TEST_P(DatabaseTest, EndToEndMqlFlow) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  AtomId dept =
      Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=500) VALID FROM 10")
          .inserted_id;
  AtomId ada =
      Run(db.get(), "INSERT ATOM Emp (name='ada', salary=100) VALID FROM 10")
          .inserted_id;
  AtomId bob =
      Run(db.get(), "INSERT ATOM Emp (name='bob', salary=200) VALID FROM 10")
          .inserted_id;
  Run(db.get(), "CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
                    std::to_string(ada) + " VALID FROM 10");
  Run(db.get(), "CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
                    std::to_string(bob) + " VALID FROM 10");

  ResultSet all = Run(db.get(), "SELECT ALL FROM DeptMol VALID AT 15");
  EXPECT_EQ(all.RowCount(), 3u);  // dept + 2 emps

  ResultSet proj = Run(
      db.get(),
      "SELECT Emp.name, Emp.salary FROM DeptMol WHERE Emp.salary > 150 "
      "VALID AT 15");
  ASSERT_EQ(proj.RowCount(), 1u);
  EXPECT_EQ(proj.rows[0][1].AsString(), "bob");

  // Raise ada's salary at 20; time-slices see each state.
  Run(db.get(), "UPDATE ATOM Emp " + std::to_string(ada) +
                    " SET salary=400 VALID FROM 20");
  ResultSet before =
      Run(db.get(), "SELECT Emp.name FROM DeptMol WHERE Emp.salary > 150 "
                    "VALID AT 15");
  ResultSet after =
      Run(db.get(), "SELECT Emp.name FROM DeptMol WHERE Emp.salary > 150 "
                    "VALID AT 25");
  EXPECT_EQ(before.RowCount(), 1u);
  EXPECT_EQ(after.RowCount(), 2u);

  // Partial update carried over the name.
  ResultSet ada_now = Run(db.get(),
                          "SELECT Emp.name FROM DeptMol WHERE "
                          "Emp.salary = 400 VALID AT 25");
  ASSERT_EQ(ada_now.RowCount(), 1u);
  EXPECT_EQ(ada_now.rows[0][1].AsString(), "ada");
}

TEST_P(DatabaseTest, HistoryQueryShowsEvolution) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  AtomId dept =
      Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=1) VALID FROM 10")
          .inserted_id;
  Run(db.get(), "UPDATE ATOM Dept " + std::to_string(dept) +
                    " SET budget=2 VALID FROM 20");
  Run(db.get(), "UPDATE ATOM Dept " + std::to_string(dept) +
                    " SET budget=3 VALID FROM 30");
  ResultSet h = Run(db.get(), "SELECT Dept.budget FROM DeptMol HISTORY");
  ASSERT_EQ(h.RowCount(), 3u);
  // Columns: ROOT, VALID_FROM, VALID_TO, Dept.budget.
  EXPECT_EQ(h.rows[0][3].AsInt(), 1);
  EXPECT_EQ(h.rows[1][3].AsInt(), 2);
  EXPECT_EQ(h.rows[2][3].AsInt(), 3);
  EXPECT_EQ(h.rows[0][1].AsTime(), 10);
  EXPECT_EQ(h.rows[0][2].AsTime(), 20);
  EXPECT_EQ(h.rows[2][2].AsTime(), kForever);
}

TEST_P(DatabaseTest, WindowQueryClipsStates) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  AtomId dept =
      Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=1) VALID FROM 10")
          .inserted_id;
  Run(db.get(), "UPDATE ATOM Dept " + std::to_string(dept) +
                    " SET budget=2 VALID FROM 20");
  ResultSet w =
      Run(db.get(), "SELECT Dept.budget FROM DeptMol VALID IN [15, 25)");
  ASSERT_EQ(w.RowCount(), 2u);
  EXPECT_EQ(w.rows[0][1].AsTime(), 15);  // clipped to the window
  EXPECT_EQ(w.rows[0][2].AsTime(), 20);
  EXPECT_EQ(w.rows[1][1].AsTime(), 20);
  EXPECT_EQ(w.rows[1][2].AsTime(), 25);
}

TEST_P(DatabaseTest, DeleteCreatesGap) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  AtomId dept =
      Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=1) VALID FROM 10")
          .inserted_id;
  Run(db.get(), "DELETE ATOM Dept " + std::to_string(dept) +
                    " VALID FROM 20");
  EXPECT_EQ(Run(db.get(), "SELECT ALL FROM DeptMol VALID AT 15").RowCount(),
            1u);
  EXPECT_EQ(Run(db.get(), "SELECT ALL FROM DeptMol VALID AT 25").RowCount(),
            0u);
}

TEST_P(DatabaseTest, NowClockAdvances) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  db->SetNow(100);
  ResultSet r1 = Run(db.get(), "INSERT ATOM Dept (name='a', budget=1)");
  ResultSet r2 = Run(db.get(), "INSERT ATOM Dept (name='b', budget=1)");
  EXPECT_GT(db->Now(), 100);
  // Explicit later stamp pulls the clock forward.
  Run(db.get(), "INSERT ATOM Dept (name='c', budget=1) VALID FROM 500");
  EXPECT_GT(db->Now(), 500);
  EXPECT_EQ(Run(db.get(), "SELECT ALL FROM DeptMol VALID AT NOW").RowCount(),
            3u);
}

TEST_P(DatabaseTest, ErrorsSurfaceToCaller) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  EXPECT_TRUE(db->Execute("SELECT ALL FROM Nope").status().IsNotFound());
  EXPECT_TRUE(db->Execute("INSERT ATOM Nope (x=1)").status().IsNotFound());
  EXPECT_TRUE(db->Execute("INSERT ATOM Dept (bogus=1)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db->Execute("INSERT ATOM Dept (name=5)")
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(db->Execute("UPDATE ATOM Dept 999 SET budget=1 VALID FROM 5")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db->Execute("garbage").status().IsParseError());
}

TEST_P(DatabaseTest, ShowCatalogListsEverything) {
  auto db = OpenDb();
  Run(db.get(), kSchema);
  ResultSet r = Run(db.get(), "SHOW CATALOG");
  EXPECT_EQ(r.RowCount(), 4u);  // 2 atom types + 1 link + 1 molecule
}

TEST_P(DatabaseTest, PersistsAcrossCleanReopen) {
  {
    auto db = OpenDb();
    Run(db.get(), kSchema);
    Run(db.get(), "INSERT ATOM Dept (name='R&D', budget=500) VALID FROM 10");
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = OpenDb();
  EXPECT_EQ(Run(db.get(), "SELECT ALL FROM DeptMol VALID AT 15").RowCount(),
            1u);
  // The WAL was truncated by the checkpoint.
  EXPECT_EQ(db->wal()->SizeBytes().value(), 0u);
}

TEST_P(DatabaseTest, RecoversFromWalWithoutCheckpoint) {
  AtomId dept = kInvalidAtomId;
  {
    auto db = OpenDb();
    Run(db.get(), kSchema);
    dept = Run(db.get(),
               "INSERT ATOM Dept (name='R&D', budget=500) VALID FROM 10")
               .inserted_id;
    Run(db.get(), "UPDATE ATOM Dept " + std::to_string(dept) +
                      " SET budget=700 VALID FROM 20");
    // No checkpoint, no flush: simulate a crash. (The destructor flushes,
    // so instead reopen a second database handle on the same dir after
    // dropping this one without checkpointing — the WAL replay path is
    // exercised because the stores were never explicitly flushed.)
  }
  auto db = OpenDb();
  ResultSet h = Run(db.get(), "SELECT Dept.budget FROM DeptMol HISTORY");
  ASSERT_EQ(h.RowCount(), 2u);
  EXPECT_EQ(h.rows[0][3].AsInt(), 500);
  EXPECT_EQ(h.rows[1][3].AsInt(), 700);
  // The atom-id sequence moved past the recovered atom.
  AtomId fresh =
      Run(db.get(), "INSERT ATOM Dept (name='new', budget=1) VALID FROM 30")
          .inserted_id;
  EXPECT_GT(fresh, dept);
}

TEST_P(DatabaseTest, CompanyWorkloadSmokeTest) {
  auto db = OpenDb();
  CompanyConfig config;
  config.depts = 3;
  config.emps_per_dept = 4;
  config.versions_per_atom = 5;
  auto handles = BuildCompany(db.get(), config);
  ASSERT_TRUE(handles.ok()) << handles.status().ToString();
  EXPECT_EQ(handles->emps.size(), 12u);

  // Every employee has exactly 5 versions.
  const AtomTypeDef* emp_type =
      db->catalog().GetAtomTypeByName("Emp").value();
  for (AtomId emp : handles->emps) {
    auto versions =
        db->store()->GetVersions(*emp_type, emp, Interval::All()).value();
    EXPECT_EQ(versions.size(), 5u);
  }

  // Current slice: every dept molecule has 1 dept + 4 emps + 4 projs.
  ResultSet now = Run(db.get(), "SELECT ALL FROM DeptMol VALID AT NOW");
  EXPECT_EQ(now.RowCount(), 3u * 9u);
  // First slice sees the first versions.
  ResultSet first =
      Run(db.get(), "SELECT ALL FROM DeptMol VALID AT " +
                        std::to_string(handles->first_time));
  EXPECT_EQ(first.RowCount(), 3u * 9u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DatabaseTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
