// Snapshot-isolation MVCC semantics: snapshot-pinned reads, write-write
// conflict detection (first-committer-wins), session transactions over
// MQL, and group-commit fsync batching. The commit-storm test doubles
// as the TSan target for the whole transaction path.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"
#include "db/transaction.h"

namespace tcob {
namespace {

class MvccTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.strategy = GetParam();
    auto db = Database::Open(dir_.path() + "/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    ASSERT_TRUE(db_->CreateAtomType("Dept", {{"name", AttrType::kString},
                                             {"budget", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(db_->CreateAtomType("Emp", {{"name", AttrType::kString},
                                            {"salary", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(db_->CreateLinkType("DeptEmp", "Dept", "Emp").ok());
    ASSERT_TRUE(
        db_->CreateMoleculeType("DeptMol", "Dept", {{"DeptEmp", true}}).ok());
  }

  /// One connected Dept -> Emp pair at valid time 10; returns the Emp.
  AtomId SeedMolecule() {
    AtomId dept = db_->InsertAtom("Dept",
                                  {{"name", Value::String("R&D")},
                                   {"budget", Value::Int(500)}},
                                  10)
                      .value();
    AtomId emp = db_->InsertAtom("Emp",
                                 {{"name", Value::String("ada")},
                                  {"salary", Value::Int(100)}},
                                 10)
                     .value();
    EXPECT_TRUE(db_->Connect("DeptEmp", dept, emp, 10).ok());
    return emp;
  }

  size_t CountRows(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value().RowCount() : 0;
  }

  size_t CountAtomsAt(const std::string& type_name, Timestamp t) {
    auto type = db_->catalog().GetAtomTypeByName(type_name);
    EXPECT_TRUE(type.ok());
    size_t n = 0;
    Status s = db_->store()->ScanAsOf(
        *type.value(), t, [&](const AtomVersion&) -> Result<bool> {
          ++n;
          return true;
        });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return n;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// A session transaction's reads are pinned to its snapshot: a commit
// that lands after BEGIN is invisible until the session closes.
TEST_P(MvccTest, SnapshotReadStableAcrossConcurrentCommit) {
  AtomId emp = SeedMolecule();
  ASSERT_TRUE(db_->BeginSession().ok());
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 100 "
                "VALID AT NOW"),
      1u);
  // A concurrent writer commits an update from another thread.
  std::thread writer([&] {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(
        txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, db_->Now())
            .ok());
    ASSERT_TRUE(txn.Commit().ok());
  });
  writer.join();
  // Same query, same answer: the update happened after our snapshot.
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 100 "
                "VALID AT NOW"),
      1u);
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 200 "
                "VALID AT NOW"),
      0u);
  ASSERT_TRUE(db_->CommitSession().ok());
  // Outside the transaction the committed update is visible.
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 200 "
                "VALID AT NOW"),
      1u);
}

// An explicit VALID AT later than the snapshot clamps back to it: time
// does not advance inside a transaction, even on request.
TEST_P(MvccTest, AsOfInsideTxnPinsToSnapshot) {
  AtomId emp = SeedMolecule();
  ASSERT_TRUE(db_->BeginSession().ok());
  {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(
        txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, db_->Now())
            .ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // 1000 is far beyond the concurrent update's begin, but inside the
  // session it is clamped to the snapshot instant.
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 200 "
                "VALID AT 1000"),
      0u);
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 100 "
                "VALID AT 1000"),
      1u);
  ASSERT_TRUE(db_->AbortSession().ok());
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 200 "
                "VALID AT 1000"),
      1u);
}

// First-committer-wins: of two overlapping writers, exactly one commits
// and the other aborts with TxnConflict.
TEST_P(MvccTest, WriteWriteConflictHasExactlyOneWinner) {
  AtomId emp = SeedMolecule();
  Transaction t1 = db_->Begin();
  Transaction t2 = db_->Begin();
  ASSERT_TRUE(
      t1.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, 20).ok());
  ASSERT_TRUE(
      t2.UpdateAtom("Emp", emp, {{"salary", Value::Int(300)}}, 20).ok());
  Status first = t1.Commit();
  Status second = t2.Commit();
  EXPECT_TRUE(first.ok()) << first.ToString();
  EXPECT_TRUE(second.IsTxnConflict()) << second.ToString();
  EXPECT_EQ(db_->MetricsSnapshot().CounterOr("tcob_txn_conflicts_total", 0), 1u);
  // The winner's version is the one in history; the loser left nothing.
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 200 "
                "HISTORY"),
      1u);
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 300 "
                "HISTORY"),
      0u);
}

// Disjoint write sets do not conflict, in either commit order.
TEST_P(MvccTest, DisjointWritersBothCommit) {
  AtomId emp = SeedMolecule();
  AtomId emp2 = db_->InsertAtom("Emp",
                                {{"name", Value::String("bob")},
                                 {"salary", Value::Int(50)}},
                                10)
                    .value();
  Transaction t1 = db_->Begin();
  Transaction t2 = db_->Begin();
  ASSERT_TRUE(
      t1.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, 20).ok());
  ASSERT_TRUE(
      t2.UpdateAtom("Emp", emp2, {{"salary", Value::Int(60)}}, 20).ok());
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_EQ(db_->MetricsSnapshot().CounterOr("tcob_txn_conflicts_total", 0), 0u);
}

// An auto-commit statement is a single-op committed transaction for
// conflict purposes: an open transaction that wrote the same atom must
// lose at its own commit.
TEST_P(MvccTest, AutoCommitStatementWinsAgainstOpenTxn) {
  AtomId emp = SeedMolecule();
  Transaction txn = db_->Begin();
  ASSERT_TRUE(
      txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(200)}}, 20).ok());
  ASSERT_TRUE(
      db_->UpdateAtom("Emp", emp, {{"salary", Value::Int(999)}}, 20).ok());
  EXPECT_TRUE(txn.Commit().IsTxnConflict());
}

// Aborting a transaction leaves no trace in the data: the WAL never
// saw it, no store holds a version from it, and the full history is
// unchanged — even across a reopen. (The one permitted residue is the
// burned surrogate id: allocation is not transactional, and a clean
// shutdown checkpoints the advanced watermark — same model as sequence
// objects in conventional engines.)
TEST_P(MvccTest, AbortLeavesNoTraceInDump) {
  AtomId emp = SeedMolecule();
  const uint64_t wal_before = db_->wal()->appended_records();
  {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(txn.InsertAtom("Emp",
                               {{"name", Value::String("ghost")},
                                {"salary", Value::Int(1)}},
                               20)
                    .ok());
    ASSERT_TRUE(
        txn.UpdateAtom("Emp", emp, {{"salary", Value::Int(777)}}, 20).ok());
    txn.Abort();
  }
  EXPECT_EQ(db_->wal()->appended_records(), wal_before);
  EXPECT_EQ(db_->ActiveTxns(), 0u);
  db_.reset();
  DatabaseOptions options;
  options.strategy = GetParam();
  auto reopened = Database::Open(dir_.path() + "/db", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  db_ = std::move(reopened).value();
  // The ghost insert never existed at any instant; the buffered update
  // never became a version (salary history is the single seed value).
  EXPECT_EQ(CountAtomsAt("Emp", 25), 1u);
  EXPECT_EQ(CountRows("SELECT Emp.name FROM DeptMol HISTORY"), 1u);
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 777 "
                "HISTORY"),
      0u);
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 100 "
                "HISTORY"),
      1u);
}

// A write-free transaction commits without touching the WAL.
TEST_P(MvccTest, EmptyCommitIsFree) {
  const uint64_t wal_before = db_->wal()->appended_records();
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db_->wal()->appended_records(), wal_before);
  EXPECT_EQ(db_->MetricsSnapshot().CounterOr("tcob_txns_committed_total", 0), 1u);
}

// The MQL surface: BEGIN; buffers DML, ABORT; discards it, COMMIT;
// publishes it, and a second BEGIN; inside a transaction is refused.
TEST_P(MvccTest, SessionTxnOverMql) {
  SeedMolecule();
  ASSERT_TRUE(db_->Execute("BEGIN;").ok());
  EXPECT_TRUE(db_->Execute("BEGIN;").status().IsInvalidArgument());
  auto buffered = db_->Execute(
      "INSERT ATOM Emp (name='eve', salary=70) VALID FROM 20;");
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_NE(buffered.value().message.find("buffered"), std::string::npos);
  // Our own write is not publicly visible yet.
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 70 "
                "VALID AT 30"),
      0u);
  ASSERT_TRUE(db_->Execute("ABORT;").ok());
  EXPECT_EQ(CountRows("SELECT Emp.name FROM DeptMol HISTORY"), 1u);

  ASSERT_TRUE(db_->Execute("BEGIN;").ok());
  AtomId dept2;
  {
    auto r = db_->Execute(
        "INSERT ATOM Dept (name='Ops', budget=50) VALID FROM 20;");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    dept2 = r.value().inserted_id;
  }
  auto r2 = db_->Execute("INSERT ATOM Emp (name='eve', salary=70) "
                         "VALID FROM 20;");
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(db_->Execute("CONNECT DeptEmp FROM " + std::to_string(dept2) +
                           " TO " + std::to_string(r2.value().inserted_id) +
                           " VALID FROM 20;")
                  .ok());
  ASSERT_TRUE(db_->Execute("COMMIT;").ok());
  EXPECT_EQ(
      CountRows("SELECT Emp.salary FROM DeptMol WHERE Emp.salary = 70 "
                "VALID AT 30"),
      1u);
  EXPECT_TRUE(db_->Execute("COMMIT;").status().IsInvalidArgument());
  EXPECT_TRUE(db_->Execute("ABORT;").status().IsInvalidArgument());
}

// Commits and aborts survive recovery: replay applies exactly the
// committed transactions and discards the rest.
TEST_P(MvccTest, RecoveryHonorsTxnBoundaries) {
  SeedMolecule();
  {
    Transaction committed = db_->Begin();
    ASSERT_TRUE(committed
                    .InsertAtom("Emp",
                                {{"name", Value::String("kept")},
                                 {"salary", Value::Int(1)}},
                                20)
                    .ok());
    ASSERT_TRUE(committed.Commit().ok());
    Transaction dropped = db_->Begin();
    ASSERT_TRUE(dropped
                    .InsertAtom("Emp",
                                {{"name", Value::String("lost")},
                                 {"salary", Value::Int(2)}},
                                20)
                    .ok());
    dropped.Abort();
  }
  DatabaseOptions options;
  options.strategy = GetParam();
  db_.reset();
  db_ = Database::Open(dir_.path() + "/db", options).value();
  // Seed emp + the committed insert; the aborted one never existed.
  EXPECT_EQ(CountAtomsAt("Emp", 30), 2u);
}

// Eight threads commit disjoint inserts concurrently; every commit must
// succeed, every atom must be present exactly once, and the write-set
// log must drain once the storm ends. This is the TSan workout for
// Begin/Commit/SyncBatch interleavings.
TEST_P(MvccTest, ConcurrentDisjointCommitStorm) {
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        Transaction txn = db_->Begin();
        auto id = txn.InsertAtom(
            "Emp",
            {{"name", Value::String("w" + std::to_string(t) + "_" +
                                    std::to_string(i))},
             {"salary", Value::Int(t * 100 + i)}},
            10);
        if (!id.ok() || !txn.Commit().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto snap = db_->MetricsSnapshot();
  EXPECT_EQ(snap.CounterOr("tcob_txns_committed_total", 0),
            static_cast<uint64_t>(kThreads * kTxnsPerThread));
  EXPECT_EQ(snap.CounterOr("tcob_txn_conflicts_total", 0), 0u);
  EXPECT_EQ(db_->ActiveTxns(), 0u);
  EXPECT_EQ(CountAtomsAt("Emp", 10),
            static_cast<size_t>(kThreads * kTxnsPerThread));
}

// A transaction's VALID FROM NOW writes are stamped at *commit* time,
// under the writer mutex — never with a clock value captured while
// buffering. A snapshot pinned after the buffering but before the
// commit must therefore not see the commit, even when other writers
// pushed NOW far past the buffered provisional stamp.
TEST_P(MvccTest, NowCommitStaysInvisibleToPinnedSnapshot) {
  SeedMolecule();
  AtomId dept = db_->InsertAtom("Dept",
                                {{"name", Value::String("Ops")},
                                 {"budget", Value::Int(900)}},
                                10)
                    .value();
  // W buffers a NOW-relative insert plus connect; their provisional
  // stamps come from W's transaction-local clock.
  Transaction w = db_->Begin();
  auto grace = w.InsertAtom("Emp",
                            {{"name", Value::String("grace")},
                             {"salary", Value::Int(300)}},
                            /*from=*/kMinTimestamp, /*from_now=*/true);
  ASSERT_TRUE(grace.ok());
  ASSERT_TRUE(w.Connect("DeptEmp", dept, grace.value(),
                        /*at=*/kMinTimestamp, /*from_now=*/true)
                  .ok());
  // An auto-commit statement advances the database clock well past W's
  // provisional stamps.
  ASSERT_TRUE(db_->InsertAtom("Emp",
                              {{"name", Value::String("evie")},
                               {"salary", Value::Int(400)}},
                              db_->Now() + 50)
                  .ok());
  // A reader pins its snapshot *now* — before W commits.
  ASSERT_TRUE(db_->BeginSession().ok());
  ASSERT_TRUE(w.Commit().ok());
  // The pinned snapshot must not see W's commit: had the provisional
  // (buffering-time) stamps been kept, the writes would land *inside*
  // the pinned snapshot and pop into view retroactively.
  EXPECT_EQ(CountRows("SELECT Emp.name FROM DeptMol WHERE Emp.salary = 300 "
                      "VALID AT NOW"),
            0u);
  ASSERT_TRUE(db_->AbortSession().ok());
  // Outside the transaction the commit is visible at the current NOW.
  EXPECT_EQ(CountRows("SELECT Emp.name FROM DeptMol WHERE Emp.salary = 300 "
                      "VALID AT NOW"),
            1u);
}

// Re-stamping NOW operations at commit can collide with *explicit*
// stamps buffered after them: if concurrent commits advanced NOW past
// an explicit stamp, honoring both would reorder the transaction's own
// writes to one entity. That must surface as a clean, retryable
// TxnConflict — not a post-durability apply failure that poisons the
// database.
TEST_P(MvccTest, NowThenExplicitReorderAbortsCleanly) {
  SeedMolecule();  // one Dept at t=10
  // W: NOW-insert a Dept, then explicitly update it at t=50.
  Transaction w = db_->Begin();
  auto id = w.InsertAtom("Dept",
                         {{"name", Value::String("Kay")},
                          {"budget", Value::Int(1)}},
                         /*from=*/kMinTimestamp, /*from_now=*/true);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      w.UpdateAtom("Dept", id.value(), {{"budget", Value::Int(2)}}, 50).ok());
  // A concurrent auto-commit pushes NOW past 50, so W's NOW-insert
  // would be re-stamped *after* its own explicit update at 50.
  ASSERT_TRUE(db_->InsertAtom("Emp",
                              {{"name", Value::String("lin")},
                               {"salary", Value::Int(9)}},
                              100)
                  .ok());
  Status commit = w.Commit();
  EXPECT_TRUE(commit.IsTxnConflict()) << commit.ToString();
  // The abort happened before anything reached the WAL: the database
  // stays healthy and the atom never existed.
  EXPECT_EQ(db_->health_state(), HealthState::kHealthy);
  EXPECT_EQ(CountAtomsAt("Dept", db_->Now()), 1u);
  // A retry against a fresh snapshot places both stamps in order (its
  // local clock starts past the conflicting auto-commit) and succeeds.
  Transaction retry = db_->Begin();
  auto rid = retry.InsertAtom("Dept",
                              {{"name", Value::String("Kay")},
                               {"budget", Value::Int(1)}},
                              /*from=*/kMinTimestamp, /*from_now=*/true);
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(retry
                  .UpdateAtom("Dept", rid.value(),
                              {{"budget", Value::Int(2)}}, db_->Now() + 10)
                  .ok());
  EXPECT_TRUE(retry.Commit().ok());
  EXPECT_EQ(CountAtomsAt("Dept", db_->Now()), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MvccTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

// ---- group commit ----

class GroupCommitTest : public ::testing::Test {
 protected:
  void Open(bool group_commit, uint64_t window_micros) {
    DatabaseOptions options;
    options.sync_wal = true;
    options.group_commit = group_commit;
    options.group_commit_window_micros = window_micros;
    auto db = Database::Open(dir_.path() + "/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    ASSERT_TRUE(
        db_->CreateAtomType("Emp", {{"name", AttrType::kString},
                                    {"salary", AttrType::kInt}})
            .ok());
  }

  /// Two threads, each one single-insert transaction, released together.
  void RunTwoCommitters() {
    std::atomic<int> ready{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        Transaction txn = db_->Begin();
        auto id = txn.InsertAtom("Emp",
                                 {{"name", Value::String(t ? "b" : "a")},
                                  {"salary", Value::Int(t)}},
                                 10);
        if (!id.ok()) {
          failures.fetch_add(1);
          return;
        }
        ready.fetch_add(1);
        while (ready.load() < 2) std::this_thread::yield();
        if (!txn.Commit().ok()) failures.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// The acceptance criterion: two threads committing disjoint writes
// produce exactly ONE WAL fsync for the group. The 200ms batching
// window guarantees the second committer joins the first one's group
// before its leader fsyncs.
TEST_F(GroupCommitTest, TwoCommittersShareOneFsync) {
  Open(/*group_commit=*/true, /*window_micros=*/200000);
  const uint64_t syncs_before = db_->wal()->syncs();
  auto hist_before =
      db_->MetricsSnapshot().histograms.at("tcob_wal_group_commit_size");
  RunTwoCommitters();
  EXPECT_EQ(db_->wal()->syncs() - syncs_before, 1u);
  auto hist_after =
      db_->MetricsSnapshot().histograms.at("tcob_wal_group_commit_size");
  // One group of size 2 was observed.
  EXPECT_EQ(hist_after.count - hist_before.count, 1u);
  EXPECT_EQ(hist_after.sum - hist_before.sum, 2u);
  EXPECT_EQ(db_->MetricsSnapshot().CounterOr("tcob_txns_committed_total", 0), 2u);
}

// Ablation: with group commit off every committer pays its own fsync.
TEST_F(GroupCommitTest, DisabledMeansOneFsyncPerCommit) {
  Open(/*group_commit=*/false, /*window_micros=*/0);
  const uint64_t syncs_before = db_->wal()->syncs();
  const uint64_t hist_before =
      db_->MetricsSnapshot().histograms.at("tcob_wal_group_commit_size").count;
  RunTwoCommitters();
  EXPECT_EQ(db_->wal()->syncs() - syncs_before, 2u);
  // Plain Sync records no group sizes.
  EXPECT_EQ(
      db_->MetricsSnapshot().histograms.at("tcob_wal_group_commit_size").count,
      hist_before);
}

// Group-committed transactions are durable: reopen after a storm and
// every committed insert is still there.
TEST_F(GroupCommitTest, GroupCommittedTxnsSurviveReopen) {
  Open(/*group_commit=*/true, /*window_micros=*/2000);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Transaction txn = db_->Begin();
      if (!txn.InsertAtom("Emp",
                          {{"name", Value::String("t" + std::to_string(t))},
                           {"salary", Value::Int(t)}},
                          10)
               .ok() ||
          !txn.Commit().ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  db_.reset();
  DatabaseOptions options;
  options.sync_wal = true;
  auto db = Database::Open(dir_.path() + "/db", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(db).value();
  auto emp_type = db_->catalog().GetAtomTypeByName("Emp");
  ASSERT_TRUE(emp_type.ok());
  size_t n = 0;
  Status scanned = db_->store()->ScanAsOf(
      *emp_type.value(), 10, [&](const AtomVersion&) -> Result<bool> {
        ++n;
        return true;
      });
  ASSERT_TRUE(scanned.ok()) << scanned.ToString();
  EXPECT_EQ(n, static_cast<size_t>(kThreads));
}

}  // namespace
}  // namespace tcob
