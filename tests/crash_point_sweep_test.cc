// Deterministic crash-point sweep — the exhaustive recovery torture
// test. A scripted auto-commit workload (each statement consumes exactly
// one WAL op_seq) runs against a FaultInjectingIoEnv; a simulated power
// cut is placed after EVERY write/truncate/sync event the workload
// performs, the victim is abandoned, the env revived, and the database
// reopened. Recovery must land on an exact logical prefix of the
// workload: the reopened state equals the oracle state after
// applied_op_seq() operations, every acknowledged (synced) statement is
// still present, and VerifyIntegrity holds.
//
// Two durability models are swept:
//  - kDropUnsynced (pessimistic POSIX): everything unsynced vanishes.
//    Strict prefix-consistency is required at every cut point.
//  - kKeepAllTearLast (disk-cache keeps all, last write torn at sector
//    granularity): a torn data page cannot be repaired by a logical WAL,
//    so detected Status::Corruption is also an acceptable outcome —
//    silent wrong answers and crashes are not.
//
// Across 3 strategies x 2 modes x ~100+ events each, the sweep covers
// well over the 200 distinct cut points the robustness plan calls for,
// including cuts inside the two mid-workload checkpoints (page flushes,
// catalog/meta atomic rewrites, WAL truncation).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "db/database.h"
#include "storage/fault_env.h"

namespace tcob {
namespace {

constexpr char kSetup[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  CREATE INDEX EmpSalary ON Emp (salary);
)";

/// The swept workload. Auto-commit statements only: each consumes
/// exactly one op_seq, so after recovery applied_op_seq() == the length
/// of the logical prefix that survived. Atom ids are deterministic
/// (allocation starts at 1): Dept=1, Emps=2,3,4 then 5 and 6.
const std::vector<std::string>& WorkloadOps() {
  static const std::vector<std::string> ops = {
      "INSERT ATOM Dept (name='eng', budget=100) VALID FROM 10",
      "INSERT ATOM Emp (name='e0', salary=100) VALID FROM 10",
      "INSERT ATOM Emp (name='e1', salary=110) VALID FROM 10",
      "INSERT ATOM Emp (name='e2', salary=120) VALID FROM 10",
      "CONNECT DeptEmp FROM 1 TO 2 VALID FROM 11",
      "CONNECT DeptEmp FROM 1 TO 3 VALID FROM 11",
      "CONNECT DeptEmp FROM 1 TO 4 VALID FROM 11",
      "UPDATE ATOM Emp 2 SET salary=200 VALID FROM 20",
      "UPDATE ATOM Emp 3 SET salary=210 VALID FROM 21",
      "UPDATE ATOM Dept 1 SET budget=150 VALID FROM 22",
      "INSERT ATOM Emp (name='e3', salary=130) VALID FROM 23",
      "CONNECT DeptEmp FROM 1 TO 5 VALID FROM 23",
      "UPDATE ATOM Emp 4 SET salary=220 VALID FROM 24",
      "DELETE ATOM Emp 3 VALID FROM 30",
      "DISCONNECT DeptEmp FROM 1 TO 3 VALID FROM 30",
      "UPDATE ATOM Emp 2 SET salary=230 VALID FROM 31",
      "UPDATE ATOM Emp 5 SET salary=240 VALID FROM 32",
      "INSERT ATOM Emp (name='e4', salary=140) VALID FROM 33",
      "CONNECT DeptEmp FROM 1 TO 6 VALID FROM 33",
      "UPDATE ATOM Dept 1 SET budget=175 VALID FROM 34",
      "UPDATE ATOM Emp 6 SET salary=250 VALID FROM 40",
      "UPDATE ATOM Emp 2 SET salary=260 VALID FROM 41",
      "DELETE ATOM Emp 4 VALID FROM 42",
      "UPDATE ATOM Emp 5 SET salary=270 VALID FROM 43",
  };
  return ops;
}

/// Checkpoints run after these (0-based) op indexes, so the sweep places
/// cut points inside checkpoint I/O: page flushes and syncs, the
/// catalog and meta atomic rewrites, and the WAL truncation.
bool CheckpointAfter(size_t op_index) {
  return op_index == 8 || op_index == 16;
}

class CrashPointSweepTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    // Thousands of induced crashes log their (expected) errors; mute.
    SetLogLevel(LogLevel::kSilent);
  }
  void TearDown() override { SetLogLevel(saved_level_); }

  DatabaseOptions Options(IoEnv* env) const {
    DatabaseOptions options;
    options.strategy = GetParam();
    options.buffer_pool_pages = 8;  // tiny pool: dirty evictions mid-op
    options.sync_wal = true;        // acknowledged == durable
    options.parallelism = 1;
    options.env = env;
    return options;
  }

  static void RunSetup(Database* db) {
    auto r = db->ExecuteScript(kSetup);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  /// Runs the workload until the first failure (the cut). On return
  /// `*acked` counts statements that were acknowledged (WAL synced and
  /// applied) and `*aborted` says whether anything failed — in which
  /// case at most one unacknowledged statement may still have reached
  /// the durable WAL.
  static void RunWorkload(Database* db, size_t* acked, bool* aborted) {
    *acked = 0;
    *aborted = false;
    const std::vector<std::string>& ops = WorkloadOps();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!db->Execute(ops[i]).ok()) {
        *aborted = true;
        return;
      }
      ++*acked;
      if (CheckpointAfter(i) && !db->Checkpoint().ok()) {
        *aborted = true;
        return;
      }
    }
  }

  /// The logical state, as strings, through every storage structure:
  /// molecule materialization (stores + links), history, and the
  /// salary attribute index. Timestamps are explicit so the snapshot is
  /// independent of the recovered clock.
  static std::multiset<std::string> Snapshot(Database* db) {
    std::multiset<std::string> out;
    for (const char* q :
         {"SELECT ALL FROM DeptMol VALID AT 15",
          "SELECT ALL FROM DeptMol VALID AT 35",
          "SELECT Emp.name, Emp.salary FROM DeptMol HISTORY",
          "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 210 VALID AT 25"}) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      if (!r.ok()) continue;
      for (const auto& row : r.value().rows) {
        std::string line = std::string(q) + "::";
        for (const Value& v : row) line += v.ToString() + "|";
        out.insert(std::move(line));
      }
    }
    return out;
  }

  /// oracle[m] = the expected snapshot after the first m workload ops,
  /// built by replaying the ops one at a time in a pristine env.
  void BuildOracle(std::vector<std::multiset<std::string>>* oracle) {
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", Options(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    oracle->push_back(Snapshot(db->get()));
    for (const std::string& op : WorkloadOps()) {
      auto r = (*db)->Execute(op);
      ASSERT_TRUE(r.ok()) << op << ": " << r.status().ToString();
      oracle->push_back(Snapshot(db->get()));
    }
  }

  /// Dry run (no faults) to learn the event schedule: how many I/O
  /// events setup consumes and how many the workload adds. Both are
  /// deterministic, so event counts index identical cut points across
  /// runs.
  void CountEvents(uint64_t* setup_events, uint64_t* workload_events) {
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", Options(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    *setup_events = env.events();
    size_t acked = 0;
    bool aborted = false;
    RunWorkload(db->get(), &acked, &aborted);
    ASSERT_FALSE(aborted);
    ASSERT_EQ(acked, WorkloadOps().size());
    *workload_events = env.events() - *setup_events;
  }

  /// One sweep iteration: cut at workload event k, crash, revive,
  /// reopen. Returns the reopened database (null if open failed, which
  /// the caller judges by mode) plus the ack accounting.
  struct CutOutcome {
    // Placeholder error until CutAt assigns the real reopen result;
    // Result refuses construction from an OK status.
    Result<std::unique_ptr<Database>> reopened =
        Status::Internal("not reopened yet");
    size_t acked = 0;
    bool aborted = false;
  };

  void CutAt(FaultInjectingIoEnv* env, uint64_t setup_events, uint64_t k,
             CutMode mode, CutOutcome* out) {
    Database* victim = nullptr;
    {
      auto db = Database::Open("db", Options(env));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      victim = db->release();
    }
    RunSetup(victim);
    ASSERT_EQ(env->events(), setup_events) << "setup is not deterministic";
    env->PowerCutAfterEvents(setup_events + k, mode);
    RunWorkload(victim, &out->acked, &out->aborted);
    ASSERT_TRUE(env->cut_fired());
    // The victim is deliberately leaked: a destructor would try to write
    // post-crash state. Revive only after it can no longer do I/O.
    env->Revive();
    out->reopened = Database::Open("db", Options(env));
  }

  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_P(CrashPointSweepTest, PowerCutAtEveryEventRecoversToAnExactPrefix) {
  std::vector<std::multiset<std::string>> oracle;
  ASSERT_NO_FATAL_FAILURE(BuildOracle(&oracle));
  uint64_t setup_events = 0, workload_events = 0;
  ASSERT_NO_FATAL_FAILURE(CountEvents(&setup_events, &workload_events));
  ASSERT_GE(workload_events, 60u);

  for (uint64_t k = 1; k <= workload_events; ++k) {
    SCOPED_TRACE("power cut at workload event " + std::to_string(k));
    FaultInjectingIoEnv env;
    CutOutcome out;
    ASSERT_NO_FATAL_FAILURE(
        CutAt(&env, setup_events, k, CutMode::kDropUnsynced, &out));

    // Unsynced bytes are gone, but everything synced survived: the
    // database MUST reopen and land on an exact prefix.
    ASSERT_TRUE(out.reopened.ok()) << out.reopened.status().ToString();
    Database* db = out.reopened->get();
    const uint64_t m = db->applied_op_seq();
    // Every acknowledged statement was WAL-synced, so it survives; at
    // most one in-flight statement may additionally have reached the
    // durable WAL before its apply step was cut.
    ASSERT_GE(m, out.acked);
    ASSERT_LE(m, out.acked + (out.aborted ? 1 : 0));
    Status verdict = db->VerifyIntegrity();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(Snapshot(db), oracle[m]) << "state is not the prefix of "
                                       << m << " operations";
  }
}

TEST_P(CrashPointSweepTest, TornPowerCutNeverYieldsWrongAnswersOrCrashes) {
  std::vector<std::multiset<std::string>> oracle;
  ASSERT_NO_FATAL_FAILURE(BuildOracle(&oracle));
  uint64_t setup_events = 0, workload_events = 0;
  ASSERT_NO_FATAL_FAILURE(CountEvents(&setup_events, &workload_events));

  uint64_t prefix_exact = 0, detected = 0;
  for (uint64_t k = 1; k <= workload_events; ++k) {
    SCOPED_TRACE("torn power cut at workload event " + std::to_string(k));
    FaultInjectingIoEnv env;
    CutOutcome out;
    ASSERT_NO_FATAL_FAILURE(
        CutAt(&env, setup_events, k, CutMode::kKeepAllTearLast, &out));

    // A torn data page is not repairable by a logical WAL, so a clean
    // Status::Corruption (from Open or VerifyIntegrity) is acceptable;
    // an undetected deviation from the oracle prefix is not.
    if (!out.reopened.ok()) {
      EXPECT_TRUE(out.reopened.status().IsCorruption())
          << out.reopened.status().ToString();
      ++detected;
      continue;
    }
    Database* db = out.reopened->get();
    Status verdict = db->VerifyIntegrity();
    if (!verdict.ok()) {
      EXPECT_TRUE(verdict.IsCorruption()) << verdict.ToString();
      ++detected;
      continue;
    }
    const uint64_t m = db->applied_op_seq();
    ASSERT_GE(m, out.acked);  // completed writes all survive a torn cut
    ASSERT_LE(m, out.acked + (out.aborted ? 1 : 0));
    EXPECT_EQ(Snapshot(db), oracle[m]) << "state is not the prefix of "
                                       << m << " operations";
    ++prefix_exact;
  }
  // Tearing only damages the single write the cut lands on; most cut
  // points (all syncs, truncates, and whole-sector-boundary tears) must
  // still recover to an exact prefix.
  EXPECT_GT(prefix_exact, workload_events / 2) << "detected=" << detected;
}

TEST_P(CrashPointSweepTest, PowerCutAtEveryEventInsideTierMigration) {
  // Cold-tier migration is a physical reorganization framed by two
  // checkpoints; a crash at ANY I/O event inside it must recover to a
  // state logically identical to before the migration started (the
  // post-migration state IS the pre-migration state — migration moves
  // bytes, not facts).
  auto tiered = [&](IoEnv* env) {
    DatabaseOptions options = Options(env);
    options.tiering.enabled = true;
    options.tiering.cold_age = 10;  // most of the workload history is cold
    options.tiering.segment_target_bytes = 1024;  // force several segments
    return options;
  };

  // Pristine run 1: the migration's event schedule. No queries here —
  // a read can evict dirty pages and perturb the write schedule the
  // sweep's cut points index into.
  uint64_t base_events = 0, migration_events = 0, expected_op_seq = 0;
  {
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", tiered(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    size_t acked = 0;
    bool aborted = false;
    RunWorkload(db->get(), &acked, &aborted);
    ASSERT_FALSE(aborted);
    expected_op_seq = (*db)->applied_op_seq();
    base_events = env.events();
    auto migrated = (*db)->TierMigrate();
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    ASSERT_GT(migrated.value(), 0u) << "workload produced no cold history";
    migration_events = env.events() - base_events;
  }
  ASSERT_GE(migration_events, 10u);

  // Pristine run 2: the oracle snapshot, taken before and after a
  // successful migration (which must not move the logical state).
  std::multiset<std::string> expected;
  {
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", tiered(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    size_t acked = 0;
    bool aborted = false;
    RunWorkload(db->get(), &acked, &aborted);
    ASSERT_FALSE(aborted);
    expected = Snapshot(db->get());
    auto migrated = (*db)->TierMigrate();
    ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
    EXPECT_EQ(Snapshot(db->get()), expected)
        << "migration changed the logical state";
  }

  for (uint64_t k = 1; k <= migration_events; ++k) {
    SCOPED_TRACE("power cut at migration event " + std::to_string(k));
    FaultInjectingIoEnv env;
    Database* victim = nullptr;
    {
      auto db = Database::Open("db", tiered(&env));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      victim = db->release();
    }
    RunSetup(victim);
    size_t acked = 0;
    bool aborted = false;
    RunWorkload(victim, &acked, &aborted);
    ASSERT_FALSE(aborted);
    ASSERT_EQ(env.events(), base_events) << "replay is not deterministic";
    env.PowerCutAfterEvents(base_events + k, CutMode::kDropUnsynced);
    auto migrated = victim->TierMigrate();
    ASSERT_TRUE(env.cut_fired());
    // In kDropUnsynced the Nth event completes before the cut fires, so
    // at k == migration_events the migration may have fully succeeded.
    // Either outcome recovers to the same logical state — migration is
    // invisible — so the checks below don't branch on it.
    ASSERT_TRUE(!migrated.ok() || k == migration_events);
    // Victim deliberately leaked (see CutAt); revive once it is inert.
    env.Revive();
    auto reopened = Database::Open("db", tiered(&env));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Database* db = reopened->get();
    EXPECT_EQ(db->applied_op_seq(), expected_op_seq);
    Status verdict = db->VerifyIntegrity();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(Snapshot(db), expected)
        << "history lost or duplicated by the interrupted migration";
  }
}

// ---- transactional sweep ----

/// A scripted mix of auto-commit statements, multi-statement
/// transactions (BEGIN; ... COMMIT; through the MQL session API, so the
/// sweep crosses the same code path a shell user does), and one
/// mid-script checkpoint. `seqs` is the op_seq budget a fully applied
/// step consumes (a committed txn of n ops consumes n + 1: its ops plus
/// the commit record).
struct TxnStep {
  std::vector<std::string> stmts;
  bool txn = false;
  bool checkpoint = false;
  uint64_t seqs = 0;
};

const std::vector<TxnStep>& TxnSteps() {
  static const std::vector<TxnStep> steps = {
      {{"INSERT ATOM Dept (name='eng', budget=100) VALID FROM 10"},
       false, false, 1},
      {{"INSERT ATOM Emp (name='e0', salary=100) VALID FROM 10",
        "INSERT ATOM Emp (name='e1', salary=110) VALID FROM 10",
        "CONNECT DeptEmp FROM 1 TO 2 VALID FROM 11",
        "CONNECT DeptEmp FROM 1 TO 3 VALID FROM 11"},
       true, false, 5},
      {{"UPDATE ATOM Emp 2 SET salary=200 VALID FROM 20"}, false, false, 1},
      {{"UPDATE ATOM Emp 3 SET salary=210 VALID FROM 21",
        "INSERT ATOM Emp (name='e2', salary=120) VALID FROM 22",
        "CONNECT DeptEmp FROM 1 TO 4 VALID FROM 22"},
       true, false, 4},
      {{}, false, true, 0},
      {{"DELETE ATOM Emp 3 VALID FROM 30",
        "DISCONNECT DeptEmp FROM 1 TO 3 VALID FROM 30"},
       true, false, 3},
      {{"UPDATE ATOM Dept 1 SET budget=150 VALID FROM 31"}, false, false, 1},
  };
  return steps;
}

/// op_seq watermark after the first `steps` fully applied steps.
uint64_t TxnBoundary(size_t steps) {
  uint64_t seq = 0;
  for (size_t i = 0; i < steps && i < TxnSteps().size(); ++i) {
    seq += TxnSteps()[i].seqs;
  }
  return seq;
}

/// Runs the transactional script until the first failure. `*completed`
/// counts fully acknowledged steps (a txn counts only once COMMIT; was
/// acknowledged).
void RunTxnSteps(Database* db, size_t* completed, bool* aborted) {
  *completed = 0;
  *aborted = false;
  for (const TxnStep& step : TxnSteps()) {
    if (step.checkpoint) {
      if (!db->Checkpoint().ok()) {
        *aborted = true;
        return;
      }
    } else if (step.txn) {
      if (!db->Execute("BEGIN;").ok()) {
        *aborted = true;
        return;
      }
      for (const std::string& stmt : step.stmts) {
        if (!db->Execute(stmt).ok()) {
          *aborted = true;
          return;
        }
      }
      if (!db->Execute("COMMIT;").ok()) {
        *aborted = true;
        return;
      }
    } else {
      if (!db->Execute(step.stmts[0]).ok()) {
        *aborted = true;
        return;
      }
    }
    ++*completed;
  }
}

TEST_P(CrashPointSweepTest, PowerCutAtEveryEventInsideGroupedTxnCommits) {
  // Oracle: the logical state at every transaction boundary, keyed by
  // the op_seq watermark a recovery landing there must report. The
  // checkpoint step shares its predecessor's watermark (it consumes no
  // op_seq and must not change the logical state).
  std::map<uint64_t, std::multiset<std::string>> oracle;
  uint64_t setup_events = 0, script_events = 0;
  {
    // Event-budget run: the exact script RunTxnSteps replays in each
    // victim, with nothing else interleaved. (Snapshot() below issues
    // queries that do their own I/O; counting those would schedule cut
    // points past the last event a victim run ever reaches.)
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", Options(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    setup_events = env.events();
    size_t completed = 0;
    bool aborted = false;
    RunTxnSteps(db->get(), &completed, &aborted);
    ASSERT_FALSE(aborted);
    ASSERT_EQ(completed, TxnSteps().size());
    script_events = env.events() - setup_events;
  }
  {
    // Oracle run: same script against a fresh store, capturing the
    // logical state at every transaction boundary.
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", Options(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    oracle[0] = Snapshot(db->get());
    for (size_t i = 0; i < TxnSteps().size(); ++i) {
      const TxnStep& step = TxnSteps()[i];
      if (step.checkpoint) {
        ASSERT_TRUE((*db)->Checkpoint().ok());
      } else if (step.txn) {
        ASSERT_TRUE((*db)->Execute("BEGIN;").ok());
        for (const std::string& stmt : step.stmts) {
          auto r = (*db)->Execute(stmt);
          ASSERT_TRUE(r.ok()) << stmt << ": " << r.status().ToString();
        }
        ASSERT_TRUE((*db)->Execute("COMMIT;").ok());
      } else {
        ASSERT_TRUE((*db)->Execute(step.stmts[0]).ok());
      }
      ASSERT_EQ((*db)->applied_op_seq(), TxnBoundary(i + 1))
          << "step " << i << " consumed an unexpected op_seq budget";
      oracle[TxnBoundary(i + 1)] = Snapshot(db->get());
    }
  }
  ASSERT_GE(script_events, 20u);

  for (uint64_t k = 1; k <= script_events; ++k) {
    SCOPED_TRACE("power cut at txn-script event " + std::to_string(k));
    FaultInjectingIoEnv env;
    Database* victim = nullptr;
    {
      auto db = Database::Open("db", Options(&env));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      victim = db->release();
    }
    RunSetup(victim);
    ASSERT_EQ(env.events(), setup_events) << "setup is not deterministic";
    env.PowerCutAfterEvents(setup_events + k, CutMode::kDropUnsynced);
    size_t completed = 0;
    bool aborted = false;
    RunTxnSteps(victim, &completed, &aborted);
    ASSERT_TRUE(env.cut_fired());
    env.Revive();  // victim deliberately leaked (see CutAt)
    auto reopened = Database::Open("db", Options(&env));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Database* db = reopened->get();

    // Per-transaction atomicity: recovery may land on the boundary
    // after the last acknowledged step, or one step further (an
    // in-flight commit whose WAL records all reached durability before
    // the cut) — never in between. A watermark strictly inside a
    // transaction's op_seq range would mean a half-applied txn.
    const uint64_t m = db->applied_op_seq();
    const uint64_t at_acked = TxnBoundary(completed);
    const uint64_t next = TxnBoundary(completed + 1);
    ASSERT_TRUE(m == at_acked || (aborted && m == next))
        << "recovered watermark " << m << " is not a transaction boundary "
        << "(acked " << at_acked << ", in-flight end " << next << ")";
    ASSERT_EQ(oracle.count(m), 1u);
    Status verdict = db->VerifyIntegrity();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(Snapshot(db), oracle[m])
        << "state is not the boundary at op_seq " << m;
  }
}

// Regression for orphaned-transaction WAL hygiene. A power cut between
// a transaction's op records and its commit record leaves orphan ops in
// the durable log. Recovery discards them — but they must also be
// *scrubbed* (post-recovery cleanup checkpoint truncates the WAL), or
// a later run would append fresh records, with recycled txn ids and
// op_seqs, after the remnants: a second crash would then replay the
// orphan ops as committed. The sweep cuts at every I/O event inside a
// BEGIN..COMMIT script, and for every iteration that produced orphans
// verifies the scrub plus a write-then-recover round trip.
TEST_P(CrashPointSweepTest, OrphanedTxnRemnantsAreScrubbedAtRecovery) {
  auto RunTxnScript = [](Database* db, bool* aborted) {
    *aborted = false;
    for (const char* stmt :
         {"BEGIN;",
          "INSERT ATOM Emp (name='t0', salary=100) VALID FROM 10",
          "INSERT ATOM Emp (name='t1', salary=110) VALID FROM 10",
          "COMMIT;"}) {
      if (!db->Execute(stmt).ok()) {
        *aborted = true;
        return;
      }
    }
  };
  auto CountEmpsAt10 = [](Database* db) {
    auto type = db->catalog().GetAtomTypeByName("Emp");
    EXPECT_TRUE(type.ok());
    size_t n = 0;
    Status s = db->store()->ScanAsOf(*type.value(), 10,
                                     [&](const AtomVersion&) -> Result<bool> {
                                       ++n;
                                       return true;
                                     });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return n;
  };

  uint64_t setup_events = 0, script_events = 0;
  {
    FaultInjectingIoEnv env;
    auto db = Database::Open("db", Options(&env));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    RunSetup(db->get());
    setup_events = env.events();
    bool aborted = false;
    RunTxnScript(db->get(), &aborted);
    ASSERT_FALSE(aborted);
    script_events = env.events() - setup_events;
  }
  ASSERT_GE(script_events, 3u);

  size_t orphan_iterations = 0;
  for (uint64_t k = 1; k <= script_events; ++k) {
    SCOPED_TRACE("power cut at txn event " + std::to_string(k));
    FaultInjectingIoEnv env;
    Database* victim = nullptr;
    {
      auto db = Database::Open("db", Options(&env));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      victim = db->release();
    }
    RunSetup(victim);
    ASSERT_EQ(env.events(), setup_events) << "setup is not deterministic";
    // Keep everything ever written (tearing only the final write): the
    // harshest mode for remnants, since nothing conveniently vanishes.
    env.PowerCutAfterEvents(setup_events + k, CutMode::kKeepAllTearLast);
    bool aborted = false;
    RunTxnScript(victim, &aborted);
    ASSERT_TRUE(env.cut_fired());
    env.Revive();  // victim deliberately leaked (see CutAt)

    auto reopened = Database::Open("db", Options(&env));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    Database* db = reopened->get();
    const RecoveryStats& stats = db->recovery_stats();
    if (stats.discarded_txn_ops == 0 && stats.wal_dropped_tail_bytes == 0) {
      continue;  // this cut point left no remnants; nothing to scrub
    }
    ++orphan_iterations;
    // The cleanup checkpoint must have emptied the log: remnants may
    // not linger beneath records a future run will append.
    auto wal_size = db->wal()->SizeBytes();
    ASSERT_TRUE(wal_size.ok()) << wal_size.status().ToString();
    EXPECT_EQ(wal_size.value(), 0u)
        << "WAL still holds bytes after discarding "
        << stats.discarded_txn_ops << " orphan ops";
    // Round trip through the danger zone: commit a fresh transaction
    // (its txn id and op_seqs would have collided with the orphan's
    // under the old scheme), crash again with *no* shutdown checkpoint,
    // and recover. The once-orphaned ops must not resurrect.
    const size_t before = CountEmpsAt10(db);
    bool aborted2 = false;
    RunTxnScript(db, &aborted2);
    ASSERT_FALSE(aborted2);
    const size_t expect_emps = CountEmpsAt10(db);
    EXPECT_EQ(expect_emps, before + 2);
    const std::multiset<std::string> expect_snapshot = Snapshot(db);
    const uint64_t m = db->applied_op_seq();
    reopened->release();  // leaked: recovery must work from the WAL alone

    auto recovered = Database::Open("db", Options(&env));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ((*recovered)->applied_op_seq(), m);
    EXPECT_EQ((*recovered)->recovery_stats().discarded_txn_ops, 0u);
    EXPECT_EQ(CountEmpsAt10(recovered->get()), expect_emps)
        << "orphaned inserts resurrected after the re-crash";
    Status verdict = (*recovered)->VerifyIntegrity();
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(Snapshot(recovered->get()), expect_snapshot);
  }
  // The sweep is only meaningful if some cut actually stranded a
  // transaction's ops without its commit record.
  EXPECT_GE(orphan_iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CrashPointSweepTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
