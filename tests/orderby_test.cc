#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"

namespace tcob {
namespace {

class OrderByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(dir_.path() + "/db", {});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
    AtomId dept =
        Run("INSERT ATOM Dept (name='D', budget=1) VALID FROM 10").inserted_id;
    for (auto [name, salary] : std::initializer_list<std::pair<const char*,
                                                               int>>{
             {"carol", 300}, {"alice", 100}, {"bob", 200}}) {
      AtomId emp = Run("INSERT ATOM Emp (name='" + std::string(name) +
                       "', salary=" + std::to_string(salary) +
                       ") VALID FROM 10")
                       .inserted_id;
      Run("CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
          std::to_string(emp) + " VALID FROM 10");
    }
    db_->SetNow(50);
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(OrderByTest, AscendingByInt) {
  ResultSet r = Run(
      "SELECT Emp.name, Emp.salary FROM DeptMol "
      "ORDER BY Emp.salary VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "alice");
  EXPECT_EQ(r.rows[1][1].AsString(), "bob");
  EXPECT_EQ(r.rows[2][1].AsString(), "carol");
}

TEST_F(OrderByTest, DescendingByString) {
  ResultSet r = Run(
      "SELECT Emp.name FROM DeptMol ORDER BY Emp.name DESC VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "carol");
  EXPECT_EQ(r.rows[2][1].AsString(), "alice");
}

TEST_F(OrderByTest, OrderByRootOnAllQueries) {
  ResultSet r = Run("SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT NOW");
  ASSERT_EQ(r.RowCount(), 4u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][0].AsId(), r.rows[i][0].AsId());
  }
}

TEST_F(OrderByTest, WorksWithHistoryMode) {
  ResultSet r = Run(
      "SELECT Emp.salary FROM DeptMol ORDER BY Emp.salary DESC HISTORY");
  ASSERT_EQ(r.RowCount(), 3u);
  EXPECT_EQ(r.rows[0][3].AsInt(), 300);
}

TEST_F(OrderByTest, UnprojectedColumnRejected) {
  EXPECT_TRUE(db_->Execute("SELECT Emp.name FROM DeptMol "
                           "ORDER BY Emp.salary VALID AT NOW")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(OrderByTest, ParserErrors) {
  EXPECT_TRUE(db_->Execute("SELECT Emp.name FROM DeptMol ORDER Emp.name")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(db_->Execute("SELECT Emp.name FROM DeptMol ORDER BY 5")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace tcob
