// Cross-module integration tests:
//  * strategy equivalence: an identical random workload (atom DML, link
//    churn, deletes, re-inserts) driven into one database per storage
//    strategy must answer every temporal query identically;
//  * the history/time-slice consistency property: a molecule's HISTORY
//    must equal the chronon-by-chronon sequence of its time slices.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "mad/materializer.h"
#include "query/parser.h"

namespace tcob {
namespace {

constexpr char kSchema[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
)";

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const StorageStrategy all[] = {StorageStrategy::kSnapshot,
                                   StorageStrategy::kIntegrated,
                                   StorageStrategy::kSeparated};
    for (StorageStrategy strategy : all) {
      DatabaseOptions options;
      options.strategy = strategy;
      options.buffer_pool_pages = 128;  // force real eviction traffic
      auto db = Database::Open(
          dir_.path() + "/" + StorageStrategyName(strategy), options);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      dbs_.push_back(std::move(db).value());
      auto stmts = Parser::ParseScript(kSchema);
      ASSERT_TRUE(stmts.ok());
      for (const Statement& stmt : stmts.value()) {
        ASSERT_TRUE(dbs_.back()->ExecuteStatement(stmt).ok());
      }
    }
  }

  /// Runs `mql` on every database; all must agree (as row multisets).
  /// Returns the common row count.
  size_t AssertAllAgree(const std::string& mql) {
    std::vector<std::multiset<std::string>> results;
    for (auto& db : dbs_) {
      auto r = db->Execute(mql);
      EXPECT_TRUE(r.ok()) << mql << " on "
                          << StorageStrategyName(db->options().strategy)
                          << ": " << r.status().ToString();
      std::multiset<std::string> rows;
      if (r.ok()) {
        for (const auto& row : r.value().rows) {
          std::string line;
          for (const Value& v : row) line += v.ToString() + "|";
          rows.insert(std::move(line));
        }
      }
      results.push_back(std::move(rows));
    }
    EXPECT_EQ(results[0], results[1]) << mql;
    EXPECT_EQ(results[0], results[2]) << mql;
    return results[0].size();
  }

  /// Applies `mql` to every database, asserting uniform success.
  void ApplyAll(const std::string& mql) {
    for (auto& db : dbs_) {
      auto r = db->Execute(mql);
      ASSERT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    }
  }

  TempDir dir_;
  std::vector<std::unique_ptr<Database>> dbs_;
};

TEST_F(IntegrationTest, RandomWorkloadStrategyEquivalence) {
  Random rng(4242);
  // Deterministic ids: both databases assign ids in the same order
  // because they execute the same statements.
  std::vector<AtomId> depts, emps;
  std::set<std::pair<AtomId, AtomId>> connected;
  std::map<AtomId, bool> emp_alive;
  Timestamp clock = 10;

  // Seed: 3 departments, 9 employees.
  for (int d = 0; d < 3; ++d) {
    auto r = dbs_[0]->Execute("INSERT ATOM Dept (name='d" +
                              std::to_string(d) + "', budget=" +
                              std::to_string(100 * (d + 1)) +
                              ") VALID FROM 10");
    ASSERT_TRUE(r.ok());
    depts.push_back(r.value().inserted_id);
    for (size_t i = 1; i < dbs_.size(); ++i) {
      auto r2 = dbs_[i]->Execute("INSERT ATOM Dept (name='d" +
                                 std::to_string(d) + "', budget=" +
                                 std::to_string(100 * (d + 1)) +
                                 ") VALID FROM 10");
      ASSERT_TRUE(r2.ok());
      ASSERT_EQ(r2.value().inserted_id, depts.back());
    }
  }
  for (int e = 0; e < 9; ++e) {
    std::string mql = "INSERT ATOM Emp (name='e" + std::to_string(e) +
                      "', salary=" + std::to_string(1000 + e) +
                      ") VALID FROM 10";
    auto r = dbs_[0]->Execute(mql);
    ASSERT_TRUE(r.ok());
    emps.push_back(r.value().inserted_id);
    emp_alive[emps.back()] = true;
    for (size_t i = 1; i < dbs_.size(); ++i) {
      ASSERT_EQ(dbs_[i]->Execute(mql).value().inserted_id, emps.back());
    }
    ApplyAll("CONNECT DeptEmp FROM " + std::to_string(depts[e % 3]) +
             " TO " + std::to_string(emps.back()) + " VALID FROM 10");
    connected.insert({depts[e % 3], emps.back()});
  }

  // Random mutation phase.
  for (int step = 0; step < 250; ++step) {
    clock += 1 + rng.Uniform(3);
    AtomId emp = emps[rng.Uniform(emps.size())];
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 5 && emp_alive[emp]) {
      ApplyAll("UPDATE ATOM Emp " + std::to_string(emp) + " SET salary=" +
               std::to_string(500 + rng.Uniform(5000)) + " VALID FROM " +
               std::to_string(clock));
    } else if (action < 6 && emp_alive[emp]) {
      ApplyAll("DELETE ATOM Emp " + std::to_string(emp) + " VALID FROM " +
               std::to_string(clock));
      emp_alive[emp] = false;
    } else if (action < 7 && !emp_alive[emp]) {
      ApplyAll("INSERT ATOM Emp (name='re', salary=" +
               std::to_string(rng.Uniform(9000)) + ") VALID FROM " +
               std::to_string(clock));
      // Note: re-insert creates a *new* atom (fresh id); track it.
      // (We cannot reuse the old id through MQL — ids are system-owned.)
      auto r = dbs_[0]->Execute("SELECT COUNT(*) FROM DeptMol VALID AT NOW");
      ASSERT_TRUE(r.ok());
    } else if (action < 9) {
      // Link churn.
      AtomId dept = depts[rng.Uniform(depts.size())];
      bool is_connected = connected.count({dept, emp}) > 0;
      if (is_connected) {
        ApplyAll("DISCONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
                 std::to_string(emp) + " VALID FROM " +
                 std::to_string(clock));
        connected.erase({dept, emp});
      } else if (emp_alive[emp]) {
        ApplyAll("CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
                 std::to_string(emp) + " VALID FROM " +
                 std::to_string(clock));
        connected.insert({dept, emp});
      }
    } else if (emp_alive[emp]) {
      ApplyAll("UPDATE ATOM Emp " + std::to_string(emp) +
               " SET name='renamed" + std::to_string(step) +
               "' VALID FROM " + std::to_string(clock));
    }
  }

  // Query phase: slices across the whole timeline, windows, histories,
  // predicates, aggregates.
  size_t nonempty = 0;
  for (Timestamp t = 10; t <= clock; t += 1 + (clock - 10) / 23) {
    nonempty += AssertAllAgree("SELECT ALL FROM DeptMol VALID AT " +
                               std::to_string(t));
    AssertAllAgree("SELECT Emp.name, Emp.salary FROM DeptMol "
                   "WHERE Emp.salary > 2500 VALID AT " +
                   std::to_string(t));
  }
  EXPECT_GT(nonempty, 0u);
  AssertAllAgree("SELECT ALL FROM DeptMol VALID IN [20, " +
                 std::to_string(clock) + ")");
  AssertAllAgree("SELECT Dept.name, Emp.salary FROM DeptMol HISTORY");
  AssertAllAgree(
      "SELECT COUNT(*), SUM(Emp.salary), MIN(Emp.salary), MAX(Emp.salary) "
      "FROM DeptMol VALID AT NOW");
  AssertAllAgree("SELECT Emp.name FROM DeptMol WHERE VALID(Emp) OVERLAPS "
                 "[30, 60) HISTORY");
}

TEST_F(IntegrationTest, HistoryEqualsPointwiseTimeSlices) {
  // Build a small but eventful timeline on the separated database.
  Database* db = dbs_[2].get();
  Random rng(7);
  auto dept =
      db->Execute("INSERT ATOM Dept (name='d', budget=1) VALID FROM 10")
          .value()
          .inserted_id;
  std::vector<AtomId> emps;
  for (int e = 0; e < 3; ++e) {
    auto emp = db->Execute("INSERT ATOM Emp (name='e" + std::to_string(e) +
                           "', salary=1) VALID FROM 10")
                   .value()
                   .inserted_id;
    emps.push_back(emp);
    ASSERT_TRUE(db->Connect("DeptEmp", dept, emp, 10).ok());
  }
  Timestamp clock = 10;
  for (int step = 0; step < 60; ++step) {
    clock += 1 + rng.Uniform(2);
    AtomId emp = emps[rng.Uniform(emps.size())];
    int action = static_cast<int>(rng.Uniform(6));
    if (action < 3) {
      (void)db->Execute("UPDATE ATOM Emp " + std::to_string(emp) +
                        " SET salary=" + std::to_string(step) +
                        " VALID FROM " + std::to_string(clock));
    } else if (action < 4) {
      (void)db->Disconnect("DeptEmp", dept, emp, clock);
    } else {
      (void)db->Connect("DeptEmp", dept, emp, clock);
    }
    // Some statements fail (double connect etc.) — that's fine; the
    // property below holds regardless of which ones landed.
  }
  const Interval window(10, clock + 5);

  Materializer mat = db->materializer();
  const MoleculeTypeDef* mol_type =
      db->catalog().GetMoleculeTypeByName("DeptMol").value();
  MoleculeHistory history = mat.History(*mol_type, dept, window).value();

  // Pointwise check at EVERY chronon in the window.
  for (Timestamp t = window.begin; t < window.end; ++t) {
    const MoleculeState* state = nullptr;
    for (const MoleculeState& s : history.states) {
      if (s.valid.Contains(t)) state = &s;
    }
    Result<Molecule> slice = mat.MaterializeAsOf(*mol_type, dept, t);
    ASSERT_TRUE(slice.ok()) << "t=" << t;  // root always alive here
    ASSERT_NE(state, nullptr) << "t=" << t;
    EXPECT_TRUE(state->molecule.SameState(slice.value())) << "t=" << t;
  }
  // States are maximal: adjacent states must differ.
  for (size_t i = 0; i + 1 < history.states.size(); ++i) {
    if (history.states[i].valid.Meets(history.states[i + 1].valid)) {
      EXPECT_FALSE(history.states[i].molecule.SameState(
          history.states[i + 1].molecule))
          << "states " << i << " and " << i + 1 << " should be coalesced";
    }
  }
}

}  // namespace
}  // namespace tcob
