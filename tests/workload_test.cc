// Determinism and shape guarantees of the synthetic benchmark workload,
// plus DiskManager edge cases not covered through the buffer pool.

#include "workload/company.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "storage/disk_manager.h"

namespace tcob {
namespace {

TEST(CompanyWorkloadTest, DeterministicAcrossRuns) {
  // Two databases built from the same config must be byte-for-byte
  // equivalent at the query level — the benchmarks depend on it.
  TempDir dir;
  std::vector<std::string> renders;
  for (const char* sub : {"a", "b"}) {
    auto db = Database::Open(dir.path() + "/" + sub, {}).value();
    CompanyConfig config;
    config.depts = 3;
    config.emps_per_dept = 2;
    config.versions_per_atom = 4;
    auto handles = BuildCompany(db.get(), config);
    ASSERT_TRUE(handles.ok());
    auto r = db->Execute(
        "SELECT ALL FROM DeptMol ORDER BY ROOT VALID AT NOW");
    ASSERT_TRUE(r.ok());
    renders.push_back(r.value().ToString());
    EXPECT_EQ(handles->emps.size(), 6u);
    EXPECT_EQ(handles->last_time,
              config.base + 3 * config.stride + 1);
  }
  EXPECT_EQ(renders[0], renders[1]);
}

TEST(CompanyWorkloadTest, VersionCountsMatchConfig) {
  TempDir dir;
  auto db = Database::Open(dir.path() + "/db", {}).value();
  CompanyConfig config;
  config.depts = 2;
  config.emps_per_dept = 3;
  config.projs_per_emp = 2;
  config.versions_per_atom = 5;
  auto handles = BuildCompany(db.get(), config);
  ASSERT_TRUE(handles.ok());
  EXPECT_EQ(handles->projs.size(), 12u);
  const AtomTypeDef* emp = db->catalog().GetAtomTypeByName("Emp").value();
  const AtomTypeDef* proj = db->catalog().GetAtomTypeByName("Proj").value();
  for (AtomId id : handles->emps) {
    EXPECT_EQ(
        db->store()->GetVersions(*emp, id, Interval::All()).value().size(),
        5u);
  }
  // Projects are never updated: exactly one version each.
  for (AtomId id : handles->projs) {
    EXPECT_EQ(
        db->store()->GetVersions(*proj, id, Interval::All()).value().size(),
        1u);
  }
}

TEST(DiskManagerTest, FileLifecycle) {
  TempDir dir;
  auto dm = DiskManager::Open(dir.path() + "/db").value();
  FileId f = dm->OpenFile("data").value();
  EXPECT_EQ(dm->NumPages(f).value(), 0u);
  PageNo p0 = dm->AllocatePage(f).value();
  PageNo p1 = dm->AllocatePage(f).value();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(dm->NumPages(f).value(), 2u);

  char buf[kPageSize];
  memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(dm->WritePage(f, 1, buf).ok());
  char read_buf[kPageSize] = {0};
  ASSERT_TRUE(dm->ReadPage(f, 1, read_buf).ok());
  EXPECT_EQ(memcmp(buf, read_buf, kPageSize), 0);
  // Fresh pages are zeroed in the data area, with a valid checksum
  // footer so an unwritten page still verifies.
  ASSERT_TRUE(dm->ReadPage(f, 0, read_buf).ok());
  for (size_t i = 0; i < kPageDataSize; ++i) ASSERT_EQ(read_buf[i], 0);
  EXPECT_TRUE(PageChecksumOk(read_buf));

  EXPECT_TRUE(dm->ReadPage(f, 99, read_buf).IsOutOfRange());
  EXPECT_TRUE(dm->WritePage(f, 99, buf).IsOutOfRange());
  EXPECT_TRUE(dm->ReadPage(999, 0, read_buf).IsInvalidArgument());
  EXPECT_GE(dm->stats().reads, 2u);
  EXPECT_GE(dm->stats().writes, 1u);
  EXPECT_EQ(dm->stats().allocations, 2u);

  // Reopening the same name returns the same id; a new name a new id.
  EXPECT_EQ(dm->OpenFile("data").value(), f);
  EXPECT_NE(dm->OpenFile("other").value(), f);

  ASSERT_TRUE(dm->Truncate(f).ok());
  EXPECT_EQ(dm->NumPages(f).value(), 0u);
  ASSERT_TRUE(dm->SyncAll().ok());
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    auto dm = DiskManager::Open(dir.path() + "/db").value();
    FileId f = dm->OpenFile("data").value();
    (void)dm->AllocatePage(f).value();
    char buf[kPageSize];
    memset(buf, 0x5C, sizeof(buf));
    ASSERT_TRUE(dm->WritePage(f, 0, buf).ok());
    ASSERT_TRUE(dm->SyncAll().ok());
  }
  auto dm = DiskManager::Open(dir.path() + "/db").value();
  FileId f = dm->OpenFile("data").value();
  EXPECT_EQ(dm->NumPages(f).value(), 1u);
  char buf[kPageSize];
  ASSERT_TRUE(dm->ReadPage(f, 0, buf).ok());
  EXPECT_EQ(static_cast<unsigned char>(buf[17]), 0x5C);
}

TEST(ExecuteScriptTest, RunsAllAndStopsOnError) {
  TempDir dir;
  auto db = Database::Open(dir.path() + "/db", {}).value();
  auto results = db->ExecuteScript(R"(
    CREATE ATOM_TYPE T (x INT);
    INSERT ATOM T (x=1) VALID FROM 5;
    INSERT ATOM T (x=2) VALID FROM 5;
  )");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_EQ(results.value().size(), 3u);
  EXPECT_NE(results.value()[1].inserted_id, kInvalidAtomId);
  // Error mid-script propagates.
  auto bad = db->ExecuteScript("CREATE ATOM_TYPE U (y INT); garbage;");
  EXPECT_TRUE(bad.status().IsParseError());
}

}  // namespace
}  // namespace tcob
