// Cold-segment codec tests: property round-trips over randomized atom
// histories (all attribute types, NULLs, unchanged-attribute bitmaps)
// plus an adversarial decoder fuzz — every truncation and every single
// bit flip of a valid segment must yield Status::Corruption, never a
// crash or out-of-bounds read (the suite runs under ASan/UBSan in CI).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "tstore/segment.h"

namespace tcob {
namespace {

const std::vector<AttrType> kAllTypes = {
    AttrType::kBool,   AttrType::kInt,       AttrType::kDouble,
    AttrType::kString, AttrType::kTimestamp, AttrType::kId};

Value RandomValue(AttrType type, std::mt19937_64* rng) {
  if ((*rng)() % 8 == 0) return Value::Null(type);
  switch (type) {
    case AttrType::kBool:
      return Value::Bool((*rng)() % 2 == 0);
    case AttrType::kInt:
      return Value::Int(static_cast<int64_t>((*rng)()) >> ((*rng)() % 48));
    case AttrType::kDouble:
      return Value::Double(static_cast<double>((*rng)() % 100000) / 7.0);
    case AttrType::kString: {
      std::string s(static_cast<size_t>((*rng)() % 24), '\0');
      for (char& c : s) c = static_cast<char>('a' + (*rng)() % 26);
      return Value::String(std::move(s));
    }
    case AttrType::kTimestamp:
      return Value::Time(static_cast<Timestamp>((*rng)() % 1000000));
    case AttrType::kId:
      return Value::Id((*rng)() % 100000);
  }
  return Value::Null(type);
}

/// A random closed-version chain for one atom: ascending, non-
/// overlapping intervals (possibly with gaps), sparse attribute changes
/// so the delta bitmap path is exercised.
std::vector<AtomVersion> RandomChain(AtomId id, TypeId type,
                                     const std::vector<AttrType>& schema,
                                     std::mt19937_64* rng) {
  size_t n = 1 + (*rng)() % 6;
  std::vector<AtomVersion> chain;
  Timestamp t = 100 + static_cast<Timestamp>((*rng)() % 50);
  uint32_t vno = 1 + static_cast<uint32_t>((*rng)() % 3);
  std::vector<Value> attrs;
  for (AttrType at : schema) attrs.push_back(RandomValue(at, rng));
  for (size_t i = 0; i < n; ++i) {
    AtomVersion v;
    v.id = id;
    v.type = type;
    v.version_no = vno;
    vno += 1 + static_cast<uint32_t>((*rng)() % 2);  // deletes leave gaps
    Timestamp len = 1 + static_cast<Timestamp>((*rng)() % 40);
    v.valid = Interval(t, t + len);
    t += len + static_cast<Timestamp>((*rng)() % 10);  // occasional gap
    if (i > 0) {
      // Change a random subset of attributes; the rest carry over and
      // must cost only a bitmap bit.
      for (size_t a = 0; a < schema.size(); ++a) {
        if ((*rng)() % 3 == 0) attrs[a] = RandomValue(schema[a], rng);
      }
    }
    v.attrs = attrs;
    chain.push_back(std::move(v));
  }
  return chain;
}

void ExpectSameVersions(const std::vector<AtomVersion>& want,
                        const std::vector<AtomVersion>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id);
    EXPECT_EQ(want[i].type, got[i].type);
    EXPECT_EQ(want[i].version_no, got[i].version_no);
    EXPECT_EQ(want[i].valid, got[i].valid);
    ASSERT_EQ(want[i].attrs.size(), got[i].attrs.size());
    for (size_t a = 0; a < want[i].attrs.size(); ++a) {
      EXPECT_TRUE(want[i].attrs[a] == got[i].attrs[a])
          << "atom " << want[i].id << " version " << i << " attr " << a;
    }
  }
}

TEST(SegmentTest, PropertyRoundTrip) {
  // 20 random segments: schema drawn from all types, 1..20 atoms each.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<AttrType> schema;
    size_t width = 1 + rng() % kAllTypes.size();
    for (size_t i = 0; i < width; ++i) {
      schema.push_back(kAllTypes[rng() % kAllTypes.size()]);
    }
    const TypeId type = static_cast<TypeId>(1 + seed);
    SegmentBuilder builder(type, schema);
    std::vector<std::pair<AtomId, std::vector<AtomVersion>>> atoms;
    AtomId id = 1 + rng() % 5;
    size_t atom_count = 1 + rng() % 20;
    for (size_t i = 0; i < atom_count; ++i) {
      atoms.emplace_back(id, RandomChain(id, type, schema, &rng));
      ASSERT_TRUE(builder.AddAtom(id, atoms.back().second).ok());
      id += 1 + rng() % 7;  // ascending with gaps
    }
    auto blob = builder.Finish();
    ASSERT_TRUE(blob.ok()) << blob.status().ToString();

    auto reader = SegmentReader::Open(blob.value(), schema);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->type(), type);
    EXPECT_EQ(reader->directory().size(), atoms.size());
    for (const auto& [atom_id, want] : atoms) {
      auto got = reader->VersionsOf(atom_id);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameVersions(want, got.value());
      // Fence must cover every version.
      for (const AtomVersion& v : want) {
        EXPECT_TRUE(reader->fence().Contains(v.valid.begin));
        EXPECT_GE(reader->fence().end, v.valid.end);
      }
    }
    // Absent atoms decode to an empty chain, not an error.
    auto absent = reader->VersionsOf(id + 100);
    ASSERT_TRUE(absent.ok());
    EXPECT_TRUE(absent->empty());
  }
}

TEST(SegmentTest, RejectsOpenEndedAndOutOfOrder) {
  std::vector<AttrType> schema = {AttrType::kInt};
  SegmentBuilder builder(1, schema);
  AtomVersion open;
  open.id = 5;
  open.type = 1;
  open.version_no = 1;
  open.valid = Interval(10, kForever);
  open.attrs = {Value::Int(1)};
  EXPECT_FALSE(builder.AddAtom(5, {open}).ok());

  AtomVersion a = open;
  a.valid = Interval(10, 20);
  ASSERT_TRUE(builder.AddAtom(5, {a}).ok());
  // Atom ids must arrive ascending.
  EXPECT_FALSE(builder.AddAtom(4, {a}).ok());
}

/// Builds one representative valid segment blob for the fuzz tests.
std::string BuildFuzzTarget(std::vector<AttrType>* schema_out) {
  std::mt19937_64 rng(7);
  *schema_out = {AttrType::kInt, AttrType::kString, AttrType::kDouble,
                 AttrType::kBool};
  SegmentBuilder builder(3, *schema_out);
  AtomId id = 2;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(builder.AddAtom(id, RandomChain(id, 3, *schema_out, &rng))
                    .ok());
    id += 1 + rng() % 4;
  }
  auto blob = builder.Finish();
  EXPECT_TRUE(blob.ok());
  return blob.ok() ? blob.value() : std::string();
}

/// Opens `bytes` and, if the header survives, decodes every atom: the
/// full surface a corrupted blob can reach.
Status DecodeAll(const std::string& bytes,
                 const std::vector<AttrType>& schema) {
  auto reader = SegmentReader::Open(bytes, schema);
  if (!reader.ok()) return reader.status();
  for (size_t i = 0; i < reader->directory().size(); ++i) {
    auto versions = reader->AtomVersions(i);
    if (!versions.ok()) return versions.status();
  }
  return Status::OK();
}

TEST(SegmentTest, FuzzTruncation) {
  std::vector<AttrType> schema;
  std::string blob = BuildFuzzTarget(&schema);
  ASSERT_FALSE(blob.empty());
  ASSERT_TRUE(DecodeAll(blob, schema).ok());
  // Every proper prefix must fail cleanly (CRC or bounds check).
  for (size_t len = 0; len < blob.size(); ++len) {
    Status s = DecodeAll(blob.substr(0, len), schema);
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " bytes accepted";
  }
}

TEST(SegmentTest, FuzzBitFlips) {
  std::vector<AttrType> schema;
  std::string blob = BuildFuzzTarget(&schema);
  ASSERT_FALSE(blob.empty());
  // The CRC footer covers the entire blob, so EVERY single-bit flip must
  // be detected — walk all of them (blobs are small, this is cheap).
  for (size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = blob;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      Status s = DecodeAll(mutated, schema);
      EXPECT_FALSE(s.ok()) << "bit flip at byte " << byte << " bit " << bit
                           << " accepted";
    }
  }
}

TEST(SegmentTest, FuzzRandomGarbage) {
  std::vector<AttrType> schema = {AttrType::kInt};
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200; ++i) {
    std::string junk(rng() % 512, '\0');
    for (char& c : junk) c = static_cast<char>(rng());
    Status s = DecodeAll(junk, schema);
    EXPECT_FALSE(s.ok());
  }
}

TEST(SegmentTest, FuzzSchemaMismatch) {
  // A valid blob decoded with the wrong schema must fail cleanly, not
  // misinterpret payload bytes as lengths.
  std::vector<AttrType> schema;
  std::string blob = BuildFuzzTarget(&schema);
  ASSERT_FALSE(blob.empty());
  std::vector<AttrType> narrow = {AttrType::kInt};
  std::vector<AttrType> wide = schema;
  wide.push_back(AttrType::kString);
  wide.push_back(AttrType::kId);
  EXPECT_FALSE(DecodeAll(blob, narrow).ok());
  EXPECT_FALSE(DecodeAll(blob, wide).ok());
}

}  // namespace
}  // namespace tcob
