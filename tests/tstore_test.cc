#include "tstore/temporal_store.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/temp_dir.h"
#include "tstore/store_factory.h"

namespace tcob {
namespace {

/// Test configurations: the three strategies, plus separated without its
/// version index (the Fig. 10 ablation).
struct StoreConfig {
  StorageStrategy strategy;
  bool version_index;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const StoreConfig& c) {
  return os << c.label;
}

class TStoreTest : public ::testing::TestWithParam<StoreConfig> {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 512);
    StoreOptions options;
    options.separated_version_index = GetParam().version_index;
    store_ = MakeTemporalStore(GetParam().strategy, pool_.get(), "store",
                               options);
    type_.id = 1;
    type_.name = "Emp";
    type_.attributes = {{"name", AttrType::kString},
                        {"salary", AttrType::kInt}};
  }

  std::vector<Value> Attrs(const std::string& name, int64_t salary) {
    return {Value::String(name), Value::Int(salary)};
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TemporalAtomStore> store_;
  AtomTypeDef type_;
};

TEST_P(TStoreTest, InsertAndGetCurrent) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada", 100), 10).ok());
  auto v = store_->GetAsOf(type_, 1, 50).value();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->id, 1u);
  EXPECT_EQ(v->version_no, 1u);
  EXPECT_EQ(v->valid, Interval(10, kForever));
  EXPECT_EQ(v->attrs[0].AsString(), "ada");
}

TEST_P(TStoreTest, GetBeforeBirthIsEmpty) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada", 100), 10).ok());
  EXPECT_FALSE(store_->GetAsOf(type_, 1, 9).value().has_value());
  EXPECT_TRUE(store_->GetAsOf(type_, 99, 9).status().IsNotFound());
}

TEST_P(TStoreTest, UpdateCreatesVersions) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada", 100), 10).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("ada", 200), 20).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("ada", 300), 30).ok());

  EXPECT_EQ(store_->GetAsOf(type_, 1, 15).value()->attrs[1].AsInt(), 100);
  EXPECT_EQ(store_->GetAsOf(type_, 1, 20).value()->attrs[1].AsInt(), 200);
  EXPECT_EQ(store_->GetAsOf(type_, 1, 29).value()->attrs[1].AsInt(), 200);
  EXPECT_EQ(store_->GetAsOf(type_, 1, 1000).value()->attrs[1].AsInt(), 300);

  auto versions = store_->GetVersions(type_, 1, Interval::All()).value();
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].valid, Interval(10, 20));
  EXPECT_EQ(versions[1].valid, Interval(20, 30));
  EXPECT_EQ(versions[2].valid, Interval(30, kForever));
  EXPECT_EQ(versions[0].version_no, 1u);
  EXPECT_EQ(versions[2].version_no, 3u);
}

TEST_P(TStoreTest, DeleteEndsValidity) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada", 100), 10).ok());
  ASSERT_TRUE(store_->Delete(type_, 1, 30).ok());
  EXPECT_TRUE(store_->GetAsOf(type_, 1, 20).value().has_value());
  EXPECT_FALSE(store_->GetAsOf(type_, 1, 30).value().has_value());
  EXPECT_FALSE(store_->GetAsOf(type_, 1, 1000).value().has_value());
}

TEST_P(TStoreTest, ReinsertAfterDeleteResumesHistory) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada", 100), 10).ok());
  ASSERT_TRUE(store_->Delete(type_, 1, 20).ok());
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("ada2", 150), 40).ok());
  EXPECT_FALSE(store_->GetAsOf(type_, 1, 25).value().has_value());  // gap
  auto v = store_->GetAsOf(type_, 1, 45).value();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->attrs[0].AsString(), "ada2");
  EXPECT_EQ(v->version_no, 2u);
  auto versions = store_->GetVersions(type_, 1, Interval::All()).value();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].valid, Interval(10, 20));
  EXPECT_EQ(versions[1].valid, Interval(40, kForever));
}

TEST_P(TStoreTest, MutationErrorCases) {
  EXPECT_TRUE(store_->Update(type_, 9, Attrs("x", 1), 5).IsNotFound());
  EXPECT_TRUE(store_->Delete(type_, 9, 5).IsNotFound());
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  // Double insert of a live atom at a different instant.
  EXPECT_TRUE(store_->Insert(type_, 1, Attrs("b", 2), 11).IsAlreadyExists());
  // Update strictly before the live version began.
  EXPECT_TRUE(store_->Update(type_, 1, Attrs("b", 2), 5).IsInvalidArgument());
  // Delete at or before begin.
  EXPECT_TRUE(store_->Delete(type_, 1, 10).IsInvalidArgument());
  ASSERT_TRUE(store_->Delete(type_, 1, 20).ok());
  // Update of a dead atom (not at the deletion instant).
  EXPECT_TRUE(store_->Update(type_, 1, Attrs("b", 2), 30).IsInvalidArgument());
  // Re-insert before the deletion point.
  EXPECT_TRUE(store_->Insert(type_, 1, Attrs("b", 2), 15).IsInvalidArgument());
}

TEST_P(TStoreTest, IdempotentReplay) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("b", 2), 20).ok());
  ASSERT_TRUE(store_->Delete(type_, 1, 30).ok());
  // Replaying the exact same operations must be accepted silently.
  EXPECT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  EXPECT_TRUE(store_->Update(type_, 1, Attrs("b", 2), 20).ok());
  EXPECT_TRUE(store_->Delete(type_, 1, 30).ok());
  // State unchanged.
  auto versions = store_->GetVersions(type_, 1, Interval::All()).value();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].valid, Interval(10, 20));
  EXPECT_EQ(versions[1].valid, Interval(20, 30));
}

TEST_P(TStoreTest, GetVersionsWindowFilters) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  for (Timestamp t = 20; t <= 100; t += 10) {
    ASSERT_TRUE(store_->Update(type_, 1, Attrs("a", t), t).ok());
  }
  auto versions = store_->GetVersions(type_, 1, Interval(35, 65)).value();
  // Versions [30,40) [40,50) [50,60) [60,70) overlap [35,65).
  ASSERT_EQ(versions.size(), 4u);
  EXPECT_EQ(versions[0].valid, Interval(30, 40));
  EXPECT_EQ(versions[3].valid, Interval(60, 70));
}

TEST_P(TStoreTest, ScanAsOfStreamsAllLiveAtoms) {
  for (AtomId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(
        store_->Insert(type_, id, Attrs("e" + std::to_string(id), 0), 10)
            .ok());
  }
  // Kill the even atoms at 50.
  for (AtomId id = 2; id <= 20; id += 2) {
    ASSERT_TRUE(store_->Delete(type_, id, 50).ok());
  }
  std::set<AtomId> at_40, at_60;
  ASSERT_TRUE(store_->ScanAsOf(type_, 40, [&](const AtomVersion& v) {
                      at_40.insert(v.id);
                      return Result<bool>(true);
                    }).ok());
  ASSERT_TRUE(store_->ScanAsOf(type_, 60, [&](const AtomVersion& v) {
                      at_60.insert(v.id);
                      return Result<bool>(true);
                    }).ok());
  EXPECT_EQ(at_40.size(), 20u);
  EXPECT_EQ(at_60.size(), 10u);
  for (AtomId id = 1; id <= 20; id += 2) EXPECT_TRUE(at_60.count(id));
}

TEST_P(TStoreTest, ScanAsOfFindsPastVersions) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("a", 2), 20).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("a", 3), 30).ok());
  int64_t salary = -1;
  ASSERT_TRUE(store_->ScanAsOf(type_, 15, [&](const AtomVersion& v) {
                      salary = v.attrs[1].AsInt();
                      return Result<bool>(true);
                    }).ok());
  EXPECT_EQ(salary, 1);
}

TEST_P(TStoreTest, ScanVersionsStreamsEverything) {
  for (AtomId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(store_->Insert(type_, id, Attrs("e", 0), 10).ok());
    ASSERT_TRUE(store_->Update(type_, id, Attrs("e", 1), 20).ok());
    ASSERT_TRUE(store_->Update(type_, id, Attrs("e", 2), 30).ok());
  }
  size_t count = 0;
  ASSERT_TRUE(store_->ScanVersions(type_, Interval::All(),
                                   [&](const AtomVersion&) {
                                     ++count;
                                     return Result<bool>(true);
                                   })
                  .ok());
  EXPECT_EQ(count, 15u);
  count = 0;
  ASSERT_TRUE(store_->ScanVersions(type_, Interval(25, 100),
                                   [&](const AtomVersion&) {
                                     ++count;
                                     return Result<bool>(true);
                                   })
                  .ok());
  EXPECT_EQ(count, 10u);  // [20,30) and [30,inf) per atom
}

TEST_P(TStoreTest, LongHistories) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("e", 0), 1).ok());
  for (Timestamp t = 2; t <= 200; ++t) {
    ASSERT_TRUE(store_->Update(type_, 1, Attrs("e", t), t).ok());
  }
  // Probe every chronon.
  for (Timestamp t = 1; t <= 200; ++t) {
    auto v = store_->GetAsOf(type_, 1, t).value();
    ASSERT_TRUE(v.has_value()) << t;
    EXPECT_EQ(v->attrs[1].AsInt(), t == 1 ? 0 : t) << t;
  }
  EXPECT_EQ(store_->GetVersions(type_, 1, Interval::All()).value().size(),
            200u);
}

TEST_P(TStoreTest, PersistsAcrossReopen) {
  ASSERT_TRUE(store_->Insert(type_, 1, Attrs("a", 1), 10).ok());
  ASSERT_TRUE(store_->Update(type_, 1, Attrs("b", 2), 20).ok());
  ASSERT_TRUE(store_->Flush().ok());
  store_.reset();
  pool_ = std::make_unique<BufferPool>(disk_.get(), 512);
  StoreOptions options;
  options.separated_version_index = GetParam().version_index;
  store_ =
      MakeTemporalStore(GetParam().strategy, pool_.get(), "store", options);
  auto versions = store_->GetVersions(type_, 1, Interval::All()).value();
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[1].attrs[0].AsString(), "b");
}

TEST_P(TStoreTest, SpaceStatsNonTrivial) {
  for (AtomId id = 1; id <= 50; ++id) {
    ASSERT_TRUE(store_->Insert(type_, id, Attrs("e", 0), 10).ok());
    ASSERT_TRUE(store_->Update(type_, id, Attrs("e", 1), 20).ok());
  }
  auto stats = store_->SpaceStats().value();
  EXPECT_GT(stats.heap_pages, 0u);
  EXPECT_GT(stats.total_bytes, 0u);
}

// The model-level property: every strategy is an implementation of the
// same abstract versioned-atom store. Drive a random operation sequence
// against the store and an in-memory reference; all reads must agree.
TEST_P(TStoreTest, RandomizedEquivalenceWithReferenceModel) {
  struct RefVersion {
    Interval valid;
    int64_t salary;
  };
  std::map<AtomId, std::vector<RefVersion>> reference;
  Random rng(2024);
  Timestamp clock = 1;
  const int kAtoms = 12;

  for (int step = 0; step < 600; ++step) {
    AtomId id = 1 + rng.Uniform(kAtoms);
    clock += 1 + rng.Uniform(3);
    auto& hist = reference[id];
    bool live = !hist.empty() && hist.back().valid.open_ended();
    int64_t salary = static_cast<int64_t>(rng.Uniform(100000));
    if (!live) {
      ASSERT_TRUE(
          store_->Insert(type_, id, Attrs("e", salary), clock).ok());
      hist.push_back({Interval(clock, kForever), salary});
    } else if (rng.Bernoulli(0.15)) {
      ASSERT_TRUE(store_->Delete(type_, id, clock).ok());
      hist.back().valid.end = clock;
    } else {
      ASSERT_TRUE(
          store_->Update(type_, id, Attrs("e", salary), clock).ok());
      hist.back().valid.end = clock;
      hist.push_back({Interval(clock, kForever), salary});
    }
  }

  // Point probes across the whole timeline.
  for (AtomId id = 1; id <= kAtoms; ++id) {
    const auto& hist = reference[id];
    if (hist.empty()) continue;
    for (Timestamp t = 0; t <= clock + 5; t += 1 + t / 37) {
      const RefVersion* expected = nullptr;
      for (const RefVersion& v : hist) {
        if (v.valid.Contains(t)) expected = &v;
      }
      auto got = store_->GetAsOf(type_, id, t).value();
      ASSERT_EQ(got.has_value(), expected != nullptr)
          << "atom " << id << " at " << t;
      if (expected != nullptr) {
        ASSERT_EQ(got->attrs[1].AsInt(), expected->salary)
            << "atom " << id << " at " << t;
        ASSERT_EQ(got->valid, expected->valid);
      }
    }
    // Full history agrees.
    auto versions = store_->GetVersions(type_, id, Interval::All()).value();
    ASSERT_EQ(versions.size(), hist.size()) << "atom " << id;
    for (size_t i = 0; i < hist.size(); ++i) {
      ASSERT_EQ(versions[i].valid, hist[i].valid);
      ASSERT_EQ(versions[i].attrs[1].AsInt(), hist[i].salary);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TStoreTest,
    ::testing::Values(
        StoreConfig{StorageStrategy::kSnapshot, true, "snapshot"},
        StoreConfig{StorageStrategy::kIntegrated, true, "integrated"},
        StoreConfig{StorageStrategy::kSeparated, true, "separated_vidx"},
        StoreConfig{StorageStrategy::kSeparated, false,
                    "separated_no_vidx"}),
    [](const ::testing::TestParamInfo<StoreConfig>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace tcob
