#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/temp_dir.h"
#include "storage/buffer_pool.h"

namespace tcob {
namespace {

class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dm = DiskManager::Open(dir_.path() + "/db");
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(dm).value();
    auto file = disk_->OpenFile("data");
    ASSERT_TRUE(file.ok());
    file_ = file.value();
  }

  /// Seeds `n` pages, each stamped with its page number, through a
  /// throwaway pool so the concurrent phase starts from a cold cache.
  void SeedPages(int n) {
    BufferPool seed(disk_.get(), 16);
    for (int i = 0; i < n; ++i) {
      Page* p = seed.NewPage(file_).value();
      snprintf(p->data, 32, "page-%d", i);
      seed.Unpin(p, true);
    }
    ASSERT_TRUE(seed.FlushAll().ok());
  }

  TempDir dir_;
  std::unique_ptr<DiskManager> disk_;
  FileId file_;
};

// Many readers over a working set much larger than the pool: constant
// eviction pressure across shards, every fetch must still see the
// correct bytes, and afterwards no pin may linger.
TEST_F(BufferPoolConcurrencyTest, ConcurrentReadersUnderEviction) {
  constexpr int kPages = 256;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  SeedPages(kPages);
  BufferPool pool(disk_.get(), 32);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread page sequence (xorshift).
      uint32_t rng = 0x9E3779B9u * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        PageNo pno = rng % kPages;
        auto page = pool.FetchPage(file_, pno);
        if (!page.ok()) {
          // All-frames-pinned is impossible here (pins are transient and
          // threads << frames), so any error is a real failure.
          failures.fetch_add(1);
          continue;
        }
        char expected[32];
        snprintf(expected, 32, "page-%u", pno);
        if (strcmp(page.value()->data, expected) != 0) failures.fetch_add(1);
        pool.Unpin(page.value(), false);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Pin-count invariant: everything released.
  EXPECT_TRUE(pool.Reset().ok());  // Reset errors on any pinned page
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.hits + stats.misses, stats.fetches);
  EXPECT_GT(stats.evictions, 0u);
}

// Writers confined to disjoint page subsets (the system's contract:
// concurrent readers, single writer per datum) interleaved with readers
// of the same subset. After heavy eviction every mutation must survive —
// no lost writebacks.
TEST_F(BufferPoolConcurrencyTest, NoLostWritebacksUnderEviction) {
  constexpr int kPages = 128;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  SeedPages(kPages);
  BufferPool pool(disk_.get(), 16);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Thread t owns pages where page % kThreads == t.
      for (int round = 1; round <= kRounds; ++round) {
        for (int pno = t; pno < kPages; pno += kThreads) {
          auto page = pool.FetchPage(file_, pno);
          if (!page.ok()) {
            failures.fetch_add(1);
            continue;
          }
          snprintf(page.value()->data, 48, "page-%d round-%d", pno, round);
          pool.Unpin(page.value(), true);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Verify through a fresh pool: every page shows its final round.
  BufferPool verify(disk_.get(), 16);
  for (int pno = 0; pno < kPages; ++pno) {
    Page* p = verify.FetchPage(file_, pno).value();
    char expected[48];
    snprintf(expected, 48, "page-%d round-%d", pno, kRounds);
    EXPECT_STREQ(p->data, expected) << "lost writeback on page " << pno;
    verify.Unpin(p, false);
  }
}

// Pin-count stress: threads hold several pins at once while the pool is
// near capacity; the steal path must never evict a pinned frame.
TEST_F(BufferPoolConcurrencyTest, PinnedFramesSurviveStealPressure) {
  constexpr int kPages = 64;
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  SeedPages(kPages);
  // Tight pool: 4 threads x up to 4 pins = 16 pinned of 24 frames.
  BufferPool pool(disk_.get(), 24);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint32_t rng = 0x85EBCA6Bu * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        Page* held[4] = {nullptr, nullptr, nullptr, nullptr};
        PageNo nos[4];
        for (int k = 0; k < 4; ++k) {
          rng ^= rng << 13;
          rng ^= rng >> 17;
          rng ^= rng << 5;
          nos[k] = rng % kPages;
          auto page = pool.FetchPage(file_, nos[k]);
          if (!page.ok()) break;  // transient exhaustion: back off
          held[k] = page.value();
        }
        for (int k = 0; k < 4; ++k) {
          if (held[k] == nullptr) continue;
          char expected[32];
          snprintf(expected, 32, "page-%u", nos[k]);
          // A pinned frame's identity and bytes must be stable even
          // while other threads evict and steal around it.
          if (held[k]->page_no != nos[k] ||
              strcmp(held[k]->data, expected) != 0) {
            failures.fetch_add(1);
          }
          pool.Unpin(held[k], false);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(pool.Reset().ok());
}

}  // namespace
}  // namespace tcob
