#include "index/attr_index.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "db/database.h"
#include "query/parser.h"
#include "query/planner.h"

namespace tcob {
namespace {

class AttrIndexTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.strategy = GetParam();
    auto db = Database::Open(dir_.path() + "/db", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    Run("CREATE ATOM_TYPE Dept (name STRING, budget INT)");
    Run("CREATE ATOM_TYPE Emp (name STRING, salary INT)");
    Run("CREATE LINK DeptEmp FROM Dept TO Emp");
    Run("CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD)");
  }

  ResultSet Run(const std::string& mql) {
    auto r = db_->Execute(mql);
    EXPECT_TRUE(r.ok()) << mql << ": " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  /// Ten departments, budgets 100..1000, created at t=10; budgets of the
  /// first five doubled at t=50.
  void PopulateDepts() {
    for (int i = 1; i <= 10; ++i) {
      ResultSet r = Run("INSERT ATOM Dept (name='d" + std::to_string(i) +
                        "', budget=" + std::to_string(i * 100) +
                        ") VALID FROM 10");
      depts_.push_back(r.inserted_id);
    }
    for (int i = 0; i < 5; ++i) {
      Run("UPDATE ATOM Dept " + std::to_string(depts_[i]) + " SET budget=" +
          std::to_string((i + 1) * 200) + " VALID FROM 50");
    }
    db_->SetNow(100);
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::vector<AtomId> depts_;
};

TEST_P(AttrIndexTest, DirectLookupAsOf) {
  PopulateDepts();
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_budget").value();
  ValueRange range;
  range.lower = Value::Int(300);
  range.lower_inclusive = true;
  // As of t=20 (before the updates): budgets 300..1000 -> depts 3..10.
  auto before = db_->attr_indexes()->LookupAsOf(*idx, range, 20).value();
  EXPECT_EQ(before.size(), 8u);
  // As of t=60: first five now 200,400,..,1000; budgets >= 300:
  // d2(400),d3(600),d4(800),d5(1000) plus d6..d10 (600..1000) and
  // d3..d5 originals are gone -> exactly 9 atoms.
  auto after = db_->attr_indexes()->LookupAsOf(*idx, range, 60).value();
  EXPECT_EQ(after.size(), 9u);
}

TEST_P(AttrIndexTest, EqualityLookup) {
  PopulateDepts();
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_budget").value();
  ValueRange eq;
  eq.lower = Value::Int(400);
  eq.upper = Value::Int(400);
  eq.lower_inclusive = eq.upper_inclusive = true;
  // t=20: only dept 4 had budget 400.
  auto hits = db_->attr_indexes()->LookupAsOf(*idx, eq, 20).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], depts_[3]);
  // t=60: dept 2 was doubled to 400; dept 4 still 400 (not in first five?
  // dept 4 IS in the first five, doubled to 800). So only dept 2.
  hits = db_->attr_indexes()->LookupAsOf(*idx, eq, 60).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], depts_[1]);
}

TEST_P(AttrIndexTest, BackfillCoversPreexistingHistory) {
  PopulateDepts();  // history exists *before* the index
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_budget").value();
  ValueRange all;
  auto at_20 = db_->attr_indexes()->LookupAsOf(*idx, all, 20).value();
  EXPECT_EQ(at_20.size(), 10u);
  auto at_5 = db_->attr_indexes()->LookupAsOf(*idx, all, 5).value();
  EXPECT_EQ(at_5.size(), 0u);
}

TEST_P(AttrIndexTest, StringIndex) {
  PopulateDepts();
  ASSERT_TRUE(db_->CreateAttrIndex("idx_name", "Dept", "name").ok());
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_name").value();
  ValueRange eq;
  eq.lower = Value::String("d7");
  eq.upper = Value::String("d7");
  eq.lower_inclusive = eq.upper_inclusive = true;
  auto hits = db_->attr_indexes()->LookupAsOf(*idx, eq, 20).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], depts_[6]);
  // Prefix must not bleed: "d1" != "d10".
  eq.lower = eq.upper = Value::String("d1");
  hits = db_->attr_indexes()->LookupAsOf(*idx, eq, 20).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], depts_[0]);
}

TEST_P(AttrIndexTest, IndexedQueryMatchesScanResults) {
  PopulateDepts();
  // Connect one employee per dept so molecules are non-trivial.
  for (AtomId dept : depts_) {
    ResultSet emp = Run("INSERT ATOM Emp (name='e', salary=1) VALID FROM 10");
    Run("CONNECT DeptEmp FROM " + std::to_string(dept) + " TO " +
        std::to_string(emp.inserted_id) + " VALID FROM 10");
  }
  const std::string query =
      "SELECT Dept.name, Dept.budget FROM DeptMol "
      "WHERE Dept.budget >= 500 AND Dept.budget < 900 VALID AT 60";
  ResultSet scanned = Run(query);
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  ResultSet indexed = Run(query);
  ASSERT_EQ(indexed.RowCount(), scanned.RowCount());
  // The message reveals the index was used.
  EXPECT_NE(indexed.message.find("index scan"), std::string::npos)
      << indexed.message;
  // Row contents agree (order may differ; compare as multisets).
  auto fingerprint = [](const ResultSet& r) {
    std::multiset<std::string> out;
    for (const auto& row : r.rows) {
      std::string line;
      for (const Value& v : row) line += v.ToString() + "|";
      out.insert(line);
    }
    return out;
  };
  EXPECT_EQ(fingerprint(indexed), fingerprint(scanned));
}

TEST_P(AttrIndexTest, ExplainShowsAccessPath) {
  PopulateDepts();
  ResultSet before = Run(
      "EXPLAIN SELECT ALL FROM DeptMol WHERE Dept.budget = 400 VALID AT 20");
  EXPECT_NE(before.rows[0][0].AsString().find("full scan"),
            std::string::npos);
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  ResultSet after = Run(
      "EXPLAIN SELECT ALL FROM DeptMol WHERE Dept.budget = 400 VALID AT 20");
  EXPECT_NE(after.rows[0][0].AsString().find("index scan"),
            std::string::npos);
  // History queries never use the index.
  ResultSet history =
      Run("EXPLAIN SELECT ALL FROM DeptMol WHERE Dept.budget = 400 HISTORY");
  EXPECT_NE(history.rows[0][0].AsString().find("full scan"),
            std::string::npos);
  // Predicates on non-root types cannot use a root index.
  ResultSet emp_pred = Run(
      "EXPLAIN SELECT ALL FROM DeptMol WHERE Emp.salary = 1 VALID AT 20");
  EXPECT_NE(emp_pred.rows[0][0].AsString().find("full scan"),
            std::string::npos);
}

TEST_P(AttrIndexTest, IndexMaintainedAcrossDeleteAndReinsert) {
  PopulateDepts();
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  Run("DELETE ATOM Dept " + std::to_string(depts_[0]) + " VALID FROM 70");
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_budget").value();
  ValueRange all;
  auto at_80 = db_->attr_indexes()->LookupAsOf(*idx, all, 80).value();
  EXPECT_EQ(at_80.size(), 9u);  // one dept dead
  auto at_60 = db_->attr_indexes()->LookupAsOf(*idx, all, 60).value();
  EXPECT_EQ(at_60.size(), 10u);  // still alive back then
}

TEST_P(AttrIndexTest, IndexSurvivesRecovery) {
  PopulateDepts();
  ASSERT_TRUE(db_->CreateAttrIndex("idx_budget", "Dept", "budget").ok());
  // More history after index creation, then reopen without checkpoint.
  Run("UPDATE ATOM Dept " + std::to_string(depts_[9]) +
      " SET budget=9999 VALID FROM 80");
  DatabaseOptions options;
  options.strategy = GetParam();
  db_.reset();
  db_ = Database::Open(dir_.path() + "/db", options).value();
  const AttrIndexDef* idx =
      db_->catalog().GetAttrIndexByName("idx_budget").value();
  ValueRange eq;
  eq.lower = eq.upper = Value::Int(9999);
  eq.lower_inclusive = eq.upper_inclusive = true;
  auto hits = db_->attr_indexes()->LookupAsOf(*idx, eq, 90).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], depts_[9]);
}

TEST_P(AttrIndexTest, DdlValidation) {
  EXPECT_TRUE(db_->CreateAttrIndex("i", "Nope", "x").status().IsNotFound());
  EXPECT_TRUE(db_->CreateAttrIndex("i", "Dept", "nope")
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(db_->CreateAttrIndex("i", "Dept", "budget").ok());
  EXPECT_TRUE(
      db_->CreateAttrIndex("i", "Dept", "name").status().IsAlreadyExists());
  EXPECT_TRUE(db_->CreateAttrIndex("i2", "Dept", "budget")
                  .status()
                  .IsAlreadyExists());
  // MQL path + SHOW CATALOG.
  Run("CREATE INDEX idx_name ON Dept (name)");
  ResultSet catalog = Run("SHOW CATALOG");
  size_t index_rows = 0;
  for (const auto& row : catalog.rows) {
    if (row[0].AsString() == "INDEX") ++index_rows;
  }
  EXPECT_EQ(index_rows, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AttrIndexTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
