// Table-driven corpus of malformed MQL. Every input must be rejected
// with a clean ParseError-class status — never a crash, hang, or
// silent acceptance. Run under ASan in CI, this doubles as the parser's
// memory-safety fuzz floor: the corpus covers truncations at every
// clause boundary, bad tokens, type confusions, and pathologically deep
// expression nesting (bounded by the parser's recursion-depth limit).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/parser.h"

namespace tcob {
namespace {

struct BadCase {
  const char* label;
  std::string input;
};

std::vector<BadCase> Corpus() {
  std::vector<BadCase> corpus = {
      // Empty and whitespace-only.
      {"empty", ""},
      {"whitespace", "   \t\n  "},
      {"comment_only", "-- nothing here\n"},
      // Truncated at every clause boundary.
      {"bare_select", "SELECT"},
      {"select_no_from", "SELECT ALL"},
      {"from_no_molecule", "SELECT ALL FROM"},
      {"where_no_expr", "SELECT ALL FROM m WHERE"},
      {"valid_no_mode", "SELECT ALL FROM m VALID"},
      {"valid_at_no_time", "SELECT ALL FROM m VALID AT"},
      {"valid_in_no_interval", "SELECT ALL FROM m VALID IN"},
      {"group_by_dangling", "SELECT COUNT(*) FROM m GROUP BY"},
      {"group_by_not_root", "SELECT COUNT(*) FROM m GROUP BY name"},
      // Truncated / malformed intervals.
      {"interval_open_only", "SELECT ALL FROM m VALID IN ["},
      {"interval_one_bound", "SELECT ALL FROM m VALID IN [10"},
      {"interval_no_close", "SELECT ALL FROM m VALID IN [10, 20"},
      {"interval_missing_comma", "SELECT ALL FROM m VALID IN [10 20)"},
      {"interval_wrong_brackets", "SELECT ALL FROM m VALID IN (10, 20]"},
      {"interval_junk_bounds", "SELECT ALL FROM m VALID IN [x, y)"},
      // Bad and stray tokens.
      {"stray_at_sign", "SELECT @@ FROM m"},
      {"stray_hash", "SELECT ALL FROM m # comment"},
      {"unterminated_string", "SELECT ALL FROM m WHERE t.a = 'abc"},
      {"lone_operator", "SELECT ALL FROM m WHERE >= 5"},
      {"dangling_operator", "SELECT ALL FROM m WHERE t.a ="},
      {"double_dot_ref", "SELECT t..a FROM m"},
      {"dot_no_attr", "SELECT t. FROM m"},
      {"trailing_garbage", "SELECT ALL FROM m VALID AT 5 xyzzy"},
      {"two_statements_no_semi", "SELECT ALL FROM m SELECT ALL FROM m"},
      // Malformed aggregates and projections.
      {"count_unclosed", "SELECT COUNT( FROM m"},
      {"count_wrong_arg", "SELECT COUNT(t.a FROM m"},
      {"empty_projection", "SELECT , FROM m"},
      {"trailing_comma_projection", "SELECT t.a, FROM m"},
      // Unbalanced parentheses in expressions.
      {"unbalanced_open", "SELECT ALL FROM m WHERE (t.a = 1"},
      {"unbalanced_close", "SELECT ALL FROM m WHERE t.a = 1)"},
      {"empty_parens", "SELECT ALL FROM m WHERE ()"},
  };
  // Pathological nesting far past the parser's recursion-depth limit:
  // these must fail with a clean error, not a stack overflow. One case
  // per recursive production (parenthesised groups, NOT chains).
  std::string deep_parens = "SELECT ALL FROM m WHERE ";
  for (int i = 0; i < 5000; ++i) deep_parens += '(';
  deep_parens += "t.a = 1";  // never reached: depth trips first
  corpus.push_back({"parens_nested_5000_deep", deep_parens});
  std::string deep_not = "SELECT ALL FROM m WHERE ";
  for (int i = 0; i < 5000; ++i) deep_not += "NOT ";
  deep_not += "t.a = 1";
  corpus.push_back({"not_chain_5000_deep", deep_not});
  return corpus;
}

TEST(MqlErrorCorpusTest, EveryMalformedInputRejectedCleanly) {
  for (const BadCase& c : Corpus()) {
    Result<Statement> r = Parser::Parse(c.input);
    EXPECT_FALSE(r.ok()) << c.label << ": accepted malformed input";
    if (!r.ok()) {
      // Always the parse-error class, never an internal or I/O status,
      // and always carrying a human-readable message.
      EXPECT_TRUE(r.status().IsParseError())
          << c.label << ": " << r.status().ToString();
      EXPECT_FALSE(r.status().message().empty()) << c.label;
    }
  }
}

TEST(MqlErrorCorpusTest, DepthLimitRejectsButNearLimitParses) {
  // 50 levels of grouping is deep but legal: well under the limit.
  std::string shallow = "SELECT ALL FROM m WHERE ";
  for (int i = 0; i < 50; ++i) shallow += '(';
  shallow += "t.a = 1";
  for (int i = 0; i < 50; ++i) shallow += ')';
  shallow += " VALID AT 5";
  auto ok = Parser::Parse(shallow);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // Past the limit the parser must say why, not blow the stack.
  std::string deep = "SELECT ALL FROM m WHERE ";
  for (int i = 0; i < 300; ++i) deep += '(';
  deep += "t.a = 1";
  auto rejected = Parser::Parse(deep);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsParseError());
  EXPECT_NE(rejected.status().message().find("nested"), std::string::npos)
      << rejected.status().ToString();
}

TEST(MqlErrorCorpusTest, ScriptStopsAtFirstBadStatement) {
  auto r = Parser::ParseScript(
      "SELECT ALL FROM m VALID AT 5; SELECT ALL FROM; SELECT ALL FROM m");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
}

}  // namespace
}  // namespace tcob
