#include "time/calendar.h"

#include <gtest/gtest.h>

namespace tcob {
namespace {

TEST(CivilDateTest, EpochAnchors) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(DaysFromCivil({1970, 1, 2}), 1);
  EXPECT_EQ(DaysFromCivil({1969, 12, 31}), -1);
  EXPECT_EQ(DaysFromCivil({2000, 3, 1}), 11017);
  CivilDate epoch = CivilFromDays(0);
  EXPECT_EQ(epoch, (CivilDate{1970, 1, 1}));
}

TEST(CivilDateTest, RoundTripSweep) {
  // Every day across several decades including leap centuries.
  for (int64_t day = DaysFromCivil({1890, 1, 1});
       day <= DaysFromCivil({2110, 12, 31}); ++day) {
    CivilDate date = CivilFromDays(day);
    EXPECT_TRUE(IsValidDate(date)) << day;
    EXPECT_EQ(DaysFromCivil(date), day);
  }
}

TEST(CivilDateTest, LeapYearRules) {
  EXPECT_TRUE(IsValidDate({2024, 2, 29}));
  EXPECT_FALSE(IsValidDate({2023, 2, 29}));
  EXPECT_TRUE(IsValidDate({2000, 2, 29}));   // divisible by 400
  EXPECT_FALSE(IsValidDate({1900, 2, 29}));  // century, not by 400
  EXPECT_FALSE(IsValidDate({2024, 4, 31}));
  EXPECT_FALSE(IsValidDate({2024, 13, 1}));
  EXPECT_FALSE(IsValidDate({2024, 0, 1}));
  EXPECT_FALSE(IsValidDate({2024, 6, 0}));
}

TEST(CalendarTest, DayGranularity) {
  Calendar cal(Granularity::kDay);
  Timestamp t = cal.Parse("2024-03-01").value();
  EXPECT_EQ(cal.Format(t), "2024-03-01");
  EXPECT_EQ(cal.Parse("2024-03-02").value(), t + 1);
  EXPECT_EQ(cal.Format(kForever), "forever");
}

TEST(CalendarTest, SecondGranularity) {
  Calendar cal(Granularity::kSecond);
  Timestamp t = cal.Parse("2024-03-01 12:30:45").value();
  EXPECT_EQ(cal.Format(t), "2024-03-01 12:30:45");
  EXPECT_EQ(cal.Parse("2024-03-01 12:30:46").value(), t + 1);
  // Midnight boundary.
  Timestamp midnight = cal.Parse("2024-03-02 00:00:00").value();
  EXPECT_EQ(midnight, cal.Parse("2024-03-01 23:59:59").value() + 1);
}

TEST(CalendarTest, HourAndMinuteGranularities) {
  Calendar hours(Granularity::kHour);
  EXPECT_EQ(hours.Parse("1970-01-01 05:00:00").value(), 5);
  Calendar minutes(Granularity::kMinute);
  EXPECT_EQ(minutes.Parse("1970-01-01 01:30:00").value(), 90);
}

TEST(CalendarTest, ParseErrors) {
  Calendar cal(Granularity::kDay);
  EXPECT_TRUE(cal.Parse("not a date").status().IsParseError());
  EXPECT_TRUE(cal.Parse("2024-02-30").status().IsInvalidArgument());
  EXPECT_TRUE(
      cal.Parse("2024-01-01 25:00:00").status().IsInvalidArgument());
}

TEST(CalendarTest, CivilRoundTripAtAllGranularities) {
  for (Granularity g : {Granularity::kDay, Granularity::kHour,
                        Granularity::kMinute, Granularity::kSecond}) {
    Calendar cal(g);
    CivilTime t;
    t.date = {2031, 7, 19};
    if (g != Granularity::kDay) {
      t.hour = 13;
      if (g != Granularity::kHour) t.minute = 47;
      if (g == Granularity::kSecond) t.second = 9;
    }
    Timestamp chronon = cal.FromCivil(t);
    EXPECT_EQ(cal.ToCivil(chronon), t) << GranularityName(g);
  }
}

}  // namespace
}  // namespace tcob
