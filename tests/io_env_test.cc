// IoEnv contract tests: the POSIX implementation against a real
// directory, and the fault-injecting implementation's failure semantics
// (one-shot EIO, torn writes, power cuts in both modes, durability of
// renames), which every crash test in the suite builds on.

#include <gtest/gtest.h>

#include <string>

#include "common/temp_dir.h"
#include "storage/fault_env.h"
#include "storage/io_env.h"

namespace tcob {
namespace {

std::string ReadAll(IoEnv* env, const std::string& path) {
  auto r = ReadFileToString(env, path);
  EXPECT_TRUE(r.ok()) << path << ": " << r.status().ToString();
  return r.ok() ? r.value() : std::string();
}

// ---- POSIX environment ----

TEST(PosixIoEnvTest, WriteReadRoundTrip) {
  TempDir dir;
  IoEnv* env = IoEnv::Default();
  const std::string path = dir.path() + "/file";
  auto file = env->OpenFile(path).value();
  ASSERT_TRUE(file->WriteAt(0, "hello world").ok());
  EXPECT_EQ(file->Size().value(), 11u);

  char buf[32];
  auto n = file->ReadAt(6, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  // Short read only at end-of-file.
  EXPECT_EQ(n.value(), 5u);
  EXPECT_EQ(std::string(buf, 5), "world");

  // Writes beyond the end extend the file (zero gap).
  ASSERT_TRUE(file->WriteAt(16, "x").ok());
  EXPECT_EQ(file->Size().value(), 17u);
  ASSERT_TRUE(file->Truncate(4).ok());
  EXPECT_EQ(file->Size().value(), 4u);
  ASSERT_TRUE(file->Sync().ok());
}

TEST(PosixIoEnvTest, NamespaceOperations) {
  TempDir dir;
  IoEnv* env = IoEnv::Default();
  const std::string sub = dir.path() + "/sub";
  ASSERT_TRUE(env->CreateDir(sub).ok());
  ASSERT_TRUE(env->CreateDir(sub).ok());  // idempotent

  const std::string a = sub + "/a";
  const std::string b = sub + "/b";
  EXPECT_FALSE(env->FileExists(a).value());
  { auto f = env->OpenFile(a).value(); ASSERT_TRUE(f->WriteAt(0, "1").ok()); }
  EXPECT_TRUE(env->FileExists(a).value());
  ASSERT_TRUE(env->RenameFile(a, b).ok());
  EXPECT_FALSE(env->FileExists(a).value());
  EXPECT_TRUE(env->FileExists(b).value());
  ASSERT_TRUE(env->SyncDir(sub).ok());
  ASSERT_TRUE(env->RemoveFile(b).ok());
  ASSERT_TRUE(env->RemoveFile(b).ok());  // missing is OK
  EXPECT_FALSE(env->FileExists(b).value());
}

TEST(PosixIoEnvTest, WriteFileAtomicReplacesContent) {
  TempDir dir;
  IoEnv* env = IoEnv::Default();
  const std::string path = dir.path() + "/blob";
  EXPECT_TRUE(ReadFileToString(env, path).status().IsNotFound());
  ASSERT_TRUE(WriteFileAtomic(env, path, "first version, long").ok());
  EXPECT_EQ(ReadAll(env, path), "first version, long");
  // A shorter replacement must not leave a stale tail.
  ASSERT_TRUE(WriteFileAtomic(env, path, "second").ok());
  EXPECT_EQ(ReadAll(env, path), "second");
}

// ---- fault-injecting environment ----

TEST(FaultEnvTest, BehavesLikeAFilesystemWithoutFaults) {
  FaultInjectingIoEnv env;
  ASSERT_TRUE(env.CreateDir("/db").ok());
  auto file = env.OpenFile("/db/f").value();
  ASSERT_TRUE(file->WriteAt(0, "abcdef").ok());
  ASSERT_TRUE(file->WriteAt(8, "zz").ok());  // gap is zero-filled
  EXPECT_EQ(file->Size().value(), 10u);
  char buf[16];
  auto n = file->ReadAt(0, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 10u);
  EXPECT_EQ(std::string(buf, 10), std::string("abcdef\0\0zz", 10));
  EXPECT_TRUE(env.FileExists("/db/f").value());
  EXPECT_EQ(env.writes(), 2u);
  EXPECT_EQ(env.reads(), 1u);
}

TEST(FaultEnvTest, FailsTheNthOperationOnce) {
  FaultInjectingIoEnv env;
  auto file = env.OpenFile("/f").value();
  env.FailWriteAt(2);
  ASSERT_TRUE(file->WriteAt(0, "aa").ok());
  Status failed = file->WriteAt(2, "bb");
  EXPECT_TRUE(failed.IsIOError()) << failed.ToString();
  // One-shot: the write after the injected failure succeeds, and the
  // failed write left no bytes behind.
  ASSERT_TRUE(file->WriteAt(2, "cc").ok());
  EXPECT_EQ(file->Size().value(), 4u);

  env.FailReadAt(1);
  char buf[4];
  EXPECT_TRUE(file->ReadAt(0, buf, 4).status().IsIOError());
  EXPECT_TRUE(file->ReadAt(0, buf, 4).ok());

  env.FailSyncAt(1);
  EXPECT_TRUE(file->Sync().IsIOError());
  EXPECT_TRUE(file->Sync().ok());
}

TEST(FaultEnvTest, TornWriteKeepsSectorPrefix) {
  FaultInjectingIoEnv env;
  auto file = env.OpenFile("/f").value();
  const std::string block(3 * FaultInjectingIoEnv::kSectorSize, 'A');
  env.TearWriteAt(1, 1);  // keep one sector of the three
  Status torn = file->WriteAt(0, block);
  EXPECT_TRUE(torn.IsIOError()) << torn.ToString();
  EXPECT_EQ(file->Size().value(), FaultInjectingIoEnv::kSectorSize);
  char buf[FaultInjectingIoEnv::kSectorSize];
  ASSERT_EQ(file->ReadAt(0, buf, sizeof(buf)).value(), sizeof(buf));
  EXPECT_EQ(buf[0], 'A');
  EXPECT_EQ(buf[sizeof(buf) - 1], 'A');
}

TEST(FaultEnvTest, PowerCutDropsUnsyncedBytes) {
  FaultInjectingIoEnv env;
  auto file = env.OpenFile("/f").value();
  ASSERT_TRUE(file->WriteAt(0, "durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  // Cut after the next write completes (drop mode): the write itself
  // reports success — the bytes reached the disk cache — but they are
  // lost with the cut.
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kDropUnsynced);
  EXPECT_TRUE(file->WriteAt(7, " and gone").ok());
  EXPECT_TRUE(env.cut_fired());

  // Until Revive, everything fails.
  char buf[16];
  EXPECT_TRUE(file->ReadAt(0, buf, 16).status().IsIOError());
  EXPECT_TRUE(env.OpenFile("/f").status().IsIOError());

  env.Revive();
  auto reopened = env.OpenFile("/f").value();
  EXPECT_EQ(reopened->Size().value(), 7u);
  ASSERT_EQ(reopened->ReadAt(0, buf, 16).value(), 7u);
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST(FaultEnvTest, PowerCutKeepAllTearsTheLastWrite) {
  FaultInjectingIoEnv env;
  auto file = env.OpenFile("/f").value();
  // Never synced — but in keep-all mode completed writes survive.
  ASSERT_TRUE(file->WriteAt(0, "kept").ok());
  const std::string block(2 * FaultInjectingIoEnv::kSectorSize, 'B');
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kKeepAllTearLast);
  EXPECT_TRUE(file->WriteAt(4, block).IsIOError());
  env.Revive();
  auto reopened = env.OpenFile("/f").value();
  uint64_t size = reopened->Size().value();
  // The first write survived in full; the cut write is torn to some
  // prefix of whole sectors (possibly none).
  EXPECT_GE(size, 4u);
  EXPECT_LT(size, 4u + block.size());
  EXPECT_EQ((size - 4) % FaultInjectingIoEnv::kSectorSize, 0u);
  char buf[4];
  ASSERT_EQ(reopened->ReadAt(0, buf, 4).value(), 4u);
  EXPECT_EQ(std::string(buf, 4), "kept");
}

TEST(FaultEnvTest, UnsyncedFileCreationVanishesAtCut) {
  FaultInjectingIoEnv env;
  {
    auto f = env.OpenFile("/new").value();
    ASSERT_TRUE(f->WriteAt(0, "x").ok());
    // No Sync, no SyncDir: neither the bytes nor the name are durable.
  }
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kDropUnsynced);
  auto g = env.OpenFile("/other").value();
  EXPECT_TRUE(g->WriteAt(0, "y").ok());  // the cut event itself completes
  EXPECT_TRUE(env.cut_fired());
  env.Revive();
  EXPECT_FALSE(env.FileExists("/new").value());
}

TEST(FaultEnvTest, FsyncMakesTheFileNameDurableToo) {
  FaultInjectingIoEnv env;
  auto f = env.OpenFile("/new").value();
  ASSERT_TRUE(f->WriteAt(0, "x").ok());
  ASSERT_TRUE(f->Sync().ok());  // fsync persists content AND the name
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kDropUnsynced);
  EXPECT_TRUE(f->WriteAt(1, "y").ok());  // the cut event itself completes
  EXPECT_TRUE(env.cut_fired());
  env.Revive();
  EXPECT_TRUE(env.FileExists("/new").value());
  EXPECT_EQ(ReadAll(&env, "/new"), "x");
}

TEST(FaultEnvTest, RenameNeedsSyncDirToSurviveACut) {
  FaultInjectingIoEnv env;
  ASSERT_TRUE(env.CreateDir("/d").ok());
  {
    auto f = env.OpenFile("/d/a").value();
    ASSERT_TRUE(f->WriteAt(0, "payload").ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  ASSERT_TRUE(env.RenameFile("/d/a", "/d/b").ok());
  EXPECT_TRUE(env.FileExists("/d/b").value());
  // Cut before SyncDir: the rename reverts.
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kDropUnsynced);
  { auto f = env.OpenFile("/scratch").value(); (void)f->WriteAt(0, "z"); }
  env.Revive();
  EXPECT_TRUE(env.FileExists("/d/a").value());
  EXPECT_FALSE(env.FileExists("/d/b").value());

  // Same dance with SyncDir: the rename sticks.
  ASSERT_TRUE(env.RenameFile("/d/a", "/d/b").ok());
  ASSERT_TRUE(env.SyncDir("/d").ok());
  env.PowerCutAfterEvents(env.events() + 1, CutMode::kDropUnsynced);
  { auto f = env.OpenFile("/scratch2").value(); (void)f->WriteAt(0, "z"); }
  env.Revive();
  EXPECT_FALSE(env.FileExists("/d/a").value());
  EXPECT_TRUE(env.FileExists("/d/b").value());
  EXPECT_EQ(ReadAll(&env, "/d/b"), "payload");
}

TEST(FaultEnvTest, WriteFileAtomicSurvivesCutsAtEveryEvent) {
  // Whatever event the power cut lands on, the file must afterwards hold
  // either the old or the new content in full — that is WriteFileAtomic's
  // whole contract.
  for (uint64_t cut_at = 1;; ++cut_at) {
    FaultInjectingIoEnv env;
    ASSERT_TRUE(env.CreateDir("/d").ok());
    ASSERT_TRUE(WriteFileAtomic(&env, "/d/meta", "OLD-CONTENT").ok());
    const uint64_t base = env.events();
    env.PowerCutAfterEvents(base + cut_at, CutMode::kDropUnsynced);
    Status replaced = WriteFileAtomic(&env, "/d/meta", "NEW!");
    if (replaced.ok() && !env.cut_fired()) {
      // The replacement ran out of events before the cut point: the loop
      // has covered every cut point.
      break;
    }
    env.Revive();
    std::string after = ReadAll(&env, "/d/meta");
    EXPECT_TRUE(after == "OLD-CONTENT" || after == "NEW!")
        << "cut at +" << cut_at << " left: '" << after << "'";
  }
}

}  // namespace
}  // namespace tcob
