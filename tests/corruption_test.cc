// Corruption-injection suite: flip one byte in every page of every data
// file and prove the damage is *detected* — VerifyIntegrity names the
// file and page, and queries either succeed (the page was not needed) or
// fail with Status::Corruption. Silent wrong answers and crashes are the
// two outcomes this test exists to rule out.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/temp_dir.h"
#include "db/database.h"
#include "storage/page.h"

namespace tcob {
namespace {

constexpr char kWorkload[] = R"(
  CREATE ATOM_TYPE Dept (name STRING, budget INT);
  CREATE ATOM_TYPE Emp (name STRING, salary INT);
  CREATE LINK DeptEmp FROM Dept TO Emp;
  CREATE MOLECULE_TYPE DeptMol ROOT Dept EDGES (DeptEmp FORWARD);
  CREATE INDEX EmpSalary ON Emp (salary);
  INSERT ATOM Dept (name='eng', budget=100) VALID FROM 10;
  INSERT ATOM Emp (name='ada', salary=10) VALID FROM 10;
  INSERT ATOM Emp (name='bob', salary=20) VALID FROM 10;
  CONNECT DeptEmp FROM 1 TO 2 VALID FROM 10;
  CONNECT DeptEmp FROM 1 TO 3 VALID FROM 10;
  UPDATE ATOM Emp 2 SET salary=11 VALID FROM 20;
  UPDATE ATOM Emp 3 SET salary=21 VALID FROM 20;
  UPDATE ATOM Emp 2 SET salary=12 VALID FROM 30;
  DELETE ATOM Emp 3 VALID FROM 40;
)";

/// Files with their own (non-page) integrity handling.
bool IsPageFile(const std::string& name) {
  return name != "catalog.tcob" && name != "clock.tcob" && name != "wal.log" &&
         name != "pages.journal" && name.find(".tmp") == std::string::npos;
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&b, 1);
}

class CorruptionTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  DatabaseOptions Options() {
    DatabaseOptions options;
    options.strategy = GetParam();
    options.buffer_pool_pages = 16;
    options.parallelism = 1;
    return options;
  }

  std::string db_dir() const { return dir_.path() + "/db"; }

  void Populate() {
    auto db = Database::Open(db_dir(), Options()).value();
    auto results = db->ExecuteScript(kWorkload);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    // Touch every query path once so all files exist on disk, then
    // checkpoint so the WAL is empty and the image is fully flushed.
    ASSERT_TRUE(db->Execute("SELECT ALL FROM DeptMol VALID AT 25").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->VerifyIntegrity().ok());
  }

  std::vector<std::string> PageFiles() const {
    std::vector<std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(db_dir())) {
      std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && IsPageFile(name)) out.push_back(name);
    }
    return out;
  }

  /// Queries spanning all storage structures (stores, links, indexes).
  void ExpectQueriesCleanOrCorruption(Database* db) {
    for (const char* q :
         {"SELECT ALL FROM DeptMol VALID AT 25",
          "SELECT Emp.name, Emp.salary FROM DeptMol HISTORY",
          "SELECT Emp.name FROM DeptMol WHERE Emp.salary = 11 VALID AT 25"}) {
      auto r = db->Execute(q);
      EXPECT_TRUE(r.ok() || r.status().IsCorruption())
          << q << " returned: " << r.status().ToString();
    }
  }

  TempDir dir_;
};

TEST_P(CorruptionTest, EveryFlippedPageIsDetectedByVerify) {
  Populate();
  size_t pages_checked = 0;
  for (const std::string& name : PageFiles()) {
    const std::string path = db_dir() + "/" + name;
    const uint64_t size = std::filesystem::file_size(path);
    ASSERT_EQ(size % kPageSize, 0u) << name;
    for (uint64_t page = 0; page < size / kPageSize; ++page) {
      // One byte per page, at a page-dependent offset so headers, record
      // bodies, free space, and the checksum footer all get hit across
      // the sweep.
      const uint64_t offset = page * kPageSize + (page * 997 + 13) % kPageSize;
      FlipByte(path, offset);
      {
        auto db = Database::Open(db_dir(), Options());
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        Status verdict = (*db)->VerifyIntegrity();
        EXPECT_TRUE(verdict.IsCorruption())
            << name << " page " << page << ": " << verdict.ToString();
        EXPECT_NE(verdict.message().find(name), std::string::npos)
            << verdict.ToString();
        EXPECT_NE(verdict.message().find("page " + std::to_string(page)),
                  std::string::npos)
            << verdict.ToString();
      }
      FlipByte(path, offset);  // restore
      ++pages_checked;
    }
  }
  EXPECT_GT(pages_checked, 10u);
  // After restoring every byte, the database is whole again.
  auto db = Database::Open(db_dir(), Options()).value();
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

TEST_P(CorruptionTest, QueriesNeverReturnWrongAnswersFromFlippedPages) {
  Populate();
  for (const std::string& name : PageFiles()) {
    const std::string path = db_dir() + "/" + name;
    const uint64_t size = std::filesystem::file_size(path);
    for (uint64_t page = 0; page < size / kPageSize; ++page) {
      // Hit the record area: early in the page, past the header.
      const uint64_t offset = page * kPageSize + 64;
      FlipByte(path, offset);
      {
        auto db = Database::Open(db_dir(), Options());
        // Open itself may already trip over the flipped page.
        if (db.ok()) {
          ExpectQueriesCleanOrCorruption(db->get());
        } else {
          EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
        }
      }
      FlipByte(path, offset);
    }
  }
}

TEST_P(CorruptionTest, CorruptMetaFileIsDiagnosedNotTrusted) {
  Populate();
  const std::string meta = db_dir() + "/clock.tcob";
  const uint64_t size = std::filesystem::file_size(meta);
  for (uint64_t off = 0; off < size; ++off) {
    FlipByte(meta, off);
    auto db = Database::Open(db_dir(), Options());
    EXPECT_TRUE(!db.ok()) << "flipped meta byte " << off << " went unnoticed";
    if (!db.ok()) {
      EXPECT_TRUE(db.status().IsCorruption()) << db.status().ToString();
    }
    FlipByte(meta, off);
  }
  EXPECT_TRUE(Database::Open(db_dir(), Options()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CorruptionTest,
                         ::testing::Values(StorageStrategy::kSnapshot,
                                           StorageStrategy::kIntegrated,
                                           StorageStrategy::kSeparated),
                         [](const auto& info) {
                           return StorageStrategyName(info.param);
                         });

}  // namespace
}  // namespace tcob
