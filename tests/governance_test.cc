// Resource governance: query deadlines and cooperative cancellation,
// memory budgets, admission control, transient-I/O retry, and read-only
// opens. The degraded-mode (read-only / failed) transitions live in
// fault_injection_test.cc; this suite covers the governance primitives
// and their end-to-end wiring through the query surfaces.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/resource_budget.h"
#include "common/temp_dir.h"
#include "db/database.h"
#include "storage/fault_env.h"
#include "storage/retry_env.h"
#include "workload/company.h"

namespace tcob {
namespace {

// ---- primitive units --------------------------------------------------

TEST(QueryContextTest, CancelWinsOverDeadline) {
  auto ctx = QueryContext::WithDeadline(1);  // expires ~immediately
  while (!ctx->deadline_expired()) {
  }
  ctx->Cancel();
  Status s = ctx->Check();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();  // precedence over deadline
}

TEST(QueryContextTest, NoDeadlineNeverExpires) {
  auto ctx = QueryContext::Create();
  EXPECT_FALSE(ctx->has_deadline());
  EXPECT_TRUE(ctx->Check().ok());
}

TEST(ResourceBudgetTest, ChargesReleasesAndRefusesAtCap) {
  ResourceBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_TRUE(budget.TryCharge(400));
  EXPECT_FALSE(budget.TryCharge(1));  // at cap
  EXPECT_EQ(budget.charged(), 1000u);
  EXPECT_EQ(budget.peak(), 1000u);
  EXPECT_EQ(budget.rejected(), 1u);
  budget.Release(400);
  EXPECT_TRUE(budget.TryCharge(300));
  EXPECT_EQ(budget.charged(), 900u);
  EXPECT_EQ(budget.peak(), 1000u);  // peak is sticky
}

TEST(ResourceBudgetTest, LeaseTracksOverflowOnRefusal) {
  ResourceBudget budget(100);
  BudgetLease lease(&budget);
  EXPECT_TRUE(lease.Charge(80));
  EXPECT_FALSE(lease.Charge(50));  // refused: would exceed the cap
  EXPECT_EQ(lease.charged(), 80u);
  EXPECT_EQ(lease.overflow(), 50u);
  EXPECT_TRUE(lease.TakePressure());
  EXPECT_FALSE(lease.TakePressure());  // one-shot
  lease.Release(80, 50);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(AdmissionControllerTest, BoundedWaitTimesOutWithDeadlineExceeded) {
  AdmissionController gate(1);
  auto ctx = QueryContext::Create();
  ASSERT_TRUE(gate.Acquire(ctx.get(), 1000).ok());
  Status refused = gate.Acquire(ctx.get(), 1000);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.IsDeadlineExceeded()) << refused.ToString();
  EXPECT_EQ(gate.rejected(), 1u);
  gate.Release();
  EXPECT_TRUE(gate.Acquire(ctx.get(), 1000).ok());
  gate.Release();
  EXPECT_EQ(gate.admitted(), 2u);
}

TEST(RetryEnvTest, AbsorbsTransientReadFailuresAndCountsRetries) {
  FaultInjectingIoEnv base;
  IoRetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_micros = 1;
  policy.max_backoff_micros = 8;
  RetryingIoEnv env(&base, policy);
  ASSERT_TRUE(env.CreateDir("d").ok());
  {
    auto f = env.OpenFile("d/f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, Slice("hello")).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  base.FailTransientReads(2);
  auto f = env.OpenFile("d/f");
  ASSERT_TRUE(f.ok());
  char buf[5];
  auto got = (*f)->ReadAt(0, buf, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(std::string(buf, got.value()), "hello");
  EXPECT_EQ(env.retries(), 2u);
}

TEST(RetryEnvTest, PermanentReadErrorsAreNotRetried) {
  FaultInjectingIoEnv base;
  IoRetryPolicy policy;
  policy.max_attempts = 4;
  RetryingIoEnv env(&base, policy);
  ASSERT_TRUE(env.CreateDir("d").ok());
  {
    auto f = env.OpenFile("d/f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, Slice("hello")).ok());
  }
  base.FailReadAt(base.reads() + 1);  // plain EIO, not transient
  auto f = env.OpenFile("d/f");
  ASSERT_TRUE(f.ok());
  char buf[5];
  auto got = (*f)->ReadAt(0, buf, 5);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(env.retries(), 0u);
}

// ---- end-to-end through the database ----------------------------------

class GovernanceTest : public ::testing::TestWithParam<StorageStrategy> {
 protected:
  std::unique_ptr<Database> OpenDeepHistory(const std::string& dir,
                                            DatabaseOptions options,
                                            size_t parallelism = 1) {
    options.strategy = GetParam();
    options.parallelism = parallelism;
    auto db = Database::Open(dir, options).value();
    CompanyConfig config;
    config.depts = 4;
    config.emps_per_dept = 4;
    config.projs_per_emp = 2;
    config.versions_per_atom = 16;
    auto handles = BuildCompany(db.get(), config);
    EXPECT_TRUE(handles.ok()) << handles.status().ToString();
    return db;
  }

  TempDir dir_;
};

constexpr char kDeepHistoryQuery[] = "SELECT ALL FROM DeptMol HISTORY";

TEST_P(GovernanceTest, DefaultDeadlineAbortsDeepHistoryQuery) {
  DatabaseOptions options;
  auto db = OpenDeepHistory(dir_.path() + "/db", options);
  // One microsecond: the deadline is armed at query open and the deep
  // sweep checks it at every batch boundary, so this must abort.
  db->set_default_query_deadline(1);
  auto r = db->Execute(kDeepHistoryQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_EQ(db->last_query_stats().disposition, "deadline-exceeded");

  // Turning the deadline off restores normal service; the metrics
  // registry has counted the abort.
  db->set_default_query_deadline(0);
  auto ok = db->Execute(kDeepHistoryQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  std::string metrics = db->MetricsSnapshot().ToText();
  EXPECT_NE(metrics.find("tcob_query_deadline_exceeded_total 1"),
            std::string::npos)
      << metrics;
}

TEST_P(GovernanceTest, DeadlineAbortsStreamingCursorMidDrain) {
  DatabaseOptions options;
  auto db = OpenDeepHistory(dir_.path() + "/db", options, 4);
  db->set_default_query_deadline(200);  // expires mid-stream at the latest
  auto cursor = db->Query(kDeepHistoryQuery);
  Status outcome;
  if (cursor.ok()) {
    std::vector<std::vector<Value>> batch;
    for (;;) {
      Result<size_t> pulled = cursor.value()->NextBatch(8, &batch);
      if (!pulled.ok()) {
        outcome = pulled.status();
        break;
      }
      if (pulled.value() < 8) break;
    }
    cursor.value()->Close();
  } else {
    outcome = cursor.status();
  }
  // The race is which pull observes the expiry, not whether it aborts:
  // a 200us deadline cannot cover a 16-version full-history sweep.
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.IsDeadlineExceeded()) << outcome.ToString();
  // The abort unwound cleanly: no leaked producer, next query fine.
  db->set_default_query_deadline(0);
  EXPECT_TRUE(db->Execute(kDeepHistoryQuery).ok());
}

TEST_P(GovernanceTest, CancelledCursorCountsDispositionAndMetric) {
  DatabaseOptions options;
  auto db = OpenDeepHistory(dir_.path() + "/db", options, 4);
  auto cursor = db->Query(kDeepHistoryQuery);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Value> row;
  ASSERT_TRUE(cursor.value()->Next(&row).ok());
  std::thread canceller([&]() { cursor.value()->Cancel(); });
  canceller.join();
  Result<bool> next = cursor.value()->Next(&row);
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCancelled()) << next.status().ToString();
  cursor.value()->Close();
  EXPECT_EQ(db->last_query_stats().disposition, "cancelled");
  std::string metrics = db->MetricsSnapshot().ToText();
  EXPECT_NE(metrics.find("tcob_query_cancelled_total 1"), std::string::npos)
      << metrics;
}

TEST_P(GovernanceTest, MemoryBudgetCapIsNeverExceededAndQueryCompletes) {
  // First, measure the unbudgeted peak.
  DatabaseOptions unbounded;
  uint64_t peak_unbounded = 0;
  {
    auto db = OpenDeepHistory(dir_.path() + "/free", unbounded, 4);
    auto cursor = db->Query(kDeepHistoryQuery);
    ASSERT_TRUE(cursor.ok());
    std::vector<std::vector<Value>> batch;
    while (true) {
      Result<size_t> pulled = cursor.value()->NextBatch(64, &batch);
      ASSERT_TRUE(pulled.ok());
      if (pulled.value() < 64) break;
    }
    cursor.value()->Close();
    peak_unbounded = db->memory_budget().peak();
    ASSERT_GT(peak_unbounded, 0u);  // cap 0 still accounts
  }
  // Now cap the budget well below that peak: the same query must still
  // complete (refused charges degrade to unbudgeted buffers, recorded
  // as overflow) and the charged bytes must never exceed the cap.
  DatabaseOptions capped;
  capped.memory_budget_bytes = peak_unbounded / 8 + 1;
  auto db = OpenDeepHistory(dir_.path() + "/capped", capped, 4);
  auto cursor = db->Query(kDeepHistoryQuery);
  ASSERT_TRUE(cursor.ok());
  size_t rows = 0;
  std::vector<std::vector<Value>> batch;
  while (true) {
    Result<size_t> pulled = cursor.value()->NextBatch(64, &batch);
    ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
    rows += pulled.value();
    if (pulled.value() < 64) break;
  }
  cursor.value()->Close();
  EXPECT_GT(rows, 0u);
  EXPECT_LE(db->memory_budget().peak(), capped.memory_budget_bytes);
  EXPECT_GT(db->last_query_stats().peak_memory_bytes, 0u);
}

TEST_P(GovernanceTest, AdmissionGateBoundsInflightQueries) {
  DatabaseOptions options;
  options.max_inflight_queries = 1;
  options.admission_timeout_micros = 2000;
  auto db = OpenDeepHistory(dir_.path() + "/db", options, 4);

  auto first = db->Query(kDeepHistoryQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::vector<Value> row;
  ASSERT_TRUE(first.value()->Next(&row).ok());  // slot held mid-stream

  auto second = db->Query(kDeepHistoryQuery);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsDeadlineExceeded())
      << second.status().ToString();
  EXPECT_EQ(db->admission().rejected(), 1u);

  first.value()->Close();  // releases the slot
  auto third = db->Query(kDeepHistoryQuery);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  third.value()->Close();
  EXPECT_GE(db->admission().admitted(), 2u);
  EXPECT_EQ(db->admission().inflight(), 0u);
}

TEST_P(GovernanceTest, RetryPolicyAbsorbsTransientEioDuringQueries) {
  FaultInjectingIoEnv env;
  DatabaseOptions options;
  options.strategy = GetParam();
  options.env = &env;
  {
    auto db = Database::Open(dir_.path() + "/db", options).value();
    CompanyConfig config;
    config.depts = 2;
    config.emps_per_dept = 2;
    ASSERT_TRUE(BuildCompany(db.get(), config).ok());
  }
  options.io_retry.max_attempts = 4;
  options.io_retry.base_backoff_micros = 1;
  options.io_retry.max_backoff_micros = 8;
  auto db = Database::Open(dir_.path() + "/db", options).value();
  env.FailTransientReads(2);  // the reopen left the pool cold
  auto r = db->Execute("SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().RowCount(), 0u);
  std::string metrics = db->MetricsSnapshot().ToText();
  EXPECT_NE(metrics.find("tcob_io_retries_total 2"), std::string::npos)
      << metrics;
}

TEST_P(GovernanceTest, ReadOnlyOpenRefusesEveryMutation) {
  DatabaseOptions options;
  { auto db = OpenDeepHistory(dir_.path() + "/db", options); }
  options.strategy = GetParam();
  options.read_only = true;
  auto db = Database::Open(dir_.path() + "/db", options).value();
  EXPECT_EQ(db->health_state(), HealthState::kHealthy);
  auto read = db->Execute("SELECT ALL FROM DeptMol VALID AT NOW");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_GT(read.value().RowCount(), 0u);
  for (const char* mql :
       {"INSERT ATOM Dept (name='x', budget=1) VALID FROM 999",
        "UPDATE ATOM Dept 1 SET budget=2 VALID FROM 999",
        "DELETE ATOM Dept 1 VALID FROM 999", "VACUUM BEFORE 5",
        "CREATE ATOM_TYPE Late (a INT)"}) {
    auto refused = db->Execute(mql);
    ASSERT_FALSE(refused.ok()) << mql;
    EXPECT_TRUE(refused.status().IsInvalidArgument())
        << mql << ": " << refused.status().ToString();
  }
  EXPECT_FALSE(db->Checkpoint().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, GovernanceTest,
    ::testing::Values(StorageStrategy::kSnapshot, StorageStrategy::kIntegrated,
                      StorageStrategy::kSeparated),
    [](const ::testing::TestParamInfo<StorageStrategy>& info) {
      return std::string(StorageStrategyName(info.param));
    });

}  // namespace
}  // namespace tcob
