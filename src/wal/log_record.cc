#include "wal/log_record.h"

#include "common/coding.h"
#include "record/record_codec.h"

namespace tcob {

const char* WalOpTypeName(WalOpType t) {
  switch (t) {
    case WalOpType::kInsertAtom:
      return "INSERT_ATOM";
    case WalOpType::kUpdateAtom:
      return "UPDATE_ATOM";
    case WalOpType::kDeleteAtom:
      return "DELETE_ATOM";
    case WalOpType::kConnect:
      return "CONNECT";
    case WalOpType::kDisconnect:
      return "DISCONNECT";
    case WalOpType::kCommit:
      return "COMMIT";
    case WalOpType::kCheckpoint:
      return "CHECKPOINT";
  }
  return "?";
}

Status WalOp::Encode(const std::vector<AttrType>& schema,
                     std::string* dst) const {
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, txn_id);
  PutVarint64(dst, op_seq);
  switch (type) {
    case WalOpType::kInsertAtom:
    case WalOpType::kUpdateAtom:
      PutVarint64(dst, atom_id);
      PutVarint32(dst, atom_type);
      PutVarsint64(dst, valid_from);
      TCOB_RETURN_NOT_OK(EncodeValues(schema, attrs, dst));
      break;
    case WalOpType::kDeleteAtom:
      PutVarint64(dst, atom_id);
      PutVarint32(dst, atom_type);
      PutVarsint64(dst, valid_from);
      break;
    case WalOpType::kConnect:
    case WalOpType::kDisconnect:
      PutVarint32(dst, link_type);
      PutVarint64(dst, from_id);
      PutVarint64(dst, to_id);
      PutVarsint64(dst, valid_from);
      break;
    case WalOpType::kCommit:
    case WalOpType::kCheckpoint:
      break;
  }
  return Status::OK();
}

Result<WalOp> WalOp::Decode(
    Slice input,
    const std::function<Result<std::vector<AttrType>>(TypeId)>&
        schema_lookup) {
  if (input.empty()) return Status::Corruption("empty wal op");
  WalOp op;
  op.type = static_cast<WalOpType>(input[0]);
  input.RemovePrefix(1);
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.txn_id));
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.op_seq));
  switch (op.type) {
    case WalOpType::kInsertAtom:
    case WalOpType::kUpdateAtom: {
      TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.atom_id));
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &op.atom_type));
      TCOB_RETURN_NOT_OK(GetVarsint64(&input, &op.valid_from));
      TCOB_ASSIGN_OR_RETURN(std::vector<AttrType> schema,
                            schema_lookup(op.atom_type));
      TCOB_ASSIGN_OR_RETURN(op.attrs, DecodeValues(schema, &input));
      break;
    }
    case WalOpType::kDeleteAtom:
      TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.atom_id));
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &op.atom_type));
      TCOB_RETURN_NOT_OK(GetVarsint64(&input, &op.valid_from));
      break;
    case WalOpType::kConnect:
    case WalOpType::kDisconnect:
      TCOB_RETURN_NOT_OK(GetVarint32(&input, &op.link_type));
      TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.from_id));
      TCOB_RETURN_NOT_OK(GetVarint64(&input, &op.to_id));
      TCOB_RETURN_NOT_OK(GetVarsint64(&input, &op.valid_from));
      break;
    case WalOpType::kCommit:
    case WalOpType::kCheckpoint:
      break;
  }
  return op;
}

}  // namespace tcob
