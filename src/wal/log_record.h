#ifndef TCOB_WAL_LOG_RECORD_H_
#define TCOB_WAL_LOG_RECORD_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/slice.h"
#include "record/value.h"
#include "time/timestamp.h"

namespace tcob {

/// Kind of a logical redo record.
enum class WalOpType : uint8_t {
  kInsertAtom = 1,
  kUpdateAtom = 2,
  kDeleteAtom = 3,
  kConnect = 4,
  kDisconnect = 5,
  kCommit = 6,
  kCheckpoint = 7,
};

/// One logical redo record.
///
/// TCOB logs *operations*, not page images: replay re-executes the DML
/// against the stores. Store implementations make replay idempotent by
/// recognizing already-applied operations (e.g. an update whose valid-from
/// equals the current version's begin and whose attributes match).
struct WalOp {
  WalOpType type = WalOpType::kCommit;
  uint64_t txn_id = 0;
  /// Database-wide monotonic sequence number (LSN analogue). A
  /// checkpoint persists the next sequence into the meta file; replay
  /// skips records below it, making recovery idempotent even when a
  /// crash lands between the checkpoint's page flush and the WAL
  /// truncation — or during a re-crash inside recovery itself.
  uint64_t op_seq = 0;

  /// Transient (never encoded): this operation's valid_from came from
  /// "VALID FROM NOW" and is provisional until the op is logged — the
  /// write path re-stamps it to the clock's NOW *under the writer
  /// mutex*, so a commit can never land at or before a snapshot that
  /// was pinned after the statement was parsed or buffered.
  bool stamped_now = false;

  // Atom operations.
  AtomId atom_id = kInvalidAtomId;
  TypeId atom_type = kInvalidTypeId;
  Timestamp valid_from = kMinTimestamp;
  std::vector<Value> attrs;  // encoded using the atom type's schema

  // Link operations.
  LinkTypeId link_type = kInvalidTypeId;
  AtomId from_id = kInvalidAtomId;
  AtomId to_id = kInvalidAtomId;

  /// Serializes; needs the attribute schema for atom ops with payloads.
  Status Encode(const std::vector<AttrType>& schema, std::string* dst) const;

  /// Decodes the fixed part; `schema_lookup(atom_type)` supplies the
  /// schema for the attrs payload when present.
  static Result<WalOp> Decode(
      Slice input,
      const std::function<Result<std::vector<AttrType>>(TypeId)>&
          schema_lookup);
};

const char* WalOpTypeName(WalOpType t);

}  // namespace tcob

#endif  // TCOB_WAL_LOG_RECORD_H_
