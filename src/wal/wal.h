#ifndef TCOB_WAL_WAL_H_
#define TCOB_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace_ring.h"
#include "common/slice.h"
#include "storage/io_env.h"

namespace tcob {

/// What a full ReadAll scan observed; surfaced as recovery stats so a
/// crash artifact (torn or corrupt tail) is reported, never silently
/// swallowed.
struct WalReadStats {
  uint64_t records = 0;            // intact records delivered to fn
  uint64_t bytes_replayed = 0;     // bytes of intact frames
  uint64_t dropped_tail_bytes = 0; // bytes discarded after the last
                                   // intact frame (0 on a clean log)
  bool tail_was_corrupt = false;   // dropped tail failed its CRC (vs.
                                   // merely being cut short)
};

/// Append-only write-ahead log with checksummed framing.
///
/// Frame layout: [len:4][crc32:4][payload bytes]. Readers stop cleanly at
/// the first torn or corrupt frame (a crash mid-append loses only the
/// unfinished tail). Payload interpretation is the caller's business
/// (TCOB stores encoded WalOps).
///
/// Thread-safe: every file-touching method takes an internal mutex, so
/// concurrent committers may append and sync without external locking
/// (the Database still serializes the append order of a commit batch).
///
/// Group commit: SyncBatch elects one caller as leader for all
/// durability requests registered at that moment; the leader performs a
/// single fsync for the whole group and every member returns when it
/// completes. N concurrent committers therefore pay ~1 fsync. Group
/// sizes are recorded in the `tcob_wal_group_commit_size` histogram.
///
/// Fail-stop: the first failed Append, Sync, or Truncate poisons the log
/// — all later mutations return the original error without touching the
/// file. An fsync failure means the kernel may have dropped dirty pages
/// we can never re-sync, so retrying would silently un-durable committed
/// data; the owning Database escalates the poison to read-only mode.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`, doing I/O via `env`.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     IoEnv* env);
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path) {
    return Open(path, IoEnv::Default());
  }

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one framed record (buffered in the OS; call Sync or
  /// SyncBatch for durability).
  Status Append(const Slice& payload);

  /// Durably persists all appended records with an unconditional fsync.
  Status Sync();

  /// Durability with group commit: registers this caller's request, then
  /// either leads one fsync covering every registered request or waits
  /// for the current leader's fsync to cover it. Returns once everything
  /// appended before the call is durable (or the log is poisoned). With
  /// group commit disabled this is exactly Sync().
  Status SyncBatch();

  /// Enables/disables group commit (enabled by default) and sets the
  /// optional batching window: a leader waits up to `window_micros` for
  /// more committers to join before issuing its fsync. 0 (the default)
  /// relies on natural batching — requests arriving during an in-flight
  /// fsync form the next group.
  void set_group_commit(bool enabled, uint64_t window_micros = 0) {
    std::lock_guard<std::mutex> lk(sync_mu_);
    group_commit_ = enabled;
    batch_window_micros_ = window_micros;
  }

  /// Replays every intact record from the beginning, in order.
  /// fn returns false to stop early. A torn tail terminates the scan
  /// and is reported through `stats` (which may be null).
  Status ReadAll(const std::function<Result<bool>(const Slice&)>& fn,
                 WalReadStats* stats = nullptr) const;

  /// Discards all content (after a checkpoint made it redundant) and
  /// syncs the truncation.
  Status Truncate();

  /// Bytes currently in the log.
  Result<uint64_t> SizeBytes() const;

  /// Number of Append calls since open.
  uint64_t appended_records() const { return appended_.value(); }

  /// Number of completed fsyncs since open (Sync + group-commit leaders).
  uint64_t syncs() const { return syncs_.value(); }

  /// Per-fsync group sizes (how many SyncBatch callers one fsync paid
  /// for); plain Sync() calls are not recorded.
  const Histogram& group_commit_size() const { return group_size_; }

  /// OK while the log is healthy; the poisoning error afterwards.
  /// Thread-compatible: call from the Database's writer path or when no
  /// committer is in flight.
  const Status& health() const { return health_; }

  /// Attaches the flight recorder (append/fsync events).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Publishes the log counters into `registry` under tcob_wal_*.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("tcob_wal_appends_total", &appended_);
    registry->RegisterCounter("tcob_wal_appended_bytes_total",
                              &appended_bytes_);
    registry->RegisterCounter("tcob_wal_syncs_total", &syncs_);
    registry->RegisterCounter("tcob_wal_truncates_total", &truncates_);
    registry->RegisterHistogram("tcob_wal_group_commit_size", &group_size_);
    registry->RegisterCounterFn("tcob_wal_size_bytes", [this]() {
      auto r = SizeBytes();
      return r.ok() ? r.value() : 0;
    });
  }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  /// File state (and the poison flag), shared by appenders, the sync
  /// leader, recovery reads, and truncation.
  mutable std::mutex mu_;
  std::string path_;
  std::unique_ptr<IoFile> file_;
  uint64_t write_pos_ = 0;

  /// Group-commit coordination. Requests are numbered on arrival; one
  /// fsync satisfies every request registered before the leader sampled
  /// the batch end.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  bool group_commit_ = true;
  uint64_t batch_window_micros_ = 0;
  bool leader_active_ = false;
  uint64_t sync_requests_ = 0;   // total SyncBatch arrivals
  uint64_t sync_satisfied_ = 0;  // arrivals covered by a completed fsync
  Status last_batch_status_;     // outcome of the latest group fsync

  Counter appended_;
  Counter appended_bytes_;
  Counter syncs_;
  Counter truncates_;
  Histogram group_size_{{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}};
  Status health_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace tcob

#endif  // TCOB_WAL_WAL_H_
