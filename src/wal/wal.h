#ifndef TCOB_WAL_WAL_H_
#define TCOB_WAL_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace tcob {

/// Append-only write-ahead log with checksummed framing.
///
/// Frame layout: [len:4][crc32:4][payload bytes]. Readers stop cleanly at
/// the first torn or corrupt frame (a crash mid-append loses only the
/// unfinished tail). Payload interpretation is the caller's business
/// (TCOB stores encoded WalOps).
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one framed record (buffered in the OS; call Sync for
  /// durability).
  Status Append(const Slice& payload);

  /// fdatasyncs the log.
  Status Sync();

  /// Replays every intact record from the beginning, in order.
  /// fn returns false to stop early. A torn tail terminates the scan
  /// silently (that is the expected crash artifact).
  Status ReadAll(const std::function<Result<bool>(const Slice&)>& fn) const;

  /// Discards all content (after a checkpoint made it redundant).
  Status Truncate();

  /// Bytes currently in the log.
  Result<uint64_t> SizeBytes() const;

  /// Number of Append calls since open.
  uint64_t appended_records() const { return appended_; }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  std::string path_;
  int fd_ = -1;
  uint64_t appended_ = 0;
};

}  // namespace tcob

#endif  // TCOB_WAL_WAL_H_
