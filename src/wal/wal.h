#ifndef TCOB_WAL_WAL_H_
#define TCOB_WAL_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace_ring.h"
#include "common/slice.h"
#include "storage/io_env.h"

namespace tcob {

/// What a full ReadAll scan observed; surfaced as recovery stats so a
/// crash artifact (torn or corrupt tail) is reported, never silently
/// swallowed.
struct WalReadStats {
  uint64_t records = 0;            // intact records delivered to fn
  uint64_t bytes_replayed = 0;     // bytes of intact frames
  uint64_t dropped_tail_bytes = 0; // bytes discarded after the last
                                   // intact frame (0 on a clean log)
  bool tail_was_corrupt = false;   // dropped tail failed its CRC (vs.
                                   // merely being cut short)
};

/// Append-only write-ahead log with checksummed framing.
///
/// Frame layout: [len:4][crc32:4][payload bytes]. Readers stop cleanly at
/// the first torn or corrupt frame (a crash mid-append loses only the
/// unfinished tail). Payload interpretation is the caller's business
/// (TCOB stores encoded WalOps).
///
/// Fail-stop: the first failed Append, Sync, or Truncate poisons the log
/// — all later mutations return the original error without touching the
/// file. An fsync failure means the kernel may have dropped dirty pages
/// we can never re-sync, so retrying would silently un-durable committed
/// data; the owning Database escalates the poison to read-only mode.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`, doing I/O via `env`.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     IoEnv* env);
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path) {
    return Open(path, IoEnv::Default());
  }

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one framed record (buffered in the OS; call Sync for
  /// durability).
  Status Append(const Slice& payload);

  /// Durably persists all appended records.
  Status Sync();

  /// Replays every intact record from the beginning, in order.
  /// fn returns false to stop early. A torn tail terminates the scan
  /// and is reported through `stats` (which may be null).
  Status ReadAll(const std::function<Result<bool>(const Slice&)>& fn,
                 WalReadStats* stats = nullptr) const;

  /// Discards all content (after a checkpoint made it redundant) and
  /// syncs the truncation.
  Status Truncate();

  /// Bytes currently in the log.
  Result<uint64_t> SizeBytes() const;

  /// Number of Append calls since open.
  uint64_t appended_records() const { return appended_.value(); }

  /// OK while the log is healthy; the poisoning error afterwards.
  const Status& health() const { return health_; }

  /// Attaches the flight recorder (append/fsync events).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Publishes the log counters into `registry` under tcob_wal_*.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("tcob_wal_appends_total", &appended_);
    registry->RegisterCounter("tcob_wal_appended_bytes_total",
                              &appended_bytes_);
    registry->RegisterCounter("tcob_wal_syncs_total", &syncs_);
    registry->RegisterCounter("tcob_wal_truncates_total", &truncates_);
    registry->RegisterCounterFn("tcob_wal_size_bytes", [this]() {
      auto r = SizeBytes();
      return r.ok() ? r.value() : 0;
    });
  }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::unique_ptr<IoFile> file_;
  uint64_t write_pos_ = 0;
  Counter appended_;
  Counter appended_bytes_;
  Counter syncs_;
  Counter truncates_;
  Status health_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace tcob

#endif  // TCOB_WAL_WAL_H_
