#include "wal/wal.h"

#include <chrono>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace tcob {

namespace {

constexpr uint32_t kFrameHeader = 8;  // len + crc
constexpr uint32_t kMaxFrame = 64u << 20;

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, IoEnv* env) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path));
  TCOB_ASSIGN_OR_RETURN(wal->file_, env->OpenFile(path));
  TCOB_ASSIGN_OR_RETURN(wal->write_pos_, wal->file_->Size());
  return wal;
}

WriteAheadLog::~WriteAheadLog() = default;

Status WriteAheadLog::Append(const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Checksum32(payload.data(), payload.size()));
  frame.append(payload.data(), payload.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    TCOB_RETURN_NOT_OK(health_);
    Status st = file_->WriteAt(write_pos_, frame);
    if (!st.ok()) {
      health_ = st;
      return st;
    }
    write_pos_ += frame.size();
  }
  appended_.Increment();
  appended_bytes_.Add(frame.size());
  TraceEmit(trace_, TraceEventType::kWalAppend, payload.size());
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lk(mu_);
  TCOB_RETURN_NOT_OK(health_);
  TraceEmit(trace_, TraceEventType::kWalFsyncBegin);
  Status st = file_->Sync();
  if (!st.ok()) health_ = st;
  if (st.ok()) syncs_.Increment();
  TraceEmit(trace_, TraceEventType::kWalFsyncEnd);
  return st;
}

Status WriteAheadLog::SyncBatch() {
  std::unique_lock<std::mutex> lk(sync_mu_);
  if (!group_commit_) {
    lk.unlock();
    return Sync();
  }
  const uint64_t my_req = ++sync_requests_;
  while (sync_satisfied_ < my_req && leader_active_) {
    sync_cv_.wait(lk);
  }
  if (sync_satisfied_ >= my_req) return last_batch_status_;

  // Leader: one fsync covers every request registered so far. An
  // optional window lets late committers join this group instead of
  // forming the next one.
  leader_active_ = true;
  if (batch_window_micros_ > 0) {
    sync_cv_.wait_for(lk, std::chrono::microseconds(batch_window_micros_));
  }
  const uint64_t batch_end = sync_requests_;
  lk.unlock();
  Status st = Sync();
  lk.lock();
  group_size_.Observe(batch_end - sync_satisfied_);
  sync_satisfied_ = batch_end;
  last_batch_status_ = st;
  leader_active_ = false;
  sync_cv_.notify_all();
  return st;
}

Status WriteAheadLog::ReadAll(
    const std::function<Result<bool>(const Slice&)>& fn,
    WalReadStats* stats) const {
  std::lock_guard<std::mutex> lk(mu_);
  WalReadStats local;
  bool stopped_early = false;
  TCOB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  uint64_t pos = 0;
  std::vector<char> buf;
  while (pos + kFrameHeader <= size) {
    char header[kFrameHeader];
    TCOB_ASSIGN_OR_RETURN(size_t hn, file_->ReadAt(pos, header, kFrameHeader));
    if (hn != kFrameHeader) break;  // torn tail
    uint32_t len = DecodeFixed32(header);
    uint32_t crc = DecodeFixed32(header + 4);
    if (len > kMaxFrame || pos + kFrameHeader + len > size) {
      break;  // torn tail: frame extends past the end of the file
    }
    buf.resize(len);
    if (len > 0) {
      TCOB_ASSIGN_OR_RETURN(size_t pn,
                            file_->ReadAt(pos + kFrameHeader, buf.data(), len));
      if (pn != len) break;  // torn tail
    }
    if (Checksum32(buf.data(), len) != crc) {
      local.tail_was_corrupt = true;
      break;
    }
    local.bytes_replayed = pos + kFrameHeader + len;
    ++local.records;
    TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(Slice(buf.data(), len)));
    pos += kFrameHeader + len;
    if (!keep_going) {
      stopped_early = true;
      break;
    }
  }
  // An early stop by fn leaves intact records unread; only count bytes
  // the framing itself rejected.
  local.dropped_tail_bytes = stopped_early ? 0 : size - local.bytes_replayed;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lk(mu_);
  TCOB_RETURN_NOT_OK(health_);
  Status st = file_->Truncate(0);
  if (st.ok()) st = file_->Sync();
  if (!st.ok()) {
    health_ = st;
    return st;
  }
  write_pos_ = 0;
  truncates_.Increment();
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return file_->Size();
}

}  // namespace tcob
