#include "wal/wal.h"

#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace tcob {

namespace {

constexpr uint32_t kFrameHeader = 8;  // len + crc
constexpr uint32_t kMaxFrame = 64u << 20;

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, IoEnv* env) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path));
  TCOB_ASSIGN_OR_RETURN(wal->file_, env->OpenFile(path));
  TCOB_ASSIGN_OR_RETURN(wal->write_pos_, wal->file_->Size());
  return wal;
}

WriteAheadLog::~WriteAheadLog() = default;

Status WriteAheadLog::Append(const Slice& payload) {
  TCOB_RETURN_NOT_OK(health_);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Checksum32(payload.data(), payload.size()));
  frame.append(payload.data(), payload.size());
  Status st = file_->WriteAt(write_pos_, frame);
  if (!st.ok()) {
    health_ = st;
    return st;
  }
  write_pos_ += frame.size();
  appended_.Increment();
  appended_bytes_.Add(frame.size());
  TraceEmit(trace_, TraceEventType::kWalAppend, payload.size());
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  TCOB_RETURN_NOT_OK(health_);
  TraceEmit(trace_, TraceEventType::kWalFsyncBegin);
  Status st = file_->Sync();
  if (!st.ok()) health_ = st;
  if (st.ok()) syncs_.Increment();
  TraceEmit(trace_, TraceEventType::kWalFsyncEnd);
  return st;
}

Status WriteAheadLog::ReadAll(
    const std::function<Result<bool>(const Slice&)>& fn,
    WalReadStats* stats) const {
  WalReadStats local;
  bool stopped_early = false;
  TCOB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  uint64_t pos = 0;
  std::vector<char> buf;
  while (pos + kFrameHeader <= size) {
    char header[kFrameHeader];
    TCOB_ASSIGN_OR_RETURN(size_t hn, file_->ReadAt(pos, header, kFrameHeader));
    if (hn != kFrameHeader) break;  // torn tail
    uint32_t len = DecodeFixed32(header);
    uint32_t crc = DecodeFixed32(header + 4);
    if (len > kMaxFrame || pos + kFrameHeader + len > size) {
      break;  // torn tail: frame extends past the end of the file
    }
    buf.resize(len);
    if (len > 0) {
      TCOB_ASSIGN_OR_RETURN(size_t pn,
                            file_->ReadAt(pos + kFrameHeader, buf.data(), len));
      if (pn != len) break;  // torn tail
    }
    if (Checksum32(buf.data(), len) != crc) {
      local.tail_was_corrupt = true;
      break;
    }
    local.bytes_replayed = pos + kFrameHeader + len;
    ++local.records;
    TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(Slice(buf.data(), len)));
    pos += kFrameHeader + len;
    if (!keep_going) {
      stopped_early = true;
      break;
    }
  }
  // An early stop by fn leaves intact records unread; only count bytes
  // the framing itself rejected.
  local.dropped_tail_bytes = stopped_early ? 0 : size - local.bytes_replayed;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  TCOB_RETURN_NOT_OK(health_);
  Status st = file_->Truncate(0);
  if (st.ok()) st = file_->Sync();
  if (!st.ok()) {
    health_ = st;
    return st;
  }
  write_pos_ = 0;
  truncates_.Increment();
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const { return file_->Size(); }

}  // namespace tcob
