#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace tcob {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + strerror(errno));
}

constexpr uint32_t kFrameHeader = 8;  // len + crc
constexpr uint32_t kMaxFrame = 64u << 20;

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path));
  wal->fd_ = open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (wal->fd_ < 0) return Errno("open", path);
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) close(fd_);
}

Status WriteAheadLog::Append(const Slice& payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Checksum32(payload.data(), payload.size()));
  frame.append(payload.data(), payload.size());
  ssize_t n = write(fd_, frame.data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) return Errno("write", path_);
  ++appended_;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (fdatasync(fd_) != 0) return Errno("fdatasync", path_);
  return Status::OK();
}

Status WriteAheadLog::ReadAll(
    const std::function<Result<bool>(const Slice&)>& fn) const {
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size < 0) return Errno("lseek", path_);
  off_t pos = 0;
  std::vector<char> buf;
  while (pos + static_cast<off_t>(kFrameHeader) <= size) {
    char header[kFrameHeader];
    if (pread(fd_, header, kFrameHeader, pos) !=
        static_cast<ssize_t>(kFrameHeader)) {
      return Errno("pread header", path_);
    }
    uint32_t len = DecodeFixed32(header);
    uint32_t crc = DecodeFixed32(header + 4);
    if (len > kMaxFrame ||
        pos + static_cast<off_t>(kFrameHeader) + len > size) {
      break;  // torn tail
    }
    buf.resize(len);
    if (len > 0 &&
        pread(fd_, buf.data(), len, pos + kFrameHeader) !=
            static_cast<ssize_t>(len)) {
      return Errno("pread payload", path_);
    }
    if (Checksum32(buf.data(), len) != crc) {
      break;  // corrupt tail
    }
    TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(Slice(buf.data(), len)));
    if (!keep_going) return Status::OK();
    pos += kFrameHeader + len;
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  if (ftruncate(fd_, 0) != 0) return Errno("ftruncate", path_);
  if (lseek(fd_, 0, SEEK_SET) < 0) return Errno("lseek", path_);
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::SizeBytes() const {
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size < 0) return Errno("lseek", path_);
  return static_cast<uint64_t>(size);
}

}  // namespace tcob
