#include "mad/version_cache.h"

namespace tcob {

namespace {

/// Rough in-memory footprint of a pinned atom entry. String payloads are
/// deliberately ignored: the estimate only has to track pinning volume
/// well enough for the budget to bound it, not to match malloc exactly.
uint64_t EstimateAtomEntryBytes(const VersionCache::AtomEntry& e) {
  uint64_t bytes = sizeof(VersionCache::AtomEntry);
  for (const AtomVersion& v : e.versions) {
    bytes += sizeof(AtomVersion) + v.attrs.size() * sizeof(Value);
  }
  return bytes;
}

uint64_t EstimateLinkEntryBytes(size_t partners) {
  return 64 + partners * sizeof(std::pair<AtomId, Interval>);
}

}  // namespace

VersionCache::VersionCache(VersionCache&& o) noexcept
    : store_(o.store_),
      links_(o.links_),
      window_(o.window_),
      atoms_(std::move(o.atoms_)),
      neighbors_(std::move(o.neighbors_)),
      stats_(o.stats_),
      ctx_(o.ctx_),
      lease_(o.lease_),
      charged_bytes_(o.charged_bytes_),
      overflow_bytes_(o.overflow_bytes_) {
  o.lease_ = nullptr;
  o.charged_bytes_ = 0;
  o.overflow_bytes_ = 0;
}

VersionCache& VersionCache::operator=(VersionCache&& o) noexcept {
  if (this != &o) {
    ReleaseBudget();
    store_ = o.store_;
    links_ = o.links_;
    window_ = o.window_;
    atoms_ = std::move(o.atoms_);
    neighbors_ = std::move(o.neighbors_);
    stats_ = o.stats_;
    ctx_ = o.ctx_;
    lease_ = o.lease_;
    charged_bytes_ = o.charged_bytes_;
    overflow_bytes_ = o.overflow_bytes_;
    o.lease_ = nullptr;
    o.charged_bytes_ = 0;
    o.overflow_bytes_ = 0;
  }
  return *this;
}

void VersionCache::ChargeBudget(uint64_t bytes) {
  if (lease_ == nullptr) return;
  if (lease_->Charge(bytes)) {
    charged_bytes_ += bytes;
  } else {
    overflow_bytes_ += bytes;
  }
}

void VersionCache::ReleaseBudget() {
  if (lease_ == nullptr) return;
  lease_->Release(charged_bytes_, overflow_bytes_);
  charged_bytes_ = 0;
  overflow_bytes_ = 0;
}

Result<const VersionCache::AtomEntry*> VersionCache::Pin(
    const AtomTypeDef& type, AtomId id) {
  AtomKey key(type.id, id);
  auto it = atoms_.find(key);
  if (it != atoms_.end()) {
    ++stats_.atom_hits;
    return &it->second;
  }
  if (ctx_ != nullptr) {
    Status governed = ctx_->Check();
    if (!governed.ok()) return governed;
  }
  ++stats_.atom_misses;
  AtomEntry entry;
  Result<std::vector<AtomVersion>> versions =
      store_->GetVersions(type, id, window_);
  if (!versions.ok()) {
    if (!versions.status().IsNotFound()) return versions.status();
    // Never inserted: pin the negative result too, so repeated probes of
    // a dangling reference stay free.
  } else {
    entry.found = true;
    entry.versions = std::move(versions).value();
    stats_.versions_pinned += entry.versions.size();
    TCOB_ASSIGN_OR_RETURN(entry.timeline, TimelineOf(entry.versions));
  }
  auto [pos, inserted] = atoms_.emplace(key, std::move(entry));
  (void)inserted;
  ChargeBudget(EstimateAtomEntryBytes(pos->second));
  return &pos->second;
}

Result<const AtomVersion*> VersionCache::AsOf(const AtomTypeDef& type,
                                              AtomId id, Timestamp t) {
  TCOB_ASSIGN_OR_RETURN(const AtomEntry* entry, Pin(type, id));
  if (!entry->found) {
    return Status::NotFound("atom " + std::to_string(id));
  }
  std::optional<uint64_t> idx = entry->timeline.AsOf(t);
  if (!idx.has_value()) return static_cast<const AtomVersion*>(nullptr);
  return &entry->versions[static_cast<size_t>(*idx)];
}

Result<const std::vector<std::pair<AtomId, Interval>>*>
VersionCache::Neighbors(const LinkTypeDef& link, AtomId atom, bool forward) {
  LinkKey key(link.id, atom, forward);
  auto it = neighbors_.find(key);
  if (it != neighbors_.end()) {
    ++stats_.link_hits;
    return &it->second;
  }
  if (ctx_ != nullptr) {
    Status governed = ctx_->Check();
    if (!governed.ok()) return governed;
  }
  ++stats_.link_misses;
  TCOB_ASSIGN_OR_RETURN(auto partners,
                        links_->NeighborsIn(link, atom, forward, window_));
  stats_.link_instances_pinned += partners.size();
  auto [pos, inserted] = neighbors_.emplace(key, std::move(partners));
  (void)inserted;
  ChargeBudget(EstimateLinkEntryBytes(pos->second.size()));
  return &pos->second;
}

Result<std::vector<AtomId>> VersionCache::NeighborsAsOf(
    const LinkTypeDef& link, AtomId atom, bool forward, Timestamp t) {
  TCOB_ASSIGN_OR_RETURN(const auto* pinned, Neighbors(link, atom, forward));
  std::vector<AtomId> out;
  for (const auto& [partner, valid] : *pinned) {
    if (valid.Contains(t)) out.push_back(partner);
  }
  return out;
}

}  // namespace tcob
