#include "mad/version_cache.h"

namespace tcob {

Result<const VersionCache::AtomEntry*> VersionCache::Pin(
    const AtomTypeDef& type, AtomId id) {
  AtomKey key(type.id, id);
  auto it = atoms_.find(key);
  if (it != atoms_.end()) {
    ++stats_.atom_hits;
    return &it->second;
  }
  ++stats_.atom_misses;
  AtomEntry entry;
  Result<std::vector<AtomVersion>> versions =
      store_->GetVersions(type, id, window_);
  if (!versions.ok()) {
    if (!versions.status().IsNotFound()) return versions.status();
    // Never inserted: pin the negative result too, so repeated probes of
    // a dangling reference stay free.
  } else {
    entry.found = true;
    entry.versions = std::move(versions).value();
    stats_.versions_pinned += entry.versions.size();
    TCOB_ASSIGN_OR_RETURN(entry.timeline, TimelineOf(entry.versions));
  }
  auto [pos, inserted] = atoms_.emplace(key, std::move(entry));
  (void)inserted;
  return &pos->second;
}

Result<const AtomVersion*> VersionCache::AsOf(const AtomTypeDef& type,
                                              AtomId id, Timestamp t) {
  TCOB_ASSIGN_OR_RETURN(const AtomEntry* entry, Pin(type, id));
  if (!entry->found) {
    return Status::NotFound("atom " + std::to_string(id));
  }
  std::optional<uint64_t> idx = entry->timeline.AsOf(t);
  if (!idx.has_value()) return static_cast<const AtomVersion*>(nullptr);
  return &entry->versions[static_cast<size_t>(*idx)];
}

Result<const std::vector<std::pair<AtomId, Interval>>*>
VersionCache::Neighbors(const LinkTypeDef& link, AtomId atom, bool forward) {
  LinkKey key(link.id, atom, forward);
  auto it = neighbors_.find(key);
  if (it != neighbors_.end()) {
    ++stats_.link_hits;
    return &it->second;
  }
  ++stats_.link_misses;
  TCOB_ASSIGN_OR_RETURN(auto partners,
                        links_->NeighborsIn(link, atom, forward, window_));
  stats_.link_instances_pinned += partners.size();
  auto [pos, inserted] = neighbors_.emplace(key, std::move(partners));
  (void)inserted;
  return &pos->second;
}

Result<std::vector<AtomId>> VersionCache::NeighborsAsOf(
    const LinkTypeDef& link, AtomId atom, bool forward, Timestamp t) {
  TCOB_ASSIGN_OR_RETURN(const auto* pinned, Neighbors(link, atom, forward));
  std::vector<AtomId> out;
  for (const auto& [partner, valid] : *pinned) {
    if (valid.Contains(t)) out.push_back(partner);
  }
  return out;
}

}  // namespace tcob
