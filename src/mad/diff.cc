#include "mad/diff.h"

#include <algorithm>

namespace tcob {

MoleculeDiff DiffMolecules(const Molecule& before, const Molecule& after) {
  MoleculeDiff diff;
  // Atoms: both maps iterate in id order, so a merge walk suffices.
  auto bit = before.atoms.begin();
  auto ait = after.atoms.begin();
  while (bit != before.atoms.end() || ait != after.atoms.end()) {
    if (ait == after.atoms.end() ||
        (bit != before.atoms.end() && bit->first < ait->first)) {
      diff.removed_atoms.push_back(bit->first);
      ++bit;
    } else if (bit == before.atoms.end() || ait->first < bit->first) {
      diff.added_atoms.push_back(ait->first);
      ++ait;
    } else {
      if (bit->second.version_no != ait->second.version_no) {
        diff.changed_atoms.push_back({bit->first, bit->second.version_no,
                                      ait->second.version_no});
      }
      ++bit;
      ++ait;
    }
  }
  // Edges: both vectors are sorted (materializer invariant).
  std::set_difference(before.edges.begin(), before.edges.end(),
                      after.edges.begin(), after.edges.end(),
                      std::back_inserter(diff.removed_edges));
  std::set_difference(after.edges.begin(), after.edges.end(),
                      before.edges.begin(), before.edges.end(),
                      std::back_inserter(diff.added_edges));
  return diff;
}

std::string MoleculeDiff::Summary() const {
  if (empty()) return "no changes";
  std::string out;
  auto append = [&out](size_t n, const char* what) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += std::to_string(n) + " " + what;
  };
  append(added_atoms.size(), "atom(s) added");
  append(removed_atoms.size(), "atom(s) removed");
  append(changed_atoms.size(), "atom(s) changed");
  append(added_edges.size(), "link(s) added");
  append(removed_edges.size(), "link(s) removed");
  return out;
}

}  // namespace tcob
