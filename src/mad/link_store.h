#ifndef TCOB_MAD_LINK_STORE_H_
#define TCOB_MAD_LINK_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "record/value.h"
#include "storage/heap_file.h"
#include "time/interval.h"

namespace tcob {

/// One connection instance: partner atom + validity + storage location.
struct LinkEntry {
  AtomId other = kInvalidAtomId;
  Interval valid;
  Rid rid;  // record in the link heap (internal)
};

/// Persistent store of versioned link instances.
///
/// A connection between two atoms is itself a temporal fact: it holds
/// during an interval, can be severed, and re-established later. The
/// store keeps one heap file per link type (records of
/// [from][to][begin][end]) plus an in-memory adjacency index in both
/// directions, rebuilt on open.
///
/// Mutations follow the same valid-time contract as atoms and are
/// idempotent under WAL replay.
class LinkStore {
 public:
  LinkStore(BufferPool* pool, std::string file_prefix)
      : pool_(pool), prefix_(std::move(file_prefix)) {}

  /// Establishes `from` -> `to` starting at `at` (open-ended).
  Status Connect(const LinkTypeDef& link, AtomId from, AtomId to,
                 Timestamp at);

  /// Severs the open connection `from` -> `to` at `at`.
  Status Disconnect(const LinkTypeDef& link, AtomId from, AtomId to,
                    Timestamp at);

  /// Partners of `atom` over `link` valid at `t`. `forward` means `atom`
  /// is on the link's from-side.
  Result<std::vector<AtomId>> NeighborsAsOf(const LinkTypeDef& link,
                                            AtomId atom, bool forward,
                                            Timestamp t) const;

  /// Partner/validity pairs of `atom` over `link` overlapping `window`.
  Result<std::vector<std::pair<AtomId, Interval>>> NeighborsIn(
      const LinkTypeDef& link, AtomId atom, bool forward,
      const Interval& window) const;

  /// Streams every connection interval of `link` (order unspecified).
  Status ForEachLink(
      const LinkTypeDef& link,
      const std::function<Result<bool>(AtomId, AtomId, const Interval&)>& fn)
      const;

  /// Total pages across all link heaps.
  Result<uint64_t> TotalPages() const;

  /// Temporal vacuuming: removes every connection interval ending at or
  /// before `cutoff`. Returns the number of link records removed.
  Result<uint64_t> VacuumBefore(const LinkTypeDef& link, Timestamp cutoff);

  Status Flush() { return pool_->FlushAll(); }

  /// Structural self-check: every interval well-formed, every adjacency
  /// entry's record readable from the heap, and the forward and reverse
  /// adjacency maps exact mirrors of each other. Read-only; returns
  /// Corruption describing the first violation.
  Status VerifyIntegrity(const LinkTypeDef& link) const;

 private:
  struct LinkState {
    std::unique_ptr<HeapFile> heap;
    std::unordered_map<AtomId, std::vector<LinkEntry>> fwd;
    std::unordered_map<AtomId, std::vector<LinkEntry>> rev;
  };

  Result<LinkState*> StateOf(LinkTypeId link) const;

  static void EncodeLink(AtomId from, AtomId to, const Interval& valid,
                         std::string* dst);

  BufferPool* pool_;
  std::string prefix_;
  // Guards lazy LinkState creation (adjacency rebuild on first touch);
  // map nodes are stable once created, and the adjacency index itself is
  // only mutated by the single-threaded write path.
  mutable std::mutex links_mu_;
  mutable std::map<LinkTypeId, LinkState> links_;
};

}  // namespace tcob

#endif  // TCOB_MAD_LINK_STORE_H_
