#include "mad/materializer.h"

#include <algorithm>
#include <set>

namespace tcob {

Result<const AtomTypeDef*> Materializer::AtomTypeOf(TypeId id) const {
  return catalog_->GetAtomType(id);
}

Result<Molecule> Materializer::MaterializeAsOf(const MoleculeTypeDef& type,
                                               AtomId root,
                                               Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> root_version,
                        store_->GetAsOf(*root_type, root, t));
  if (!root_version.has_value()) {
    return Status::NotFound("root atom " + std::to_string(root) +
                            " not valid at " + TimestampToString(t));
  }

  Molecule mol;
  mol.type = type.id;
  mol.root = root;
  mol.atoms[root] = std::move(*root_version);
  std::map<AtomId, TypeId> atom_types = {{root, type.root_type}};

  // Fixpoint over the edge list: keep sweeping until no edge adds atoms
  // or edges (cyclic type graphs converge because both sets only grow).
  std::set<std::tuple<LinkTypeId, AtomId, AtomId>> edge_set;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MoleculeEdge& edge : type.edges) {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_->GetLinkType(edge.link));
      TypeId source_type = edge.forward ? link->from_type : link->to_type;
      TypeId target_type = edge.forward ? link->to_type : link->from_type;
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* target_def,
                            AtomTypeOf(target_type));
      // Snapshot the current source atoms (the map mutates inside).
      std::vector<AtomId> sources;
      for (const auto& [id, tid] : atom_types) {
        if (tid == source_type) sources.push_back(id);
      }
      for (AtomId source : sources) {
        TCOB_ASSIGN_OR_RETURN(
            std::vector<AtomId> partners,
            links_->NeighborsAsOf(*link, source, edge.forward, t));
        for (AtomId partner : partners) {
          AtomId from = edge.forward ? source : partner;
          AtomId to = edge.forward ? partner : source;
          auto key = std::make_tuple(link->id, from, to);
          if (mol.atoms.count(partner) == 0) {
            TCOB_ASSIGN_OR_RETURN(
                std::optional<AtomVersion> v,
                store_->GetAsOf(*target_def, partner, t));
            if (!v.has_value()) continue;  // dangling link; skip partner
            mol.atoms[partner] = std::move(*v);
            atom_types[partner] = target_type;
            changed = true;
          }
          if (edge_set.insert(key).second) {
            mol.edges.push_back(MoleculeEdgeInstance{link->id, from, to});
            changed = true;
          }
        }
      }
    }
  }
  std::sort(mol.edges.begin(), mol.edges.end());
  return mol;
}

Status Materializer::AllMoleculesAsOf(
    const MoleculeTypeDef& type, Timestamp t,
    const std::function<Result<bool>(Molecule)>& fn) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  return store_->ScanAsOf(
      *root_type, t, [&](const AtomVersion& root) -> Result<bool> {
        TCOB_ASSIGN_OR_RETURN(Molecule mol,
                              MaterializeAsOf(type, root.id, t));
        return fn(std::move(mol));
      });
}

Result<Materializer::ReachableSet> Materializer::DiscoverReachable(
    const MoleculeTypeDef& type, AtomId root, const Interval& window) const {
  ReachableSet reach;
  reach.atoms[root] = type.root_type;
  std::set<std::tuple<LinkTypeId, AtomId, AtomId, Timestamp>> seen_links;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MoleculeEdge& edge : type.edges) {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_->GetLinkType(edge.link));
      TypeId source_type = edge.forward ? link->from_type : link->to_type;
      TypeId target_type = edge.forward ? link->to_type : link->from_type;
      std::vector<AtomId> sources;
      for (const auto& [id, tid] : reach.atoms) {
        if (tid == source_type) sources.push_back(id);
      }
      for (AtomId source : sources) {
        TCOB_ASSIGN_OR_RETURN(
            auto partners,
            links_->NeighborsIn(*link, source, edge.forward, window));
        for (const auto& [partner, valid] : partners) {
          AtomId from = edge.forward ? source : partner;
          AtomId to = edge.forward ? partner : source;
          auto key = std::make_tuple(link->id, from, to, valid.begin);
          if (seen_links.insert(key).second) {
            reach.links.emplace_back(link->id, from, to, valid);
            changed = true;
          }
          if (reach.atoms.count(partner) == 0) {
            reach.atoms[partner] = target_type;
            changed = true;
          }
        }
      }
    }
  }
  return reach;
}

Result<MoleculeHistory> Materializer::History(const MoleculeTypeDef& type,
                                              AtomId root,
                                              const Interval& window) const {
  if (window.empty()) {
    return Status::InvalidArgument("empty history window");
  }
  TCOB_ASSIGN_OR_RETURN(ReachableSet reach,
                        DiscoverReachable(type, root, window));

  // Change points: version boundaries of every reachable atom plus link
  // validity boundaries, clipped to the window.
  std::set<Timestamp> boundaries = {window.begin};
  for (const auto& [atom_id, type_id] : reach.atoms) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* atom_type, AtomTypeOf(type_id));
    Result<std::vector<AtomVersion>> versions =
        store_->GetVersions(*atom_type, atom_id, window);
    if (!versions.ok()) {
      if (versions.status().IsNotFound()) continue;
      return versions.status();
    }
    for (const AtomVersion& v : versions.value()) {
      if (v.valid.begin > window.begin && v.valid.begin < window.end) {
        boundaries.insert(v.valid.begin);
      }
      if (!v.valid.open_ended() && v.valid.end > window.begin &&
          v.valid.end < window.end) {
        boundaries.insert(v.valid.end);
      }
    }
  }
  for (const auto& [link_id, from, to, valid] : reach.links) {
    (void)link_id;
    (void)from;
    (void)to;
    if (valid.begin > window.begin && valid.begin < window.end) {
      boundaries.insert(valid.begin);
    }
    if (!valid.open_ended() && valid.end > window.begin &&
        valid.end < window.end) {
      boundaries.insert(valid.end);
    }
  }

  // Elementary intervals between consecutive boundaries.
  std::vector<Timestamp> points(boundaries.begin(), boundaries.end());
  points.push_back(window.end);

  MoleculeHistory history;
  history.root = root;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval piece(points[i], points[i + 1]);
    Result<Molecule> mol = MaterializeAsOf(type, root, piece.begin);
    if (!mol.ok()) {
      if (mol.status().IsNotFound()) continue;  // root dead: gap
      return mol.status();
    }
    if (!history.states.empty() &&
        history.states.back().valid.Meets(piece) &&
        history.states.back().molecule.SameState(mol.value())) {
      history.states.back().valid.end = piece.end;  // coalesce
    } else {
      history.states.push_back(MoleculeState{piece, std::move(mol).value()});
    }
  }
  return history;
}

Status Materializer::AllHistories(
    const MoleculeTypeDef& type, const Interval& window,
    const std::function<Result<bool>(MoleculeHistory)>& fn) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  std::set<AtomId> roots;
  TCOB_RETURN_NOT_OK(store_->ScanVersions(
      *root_type, window, [&](const AtomVersion& v) -> Result<bool> {
        roots.insert(v.id);
        return true;
      }));
  for (AtomId root : roots) {
    TCOB_ASSIGN_OR_RETURN(MoleculeHistory h, History(type, root, window));
    if (h.states.empty()) continue;
    TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(std::move(h)));
    if (!keep_going) break;
  }
  return Status::OK();
}

}  // namespace tcob
