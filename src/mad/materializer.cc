#include "mad/materializer.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <set>

#include "common/bounded_queue.h"
#include "common/metrics.h"

namespace tcob {

namespace {

/// Streaming fan-out scaffold shared by the as-of and history operators.
/// `materialize(item, worker)` builds one item on the worker's private
/// cache; `deliver` consumes results on the calling thread in item order
/// — the same splice the barrier version produced, so output stays
/// byte-identical to serial execution. Workers run ahead of the consumer
/// only as far as their bounded channel allows (backpressure bounds
/// buffered results at workers x capacity, independent of `n`), and the
/// consumer overlaps with them instead of waiting for a join.
///
/// Error protocol: a worker stops its own partition at its first real
/// error (a deterministic position), the other workers complete their
/// partitions in full, and the first error in item order is returned —
/// the same report the serial loop gives, with run-to-run deterministic
/// work counters. A `deliver` that returns false aborts the workers and
/// drains their in-flight tail.
template <typename R>
Status StreamFanOut(
    ThreadPool* pool, size_t n, size_t workers, bool skip_not_found,
    std::vector<double>* worker_us, TraceRecorder* rec, uint64_t query_id,
    const std::function<Result<R>(size_t item, size_t worker)>& materialize,
    const std::function<Result<bool>(R)>& deliver) {
  constexpr size_t kChannelCapacity = 16;
  std::vector<std::unique_ptr<BoundedQueue<Result<R>>>> channels;
  channels.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    channels.push_back(
        std::make_unique<BoundedQueue<Result<R>>>(kChannelCapacity));
  }
  std::atomic<bool> abort{false};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = n * w / workers;
    const size_t end = n * (w + 1) / workers;
    tasks.push_back([&, w, begin, end] {
      // Pool threads carry no ambient query id of their own: adopt this
      // query's for the batch so everything the worker touches below
      // (version cache, buffer pool, cold tier) attributes to it.
      TraceQueryScope qscope(query_id);
      TraceSpanScope span(rec, TraceSpanId::kWorker);
      StopwatchUs timer;
      for (size_t i = begin; i < end; ++i) {
        if (abort.load(std::memory_order_acquire)) break;
        Result<R> r = materialize(i, w);
        const bool hard_error =
            !r.ok() && !(skip_not_found && r.status().IsNotFound());
        if (!channels[w]->Push(std::move(r))) break;  // consumer left
        if (hard_error) break;  // later items cannot be the first error
      }
      channels[w]->CloseProducer();
      (*worker_us)[w] = timer.ElapsedUs();
    });
  }
  ThreadPool::BatchHandle batch = pool->Submit(std::move(tasks));

  Status first_error = Status::OK();
  bool stopped = false;
  for (size_t w = 0; w < workers; ++w) {
    while (std::optional<Result<R>> item = channels[w]->Pop()) {
      if (!first_error.ok() || stopped) continue;  // draining only
      if (!item->ok()) {
        if (skip_not_found && item->status().IsNotFound()) continue;
        first_error = item->status();  // first in item order
        continue;
      }
      Result<bool> keep_going = deliver(std::move(*item).value());
      if (!keep_going.ok()) {
        first_error = keep_going.status();
        continue;
      }
      if (!keep_going.value() && !stopped) {
        stopped = true;
        abort.store(true, std::memory_order_release);
        for (auto& channel : channels) channel->CloseConsumer();
      }
    }
  }
  pool->Wait(batch);
  return first_error;
}

}  // namespace

Result<const AtomTypeDef*> Materializer::AtomTypeOf(TypeId id) const {
  return catalog_->GetAtomType(id);
}

Result<Molecule> Materializer::MaterializeAsOf(const MoleculeTypeDef& type,
                                               AtomId root,
                                               Timestamp t) const {
  return MaterializeAsOfImpl(type, root, t, nullptr);
}

Result<Molecule> Materializer::MaterializeAsOf(const MoleculeTypeDef& type,
                                               AtomId root, Timestamp t,
                                               VersionCache* cache) const {
  return MaterializeAsOfImpl(type, root, t, cache);
}

Result<Molecule> Materializer::MaterializeAsOfImpl(const MoleculeTypeDef& type,
                                                   AtomId root, Timestamp t,
                                                   VersionCache* cache) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  std::optional<AtomVersion> root_version;
  if (cache != nullptr) {
    TCOB_ASSIGN_OR_RETURN(const AtomVersion* v,
                          cache->AsOf(*root_type, root, t));
    if (v != nullptr) root_version = *v;
  } else {
    TCOB_ASSIGN_OR_RETURN(root_version, store_->GetAsOf(*root_type, root, t));
  }
  if (!root_version.has_value()) {
    return Status::NotFound("root atom " + std::to_string(root) +
                            " not valid at " + TimestampToString(t));
  }

  Molecule mol;
  mol.type = type.id;
  mol.root = root;
  mol.atoms[root] = std::move(*root_version);
  std::map<AtomId, TypeId> atom_types = {{root, type.root_type}};

  // Fixpoint over the edge list: keep sweeping until no edge adds atoms
  // or edges (cyclic type graphs converge because both sets only grow).
  std::set<std::tuple<LinkTypeId, AtomId, AtomId>> edge_set;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MoleculeEdge& edge : type.edges) {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_->GetLinkType(edge.link));
      TypeId source_type = edge.forward ? link->from_type : link->to_type;
      TypeId target_type = edge.forward ? link->to_type : link->from_type;
      TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* target_def,
                            AtomTypeOf(target_type));
      // Snapshot the current source atoms (the map mutates inside).
      std::vector<AtomId> sources;
      for (const auto& [id, tid] : atom_types) {
        if (tid == source_type) sources.push_back(id);
      }
      for (AtomId source : sources) {
        std::vector<AtomId> partners;
        if (cache != nullptr) {
          TCOB_ASSIGN_OR_RETURN(
              partners, cache->NeighborsAsOf(*link, source, edge.forward, t));
        } else {
          TCOB_ASSIGN_OR_RETURN(
              partners, links_->NeighborsAsOf(*link, source, edge.forward, t));
        }
        for (AtomId partner : partners) {
          AtomId from = edge.forward ? source : partner;
          AtomId to = edge.forward ? partner : source;
          auto key = std::make_tuple(link->id, from, to);
          if (mol.atoms.count(partner) == 0) {
            std::optional<AtomVersion> v;
            if (cache != nullptr) {
              TCOB_ASSIGN_OR_RETURN(const AtomVersion* pv,
                                    cache->AsOf(*target_def, partner, t));
              if (pv != nullptr) v = *pv;
            } else {
              TCOB_ASSIGN_OR_RETURN(v,
                                    store_->GetAsOf(*target_def, partner, t));
            }
            if (!v.has_value()) continue;  // dangling link; skip partner
            mol.atoms[partner] = std::move(*v);
            atom_types[partner] = target_type;
            changed = true;
          }
          if (edge_set.insert(key).second) {
            mol.edges.push_back(MoleculeEdgeInstance{link->id, from, to});
            changed = true;
          }
        }
      }
    }
  }
  std::sort(mol.edges.begin(), mol.edges.end());
  return mol;
}

Status Materializer::AllMoleculesAsOf(
    const MoleculeTypeDef& type, Timestamp t,
    const std::function<Result<bool>(Molecule)>& fn) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  last_worker_us_.clear();
  if (pool_ != nullptr && pool_->workers() > 1) {
    // Collect the qualifying roots first (in scan order — the order the
    // serial path would emit), then fan the materialization out.
    std::vector<AtomId> roots;
    TCOB_RETURN_NOT_OK(store_->ScanAsOf(
        *root_type, t, [&](const AtomVersion& root) -> Result<bool> {
          roots.push_back(root.id);
          if (ctx_ != nullptr && (roots.size() & 63) == 0) {
            Status governed = ctx_->Check();
            if (!governed.ok()) return governed;
          }
          return true;
        }));
    if (roots.size() > 1) {
      // A scanned root is valid at t by construction, so NotFound is a
      // real error here — propagate it like the serial loop would.
      return ParallelMoleculesAsOf(type, roots, t,
                                   /*skip_not_found=*/false, fn);
    }
    // Fall through: zero or one root gains nothing from the pool.
    VersionCache cache = NewCache(Interval::At(t));
    Status out = Status::OK();
    for (AtomId root : roots) {
      Result<Molecule> mol = MaterializeAsOfImpl(type, root, t, &cache);
      if (!mol.ok()) {
        out = mol.status();
        break;
      }
      Result<bool> keep_going = fn(std::move(mol).value());
      if (!keep_going.ok()) {
        out = keep_going.status();
        break;
      }
      if (!keep_going.value()) break;
    }
    cache_stats_ += cache.stats();
    return out;
  }
  // One cache for the whole scan: a sub-object shared by many molecules
  // (a department referenced by every employee) is fetched once.
  VersionCache cache = NewCache(Interval::At(t));
  Status out = store_->ScanAsOf(
      *root_type, t, [&](const AtomVersion& root) -> Result<bool> {
        Status governed = CheckContext();
        if (!governed.ok()) return governed;
        if (lease_ != nullptr && lease_->TakePressure()) {
          cache_stats_ += cache.stats();
          cache = NewCache(Interval::At(t));
        }
        TCOB_ASSIGN_OR_RETURN(
            Molecule mol, MaterializeAsOfImpl(type, root.id, t, &cache));
        return fn(std::move(mol));
      });
  cache_stats_ += cache.stats();
  return out;
}

Status Materializer::MoleculesAsOf(
    const MoleculeTypeDef& type, const std::vector<AtomId>& roots,
    Timestamp t, const std::function<Result<bool>(Molecule)>& fn) const {
  last_worker_us_.clear();
  if (UseParallel(roots.size())) {
    return ParallelMoleculesAsOf(type, roots, t, /*skip_not_found=*/true, fn);
  }
  // Query-scoped cache: molecules of different roots share pinned
  // sub-objects instead of re-fetching them per root.
  VersionCache cache = NewCache(Interval::At(t));
  Status out = Status::OK();
  for (AtomId root : roots) {
    out = CheckContext();
    if (!out.ok()) break;
    if (lease_ != nullptr && lease_->TakePressure()) {
      // Budget pressure: drop the pinned cache and continue fresh.
      cache_stats_ += cache.stats();
      cache = NewCache(Interval::At(t));
    }
    Result<Molecule> mol = MaterializeAsOfImpl(type, root, t, &cache);
    if (!mol.ok()) {
      // Candidate lists may over-approximate (index false positives).
      if (mol.status().IsNotFound()) continue;
      out = mol.status();
      break;
    }
    Result<bool> keep_going = fn(std::move(mol).value());
    if (!keep_going.ok()) {
      out = keep_going.status();
      break;
    }
    if (!keep_going.value()) break;
  }
  cache_stats_ += cache.stats();
  return out;
}

Status Materializer::ParallelMoleculesAsOf(
    const MoleculeTypeDef& type, const std::vector<AtomId>& roots,
    Timestamp t, bool skip_not_found,
    const std::function<Result<bool>(Molecule)>& fn) const {
  const size_t n = roots.size();
  const size_t workers = std::min(pool_->workers(), n);
  // One private cache per worker: caches are not thread-safe, and a
  // shared one would serialize the very lookups we are spreading out.
  std::vector<VersionCache> caches;
  caches.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    caches.push_back(NewCache(Interval::At(t)));
  }
  // Stats of caches a worker dropped under budget pressure; each worker
  // writes only its own slot.
  std::vector<VersionCacheStats> dropped_stats(workers);
  last_worker_us_.assign(workers, 0.0);
  // `fn` runs on this thread only, overlapping with the workers.
  Status out = StreamFanOut<Molecule>(
      pool_, n, workers, skip_not_found, &last_worker_us_, trace_rec_,
      ctx_ != nullptr ? ctx_->query_id() : 0,
      [&](size_t i, size_t w) -> Result<Molecule> {
        Status governed = CheckContext();
        if (!governed.ok()) return governed;
        if (lease_ != nullptr && lease_->TakePressure()) {
          dropped_stats[w] += caches[w].stats();
          caches[w] = NewCache(Interval::At(t));
        }
        return MaterializeAsOfImpl(type, roots[i], t, &caches[w]);
      },
      fn);
  for (VersionCache& cache : caches) cache_stats_ += cache.stats();
  for (const VersionCacheStats& s : dropped_stats) cache_stats_ += s;
  return out;
}

Result<Materializer::ReachableSet> Materializer::DiscoverReachable(
    const MoleculeTypeDef& type, AtomId root, const Interval& window,
    VersionCache* cache) const {
  ReachableSet reach;
  reach.atoms[root] = type.root_type;
  std::set<std::tuple<LinkTypeId, AtomId, AtomId, Timestamp>> seen_links;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MoleculeEdge& edge : type.edges) {
      TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                            catalog_->GetLinkType(edge.link));
      TypeId source_type = edge.forward ? link->from_type : link->to_type;
      TypeId target_type = edge.forward ? link->to_type : link->from_type;
      std::vector<AtomId> sources;
      for (const auto& [id, tid] : reach.atoms) {
        if (tid == source_type) sources.push_back(id);
      }
      for (AtomId source : sources) {
        std::vector<std::pair<AtomId, Interval>> direct;
        const std::vector<std::pair<AtomId, Interval>>* partners;
        if (cache != nullptr) {
          TCOB_ASSIGN_OR_RETURN(partners,
                                cache->Neighbors(*link, source, edge.forward));
        } else {
          TCOB_ASSIGN_OR_RETURN(
              direct, links_->NeighborsIn(*link, source, edge.forward,
                                          window));
          partners = &direct;
        }
        for (const auto& [partner, valid] : *partners) {
          // The cache may be pinned over a wider window; stay exact.
          if (!valid.Overlaps(window)) continue;
          AtomId from = edge.forward ? source : partner;
          AtomId to = edge.forward ? partner : source;
          auto key = std::make_tuple(link->id, from, to, valid.begin);
          if (seen_links.insert(key).second) {
            reach.links.emplace_back(link->id, from, to, valid);
            changed = true;
          }
          if (reach.atoms.count(partner) == 0) {
            reach.atoms[partner] = target_type;
            changed = true;
          }
        }
      }
    }
  }
  return reach;
}

Result<MoleculeHistory> Materializer::History(const MoleculeTypeDef& type,
                                              AtomId root,
                                              const Interval& window) const {
  VersionCache cache = NewCache(window);
  Result<MoleculeHistory> out = HistorySweep(type, root, window, &cache);
  cache_stats_ += cache.stats();
  return out;
}

Result<MoleculeHistory> Materializer::History(const MoleculeTypeDef& type,
                                              AtomId root,
                                              const Interval& window,
                                              VersionCache* cache) const {
  return HistorySweep(type, root, window, cache);
}

Result<MoleculeHistory> Materializer::HistorySweep(
    const MoleculeTypeDef& type, AtomId root, const Interval& window,
    VersionCache* cache) const {
  if (window.empty()) {
    return Status::InvalidArgument("empty history window");
  }
  TCOB_ASSIGN_OR_RETURN(ReachableSet reach,
                        DiscoverReachable(type, root, window, cache));

  // Pin every reachable atom exactly once. Boundary derivation and the
  // whole sweep below run against these pinned version lists — no store
  // access happens past this point.
  std::map<AtomId, const VersionCache::AtomEntry*> pinned;
  for (const auto& [atom_id, type_id] : reach.atoms) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* atom_type, AtomTypeOf(type_id));
    TCOB_ASSIGN_OR_RETURN(const VersionCache::AtomEntry* entry,
                          cache->Pin(*atom_type, atom_id));
    pinned[atom_id] = entry;
  }

  // Change points inside the window, each classified: a version swap
  // (one version ending exactly where the next begins) keeps liveness
  // and connectivity intact, so the sweep patches the previous state in
  // place; births, deaths and link boundaries are structural and re-run
  // the in-memory fixpoint.
  struct Delta {
    std::vector<AtomId> swaps;
    bool structural = false;
  };
  std::map<Timestamp, Delta> deltas;
  auto mark_structural = [&](Timestamp t) {
    if (t > window.begin && t < window.end) deltas[t].structural = true;
  };
  for (const auto& [atom_id, entry] : pinned) {
    if (!entry->found) continue;
    const std::vector<AtomVersion>& versions = entry->versions;
    for (size_t i = 0; i < versions.size(); ++i) {
      const Interval& valid = versions[i].valid;
      bool swap_in = i > 0 && versions[i - 1].valid.end == valid.begin;
      if (valid.begin > window.begin && valid.begin < window.end) {
        if (swap_in) {
          deltas[valid.begin].swaps.push_back(atom_id);
        } else {
          mark_structural(valid.begin);  // (re)birth
        }
      }
      bool swap_out =
          i + 1 < versions.size() && versions[i + 1].valid.begin == valid.end;
      if (!valid.open_ended() && !swap_out) {
        mark_structural(valid.end);  // death
      }
    }
  }
  for (const auto& [link_id, from, to, valid] : reach.links) {
    (void)link_id;
    (void)from;
    (void)to;
    mark_structural(valid.begin);
    if (!valid.open_ended()) mark_structural(valid.end);
  }

  // Elementary intervals between consecutive boundaries.
  std::vector<Timestamp> points;
  points.reserve(deltas.size() + 2);
  points.push_back(window.begin);
  for (const auto& [t, delta] : deltas) {
    (void)delta;
    points.push_back(t);
  }
  points.push_back(window.end);

  // Adjacency over the discovered link instances, indexed per side so
  // the fixpoint below never touches the link store again.
  struct AdjInstance {
    AtomId from;
    AtomId to;
    Interval valid;
  };
  std::map<std::pair<LinkTypeId, AtomId>, std::vector<AdjInstance>> fwd, rev;
  for (const auto& [link_id, from, to, valid] : reach.links) {
    fwd[{link_id, from}].push_back({from, to, valid});
    rev[{link_id, to}].push_back({from, to, valid});
  }

  // In-memory fixpoint: same traversal as MaterializeAsOf, but against
  // the pinned timelines and the adjacency index. nullopt = gap (root —
  // or a linked partner record — absent, mirroring the store path).
  auto state_at = [&](Timestamp t) -> Result<std::optional<Molecule>> {
    const VersionCache::AtomEntry* root_entry = pinned.at(root);
    std::optional<uint64_t> root_idx;
    if (root_entry->found) root_idx = root_entry->timeline.AsOf(t);
    if (!root_idx.has_value()) return std::optional<Molecule>();
    Molecule mol;
    mol.type = type.id;
    mol.root = root;
    mol.atoms[root] = root_entry->versions[*root_idx];
    std::map<AtomId, TypeId> atom_types = {{root, type.root_type}};
    std::set<std::tuple<LinkTypeId, AtomId, AtomId>> edge_set;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const MoleculeEdge& edge : type.edges) {
        TCOB_ASSIGN_OR_RETURN(const LinkTypeDef* link,
                              catalog_->GetLinkType(edge.link));
        TypeId source_type = edge.forward ? link->from_type : link->to_type;
        TypeId target_type = edge.forward ? link->to_type : link->from_type;
        std::vector<AtomId> sources;
        for (const auto& [id, tid] : atom_types) {
          if (tid == source_type) sources.push_back(id);
        }
        const auto& adj = edge.forward ? fwd : rev;
        for (AtomId source : sources) {
          auto adj_it = adj.find({link->id, source});
          if (adj_it == adj.end()) continue;
          for (const AdjInstance& inst : adj_it->second) {
            if (!inst.valid.Contains(t)) continue;
            AtomId partner = edge.forward ? inst.to : inst.from;
            auto key = std::make_tuple(link->id, inst.from, inst.to);
            if (mol.atoms.count(partner) == 0) {
              const VersionCache::AtomEntry* p = pinned.at(partner);
              if (!p->found) {
                // A link to a never-inserted atom surfaces as NotFound
                // on the store path, which History() renders as a gap.
                return std::optional<Molecule>();
              }
              std::optional<uint64_t> idx = p->timeline.AsOf(t);
              if (!idx.has_value()) continue;  // dangling link; skip partner
              mol.atoms[partner] = p->versions[*idx];
              atom_types[partner] = target_type;
              changed = true;
            }
            if (edge_set.insert(key).second) {
              mol.edges.push_back(
                  MoleculeEdgeInstance{link->id, inst.from, inst.to});
              changed = true;
            }
          }
        }
      }
    }
    std::sort(mol.edges.begin(), mol.edges.end());
    return std::optional<Molecule>(std::move(mol));
  };

  MoleculeHistory history;
  history.root = root;
  std::optional<Molecule> prev;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval piece(points[i], points[i + 1]);
    std::optional<Molecule> cur;
    const Delta* delta =
        i == 0 ? nullptr : &deltas.find(points[i])->second;
    if (delta != nullptr && !delta->structural && prev.has_value()) {
      // Version-swap-only boundary: patch the changed members in place.
      cur = prev;
      for (AtomId atom_id : delta->swaps) {
        auto member = cur->atoms.find(atom_id);
        if (member == cur->atoms.end()) continue;  // not a member here
        const VersionCache::AtomEntry* entry = pinned.at(atom_id);
        std::optional<uint64_t> idx = entry->timeline.AsOf(piece.begin);
        // A swap guarantees a successor version starting at this instant.
        member->second = entry->versions[*idx];
      }
    } else {
      TCOB_ASSIGN_OR_RETURN(cur, state_at(piece.begin));
    }
    if (cur.has_value()) {
      if (!history.states.empty() &&
          history.states.back().valid.Meets(piece) &&
          history.states.back().molecule.SameState(*cur)) {
        history.states.back().valid.end = piece.end;  // coalesce
      } else {
        history.states.push_back(MoleculeState{piece, *cur});
      }
    }
    prev = std::move(cur);
  }
  return history;
}

Result<MoleculeHistory> Materializer::NaiveHistory(
    const MoleculeTypeDef& type, AtomId root, const Interval& window) const {
  if (window.empty()) {
    return Status::InvalidArgument("empty history window");
  }
  TCOB_ASSIGN_OR_RETURN(ReachableSet reach,
                        DiscoverReachable(type, root, window, nullptr));

  // Change points: version boundaries of every reachable atom plus link
  // validity boundaries, clipped to the window. Note the re-fetch: the
  // sweep path derives these from the cached version lists instead.
  std::set<Timestamp> boundaries = {window.begin};
  for (const auto& [atom_id, type_id] : reach.atoms) {
    TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* atom_type, AtomTypeOf(type_id));
    Result<std::vector<AtomVersion>> versions =
        store_->GetVersions(*atom_type, atom_id, window);
    if (!versions.ok()) {
      if (versions.status().IsNotFound()) continue;
      return versions.status();
    }
    for (const AtomVersion& v : versions.value()) {
      if (v.valid.begin > window.begin && v.valid.begin < window.end) {
        boundaries.insert(v.valid.begin);
      }
      if (!v.valid.open_ended() && v.valid.end > window.begin &&
          v.valid.end < window.end) {
        boundaries.insert(v.valid.end);
      }
    }
  }
  for (const auto& [link_id, from, to, valid] : reach.links) {
    (void)link_id;
    (void)from;
    (void)to;
    if (valid.begin > window.begin && valid.begin < window.end) {
      boundaries.insert(valid.begin);
    }
    if (!valid.open_ended() && valid.end > window.begin &&
        valid.end < window.end) {
      boundaries.insert(valid.end);
    }
  }

  // Elementary intervals between consecutive boundaries.
  std::vector<Timestamp> points(boundaries.begin(), boundaries.end());
  points.push_back(window.end);

  MoleculeHistory history;
  history.root = root;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval piece(points[i], points[i + 1]);
    Result<Molecule> mol = MaterializeAsOfImpl(type, root, piece.begin,
                                               nullptr);
    if (!mol.ok()) {
      if (mol.status().IsNotFound()) continue;  // root dead: gap
      return mol.status();
    }
    if (!history.states.empty() &&
        history.states.back().valid.Meets(piece) &&
        history.states.back().molecule.SameState(mol.value())) {
      history.states.back().valid.end = piece.end;  // coalesce
    } else {
      history.states.push_back(MoleculeState{piece, std::move(mol).value()});
    }
  }
  return history;
}

Status Materializer::AllHistories(
    const MoleculeTypeDef& type, const Interval& window,
    const std::function<Result<bool>(MoleculeHistory)>& fn) const {
  TCOB_ASSIGN_OR_RETURN(const AtomTypeDef* root_type,
                        AtomTypeOf(type.root_type));
  last_worker_us_.clear();
  std::set<AtomId> roots;
  size_t scanned = 0;
  TCOB_RETURN_NOT_OK(store_->ScanVersions(
      *root_type, window, [&](const AtomVersion& v) -> Result<bool> {
        roots.insert(v.id);
        if (ctx_ != nullptr && (++scanned & 63) == 0) {
          Status governed = ctx_->Check();
          if (!governed.ok()) return governed;
        }
        return true;
      }));
  if (UseParallel(roots.size())) {
    // Fan the sweeps out: contiguous batches of roots (in sorted order —
    // the order the serial loop visits them), a private cache per
    // worker, results streamed back in root order.
    const std::vector<AtomId> root_list(roots.begin(), roots.end());
    const size_t n = root_list.size();
    const size_t workers = std::min(pool_->workers(), n);
    std::vector<VersionCache> caches;
    caches.reserve(workers);
    for (size_t w = 0; w < workers; ++w) caches.push_back(NewCache(window));
    std::vector<VersionCacheStats> dropped_stats(workers);
    last_worker_us_.assign(workers, 0.0);
    Status out = StreamFanOut<MoleculeHistory>(
        pool_, n, workers, /*skip_not_found=*/false, &last_worker_us_,
        trace_rec_, ctx_ != nullptr ? ctx_->query_id() : 0,
        [&](size_t i, size_t w) -> Result<MoleculeHistory> {
          Status governed = CheckContext();
          if (!governed.ok()) return governed;
          if (lease_ != nullptr && lease_->TakePressure()) {
            // HistorySweep holds raw pins only within one call, so the
            // cache may only be dropped here, between roots.
            dropped_stats[w] += caches[w].stats();
            caches[w] = NewCache(window);
          }
          return HistorySweep(type, root_list[i], window, &caches[w]);
        },
        [&](MoleculeHistory h) -> Result<bool> {
          // A root alive in the window but never materializable (its
          // states all gaps) is silent, like the serial loop.
          if (h.states.empty()) return true;
          return fn(std::move(h));
        });
    for (VersionCache& cache : caches) cache_stats_ += cache.stats();
    for (const VersionCacheStats& s : dropped_stats) cache_stats_ += s;
    return out;
  }
  // One cache across every history: molecules sharing sub-objects pin
  // each atom once for the whole statement.
  VersionCache cache = NewCache(window);
  Status out = Status::OK();
  for (AtomId root : roots) {
    out = CheckContext();
    if (!out.ok()) break;
    if (lease_ != nullptr && lease_->TakePressure()) {
      // Safe only between sweeps: HistorySweep pins raw entry pointers
      // for the duration of one root.
      cache_stats_ += cache.stats();
      cache = NewCache(window);
    }
    Result<MoleculeHistory> h = HistorySweep(type, root, window, &cache);
    if (!h.ok()) {
      out = h.status();
      break;
    }
    if (h.value().states.empty()) continue;
    Result<bool> keep_going = fn(std::move(h).value());
    if (!keep_going.ok()) {
      out = keep_going.status();
      break;
    }
    if (!keep_going.value()) break;
  }
  cache_stats_ += cache.stats();
  return out;
}

}  // namespace tcob
