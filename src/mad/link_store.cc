#include "mad/link_store.h"

#include <algorithm>
#include <tuple>

#include "common/coding.h"

namespace tcob {

void LinkStore::EncodeLink(AtomId from, AtomId to, const Interval& valid,
                           std::string* dst) {
  PutVarint64(dst, from);
  PutVarint64(dst, to);
  PutVarsint64(dst, valid.begin);
  PutVarsint64(dst, valid.end);
}

Result<LinkStore::LinkState*> LinkStore::StateOf(LinkTypeId link) const {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto it = links_.find(link);
  if (it != links_.end()) return &it->second;
  LinkState state;
  TCOB_ASSIGN_OR_RETURN(
      state.heap,
      HeapFile::Open(pool_, prefix_ + "_link_" + std::to_string(link)));
  // Rebuild the adjacency index from the heap.
  Status scan = state.heap->Scan(
      [&state](const Rid& rid, const Slice& rec) -> Result<bool> {
        Slice in(rec);
        uint64_t from, to;
        Interval valid;
        TCOB_RETURN_NOT_OK(GetVarint64(&in, &from));
        TCOB_RETURN_NOT_OK(GetVarint64(&in, &to));
        TCOB_RETURN_NOT_OK(GetVarsint64(&in, &valid.begin));
        TCOB_RETURN_NOT_OK(GetVarsint64(&in, &valid.end));
        state.fwd[from].push_back(LinkEntry{to, valid, rid});
        state.rev[to].push_back(LinkEntry{from, valid, rid});
        return true;
      });
  TCOB_RETURN_NOT_OK(scan);
  auto [pos, inserted] = links_.emplace(link, std::move(state));
  (void)inserted;
  return &pos->second;
}

Status LinkStore::Connect(const LinkTypeDef& link, AtomId from, AtomId to,
                          Timestamp at) {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  // Reject double-connect; accept idempotent replay.
  auto it = state->fwd.find(from);
  if (it != state->fwd.end()) {
    for (const LinkEntry& e : it->second) {
      if (e.other != to) continue;
      if (e.valid.open_ended()) {
        if (e.valid.begin == at) return Status::OK();  // idempotent
        return Status::AlreadyExists("link already connected");
      }
      if (at < e.valid.end) {
        return Status::InvalidArgument(
            "connect overlaps a previous connection interval");
      }
    }
  }
  Interval valid(at, kForever);
  std::string rec;
  EncodeLink(from, to, valid, &rec);
  TCOB_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(rec));
  state->fwd[from].push_back(LinkEntry{to, valid, rid});
  state->rev[to].push_back(LinkEntry{from, valid, rid});
  return Status::OK();
}

Status LinkStore::Disconnect(const LinkTypeDef& link, AtomId from, AtomId to,
                             Timestamp at) {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  auto it = state->fwd.find(from);
  if (it == state->fwd.end()) {
    return Status::NotFound("no connection to disconnect");
  }
  for (LinkEntry& e : it->second) {
    if (e.other != to) continue;
    if (!e.valid.open_ended()) {
      if (e.valid.end == at) return Status::OK();  // idempotent
      continue;
    }
    if (at <= e.valid.begin) {
      return Status::InvalidArgument(
          "disconnect before the connection began");
    }
    Interval closed(e.valid.begin, at);
    std::string rec;
    EncodeLink(from, to, closed, &rec);
    TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->heap->Update(e.rid, rec));
    e.valid = closed;
    Rid old_rid = e.rid;
    e.rid = new_rid;
    // Mirror in the reverse index.
    auto rit = state->rev.find(to);
    if (rit != state->rev.end()) {
      for (LinkEntry& r : rit->second) {
        if (r.other == from && r.rid == old_rid) {
          r.valid = closed;
          r.rid = new_rid;
          break;
        }
      }
    }
    return Status::OK();
  }
  return Status::NotFound("no open connection to disconnect");
}

Result<std::vector<AtomId>> LinkStore::NeighborsAsOf(const LinkTypeDef& link,
                                                     AtomId atom, bool forward,
                                                     Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  const auto& index = forward ? state->fwd : state->rev;
  std::vector<AtomId> out;
  auto it = index.find(atom);
  if (it == index.end()) return out;
  for (const LinkEntry& e : it->second) {
    if (e.valid.Contains(t)) out.push_back(e.other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::pair<AtomId, Interval>>> LinkStore::NeighborsIn(
    const LinkTypeDef& link, AtomId atom, bool forward,
    const Interval& window) const {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  const auto& index = forward ? state->fwd : state->rev;
  std::vector<std::pair<AtomId, Interval>> out;
  auto it = index.find(atom);
  if (it == index.end()) return out;
  for (const LinkEntry& e : it->second) {
    if (e.valid.Overlaps(window)) out.emplace_back(e.other, e.valid);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  return out;
}

Status LinkStore::ForEachLink(
    const LinkTypeDef& link,
    const std::function<Result<bool>(AtomId, AtomId, const Interval&)>& fn)
    const {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  for (const auto& [from, entries] : state->fwd) {
    for (const LinkEntry& e : entries) {
      TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(from, e.other, e.valid));
      if (!keep_going) return Status::OK();
    }
  }
  return Status::OK();
}

Result<uint64_t> LinkStore::VacuumBefore(const LinkTypeDef& link,
                                         Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(LinkState * state, StateOf(link.id));
  uint64_t removed = 0;
  // Delete the heap records of closed-before-cutoff intervals, then
  // prune both in-memory adjacency maps.
  for (auto& [from, entries] : state->fwd) {
    (void)from;
    for (const LinkEntry& e : entries) {
      if (e.valid.end <= cutoff) {
        TCOB_RETURN_NOT_OK(state->heap->Delete(e.rid));
        ++removed;
      }
    }
  }
  auto prune = [cutoff](std::unordered_map<AtomId, std::vector<LinkEntry>>*
                            index) {
    for (auto it = index->begin(); it != index->end();) {
      auto& entries = it->second;
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [cutoff](const LinkEntry& e) {
                                     return e.valid.end <= cutoff;
                                   }),
                    entries.end());
      if (entries.empty()) {
        it = index->erase(it);
      } else {
        ++it;
      }
    }
  };
  prune(&state->fwd);
  prune(&state->rev);
  return removed;
}

Result<uint64_t> LinkStore::TotalPages() const {
  uint64_t pages = 0;
  for (const auto& [id, state] : links_) {
    (void)id;
    TCOB_ASSIGN_OR_RETURN(HeapFileStats stats, state.heap->Stats());
    pages += stats.total_pages;
  }
  return pages;
}

Status LinkStore::VerifyIntegrity(const LinkTypeDef& link) const {
  TCOB_ASSIGN_OR_RETURN(LinkState* state, StateOf(link.id));
  // (from, to, begin, end) -> fwd occurrences minus rev occurrences; the
  // two adjacency directions must describe the same connection multiset.
  std::map<std::tuple<AtomId, AtomId, Timestamp, Timestamp>, int64_t> balance;
  auto check_side = [&](const std::unordered_map<AtomId,
                                                 std::vector<LinkEntry>>& side,
                        bool forward) -> Status {
    for (const auto& [atom, entries] : side) {
      for (const LinkEntry& e : entries) {
        const AtomId from = forward ? atom : e.other;
        const AtomId to = forward ? e.other : atom;
        if (e.valid.empty()) {
          return Status::Corruption(
              "link type " + link.name + ": empty interval on connection " +
              std::to_string(from) + " -> " + std::to_string(to));
        }
        Result<std::string> rec = state->heap->Get(e.rid);
        if (!rec.ok()) {
          return Status::Corruption(
              "link type " + link.name + ": connection " +
              std::to_string(from) + " -> " + std::to_string(to) +
              " references unreadable record: " + rec.status().message());
        }
        balance[{from, to, e.valid.begin, e.valid.end}] += forward ? 1 : -1;
      }
    }
    return Status::OK();
  };
  TCOB_RETURN_NOT_OK(check_side(state->fwd, true));
  TCOB_RETURN_NOT_OK(check_side(state->rev, false));
  for (const auto& [key, count] : balance) {
    if (count != 0) {
      return Status::Corruption(
          "link type " + link.name + ": connection " +
          std::to_string(std::get<0>(key)) + " -> " +
          std::to_string(std::get<1>(key)) +
          " missing from the " + (count > 0 ? "reverse" : "forward") +
          " adjacency index");
    }
  }
  return Status::OK();
}

}  // namespace tcob
