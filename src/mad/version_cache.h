#ifndef TCOB_MAD_VERSION_CACHE_H_
#define TCOB_MAD_VERSION_CACHE_H_

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/resource_budget.h"
#include "mad/link_store.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Counters of one query-scoped VersionCache (the query-layer analogue of
/// BufferPoolStats one level below). A hit answers a temporal probe from
/// decoded in-memory versions; a miss costs one TemporalAtomStore /
/// LinkStore round-trip that pins the object's whole history slice.
struct VersionCacheStats {
  uint64_t atom_hits = 0;
  uint64_t atom_misses = 0;
  uint64_t link_hits = 0;
  uint64_t link_misses = 0;
  uint64_t versions_pinned = 0;        // atom versions decoded into entries
  uint64_t link_instances_pinned = 0;  // (partner, validity) pairs pinned

  double AtomHitRate() const {
    uint64_t probes = atom_hits + atom_misses;
    return probes ? static_cast<double>(atom_hits) / probes : 0.0;
  }
  double HitRate() const {
    uint64_t probes = atom_hits + atom_misses + link_hits + link_misses;
    return probes ? static_cast<double>(atom_hits + link_hits) / probes : 0.0;
  }

  VersionCacheStats& operator+=(const VersionCacheStats& o) {
    atom_hits += o.atom_hits;
    atom_misses += o.atom_misses;
    link_hits += o.link_hits;
    link_misses += o.link_misses;
    versions_pinned += o.versions_pinned;
    link_instances_pinned += o.link_instances_pinned;
    return *this;
  }
};

/// Query-scoped cache of decoded atom version lists and link adjacency.
///
/// The history and time-slice operators probe the same atoms at many
/// instants (every elementary interval of a molecule history, every
/// molecule sharing a sub-object). Going to the TemporalAtomStore for
/// each probe re-pays index probes, page fetches and record decodes per
/// instant — O(change points x atoms) store accesses for one history.
/// A VersionCache pins each touched atom's version list (clipped to the
/// cache window) plus a VersionTimeline over it exactly once; every
/// later probe is an in-memory binary search.
///
/// The cache is *query-scoped*: it snapshots validity as of its first
/// touch and must not outlive the statement it serves (mutations behind
/// its back are not observed — single-threaded execution makes this safe
/// within one statement).
class VersionCache {
 public:
  /// One pinned atom: its versions overlapping window(), in time order,
  /// and the timeline over them (payload = index into `versions`).
  struct AtomEntry {
    bool found = false;  // false: the atom was never inserted
    std::vector<AtomVersion> versions;
    VersionTimeline timeline;
  };

  /// `window` bounds the pinned history slice; probes outside it would
  /// silently miss versions, so keep it at least as wide as the query.
  VersionCache(const TemporalAtomStore* store, const LinkStore* links,
               const Interval& window = Interval::All())
      : store_(store), links_(links), window_(window) {}

  VersionCache(const VersionCache&) = delete;
  VersionCache& operator=(const VersionCache&) = delete;
  VersionCache(VersionCache&& o) noexcept;
  VersionCache& operator=(VersionCache&& o) noexcept;
  ~VersionCache() { ReleaseBudget(); }

  const Interval& window() const { return window_; }

  /// Attaches the query's cancellation token and memory lease. Every
  /// cache miss (a store round-trip, possibly a cold-segment decode)
  /// first checks `ctx`, and the pinned entry's estimated footprint is
  /// charged to `lease` — released again when the cache dies. Either
  /// may be null.
  void set_governance(const QueryContext* ctx, BudgetLease* lease) {
    ctx_ = ctx;
    lease_ = lease;
  }

  /// Estimated bytes of everything currently pinned (charged + refused).
  uint64_t pinned_bytes() const { return charged_bytes_ + overflow_bytes_; }

  /// The pinned entry of `id`, fetching it from the store on first touch
  /// (one GetVersions round-trip, never more).
  Result<const AtomEntry*> Pin(const AtomTypeDef& type, AtomId id);

  /// The version of `id` valid at `t`, mirroring the contract of
  /// TemporalAtomStore::GetAsOf: nullptr if the atom was dead at `t`,
  /// NotFound if it was never inserted. `t` must lie inside window().
  Result<const AtomVersion*> AsOf(const AtomTypeDef& type, AtomId id,
                                  Timestamp t);

  /// Partner/validity pairs of `atom` over `link` overlapping window(),
  /// pinned on first touch (one LinkStore::NeighborsIn round-trip).
  Result<const std::vector<std::pair<AtomId, Interval>>*> Neighbors(
      const LinkTypeDef& link, AtomId atom, bool forward);

  /// Partners of `atom` valid at `t` (filters the pinned list; same
  /// result as LinkStore::NeighborsAsOf for `t` inside window()).
  Result<std::vector<AtomId>> NeighborsAsOf(const LinkTypeDef& link,
                                            AtomId atom, bool forward,
                                            Timestamp t);

  const VersionCacheStats& stats() const { return stats_; }

 private:
  using AtomKey = std::pair<TypeId, AtomId>;
  using LinkKey = std::tuple<LinkTypeId, AtomId, bool>;

  /// Charges `bytes` to the lease (if any), tracking what stuck vs. what
  /// the global budget refused so ReleaseBudget can undo both exactly.
  void ChargeBudget(uint64_t bytes);
  void ReleaseBudget();

  const TemporalAtomStore* store_;
  const LinkStore* links_;
  Interval window_;
  std::map<AtomKey, AtomEntry> atoms_;
  std::map<LinkKey, std::vector<std::pair<AtomId, Interval>>> neighbors_;
  VersionCacheStats stats_;
  const QueryContext* ctx_ = nullptr;
  BudgetLease* lease_ = nullptr;
  uint64_t charged_bytes_ = 0;
  uint64_t overflow_bytes_ = 0;
};

}  // namespace tcob

#endif  // TCOB_MAD_VERSION_CACHE_H_
