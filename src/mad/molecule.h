#ifndef TCOB_MAD_MOLECULE_H_
#define TCOB_MAD_MOLECULE_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// One link instance inside a materialized molecule.
struct MoleculeEdgeInstance {
  LinkTypeId link = kInvalidTypeId;
  AtomId from = kInvalidAtomId;
  AtomId to = kInvalidAtomId;
};

inline bool operator==(const MoleculeEdgeInstance& a,
                       const MoleculeEdgeInstance& b) {
  return a.link == b.link && a.from == b.from && a.to == b.to;
}
inline bool operator<(const MoleculeEdgeInstance& a,
                      const MoleculeEdgeInstance& b) {
  if (a.link != b.link) return a.link < b.link;
  if (a.from != b.from) return a.from < b.from;
  return a.to < b.to;
}

/// A materialized complex object: the connected atom sub-network rooted
/// at `root`, as of one instant.
struct Molecule {
  MoleculeTypeId type = kInvalidTypeId;
  AtomId root = kInvalidAtomId;
  /// Atom versions keyed by atom id (deterministic iteration order).
  std::map<AtomId, AtomVersion> atoms;
  /// Link instances among the atoms, sorted.
  std::vector<MoleculeEdgeInstance> edges;

  size_t AtomCount() const { return atoms.size(); }

  /// Structural + version equality: same atoms (id and version number),
  /// same edges. Used to coalesce adjacent molecule-history states.
  bool SameState(const Molecule& other) const {
    if (root != other.root || atoms.size() != other.atoms.size() ||
        edges != other.edges) {
      return false;
    }
    auto it = atoms.begin();
    auto jt = other.atoms.begin();
    for (; it != atoms.end(); ++it, ++jt) {
      if (it->first != jt->first ||
          it->second.version_no != jt->second.version_no) {
        return false;
      }
    }
    return true;
  }
};

/// One piece of a molecule history: the molecule's state during `valid`.
struct MoleculeState {
  Interval valid;
  Molecule molecule;
};

/// The full evolution of one molecule across a query window: a sequence
/// of maximal constant states (gaps mean the root did not exist).
struct MoleculeHistory {
  AtomId root = kInvalidAtomId;
  std::vector<MoleculeState> states;
};

}  // namespace tcob

#endif  // TCOB_MAD_MOLECULE_H_
