#ifndef TCOB_MAD_DIFF_H_
#define TCOB_MAD_DIFF_H_

#include <string>
#include <vector>

#include "mad/molecule.h"

namespace tcob {

/// Structural + version delta between two states of a molecule.
///
/// The classic design-management question — "what changed between
/// release A and release B?" — answered at the complex-object level:
/// which atoms entered or left the molecule, which were modified
/// (different version), and which links appeared or disappeared.
struct MoleculeDiff {
  std::vector<AtomId> added_atoms;
  std::vector<AtomId> removed_atoms;
  /// Atoms present in both states but with different version numbers.
  struct ChangedAtom {
    AtomId id = kInvalidAtomId;
    uint32_t old_version = 0;
    uint32_t new_version = 0;
  };
  std::vector<ChangedAtom> changed_atoms;
  std::vector<MoleculeEdgeInstance> added_edges;
  std::vector<MoleculeEdgeInstance> removed_edges;

  bool empty() const {
    return added_atoms.empty() && removed_atoms.empty() &&
           changed_atoms.empty() && added_edges.empty() &&
           removed_edges.empty();
  }

  /// Human-readable summary ("+2 atoms, -1 atom, 3 changed, +1 link").
  std::string Summary() const;
};

/// Computes the delta from `before` to `after`. Both molecules should
/// share the same root (typically two time slices of one object), but
/// the function works for any pair.
MoleculeDiff DiffMolecules(const Molecule& before, const Molecule& after);

}  // namespace tcob

#endif  // TCOB_MAD_DIFF_H_
