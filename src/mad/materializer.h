#ifndef TCOB_MAD_MATERIALIZER_H_
#define TCOB_MAD_MATERIALIZER_H_

#include <functional>
#include <vector>

#include "catalog/catalog.h"
#include "mad/link_store.h"
#include "mad/molecule.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Builds molecules out of the atom and link networks — the dynamic
/// complex-object construction at the heart of the model.
///
/// Materialization is a breadth-first fixpoint over the molecule type's
/// edge list: starting from the root atom, every edge is traversed from
/// every already-collected atom of its source type, adding the partners
/// that are valid at the query instant. Cyclic type graphs terminate
/// because the atom set grows monotonically.
class Materializer {
 public:
  Materializer(const Catalog* catalog, const TemporalAtomStore* store,
               const LinkStore* links)
      : catalog_(catalog), store_(store), links_(links) {}

  /// The molecule rooted at `root` as of instant `t`. NotFound if the
  /// root atom does not exist or is not valid at `t`.
  Result<Molecule> MaterializeAsOf(const MoleculeTypeDef& type, AtomId root,
                                   Timestamp t) const;

  /// Streams every molecule of `type` valid at `t` (one per live root).
  Status AllMoleculesAsOf(
      const MoleculeTypeDef& type, Timestamp t,
      const std::function<Result<bool>(Molecule)>& fn) const;

  /// The piecewise-constant evolution of the molecule rooted at `root`
  /// across `window`: change points are the union of the version
  /// boundaries of every atom ever reachable in the window and of every
  /// link among them. Adjacent identical states are coalesced; intervals
  /// where the root is dead appear as gaps.
  Result<MoleculeHistory> History(const MoleculeTypeDef& type, AtomId root,
                                  const Interval& window) const;

  /// Streams the histories of all molecules of `type` whose root exists
  /// at some point in `window`.
  Status AllHistories(
      const MoleculeTypeDef& type, const Interval& window,
      const std::function<Result<bool>(MoleculeHistory)>& fn) const;

 private:
  /// Atom-type lookup for every type reachable by `type`'s edges.
  Result<const AtomTypeDef*> AtomTypeOf(TypeId id) const;

  /// Fixpoint discovery of all atoms ever reachable from `root` within
  /// `window`, together with the link instances among them.
  struct ReachableSet {
    // atom id -> its type
    std::map<AtomId, TypeId> atoms;
    // every link instance (with validity) encountered during discovery
    std::vector<std::tuple<LinkTypeId, AtomId, AtomId, Interval>> links;
  };
  Result<ReachableSet> DiscoverReachable(const MoleculeTypeDef& type,
                                         AtomId root,
                                         const Interval& window) const;

  const Catalog* catalog_;
  const TemporalAtomStore* store_;
  const LinkStore* links_;
};

}  // namespace tcob

#endif  // TCOB_MAD_MATERIALIZER_H_
