#ifndef TCOB_MAD_MATERIALIZER_H_
#define TCOB_MAD_MATERIALIZER_H_

#include <functional>
#include <vector>

#include "catalog/catalog.h"
#include "common/cancellation.h"
#include "common/resource_budget.h"
#include "common/thread_pool.h"
#include "mad/link_store.h"
#include "mad/molecule.h"
#include "mad/version_cache.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Builds molecules out of the atom and link networks — the dynamic
/// complex-object construction at the heart of the model.
///
/// Materialization is a breadth-first fixpoint over the molecule type's
/// edge list: starting from the root atom, every edge is traversed from
/// every already-collected atom of its source type, adding the partners
/// that are valid at the query instant. Cyclic type graphs terminate
/// because the atom set grows monotonically.
///
/// History and time-slice operators run against a query-scoped
/// VersionCache: each reachable atom's decoded version list is pinned
/// once, and History() sweeps the precomputed timelines instead of
/// re-materializing from the store at every change point (which costs
/// O(change points x atoms) store accesses — see NaiveHistory, kept as
/// the reference implementation).
///
/// With a ThreadPool, the all-roots operators fan materialization out
/// across workers: qualifying roots are partitioned into contiguous
/// batches, each worker builds its batch against a private query-scoped
/// cache (read-only store access is thread-safe) and streams its results
/// through a bounded channel, and the consumer splices the channels in
/// root order — output and error behavior are identical to the serial
/// path, while the consumer overlaps with the workers instead of waiting
/// for a barrier join (buffered results stay bounded by workers x
/// channel capacity, independent of the root count). Without a pool the
/// original serial code runs.
class Materializer {
 public:
  Materializer(const Catalog* catalog, const TemporalAtomStore* store,
               const LinkStore* links, ThreadPool* pool = nullptr)
      : catalog_(catalog), store_(store), links_(links), pool_(pool) {}

  /// Attaches the query's cancellation token and memory lease (either
  /// may be null). A Materializer is constructed per statement, so these
  /// are query-scoped: every operator checks `ctx` at its batch
  /// boundaries (per root in the all-roots loops, per item in fan-out
  /// workers, every few dozen root-scan callbacks — plus per cache miss
  /// inside VersionCache, which covers cold-segment decodes), and every
  /// cache it creates charges its pins to `lease`. When the lease
  /// reports budget pressure, the all-roots operators drop their pinned
  /// cache between roots and continue with a fresh one.
  void set_governance(const QueryContext* ctx, BudgetLease* lease) {
    ctx_ = ctx;
    lease_ = lease;
  }

  /// Attaches the flight recorder: fan-out workers run under a worker
  /// span with the query's ambient id, so their deep emissions (pool
  /// misses, cold decodes) attribute to the query. Null records nothing.
  void set_trace_recorder(TraceRecorder* rec) { trace_rec_ = rec; }

  /// A cache bound to this materializer's stores (and its governance
  /// scope), for callers that span one query over several operator
  /// invocations (e.g. the executor's per-root index path).
  VersionCache NewCache(const Interval& window = Interval::All()) const {
    VersionCache cache(store_, links_, window);
    cache.set_governance(ctx_, lease_);
    return cache;
  }

  /// The molecule rooted at `root` as of instant `t`. NotFound if the
  /// root atom does not exist or is not valid at `t`.
  Result<Molecule> MaterializeAsOf(const MoleculeTypeDef& type, AtomId root,
                                   Timestamp t) const;

  /// Cache-routed variant: atom and link probes go through `cache`
  /// (whose window must contain `t`), so molecules sharing sub-objects
  /// within one query decode each atom's versions only once.
  Result<Molecule> MaterializeAsOf(const MoleculeTypeDef& type, AtomId root,
                                   Timestamp t, VersionCache* cache) const;

  /// Streams every molecule of `type` valid at `t` (one per live root).
  /// All molecules share one query-scoped cache, so sub-objects
  /// referenced by many roots are fetched once.
  Status AllMoleculesAsOf(
      const MoleculeTypeDef& type, Timestamp t,
      const std::function<Result<bool>(Molecule)>& fn) const;

  /// Streams the molecules of the given roots (in order) as of `t`,
  /// skipping roots not valid at `t`. The executor's index path: the
  /// candidate list comes from a secondary index, which is
  /// version-grained and may over-approximate.
  Status MoleculesAsOf(const MoleculeTypeDef& type,
                       const std::vector<AtomId>& roots, Timestamp t,
                       const std::function<Result<bool>(Molecule)>& fn) const;

  /// The piecewise-constant evolution of the molecule rooted at `root`
  /// across `window`: change points are the union of the version
  /// boundaries of every atom ever reachable in the window and of every
  /// link among them. Adjacent identical states are coalesced; intervals
  /// where the root is dead appear as gaps.
  ///
  /// Incremental processing: every reachable atom is pinned into a
  /// query-scoped cache once, then the boundaries are swept over the
  /// precomputed timelines — version-only change points patch the
  /// previous state in place, structural ones (link or liveness changes)
  /// re-run the in-memory fixpoint. No store access happens after the
  /// pinning phase.
  Result<MoleculeHistory> History(const MoleculeTypeDef& type, AtomId root,
                                  const Interval& window) const;

  /// Same, against a caller-provided cache (window must contain
  /// `window`); lets one statement share pinned atoms across molecules.
  Result<MoleculeHistory> History(const MoleculeTypeDef& type, AtomId root,
                                  const Interval& window,
                                  VersionCache* cache) const;

  /// Reference implementation of History(): re-materializes the molecule
  /// from the store at every elementary interval. Kept for differential
  /// testing and as the baseline the benchmarks compare against.
  Result<MoleculeHistory> NaiveHistory(const MoleculeTypeDef& type,
                                       AtomId root,
                                       const Interval& window) const;

  /// Streams the histories of all molecules of `type` whose root exists
  /// at some point in `window`. All histories share one cache.
  Status AllHistories(
      const MoleculeTypeDef& type, const Interval& window,
      const std::function<Result<bool>(MoleculeHistory)>& fn) const;

  /// Cumulative stats of the caches this materializer created internally
  /// (one per History / AllMoleculesAsOf / AllHistories call). Caches
  /// passed in by callers are accounted by the caller (or merged in via
  /// AccumulateCacheStats).
  const VersionCacheStats& cache_stats() const { return cache_stats_; }
  void ResetCacheStats() const { cache_stats_ = VersionCacheStats(); }
  void AccumulateCacheStats(const VersionCacheStats& s) const {
    cache_stats_ += s;
  }

  /// Wall time (microseconds) each worker spent in the most recent
  /// fan-out of an all-roots operator; empty when it ran serially.
  /// EXPLAIN ANALYZE reports these as the per-worker span breakdown.
  const std::vector<double>& last_worker_micros() const {
    return last_worker_us_;
  }

 private:
  /// Atom-type lookup for every type reachable by `type`'s edges.
  Result<const AtomTypeDef*> AtomTypeOf(TypeId id) const;

  /// Fixpoint discovery of all atoms ever reachable from `root` within
  /// `window`, together with the link instances among them.
  struct ReachableSet {
    // atom id -> its type
    std::map<AtomId, TypeId> atoms;
    // every link instance (with validity) encountered during discovery
    std::vector<std::tuple<LinkTypeId, AtomId, AtomId, Interval>> links;
  };
  /// `cache` may be null (direct link-store access).
  Result<ReachableSet> DiscoverReachable(const MoleculeTypeDef& type,
                                         AtomId root, const Interval& window,
                                         VersionCache* cache) const;

  /// Shared fixpoint of both MaterializeAsOf overloads; `cache` may be
  /// null (direct store access).
  Result<Molecule> MaterializeAsOfImpl(const MoleculeTypeDef& type,
                                       AtomId root, Timestamp t,
                                       VersionCache* cache) const;

  /// The incremental sweep behind both History overloads.
  Result<MoleculeHistory> HistorySweep(const MoleculeTypeDef& type,
                                       AtomId root, const Interval& window,
                                       VersionCache* cache) const;

  /// Fan-out shared by the as-of operators: materializes `roots` across
  /// the pool's workers (each with a private cache, each streaming into
  /// a bounded channel) and splices the channels back in root order,
  /// invoking `fn` serially while the workers keep producing. NotFound
  /// roots are skipped when `skip_not_found`, propagated otherwise —
  /// matching the respective serial loops.
  Status ParallelMoleculesAsOf(
      const MoleculeTypeDef& type, const std::vector<AtomId>& roots,
      Timestamp t, bool skip_not_found,
      const std::function<Result<bool>(Molecule)>& fn) const;

  /// True when the fan-out machinery should engage for `n` roots.
  bool UseParallel(size_t n) const {
    return pool_ != nullptr && pool_->workers() > 1 && n > 1;
  }

  /// OK while the query may keep running (always OK with no context).
  Status CheckContext() const {
    return ctx_ != nullptr ? ctx_->Check() : Status::OK();
  }

  const Catalog* catalog_;
  const TemporalAtomStore* store_;
  const LinkStore* links_;
  ThreadPool* pool_;
  const QueryContext* ctx_ = nullptr;
  BudgetLease* lease_ = nullptr;
  TraceRecorder* trace_rec_ = nullptr;
  mutable VersionCacheStats cache_stats_;
  // Each parallel task writes only its own slot, so no synchronization
  // is needed beyond the pool's batch-completion join.
  mutable std::vector<double> last_worker_us_;
};

}  // namespace tcob

#endif  // TCOB_MAD_MATERIALIZER_H_
