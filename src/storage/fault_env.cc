#include "storage/fault_env.h"

#include <algorithm>
#include <cstring>

namespace tcob {

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Eio(const std::string& op, const std::string& path) {
  return Status::IOError("injected EIO: " + op + " " + path);
}

Status CutError(const std::string& op, const std::string& path) {
  return Status::IOError("power cut: " + op + " " + path);
}

}  // namespace

/// A handle onto an inode of a FaultInjectingIoEnv. Keeps the inode
/// alive even if the name is renamed or removed, like a POSIX fd.
class FaultIoFile final : public IoFile {
 public:
  FaultIoFile(FaultInjectingIoEnv* env, std::string path,
              FaultInjectingIoEnv::InodePtr inode)
      : env_(env), path_(std::move(path)), inode_(std::move(inode)) {}

  Result<size_t> ReadAt(uint64_t off, char* buf, size_t n) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->cut_fired_) return CutError("pread", path_);
    ++env_->reads_;
    if (env_->fail_read_at_ != 0 && env_->reads_ == env_->fail_read_at_) {
      env_->fail_read_at_ = 0;
      return Eio("pread", path_);
    }
    if (env_->transient_read_failures_ > 0) {
      --env_->transient_read_failures_;
      return Status::IOError("injected transient EIO: pread " + path_);
    }
    const std::string& data = inode_->current;
    if (off >= data.size()) return static_cast<size_t>(0);
    size_t avail = std::min<uint64_t>(n, data.size() - off);
    std::memcpy(buf, data.data() + off, avail);
    return avail;
  }

  Status WriteAt(uint64_t off, const Slice& data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->cut_fired_) return CutError("pwrite", path_);
    ++env_->writes_;
    ++env_->events_;
    if (env_->fail_write_at_ != 0 &&
        env_->writes_ == env_->fail_write_at_) {
      env_->fail_write_at_ = 0;
      return Eio("pwrite", path_);
    }
    if (env_->tear_write_at_ != 0 &&
        env_->writes_ == env_->tear_write_at_) {
      size_t keep = env_->tear_keep_sectors_;
      env_->tear_write_at_ = 0;
      Apply(off, data.data(),
            std::min(data.size(), keep * FaultInjectingIoEnv::kSectorSize));
      return Eio("pwrite (torn)", path_);
    }
    if (env_->cut_after_events_ != 0 &&
        env_->events_ == env_->cut_after_events_ &&
        env_->cut_mode_ == CutMode::kKeepAllTearLast) {
      // The cut lands mid-write: a deterministic prefix of the sectors
      // reaches the disk, the rest is lost.
      size_t total_sectors =
          (data.size() + FaultInjectingIoEnv::kSectorSize - 1) /
          FaultInjectingIoEnv::kSectorSize;
      size_t keep_sectors =
          total_sectors == 0 ? 0 : env_->events_ % total_sectors;
      Apply(off, data.data(),
            std::min(data.size(),
                     keep_sectors * FaultInjectingIoEnv::kSectorSize));
      env_->FireCutLocked();
      return CutError("pwrite (torn)", path_);
    }
    Apply(off, data.data(), data.size());
    if (env_->cut_after_events_ != 0 &&
        env_->events_ == env_->cut_after_events_) {
      env_->FireCutLocked();
    }
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->cut_fired_) return CutError("fsync", path_);
    ++env_->syncs_;
    ++env_->events_;
    if (env_->fail_sync_at_ != 0 && env_->syncs_ == env_->fail_sync_at_) {
      env_->fail_sync_at_ = 0;
      return Eio("fsync", path_);
    }
    inode_->durable = inode_->current;
    // fsync of a file also persists its directory entry (ext4
    // behaviour), but only while the live name still maps to this inode.
    auto it = env_->current_ns_.find(path_);
    if (it != env_->current_ns_.end() && it->second == inode_) {
      env_->durable_ns_[path_] = inode_;
    }
    if (env_->cut_after_events_ != 0 &&
        env_->events_ == env_->cut_after_events_) {
      env_->FireCutLocked();
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->cut_fired_) return CutError("ftruncate", path_);
    ++env_->events_;
    inode_->current.resize(size, '\0');
    if (env_->cut_after_events_ != 0 &&
        env_->events_ == env_->cut_after_events_) {
      env_->FireCutLocked();
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (env_->cut_fired_) return CutError("fstat", path_);
    return static_cast<uint64_t>(inode_->current.size());
  }

 private:
  /// Applies `n` bytes at `off` to the inode's live image, zero-filling
  /// any gap (sparse write past EOF).
  void Apply(uint64_t off, const char* data, size_t n) {
    std::string& cur = inode_->current;
    if (off + n > cur.size()) cur.resize(off + n, '\0');
    std::memcpy(cur.data() + off, data, n);
  }

  FaultInjectingIoEnv* env_;
  std::string path_;
  FaultInjectingIoEnv::InodePtr inode_;
};

Result<std::unique_ptr<IoFile>> FaultInjectingIoEnv::OpenFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("open", path);
  InodePtr inode;
  auto it = current_ns_.find(path);
  if (it != current_ns_.end()) {
    inode = it->second;
  } else {
    inode = std::make_shared<Inode>();
    current_ns_[path] = inode;
  }
  return std::unique_ptr<IoFile>(new FaultIoFile(this, path, inode));
}

Status FaultInjectingIoEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("mkdir", path);
  // Directory creation durability is not modelled; the sweep always
  // creates its directories before faults are armed.
  dirs_.insert(path);
  return Status::OK();
}

Result<bool> FaultInjectingIoEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("stat", path);
  return current_ns_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultInjectingIoEnv::RenameFile(const std::string& from,
                                       const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("rename", from);
  auto it = current_ns_.find(from);
  if (it == current_ns_.end()) {
    return Status::IOError("rename " + from + ": no such file");
  }
  current_ns_[to] = it->second;
  current_ns_.erase(it);
  return Status::OK();
}

Status FaultInjectingIoEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("unlink", path);
  current_ns_.erase(path);
  return Status::OK();
}

Status FaultInjectingIoEnv::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("fsync(dir)", path);
  ++syncs_;
  ++events_;
  if (fail_sync_at_ != 0 && syncs_ == fail_sync_at_) {
    fail_sync_at_ = 0;
    return Eio("fsync(dir)", path);
  }
  // Make the directory's live names durable. File *contents* stay at
  // whatever their last Sync captured.
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (ParentDir(it->first) == path && current_ns_.count(it->first) == 0) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, inode] : current_ns_) {
    if (ParentDir(name) == path) durable_ns_[name] = inode;
  }
  if (cut_after_events_ != 0 && events_ == cut_after_events_) {
    FireCutLocked();
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectingIoEnv::ListDir(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cut_fired_) return CutError("readdir", path);
  std::vector<std::string> names;
  for (const auto& [name, inode] : current_ns_) {
    (void)inode;
    if (ParentDir(name) == path) {
      names.push_back(name.substr(path.size() + 1));
    }
  }
  return names;  // map order is already sorted
}

void FaultInjectingIoEnv::FailReadAt(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_read_at_ = nth;
}

void FaultInjectingIoEnv::FailTransientReads(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  transient_read_failures_ = count;
}

void FaultInjectingIoEnv::FailWriteAt(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_write_at_ = nth;
}

void FaultInjectingIoEnv::FailSyncAt(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_sync_at_ = nth;
}

void FaultInjectingIoEnv::TearWriteAt(uint64_t nth, size_t keep_sectors) {
  std::lock_guard<std::mutex> lock(mu_);
  tear_write_at_ = nth;
  tear_keep_sectors_ = keep_sectors;
}

void FaultInjectingIoEnv::PowerCutAfterEvents(uint64_t nth, CutMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  cut_after_events_ = nth;
  cut_mode_ = mode;
}

void FaultInjectingIoEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_read_at_ = 0;
  transient_read_failures_ = 0;
  fail_write_at_ = 0;
  fail_sync_at_ = 0;
  tear_write_at_ = 0;
  cut_after_events_ = 0;
}

void FaultInjectingIoEnv::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  cut_fired_ = false;
}

void FaultInjectingIoEnv::FireCutLocked() {
  cut_fired_ = true;
  cut_after_events_ = 0;
  if (cut_mode_ == CutMode::kDropUnsynced) {
    for (auto& [name, inode] : durable_ns_) {
      inode->current = inode->durable;
    }
    current_ns_ = durable_ns_;
  }
  // kKeepAllTearLast: the live image (including the torn prefix already
  // applied) is exactly what survives.
}

bool FaultInjectingIoEnv::cut_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cut_fired_;
}

uint64_t FaultInjectingIoEnv::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t FaultInjectingIoEnv::reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}

uint64_t FaultInjectingIoEnv::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

uint64_t FaultInjectingIoEnv::syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

}  // namespace tcob
