#ifndef TCOB_STORAGE_BUFFER_POOL_H_
#define TCOB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace_ring.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace tcob {

/// Cumulative buffer-pool counters (monotonic since construction).
struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return fetches ? static_cast<double>(hits) / fetches : 0.0;
  }

  /// Delta between two snapshots of the same monotonic counters
  /// (EXPLAIN ANALYZE attributes per-query page traffic this way).
  BufferPoolStats& operator-=(const BufferPoolStats& o) {
    fetches -= o.fetches;
    hits -= o.hits;
    misses -= o.misses;
    evictions -= o.evictions;
    dirty_writebacks -= o.dirty_writebacks;
    return *this;
  }
};

/// Fixed-capacity page cache with LRU replacement and pin counting,
/// organized as independently latched shards keyed by hash(file, page).
///
/// One pool serves every file of the database, so eviction pressure is
/// shared between heap files and indexes exactly as in the modeled
/// system. The read path (FetchPage / Unpin) is thread-safe: each shard
/// owns its page table and LRU list behind one mutex, frames come from a
/// shared arena, and counters are atomic. Latch discipline: at most one
/// shard latch is held at a time; the arena latch nests strictly inside
/// a shard latch (shard -> arena, never shard -> shard). A shard under
/// memory pressure evicts from its own LRU first and steals an unpinned
/// frame from a sibling shard only after releasing its own latch.
///
/// Pins protect frames against eviction during multi-step operations;
/// page *contents* carry no latch — writers remain single-threaded by
/// design, only readers run concurrently.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory; `shards` is
  /// the number of latched partitions (0 = default, clamped to capacity).
  BufferPool(DiskManager* disk, size_t capacity, size_t shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame for (file, page_no), pinned. Reads from disk on
  /// miss, verifying the page's checksum footer (mismatch surfaces as
  /// Status::Corruption naming the file and page); may evict an unpinned
  /// LRU frame (writing it back if dirty).
  Result<Page*> FetchPage(FileId file, PageNo page_no);

  /// Allocates a fresh page in `file` and returns its pinned, zeroed frame.
  Result<Page*> NewPage(FileId file);

  /// Releases one pin; marks the frame dirty if `dirty`.
  void Unpin(Page* page, bool dirty);

  /// Writes back a specific dirty page (leaves it cached).
  Status FlushPage(FileId file, PageNo page_no);

  /// Writes back every dirty frame (leaves them cached).
  Status FlushAll();

  /// Drops every frame (must all be unpinned); dirty frames are written.
  Status Reset();

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  BufferPoolStats stats() const;
  void ResetStats();
  DiskManager* disk() const { return disk_; }

  /// Publishes the pool counters into `registry` under tcob_pool_*.
  void RegisterMetrics(MetricsRegistry* registry) const;

  /// Attaches the flight recorder (miss/evict/steal events).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  static uint64_t Key(FileId file, PageNo page_no) {
    return (static_cast<uint64_t>(file) << 32) | page_no;
  }

  /// One latched partition of the page table.
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Page*> table;
    // LRU list: front = most recently used. Only unpinned pages are
    // eligible for eviction, but all cached pages stay in the list.
    std::list<Page*> lru;
    std::unordered_map<Page*, std::list<Page*>::iterator> lru_pos;
  };

  Shard& ShardOf(uint64_t key) {
    // Fibonacci multiplicative mix so consecutive page numbers spread;
    // shard count is a power of two, so the mask selects uniformly.
    return *shards_[((key * 0x9E3779B97F4A7C15ull) >> 32) & shard_mask_];
  }

  /// Stamps the checksum footer into the frame and writes it to disk.
  /// Every page leaving the pool goes through here, so all on-disk pages
  /// carry a valid footer.
  Status WriteBack(Page* page);

  /// Pops a frame from the shared arena (free list or fresh allocation),
  /// or nullptr when the pool is at capacity.
  Page* TryAcquireArenaFrame();

  /// Evicts the LRU unpinned page of `shard` (latch must be held),
  /// writing it back if dirty. Returns the freed frame, or nullptr when
  /// every cached page of the shard is pinned.
  Result<Page*> EvictFrom(Shard& shard);

  /// Full frame-acquisition protocol for `shard` (latch held on entry
  /// and on return): arena, own-shard eviction, then stealing from
  /// sibling shards (which drops and re-takes `lock`, so the caller must
  /// re-check its page table). Returns nullptr after a steal round that
  /// freed a frame into the arena; ResourceExhausted when no unpinned
  /// frame exists anywhere.
  Result<Page*> AcquireFrame(Shard& shard, std::unique_lock<std::mutex>& lock);

  void TouchLru(Shard& shard, Page* page);

  DiskManager* disk_;
  size_t capacity_;
  uint64_t shard_mask_;  // shard count - 1 (count is a power of two)
  std::vector<std::unique_ptr<Shard>> shards_;

  // Frame arena, shared by all shards.
  std::mutex arena_mu_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::vector<Page*> free_frames_;

  // Relaxed-atomic Counters (see common/metrics.h): exact under the
  // concurrent read path, lock-free on the fetch hot path.
  Counter fetches_;
  Counter hits_;
  Counter misses_;
  Counter evictions_;
  Counter dirty_writebacks_;
  TraceRecorder* trace_ = nullptr;
};

/// RAII pin guard: unpins on scope exit.
class PageGuard {
 public:
  PageGuard() : pool_(nullptr), page_(nullptr), dirty_(false) {}
  PageGuard(BufferPool* pool, Page* page)
      : pool_(pool), page_(page), dirty_(false) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept
      : pool_(o.pool_), page_(o.page_), dirty_(o.dirty_) {
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.dirty_ = false;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_ = o.page_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.page_ = nullptr;
      o.dirty_ = false;
    }
    return *this;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  char* data() const { return page_->data; }
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

  void Release() {
    if (pool_ && page_) {
      pool_->Unpin(page_, dirty_);
      pool_ = nullptr;
      page_ = nullptr;
      dirty_ = false;
    }
  }

 private:
  BufferPool* pool_;
  Page* page_;
  bool dirty_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_BUFFER_POOL_H_
