#ifndef TCOB_STORAGE_BUFFER_POOL_H_
#define TCOB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace tcob {

/// Cumulative buffer-pool counters (monotonic since construction).
struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return fetches ? static_cast<double>(hits) / fetches : 0.0;
  }
};

/// Fixed-capacity page cache with LRU replacement and pin counting.
///
/// One pool serves every file of the database, so eviction pressure is
/// shared between heap files and indexes exactly as in the modeled system.
/// Single-threaded by design (one Database == one thread); pins protect
/// against eviction during multi-step operations, not against concurrency.
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame for (file, page_no), pinned. Reads from disk on
  /// miss; may evict an unpinned LRU frame (writing it back if dirty).
  Result<Page*> FetchPage(FileId file, PageNo page_no);

  /// Allocates a fresh page in `file` and returns its pinned, zeroed frame.
  Result<Page*> NewPage(FileId file);

  /// Releases one pin; marks the frame dirty if `dirty`.
  void Unpin(Page* page, bool dirty);

  /// Writes back a specific dirty page (leaves it cached).
  Status FlushPage(FileId file, PageNo page_no);

  /// Writes back every dirty frame (leaves them cached).
  Status FlushAll();

  /// Drops every frame (must all be unpinned); dirty frames are written.
  Status Reset();

  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }
  DiskManager* disk() const { return disk_; }

 private:
  static uint64_t Key(FileId file, PageNo page_no) {
    return (static_cast<uint64_t>(file) << 32) | page_no;
  }

  /// Finds a frame to (re)use: a free one, or evicts the LRU unpinned one.
  Result<Page*> AcquireFrame();

  void TouchLru(Page* page);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<uint64_t, Page*> table_;
  // LRU list: front = most recently used. Only unpinned pages are eligible
  // for eviction, but all cached pages stay in the list for simplicity.
  std::list<Page*> lru_;
  std::unordered_map<Page*, std::list<Page*>::iterator> lru_pos_;
  std::vector<Page*> free_frames_;
  BufferPoolStats stats_;
};

/// RAII pin guard: unpins on scope exit.
class PageGuard {
 public:
  PageGuard() : pool_(nullptr), page_(nullptr), dirty_(false) {}
  PageGuard(BufferPool* pool, Page* page)
      : pool_(pool), page_(page), dirty_(false) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept
      : pool_(o.pool_), page_(o.page_), dirty_(o.dirty_) {
    o.pool_ = nullptr;
    o.page_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_ = o.page_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.page_ = nullptr;
    }
    return *this;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  char* data() const { return page_->data; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ && page_) {
      pool_->Unpin(page_, dirty_);
      pool_ = nullptr;
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  Page* page_;
  bool dirty_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_BUFFER_POOL_H_
