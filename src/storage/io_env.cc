#include "storage/io_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace tcob {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path,
                         int err) {
  return op + " " + path + ": " + std::strerror(err);
}

/// Parent directory of `path` ("." when there is no slash).
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

class PosixIoFile final : public IoFile {
 public:
  PosixIoFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixIoFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t off, char* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(off + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread", path_, errno));
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    return done;
  }

  Status WriteAt(uint64_t off, const Slice& data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t r = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(off + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pwrite", path_, errno));
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync", path_, errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoMessage("ftruncate", path_, errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat", path_, errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixIoEnv final : public IoEnv {
 public:
  Result<std::unique_ptr<IoFile>> OpenFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("open", path, errno));
    }
    return std::unique_ptr<IoFile>(new PosixIoFile(path, fd));
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(ErrnoMessage("mkdir", path, errno));
    }
    return Status::OK();
  }

  Result<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT) return false;
    return Status::IOError(ErrnoMessage("stat", path, errno));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("rename", from + " -> " + to,
                                          errno));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(ErrnoMessage("unlink", path, errno));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("open(dir)", path, errno));
    }
    Status st;
    if (::fsync(fd) != 0) {
      st = Status::IOError(ErrnoMessage("fsync(dir)", path, errno));
    }
    ::close(fd);
    return st;
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return Status::IOError(ErrnoMessage("opendir", path, errno));
    }
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      struct stat st;
      if (::stat((path + "/" + name).c_str(), &st) == 0 &&
          S_ISREG(st.st_mode)) {
        names.push_back(name);
      }
      errno = 0;
    }
    const int err = errno;
    ::closedir(dir);
    if (err != 0) {
      return Status::IOError(ErrnoMessage("readdir", path, err));
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

IoEnv* IoEnv::Default() {
  static PosixIoEnv env;
  return &env;
}

Result<std::string> ReadFileToString(IoEnv* env, const std::string& path) {
  TCOB_ASSIGN_OR_RETURN(bool exists, env->FileExists(path));
  if (!exists) return Status::NotFound("no such file: " + path);
  TCOB_ASSIGN_OR_RETURN(std::unique_ptr<IoFile> file, env->OpenFile(path));
  TCOB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string out(size, '\0');
  TCOB_ASSIGN_OR_RETURN(size_t n, file->ReadAt(0, out.data(), out.size()));
  out.resize(n);
  return out;
}

Status WriteFileAtomic(IoEnv* env, const std::string& path,
                       const Slice& data) {
  const std::string tmp = path + ".tmp";
  {
    TCOB_ASSIGN_OR_RETURN(std::unique_ptr<IoFile> file, env->OpenFile(tmp));
    // The tmp file may survive from an earlier failed attempt; clear it so
    // stale tail bytes cannot outlive this write.
    TCOB_RETURN_NOT_OK(file->Truncate(0));
    TCOB_RETURN_NOT_OK(file->WriteAt(0, data));
    TCOB_RETURN_NOT_OK(file->Sync());
  }
  TCOB_RETURN_NOT_OK(env->RenameFile(tmp, path));
  return env->SyncDir(DirName(path));
}

}  // namespace tcob
