#ifndef TCOB_STORAGE_SLOTTED_PAGE_H_
#define TCOB_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "common/result.h"
#include "common/slice.h"
#include "storage/page.h"

namespace tcob {

/// Discriminates what a page is used for (first byte of every page).
enum class PageType : uint8_t {
  kFree = 0,
  kData = 1,      // slotted record page
  kOverflow = 2,  // continuation page of a long record
  kMeta = 3,      // per-file metadata page
  kIndex = 4,     // B+-tree node
};

/// View over a classic slotted record page.
///
/// Layout: a 12-byte header, a slot directory growing forward, and record
/// bytes growing backward from the end of the page:
///
///   [type:1][flags:1][slot_count:2][free_ptr:2][live_count:2][next:4]
///   [slot 0][slot 1]...                     ...[rec k]..[rec 1][rec 0]
///
/// Each 4-byte slot holds {offset:2, length:2}; offset 0 marks a vacant
/// slot (record offsets are always >= the header size, so 0 is safe).
/// The view does not own the page bytes; the caller keeps the frame pinned.
class SlottedPage {
 public:
  static constexpr uint32_t kHeaderSize = 12;
  static constexpr uint32_t kSlotSize = 4;
  /// Largest record Insert can ever accept (empty page, one slot). The
  /// record area ends at kPageDataSize; the checksum footer is reserved.
  static constexpr uint32_t kMaxRecordSize =
      kPageDataSize - kHeaderSize - kSlotSize;

  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats `data` as an empty slotted page of the given type.
  static void Init(char* data, PageType type);

  PageType type() const;
  uint16_t slot_count() const;
  uint16_t live_count() const;
  PageNo next_page() const;
  void set_next_page(PageNo next);

  /// Bytes available for one more record (including a new slot if no
  /// vacant one exists). Considers only the contiguous gap; call
  /// FreeSpaceAfterCompaction for the reclaimable total.
  uint32_t FreeSpace() const;
  uint32_t FreeSpaceAfterCompaction() const;

  /// Inserts a record; compacts first if fragmentation alone blocks it.
  /// Fails with ResourceExhausted if it cannot fit.
  Result<uint16_t> Insert(const Slice& record);

  /// Returns the record bytes of a live slot (view into the page).
  Result<Slice> Get(uint16_t slot) const;

  /// Marks the slot vacant. Its bytes are reclaimed by later compaction.
  Status Delete(uint16_t slot);

  /// Replaces the record in `slot`. Succeeds in place when the new record
  /// is not larger, or via compaction when total free space suffices;
  /// fails with ResourceExhausted otherwise (caller relocates).
  Status Update(uint16_t slot, const Slice& record);

  /// Invokes fn(slot, record) for every live slot.
  template <typename Fn>
  Status ForEach(Fn fn) const {
    uint16_t n = slot_count();
    for (uint16_t s = 0; s < n; ++s) {
      uint16_t off, len;
      ReadSlot(s, &off, &len);
      if (off == 0) continue;
      Status st = fn(s, Slice(data_ + off, len));
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

 private:
  void ReadSlot(uint16_t slot, uint16_t* offset, uint16_t* length) const;
  void WriteSlot(uint16_t slot, uint16_t offset, uint16_t length);
  uint16_t free_ptr() const;
  void set_free_ptr(uint16_t v);
  void set_slot_count(uint16_t v);
  void set_live_count(uint16_t v);

  /// Rewrites the record area contiguously, preserving slot numbers.
  void Compact();

  char* data_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_SLOTTED_PAGE_H_
