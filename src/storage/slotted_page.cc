#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace tcob {

void SlottedPage::Init(char* data, PageType type) {
  memset(data, 0, kPageSize);
  data[0] = static_cast<char>(type);
  SlottedPage page(data);
  page.set_free_ptr(static_cast<uint16_t>(kPageDataSize));
  page.set_slot_count(0);
  page.set_live_count(0);
  page.set_next_page(kInvalidPageNo);
}

PageType SlottedPage::type() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[0]));
}

uint16_t SlottedPage::slot_count() const { return DecodeFixed16(data_ + 2); }
uint16_t SlottedPage::free_ptr() const { return DecodeFixed16(data_ + 4); }
uint16_t SlottedPage::live_count() const { return DecodeFixed16(data_ + 6); }
PageNo SlottedPage::next_page() const { return DecodeFixed32(data_ + 8); }

void SlottedPage::set_slot_count(uint16_t v) { EncodeFixed16(data_ + 2, v); }
void SlottedPage::set_free_ptr(uint16_t v) { EncodeFixed16(data_ + 4, v); }
void SlottedPage::set_live_count(uint16_t v) { EncodeFixed16(data_ + 6, v); }
void SlottedPage::set_next_page(PageNo next) { EncodeFixed32(data_ + 8, next); }

void SlottedPage::ReadSlot(uint16_t slot, uint16_t* offset,
                           uint16_t* length) const {
  const char* p = data_ + kHeaderSize + slot * kSlotSize;
  *offset = DecodeFixed16(p);
  *length = DecodeFixed16(p + 2);
}

void SlottedPage::WriteSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  char* p = data_ + kHeaderSize + slot * kSlotSize;
  EncodeFixed16(p, offset);
  EncodeFixed16(p + 2, length);
}

uint32_t SlottedPage::FreeSpace() const {
  uint32_t dir_end = kHeaderSize + slot_count() * kSlotSize;
  uint32_t gap = free_ptr() - dir_end;
  // Reserve room for one new slot entry unless a vacant slot exists.
  uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    uint16_t off, len;
    ReadSlot(s, &off, &len);
    if (off == 0) return gap;  // vacant slot reusable, full gap available
  }
  return gap >= kSlotSize ? gap - kSlotSize : 0;
}

uint32_t SlottedPage::FreeSpaceAfterCompaction() const {
  uint32_t used = 0;
  uint16_t n = slot_count();
  bool has_vacant = false;
  for (uint16_t s = 0; s < n; ++s) {
    uint16_t off, len;
    ReadSlot(s, &off, &len);
    if (off == 0) {
      has_vacant = true;
    } else {
      used += len;
    }
  }
  uint32_t dir_end = kHeaderSize + n * kSlotSize;
  uint32_t gap = kPageDataSize - dir_end - used;
  if (has_vacant) return gap;
  return gap >= kSlotSize ? gap - kSlotSize : 0;
}

void SlottedPage::Compact() {
  struct LiveRec {
    uint16_t slot;
    uint16_t len;
    std::string bytes;
  };
  std::vector<LiveRec> live;
  uint16_t n = slot_count();
  for (uint16_t s = 0; s < n; ++s) {
    uint16_t off, len;
    ReadSlot(s, &off, &len);
    if (off == 0) continue;
    live.push_back({s, len, std::string(data_ + off, len)});
  }
  uint16_t cursor = static_cast<uint16_t>(kPageDataSize);
  for (const LiveRec& rec : live) {
    cursor = static_cast<uint16_t>(cursor - rec.len);
    memcpy(data_ + cursor, rec.bytes.data(), rec.len);
    WriteSlot(rec.slot, cursor, rec.len);
  }
  set_free_ptr(cursor);
}

Result<uint16_t> SlottedPage::Insert(const Slice& record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record too large for a page: " +
                                   std::to_string(record.size()));
  }
  uint16_t n = slot_count();
  // Prefer reusing a vacant slot.
  uint16_t target = n;
  for (uint16_t s = 0; s < n; ++s) {
    uint16_t off, len;
    ReadSlot(s, &off, &len);
    if (off == 0) {
      target = s;
      break;
    }
  }
  uint32_t need = static_cast<uint32_t>(record.size()) +
                  (target == n ? kSlotSize : 0);
  uint32_t dir_end = kHeaderSize + n * kSlotSize;
  if (free_ptr() - dir_end < need) {
    // FreeSpaceAfterCompaction already reserves a slot entry when no
    // vacant slot exists, so compare against the bare record size.
    if (FreeSpaceAfterCompaction() < record.size()) {
      return Status::ResourceExhausted("page full");
    }
    Compact();
    if (free_ptr() - dir_end < need) {
      return Status::ResourceExhausted("page full after compaction");
    }
  }
  uint16_t new_free = static_cast<uint16_t>(free_ptr() - record.size());
  memcpy(data_ + new_free, record.data(), record.size());
  set_free_ptr(new_free);
  if (target == n) set_slot_count(static_cast<uint16_t>(n + 1));
  WriteSlot(target, new_free, static_cast<uint16_t>(record.size()));
  set_live_count(static_cast<uint16_t>(live_count() + 1));
  return target;
}

Result<Slice> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound("slot out of range: " + std::to_string(slot));
  }
  uint16_t off, len;
  ReadSlot(slot, &off, &len);
  if (off == 0) return Status::NotFound("slot is vacant");
  return Slice(data_ + off, len);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::NotFound("slot out of range");
  }
  uint16_t off, len;
  ReadSlot(slot, &off, &len);
  if (off == 0) return Status::NotFound("slot already vacant");
  WriteSlot(slot, 0, 0);
  set_live_count(static_cast<uint16_t>(live_count() - 1));
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, const Slice& record) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  uint16_t off, len;
  ReadSlot(slot, &off, &len);
  if (off == 0) return Status::NotFound("slot is vacant");
  if (record.size() <= len) {
    // Shrinking in place: keep the original offset, waste the tail until
    // the next compaction.
    memcpy(data_ + off, record.data(), record.size());
    WriteSlot(slot, off, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Try to grow: free the old bytes logically, compact, re-place.
  uint32_t reclaimable = FreeSpaceAfterCompaction() + len;
  if (reclaimable < record.size()) {
    return Status::ResourceExhausted("record does not fit after growth");
  }
  WriteSlot(slot, 0, 0);
  Compact();
  uint16_t new_free = static_cast<uint16_t>(free_ptr() - record.size());
  memcpy(data_ + new_free, record.data(), record.size());
  set_free_ptr(new_free);
  WriteSlot(slot, new_free, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

}  // namespace tcob
