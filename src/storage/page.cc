#include "storage/page.h"

#include <cstring>

#include "common/hash.h"

namespace tcob {

void StampPageChecksum(char* buf) {
  uint32_t crc = Crc32c(buf, kPageDataSize);
  std::memcpy(buf + kPageDataSize, &crc, kPageChecksumSize);
}

bool PageChecksumOk(const char* buf) {
  uint32_t stored;
  std::memcpy(&stored, buf + kPageDataSize, kPageChecksumSize);
  return stored == Crc32c(buf, kPageDataSize);
}

}  // namespace tcob
