#ifndef TCOB_STORAGE_IO_ENV_H_
#define TCOB_STORAGE_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace tcob {

/// A random-access file handle obtained from an IoEnv.
///
/// All offsets are absolute; there is no cursor. Implementations must
/// make ReadAt/WriteAt safe to call concurrently from multiple readers
/// (TCOB's write path is single-threaded, its read path is not).
class IoFile {
 public:
  virtual ~IoFile() = default;

  /// Reads up to `n` bytes at `off` into `buf`. Returns the number of
  /// bytes read, which is less than `n` only at end-of-file. Retries
  /// EINTR and short transfers internally.
  virtual Result<size_t> ReadAt(uint64_t off, char* buf, size_t n) = 0;

  /// Writes all of `data` at `off` (extending the file as needed), or
  /// fails. Retries EINTR and short transfers internally; a hard error
  /// may leave a partial write behind (the caller's recovery story —
  /// checksums, WAL framing — must tolerate that).
  virtual Status WriteAt(uint64_t off, const Slice& data) = 0;

  /// Durably persists the file's current content.
  virtual Status Sync() = 0;

  /// Truncates (or extends with zeros) to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  virtual Result<uint64_t> Size() const = 0;
};

/// The physical I/O environment: every byte TCOB reads or writes goes
/// through one of these. The default is the POSIX filesystem; tests
/// substitute a FaultInjectingIoEnv to simulate EIO, torn writes, and
/// power cuts deterministically.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  /// Opens `path` read-write, creating it when absent.
  virtual Result<std::unique_ptr<IoFile>> OpenFile(const std::string& path) = 0;

  /// Creates directory `path`; OK when it already exists as a directory.
  virtual Status CreateDir(const std::string& path) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics). The
  /// rename itself is only durable after SyncDir of the parent.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Durably persists the directory entries of `path` (fsync of the
  /// directory fd): required after create/rename/remove for the name
  /// change itself to survive a power cut.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Names (not paths) of the regular files in directory `path`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static IoEnv* Default();
};

/// Reads the whole of `path` into a string; NotFound when absent.
Result<std::string> ReadFileToString(IoEnv* env, const std::string& path);

/// Crash-atomically replaces `path` with `data`: writes `path`.tmp,
/// fsyncs it, renames over `path`, and fsyncs the parent directory.
/// After a power cut the file holds either the old or the new content,
/// never a mixture.
Status WriteFileAtomic(IoEnv* env, const std::string& path,
                       const Slice& data);

}  // namespace tcob

#endif  // TCOB_STORAGE_IO_ENV_H_
