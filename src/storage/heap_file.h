#ifndef TCOB_STORAGE_HEAP_FILE_H_
#define TCOB_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace tcob {

/// Space accounting for one heap file.
struct HeapFileStats {
  uint64_t record_count = 0;
  uint64_t data_pages = 0;
  uint64_t overflow_pages = 0;
  uint64_t total_pages = 0;  // including meta and free pages
};

/// An unordered record file over the buffer pool.
///
/// Records are addressed by Rid (page, slot) and may exceed the page size:
/// long records spill into a chain of dedicated overflow pages, reachable
/// from a small stub stored in the slotted page. Updates that no longer
/// fit relocate the record and return the new Rid; callers (indexes,
/// version chains) are responsible for repointing.
///
/// File layout: page 0 is the meta page (chain heads); data pages form a
/// singly linked chain; overflow pages are chained per record; freed
/// overflow pages are kept on a free list for reuse.
class HeapFile {
 public:
  /// Opens (and formats, if empty) heap file `name` through `pool`.
  static Result<std::unique_ptr<HeapFile>> Open(BufferPool* pool,
                                                const std::string& name);

  /// Appends a record, returns its Rid.
  Result<Rid> Insert(const Slice& record);

  /// Reads the full record bytes at `rid`.
  Result<std::string> Get(const Rid& rid) const;

  /// Replaces the record at `rid`; returns the (possibly new) Rid.
  Result<Rid> Update(const Rid& rid, const Slice& record);

  /// Deletes the record, releasing any overflow chain.
  Status Delete(const Rid& rid);

  /// Calls fn(rid, record_bytes) for every record, in page order.
  /// Stops early if fn returns false.
  Status Scan(
      const std::function<Result<bool>(const Rid&, const Slice&)>& fn) const;

  Result<HeapFileStats> Stats() const;

  FileId file_id() const { return file_; }
  BufferPool* pool() const { return pool_; }

 private:
  HeapFile(BufferPool* pool, FileId file) : pool_(pool), file_(file) {}

  Status LoadOrFormat();
  Status SaveMeta();

  /// Size above which a record is stored out-of-line.
  static constexpr uint32_t kInlineLimit = 1024;

  Result<Rid> InsertStub(const Slice& stub_bytes);
  Result<PageNo> WriteOverflowChain(const Slice& record);
  Status FreeOverflowChain(PageNo first);
  Result<std::string> ReadOverflowChain(PageNo first, uint32_t total_len) const;
  Result<std::string> MaterializeRecord(const Slice& raw) const;
  Result<PageNo> AllocOverflowPage();

  BufferPool* pool_;
  FileId file_;
  PageNo first_data_page_ = kInvalidPageNo;
  PageNo last_data_page_ = kInvalidPageNo;
  PageNo free_overflow_head_ = kInvalidPageNo;
  uint64_t record_count_ = 0;
  // Data pages that likely have room, most-recent first (bounded size).
  std::vector<PageNo> open_pages_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_HEAP_FILE_H_
