#ifndef TCOB_STORAGE_RETRY_ENV_H_
#define TCOB_STORAGE_RETRY_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/trace_ring.h"
#include "storage/io_env.h"

namespace tcob {

/// Bounded-retry policy for transient read failures.
struct IoRetryPolicy {
  /// Total attempts per operation (1 = retry disabled).
  uint32_t max_attempts = 1;
  /// Backoff before the first retry; doubles per attempt (plus jitter).
  uint64_t base_backoff_micros = 100;
  /// Backoff ceiling.
  uint64_t max_backoff_micros = 10000;

  bool enabled() const { return max_attempts > 1; }
};

/// True when `s` looks like a *transient* I/O failure worth retrying:
/// an IOError whose message names a temporary condition (EAGAIN /
/// EWOULDBLOCK / EBUSY / ETIMEDOUT / ENOBUFS / "transient"). Permanent
/// failures — plain EIO, checksum Corruption, power-cut errors, missing
/// files — are never retried.
bool IsTransientIoError(const Status& s);

/// Decorator over an IoEnv that retries transiently-failing *read* paths
/// (ReadAt, Size, OpenFile, FileExists, ListDir) with bounded
/// exponential backoff + deterministic jitter, counting every retry.
///
/// Mutating paths (WriteAt, Sync, Truncate, rename, remove, SyncDir)
/// pass through untouched: a retried write that half-applied the first
/// time could double-apply, and the durability layer above (WAL framing,
/// page checksums, fail-stop) already owns those failures.
class RetryingIoEnv final : public IoEnv {
 public:
  RetryingIoEnv(IoEnv* base, IoRetryPolicy policy)
      : base_(base), policy_(policy) {}

  Result<std::unique_ptr<IoFile>> OpenFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

  /// Total retries performed (not attempts: a first try that succeeds
  /// counts zero). Exposed as tcob_io_retries_total.
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  const IoRetryPolicy& policy() const { return policy_; }
  IoEnv* base() const { return base_; }

  /// Attaches the flight recorder (io_retry events).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  friend class RetryingIoFile;

  /// Sleeps for the attempt's backoff (exponential + jitter) and counts
  /// the retry. `attempt` is the number of failures so far (>= 1).
  void BackOff(uint32_t attempt);

  IoEnv* base_;
  const IoRetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
  TraceRecorder* trace_ = nullptr;
  /// Cheap deterministic jitter source (LCG); collisions are harmless.
  std::atomic<uint64_t> jitter_state_{0x9e3779b97f4a7c15ull};
};

}  // namespace tcob

#endif  // TCOB_STORAGE_RETRY_ENV_H_
