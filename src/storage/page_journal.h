#ifndef TCOB_STORAGE_PAGE_JOURNAL_H_
#define TCOB_STORAGE_PAGE_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/io_env.h"
#include "storage/page.h"

namespace tcob {

/// What scanning an existing journal found at open.
struct JournalRecovery {
  /// A complete commit record was found: the journaled pages are a
  /// durable checkpoint image that must be (re)applied in place.
  bool committed = false;
  /// Opaque payload of the last commit record (the database's meta
  /// image, reinstalled by the caller after ApplyCommitted).
  std::string meta_blob;
  /// Distinct pages staged for apply by the committed prefix.
  uint64_t committed_pages = 0;
  /// Bytes after the last commit record (uncommitted writebacks, or a
  /// tail torn by a crash) that will be discarded by Reset.
  uint64_t discarded_bytes = 0;
};

/// Physical redo journal that makes page durability atomic with the
/// checkpoint watermark.
///
/// TCOB's WAL is logical, and logical redo is not idempotent: replaying
/// an operation over pages that already contain its effect corrupts the
/// store. The journal closes that hole by never letting a page reach its
/// data file in place during normal operation. Every writeback (buffer
/// pool eviction, checkpoint flush, page allocation) is appended here
/// instead; reads consult the journal first. At checkpoint the database
/// appends a commit record carrying its meta image and syncs the journal
/// — that single sync is the atomic point — then applies the journaled
/// pages to the data files, syncs them, saves the meta, and resets the
/// journal. After any crash the data files therefore hold EXACTLY the
/// state of the last committed checkpoint (plus a committed journal
/// still pending apply, which is physical and thus idempotent to
/// reapply), so WAL replay from the watermark never double-applies.
///
/// Record framing (all fixed-width fields little-endian, each record
/// ending in a CRC32C of its preceding bytes):
///   page:   [u8 kPageRecord][u32 name_len][name][u32 page_no]
///           [kPageSize image][u32 crc]
///   commit: [u8 kCommitRecord][u32 blob_len][blob][u32 crc]
/// A torn or corrupt record ends the scan; everything from it onward is
/// discarded (it was not yet durable, by construction).
///
/// Thread safety: Lookup may run concurrently with itself and with the
/// single-threaded write path (Append/Commit/ApplyCommitted/Reset).
class PageJournal {
 public:
  PageJournal(IoEnv* env, std::string dir);

  /// Opens (creating if absent) `dir`/pages.journal and scans it.
  /// Nothing is written; the caller inspects the result, calls
  /// ApplyCommitted if `committed`, reinstalls the meta blob, and then
  /// calls Reset to discard the journal before normal operation.
  Result<JournalRecovery> Open();

  /// Appends the page image (kPageSize bytes) for (`file_name`,
  /// `page_no`). Not durable until Commit.
  Status Append(const std::string& file_name, PageNo page_no,
                const char* data);

  /// Copies the latest journaled image of (`file_name`, `page_no`) into
  /// `out` (kPageSize bytes). Returns false when the page has no
  /// journaled image.
  Result<bool> Lookup(const std::string& file_name, PageNo page_no,
                      char* out) const;

  /// Appends a commit record carrying `meta_blob` and syncs the journal.
  /// This is the checkpoint's atomic point: after it returns, the staged
  /// pages and the new watermark survive any crash together.
  Status Commit(const Slice& meta_blob);

  /// Writes every staged page image to its data file in place (latest
  /// image per page), syncs the touched files and the directory.
  /// Physical and therefore idempotent: safe to re-run after a crash.
  Status ApplyCommitted();

  /// Truncates the journal to empty, durably, and clears the index.
  Status Reset();

  /// Forgets journaled images of `file_name` (the caller truncated the
  /// underlying file).
  void DropFile(const std::string& file_name);

  bool empty() const;

 private:
  static constexpr uint8_t kPageRecord = 1;
  static constexpr uint8_t kCommitRecord = 2;

  /// Offset of the raw page image inside the journal file.
  using Index = std::map<std::pair<std::string, PageNo>, uint64_t>;

  IoEnv* env_;
  std::string dir_;
  std::string path_;

  mutable std::shared_mutex mu_;
  std::unique_ptr<IoFile> file_;
  uint64_t size_ = 0;  // append offset
  Index index_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_PAGE_JOURNAL_H_
