#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace tcob {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.reserve(capacity_);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    TCOB_LOG(kError) << "BufferPool flush on destruction failed: "
                     << s.ToString();
  }
}

Result<Page*> BufferPool::FetchPage(FileId file, PageNo page_no) {
  ++stats_.fetches;
  auto it = table_.find(Key(file, page_no));
  if (it != table_.end()) {
    ++stats_.hits;
    Page* page = it->second;
    ++page->pin_count;
    TouchLru(page);
    return page;
  }
  ++stats_.misses;
  TCOB_ASSIGN_OR_RETURN(Page * page, AcquireFrame());
  TCOB_RETURN_NOT_OK(disk_->ReadPage(file, page_no, page->data));
  page->file_id = file;
  page->page_no = page_no;
  page->pin_count = 1;
  page->dirty = false;
  table_[Key(file, page_no)] = page;
  TouchLru(page);
  return page;
}

Result<Page*> BufferPool::NewPage(FileId file) {
  TCOB_ASSIGN_OR_RETURN(PageNo page_no, disk_->AllocatePage(file));
  TCOB_ASSIGN_OR_RETURN(Page * page, AcquireFrame());
  memset(page->data, 0, kPageSize);
  page->file_id = file;
  page->page_no = page_no;
  page->pin_count = 1;
  page->dirty = true;
  table_[Key(file, page_no)] = page;
  TouchLru(page);
  return page;
}

void BufferPool::Unpin(Page* page, bool dirty) {
  TCOB_CHECK(page->pin_count > 0);
  --page->pin_count;
  if (dirty) page->dirty = true;
}

Status BufferPool::FlushPage(FileId file, PageNo page_no) {
  auto it = table_.find(Key(file, page_no));
  if (it == table_.end()) return Status::OK();
  Page* page = it->second;
  if (page->dirty) {
    TCOB_RETURN_NOT_OK(disk_->WritePage(file, page_no, page->data));
    page->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [key, page] : table_) {
    (void)key;
    if (page->dirty) {
      TCOB_RETURN_NOT_OK(
          disk_->WritePage(page->file_id, page->page_no, page->data));
      page->dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Reset() {
  for (auto& [key, page] : table_) {
    (void)key;
    if (page->pin_count != 0) {
      return Status::Internal("BufferPool::Reset with pinned pages");
    }
    if (page->dirty) {
      TCOB_RETURN_NOT_OK(
          disk_->WritePage(page->file_id, page->page_no, page->data));
      page->dirty = false;
    }
    free_frames_.push_back(page);
  }
  table_.clear();
  lru_.clear();
  lru_pos_.clear();
  return Status::OK();
}

Result<Page*> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    Page* page = free_frames_.back();
    free_frames_.pop_back();
    return page;
  }
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Page>());
    return frames_.back().get();
  }
  // Evict the least recently used unpinned page.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    Page* victim = *it;
    if (victim->pin_count > 0) continue;
    if (victim->dirty) {
      TCOB_RETURN_NOT_OK(
          disk_->WritePage(victim->file_id, victim->page_no, victim->data));
      ++stats_.dirty_writebacks;
    }
    table_.erase(Key(victim->file_id, victim->page_no));
    lru_.erase(lru_pos_[victim]);
    lru_pos_.erase(victim);
    ++stats_.evictions;
    return victim;
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all " + std::to_string(capacity_) +
      " frames pinned");
}

void BufferPool::TouchLru(Page* page) {
  auto pos = lru_pos_.find(page);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(page);
  lru_pos_[page] = lru_.begin();
}

}  // namespace tcob
