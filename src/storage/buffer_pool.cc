#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace tcob {

namespace {

/// Largest power of two <= x (x >= 1).
size_t FloorPow2(size_t x) {
  size_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

constexpr size_t kDefaultShards = 16;

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity, size_t shards)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  if (shards == 0) shards = kDefaultShards;
  // A shard without at least one frame of its own could never cache a
  // page, so never run more shards than frames; power of two for cheap
  // hash-to-shard mapping.
  shards = FloorPow2(std::min(shards, capacity_));
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  frames_.reserve(capacity_);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    TCOB_LOG(kError) << "BufferPool flush on destruction failed: "
                     << s.ToString();
  }
}

Result<Page*> BufferPool::FetchPage(FileId file, PageNo page_no) {
  fetches_.Increment();
  const uint64_t key = Key(file, page_no);
  Shard& shard = ShardOf(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  while (true) {
    auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      hits_.Increment();
      Page* page = it->second;
      ++page->pin_count;
      TouchLru(shard, page);
      return page;
    }
    TCOB_ASSIGN_OR_RETURN(Page * frame, AcquireFrame(shard, lock));
    // AcquireFrame dropped the latch to steal: another thread may have
    // brought the page in meanwhile, so re-run the table lookup.
    if (frame == nullptr) continue;
    misses_.Increment();
    TraceEmit(trace_, TraceEventType::kPoolMiss, page_no);
    Status read = disk_->ReadPage(file, page_no, frame->data);
    if (read.ok() && !PageChecksumOk(frame->data)) {
      read = Status::Corruption(
          "page checksum mismatch in " +
          disk_->FileName(file).ValueOr("file#" + std::to_string(file)) +
          " page " + std::to_string(page_no));
    }
    if (!read.ok()) {
      std::lock_guard<std::mutex> arena(arena_mu_);
      free_frames_.push_back(frame);
      return read;
    }
    frame->file_id = file;
    frame->page_no = page_no;
    frame->pin_count = 1;
    frame->dirty = false;
    shard.table[key] = frame;
    TouchLru(shard, frame);
    return frame;
  }
}

Result<Page*> BufferPool::NewPage(FileId file) {
  TCOB_ASSIGN_OR_RETURN(PageNo page_no, disk_->AllocatePage(file));
  const uint64_t key = Key(file, page_no);
  Shard& shard = ShardOf(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  Page* frame = nullptr;
  while (frame == nullptr) {
    TCOB_ASSIGN_OR_RETURN(frame, AcquireFrame(shard, lock));
  }
  memset(frame->data, 0, kPageSize);
  frame->file_id = file;
  frame->page_no = page_no;
  frame->pin_count = 1;
  frame->dirty = true;
  shard.table[key] = frame;
  TouchLru(shard, frame);
  return frame;
}

void BufferPool::Unpin(Page* page, bool dirty) {
  Shard& shard = ShardOf(Key(page->file_id, page->page_no));
  std::lock_guard<std::mutex> lock(shard.mu);
  TCOB_CHECK(page->pin_count > 0);
  --page->pin_count;
  if (dirty) page->dirty = true;
}

Status BufferPool::FlushPage(FileId file, PageNo page_no) {
  const uint64_t key = Key(file, page_no);
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return Status::OK();
  Page* page = it->second;
  if (page->dirty) {
    TCOB_RETURN_NOT_OK(WriteBack(page));
    page->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [key, page] : shard->table) {
      (void)key;
      if (page->dirty) {
        TCOB_RETURN_NOT_OK(WriteBack(page));
        page->dirty = false;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Page* page) {
  StampPageChecksum(page->data);
  return disk_->WritePage(page->file_id, page->page_no, page->data);
}

Status BufferPool::Reset() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [key, page] : shard->table) {
      (void)key;
      if (page->pin_count != 0) {
        return Status::Internal("BufferPool::Reset with pinned pages");
      }
      if (page->dirty) {
        TCOB_RETURN_NOT_OK(WriteBack(page));
        page->dirty = false;
      }
      std::lock_guard<std::mutex> arena(arena_mu_);
      free_frames_.push_back(page);
    }
    shard->table.clear();
    shard->lru.clear();
    shard->lru_pos.clear();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  s.fetches = fetches_.value();
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.dirty_writebacks = dirty_writebacks_.value();
  return s;
}

void BufferPool::ResetStats() {
  fetches_.Reset();
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
  dirty_writebacks_.Reset();
}

void BufferPool::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterCounter("tcob_pool_fetches_total", &fetches_);
  registry->RegisterCounter("tcob_pool_hits_total", &hits_);
  registry->RegisterCounter("tcob_pool_misses_total", &misses_);
  registry->RegisterCounter("tcob_pool_evictions_total", &evictions_);
  registry->RegisterCounter("tcob_pool_dirty_writebacks_total",
                            &dirty_writebacks_);
  registry->RegisterGaugeFn("tcob_pool_capacity_pages", [this]() {
    return static_cast<int64_t>(capacity_);
  });
}

Page* BufferPool::TryAcquireArenaFrame() {
  std::lock_guard<std::mutex> arena(arena_mu_);
  if (!free_frames_.empty()) {
    Page* page = free_frames_.back();
    free_frames_.pop_back();
    return page;
  }
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Page>());
    return frames_.back().get();
  }
  return nullptr;
}

Result<Page*> BufferPool::EvictFrom(Shard& shard) {
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    Page* victim = *it;
    if (victim->pin_count > 0) continue;
    if (victim->dirty) {
      TCOB_RETURN_NOT_OK(WriteBack(victim));
      dirty_writebacks_.Increment();
    }
    shard.table.erase(Key(victim->file_id, victim->page_no));
    shard.lru.erase(shard.lru_pos[victim]);
    shard.lru_pos.erase(victim);
    evictions_.Increment();
    TraceEmit(trace_, TraceEventType::kPoolEvict, victim->page_no);
    return victim;
  }
  return nullptr;
}

Result<Page*> BufferPool::AcquireFrame(Shard& shard,
                                       std::unique_lock<std::mutex>& lock) {
  if (Page* frame = TryAcquireArenaFrame()) return frame;
  TCOB_ASSIGN_OR_RETURN(Page * own, EvictFrom(shard));
  if (own != nullptr) return own;
  // Own shard fully pinned: steal an unpinned frame from a sibling.
  // Latch discipline — release our latch first so that at most one shard
  // latch is ever held; the freed frame goes through the arena and the
  // caller re-checks its table after we re-latch.
  lock.unlock();
  bool stole = false;
  Status steal_error = Status::OK();
  for (std::unique_ptr<Shard>& other : shards_) {
    if (other.get() == &shard) continue;
    std::lock_guard<std::mutex> other_lock(other->mu);
    Result<Page*> victim = EvictFrom(*other);
    if (!victim.ok()) {
      steal_error = victim.status();
      break;
    }
    if (victim.value() != nullptr) {
      TraceEmit(trace_, TraceEventType::kPoolSteal, victim.value()->page_no);
      std::lock_guard<std::mutex> arena(arena_mu_);
      free_frames_.push_back(victim.value());
      stole = true;
      break;
    }
  }
  lock.lock();
  TCOB_RETURN_NOT_OK(steal_error);
  if (!stole) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all " + std::to_string(capacity_) +
        " frames pinned");
  }
  return nullptr;  // retry: arena now has a frame (unless raced away)
}

void BufferPool::TouchLru(Shard& shard, Page* page) {
  auto pos = shard.lru_pos.find(page);
  if (pos != shard.lru_pos.end()) shard.lru.erase(pos->second);
  shard.lru.push_front(page);
  shard.lru_pos[page] = shard.lru.begin();
}

}  // namespace tcob
