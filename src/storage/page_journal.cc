#include "storage/page_journal.h"

#include <cstring>
#include <mutex>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"

namespace tcob {

namespace {
/// Page record layout after the type byte.
constexpr uint64_t kPageHeader = 1 + 4;        // type, name_len
constexpr uint64_t kCommitHeader = 1 + 4;      // type, blob_len
constexpr uint32_t kMaxNameLen = 4096;         // sanity bound for the scan
constexpr uint32_t kMaxBlobLen = 1 << 20;      // sanity bound for the scan
}  // namespace

PageJournal::PageJournal(IoEnv* env, std::string dir)
    : env_(env), dir_(std::move(dir)), path_(dir_ + "/pages.journal") {}

Result<JournalRecovery> PageJournal::Open() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  TCOB_ASSIGN_OR_RETURN(file_, env_->OpenFile(path_));
  TCOB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::string bytes(size, '\0');
  if (size > 0) {
    TCOB_ASSIGN_OR_RETURN(size_t n, file_->ReadAt(0, bytes.data(), size));
    bytes.resize(n);
  }

  JournalRecovery rec;
  Index staged;
  Index committed;
  uint64_t pos = 0;
  uint64_t committed_end = 0;
  while (pos < bytes.size()) {
    const char* p = bytes.data() + pos;
    const uint64_t remaining = bytes.size() - pos;
    const uint8_t type = static_cast<uint8_t>(p[0]);
    if (type == kPageRecord) {
      if (remaining < kPageHeader) break;
      const uint32_t name_len = DecodeFixed32(p + 1);
      const uint64_t body = kPageHeader + name_len + 4 + kPageSize;
      if (name_len == 0 || name_len > kMaxNameLen || remaining < body + 4) {
        break;  // torn tail
      }
      if (DecodeFixed32(p + body) != Crc32c(p, body)) break;
      std::string name(p + kPageHeader, name_len);
      const PageNo page_no = DecodeFixed32(p + kPageHeader + name_len);
      staged[{std::move(name), page_no}] = pos + kPageHeader + name_len + 4;
      pos += body + 4;
    } else if (type == kCommitRecord) {
      if (remaining < kCommitHeader) break;
      const uint32_t blob_len = DecodeFixed32(p + 1);
      const uint64_t body = kCommitHeader + blob_len;
      if (blob_len > kMaxBlobLen || remaining < body + 4) break;
      if (DecodeFixed32(p + body) != Crc32c(p, body)) break;
      rec.committed = true;
      rec.meta_blob.assign(p + kCommitHeader, blob_len);
      committed = staged;
      pos += body + 4;
      committed_end = pos;
    } else {
      break;  // unknown type: torn or corrupt tail
    }
  }
  rec.discarded_bytes = bytes.size() - committed_end;
  rec.committed_pages = committed.size();
  index_ = std::move(committed);
  size_ = bytes.size();
  return rec;
}

Status PageJournal::Append(const std::string& file_name, PageNo page_no,
                           const char* data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string record;
  record.reserve(kPageHeader + file_name.size() + 4 + kPageSize + 4);
  record.push_back(static_cast<char>(kPageRecord));
  PutFixed32(&record, static_cast<uint32_t>(file_name.size()));
  record.append(file_name);
  PutFixed32(&record, page_no);
  record.append(data, kPageSize);
  PutFixed32(&record, Crc32c(record.data(), record.size()));
  TCOB_RETURN_NOT_OK(file_->WriteAt(size_, Slice(record)));
  index_[{file_name, page_no}] =
      size_ + kPageHeader + file_name.size() + 4;
  size_ += record.size();
  return Status::OK();
}

Result<bool> PageJournal::Lookup(const std::string& file_name, PageNo page_no,
                                 char* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find({file_name, page_no});
  if (it == index_.end()) return false;
  TCOB_ASSIGN_OR_RETURN(size_t n, file_->ReadAt(it->second, out, kPageSize));
  if (n != kPageSize) {
    return Status::Corruption("short journal read for " + file_name +
                              " page " + std::to_string(page_no));
  }
  return true;
}

Status PageJournal::Commit(const Slice& meta_blob) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string record;
  record.reserve(kCommitHeader + meta_blob.size() + 4);
  record.push_back(static_cast<char>(kCommitRecord));
  PutFixed32(&record, static_cast<uint32_t>(meta_blob.size()));
  record.append(meta_blob.data(), meta_blob.size());
  PutFixed32(&record, Crc32c(record.data(), record.size()));
  TCOB_RETURN_NOT_OK(file_->WriteAt(size_, Slice(record)));
  size_ += record.size();
  return file_->Sync();
}

Status PageJournal::ApplyCommitted() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Sorted iteration (by name, then page number) writes each file's
  // pages in ascending order, so extensions never leave holes.
  std::map<std::string, std::unique_ptr<IoFile>> files;
  std::vector<char> image(kPageSize);
  for (const auto& [key, offset] : index_) {
    const std::string& name = key.first;
    const PageNo page_no = key.second;
    auto it = files.find(name);
    if (it == files.end()) {
      TCOB_ASSIGN_OR_RETURN(std::unique_ptr<IoFile> f,
                            env_->OpenFile(dir_ + "/" + name));
      it = files.emplace(name, std::move(f)).first;
    }
    TCOB_ASSIGN_OR_RETURN(size_t n,
                          file_->ReadAt(offset, image.data(), kPageSize));
    if (n != kPageSize) {
      return Status::Corruption("short journal read for " + name + " page " +
                                std::to_string(page_no));
    }
    TCOB_RETURN_NOT_OK(
        it->second->WriteAt(static_cast<uint64_t>(page_no) * kPageSize,
                            Slice(image.data(), kPageSize)));
  }
  for (auto& [name, f] : files) {
    (void)name;
    TCOB_RETURN_NOT_OK(f->Sync());
  }
  return env_->SyncDir(dir_);
}

Status PageJournal::Reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  TCOB_RETURN_NOT_OK(file_->Truncate(0));
  TCOB_RETURN_NOT_OK(file_->Sync());
  size_ = 0;
  index_.clear();
  return Status::OK();
}

void PageJournal::DropFile(const std::string& file_name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.lower_bound({file_name, 0});
  while (it != index_.end() && it->first.first == file_name) {
    it = index_.erase(it);
  }
}

bool PageJournal::empty() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return size_ == 0;
}

}  // namespace tcob
