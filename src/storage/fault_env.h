#ifndef TCOB_STORAGE_FAULT_ENV_H_
#define TCOB_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "storage/io_env.h"

namespace tcob {

/// What survives a simulated power cut.
enum class CutMode {
  /// Only bytes made durable by Sync/SyncDir survive; everything written
  /// since the last sync of each file is dropped, and namespace changes
  /// (create/rename/remove) revert to the last SyncDir. This is the
  /// pessimistic POSIX model.
  kDropUnsynced,
  /// Every completed write survives (a well-behaved disk cache), but the
  /// write the cut lands on is torn at 512-byte sector granularity: only
  /// a prefix of its sectors reach the platter.
  kKeepAllTearLast,
};

/// An in-memory IoEnv that injects failures deterministically. Tests use
/// it to fail the Nth read/write/sync with EIO, tear a specific write at
/// sector granularity, and simulate a power cut after the Nth I/O event.
///
/// Durability model: each file is an inode with a `current` byte string
/// (what reads observe) and a `durable` byte string (what survives a
/// power cut). WriteAt/Truncate touch only `current`; Sync copies
/// `current` to `durable` and also makes the file's directory entry
/// durable (matching ext4's fsync behaviour); SyncDir makes the names in
/// a directory durable without touching file contents. Rename and remove
/// affect the live namespace immediately but the durable namespace only
/// at the next SyncDir.
///
/// After a power cut fires, every I/O call returns IOError until
/// Revive() — the test must destroy the "crashed" database instance
/// first, so its destructor's best-effort flushes cannot leak post-crash
/// bytes into the surviving image, then Revive() and reopen.
///
/// Events (counted for PowerCutAfterEvents) are writes, truncates,
/// syncs, and directory syncs. Reads are counted separately and are
/// never cut points.
class FaultInjectingIoEnv final : public IoEnv {
 public:
  static constexpr size_t kSectorSize = 512;

  FaultInjectingIoEnv() = default;

  // --- IoEnv interface ------------------------------------------------
  Result<std::unique_ptr<IoFile>> OpenFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

  // --- Fault programming (counts are 1-based and absolute) -------------
  /// Fails the nth ReadAt since construction with IOError, once.
  void FailReadAt(uint64_t nth);
  /// Fails the next `count` ReadAt calls with a *transient*-classified
  /// IOError ("injected transient EIO ..."), which RetryingIoEnv retries.
  /// Counts down as the failures fire; additive with FailReadAt.
  void FailTransientReads(uint64_t count);
  /// Fails the nth WriteAt with IOError before any bytes are applied.
  void FailWriteAt(uint64_t nth);
  /// Fails the nth Sync/SyncDir with IOError; nothing becomes durable.
  void FailSyncAt(uint64_t nth);
  /// Tears the nth WriteAt: only its first `keep_sectors` 512-byte
  /// sectors are applied, then IOError.
  void TearWriteAt(uint64_t nth, size_t keep_sectors);
  /// Simulates a power cut at the nth I/O event (write/truncate/sync).
  /// In kDropUnsynced the event completes and then the cut fires; in
  /// kKeepAllTearLast a write event is torn mid-flight.
  void PowerCutAfterEvents(uint64_t nth, CutMode mode);
  /// Clears all programmed (not-yet-fired) faults.
  void ClearFaults();
  /// Clears the power-cut state: I/O works again against the surviving
  /// bytes. Counters keep running.
  void Revive();

  // --- Introspection ---------------------------------------------------
  bool cut_fired() const;
  uint64_t events() const;
  uint64_t reads() const;
  uint64_t writes() const;
  uint64_t syncs() const;

 private:
  friend class FaultIoFile;

  struct Inode {
    std::string current;
    std::string durable;
  };
  using InodePtr = std::shared_ptr<Inode>;

  /// Applies the power cut under mu_. In kDropUnsynced mode every inode
  /// reverts to its durable image and the namespace reverts to the
  /// durable namespace.
  void FireCutLocked();

  mutable std::mutex mu_;
  std::map<std::string, InodePtr> current_ns_;
  std::map<std::string, InodePtr> durable_ns_;
  std::set<std::string> dirs_;

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t events_ = 0;

  uint64_t fail_read_at_ = 0;
  uint64_t transient_read_failures_ = 0;
  uint64_t fail_write_at_ = 0;
  uint64_t fail_sync_at_ = 0;
  uint64_t tear_write_at_ = 0;
  size_t tear_keep_sectors_ = 0;
  uint64_t cut_after_events_ = 0;
  CutMode cut_mode_ = CutMode::kDropUnsynced;
  bool cut_fired_ = false;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_FAULT_ENV_H_
