#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/coding.h"
#include "storage/slotted_page.h"

namespace tcob {

namespace {

// Record kinds inside a slot.
constexpr char kKindInline = 0;
constexpr char kKindOverflowStub = 1;

// Overflow page: [type:1][pad:1][len:2][next:4][payload...].
constexpr uint32_t kOverflowHeader = 8;
constexpr uint32_t kOverflowCapacity = kPageDataSize - kOverflowHeader;

// Meta page field offsets.
constexpr uint32_t kMetaMagicOff = 8;
constexpr uint32_t kMetaFirstDataOff = 12;
constexpr uint32_t kMetaLastDataOff = 16;
constexpr uint32_t kMetaFreeOverflowOff = 20;
constexpr uint32_t kMetaRecordCountOff = 24;
constexpr uint32_t kHeapMagic = 0x54434f42;  // "TCOB"

// A data page is listed as "open" while it has at least this much room.
constexpr uint32_t kOpenThreshold = 128;

}  // namespace

Result<std::unique_ptr<HeapFile>> HeapFile::Open(BufferPool* pool,
                                                 const std::string& name) {
  TCOB_ASSIGN_OR_RETURN(FileId file, pool->disk()->OpenFile(name));
  std::unique_ptr<HeapFile> heap(new HeapFile(pool, file));
  TCOB_RETURN_NOT_OK(heap->LoadOrFormat());
  return heap;
}

Status HeapFile::LoadOrFormat() {
  TCOB_ASSIGN_OR_RETURN(PageNo pages, pool_->disk()->NumPages(file_));
  if (pages == 0) {
    TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->NewPage(file_));
    PageGuard guard(pool_, meta);
    memset(meta->data, 0, kPageSize);
    meta->data[0] = static_cast<char>(PageType::kMeta);
    EncodeFixed32(meta->data + kMetaMagicOff, kHeapMagic);
    EncodeFixed32(meta->data + kMetaFirstDataOff, kInvalidPageNo);
    EncodeFixed32(meta->data + kMetaLastDataOff, kInvalidPageNo);
    EncodeFixed32(meta->data + kMetaFreeOverflowOff, kInvalidPageNo);
    EncodeFixed64(meta->data + kMetaRecordCountOff, 0);
    guard.MarkDirty();
    return Status::OK();
  }
  TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(file_, 0));
  PageGuard guard(pool_, meta);
  if (DecodeFixed32(meta->data + kMetaMagicOff) != kHeapMagic) {
    return Status::Corruption("heap file meta page magic mismatch");
  }
  first_data_page_ = DecodeFixed32(meta->data + kMetaFirstDataOff);
  last_data_page_ = DecodeFixed32(meta->data + kMetaLastDataOff);
  free_overflow_head_ = DecodeFixed32(meta->data + kMetaFreeOverflowOff);
  record_count_ = DecodeFixed64(meta->data + kMetaRecordCountOff);
  // Rebuild the open-page hints by walking the data chain.
  PageNo cur = first_data_page_;
  while (cur != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard g(pool_, p);
    SlottedPage sp(p->data);
    if (sp.FreeSpaceAfterCompaction() >= kOpenThreshold) {
      open_pages_.push_back(cur);
    }
    cur = sp.next_page();
  }
  return Status::OK();
}

Status HeapFile::SaveMeta() {
  TCOB_ASSIGN_OR_RETURN(Page * meta, pool_->FetchPage(file_, 0));
  PageGuard guard(pool_, meta);
  EncodeFixed32(meta->data + kMetaFirstDataOff, first_data_page_);
  EncodeFixed32(meta->data + kMetaLastDataOff, last_data_page_);
  EncodeFixed32(meta->data + kMetaFreeOverflowOff, free_overflow_head_);
  EncodeFixed64(meta->data + kMetaRecordCountOff, record_count_);
  guard.MarkDirty();
  return Status::OK();
}

Result<Rid> HeapFile::Insert(const Slice& record) {
  std::string slot_bytes;
  if (record.size() <= kInlineLimit) {
    slot_bytes.push_back(kKindInline);
    slot_bytes.append(record.data(), record.size());
  } else {
    TCOB_ASSIGN_OR_RETURN(PageNo first, WriteOverflowChain(record));
    slot_bytes.push_back(kKindOverflowStub);
    PutFixed32(&slot_bytes, first);
    PutFixed32(&slot_bytes, static_cast<uint32_t>(record.size()));
  }
  TCOB_ASSIGN_OR_RETURN(Rid rid, InsertStub(slot_bytes));
  ++record_count_;
  TCOB_RETURN_NOT_OK(SaveMeta());
  return rid;
}

Result<Rid> HeapFile::InsertStub(const Slice& stub_bytes) {
  // Try hinted open pages, newest hint first.
  while (!open_pages_.empty()) {
    PageNo pno = open_pages_.back();
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, pno));
    PageGuard guard(pool_, p);
    SlottedPage sp(p->data);
    Result<uint16_t> slot = sp.Insert(stub_bytes);
    if (slot.ok()) {
      guard.MarkDirty();
      if (sp.FreeSpaceAfterCompaction() < kOpenThreshold) {
        open_pages_.pop_back();
      }
      return Rid(pno, slot.value());
    }
    if (slot.status().code() != StatusCode::kResourceExhausted) {
      return slot.status();
    }
    open_pages_.pop_back();
  }
  // Grow the file with a fresh data page.
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->NewPage(file_));
  PageGuard guard(pool_, p);
  SlottedPage::Init(p->data, PageType::kData);
  SlottedPage sp(p->data);
  TCOB_ASSIGN_OR_RETURN(uint16_t slot, sp.Insert(stub_bytes));
  guard.MarkDirty();
  PageNo pno = p->page_no;
  if (last_data_page_ == kInvalidPageNo) {
    first_data_page_ = last_data_page_ = pno;
  } else {
    TCOB_ASSIGN_OR_RETURN(Page * prev, pool_->FetchPage(file_, last_data_page_));
    PageGuard prev_guard(pool_, prev);
    SlottedPage(prev->data).set_next_page(pno);
    prev_guard.MarkDirty();
    last_data_page_ = pno;
  }
  open_pages_.push_back(pno);
  return Rid(pno, slot);
}

Result<std::string> HeapFile::MaterializeRecord(const Slice& raw) const {
  if (raw.empty()) return Status::Corruption("empty heap record");
  if (raw[0] == kKindInline) {
    return std::string(raw.data() + 1, raw.size() - 1);
  }
  if (raw[0] == kKindOverflowStub) {
    if (raw.size() != 9) return Status::Corruption("bad overflow stub size");
    PageNo first = DecodeFixed32(raw.data() + 1);
    uint32_t total = DecodeFixed32(raw.data() + 5);
    return ReadOverflowChain(first, total);
  }
  return Status::Corruption("unknown heap record kind");
}

Result<std::string> HeapFile::Get(const Rid& rid) const {
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, rid.page_no));
  PageGuard guard(pool_, p);
  SlottedPage sp(p->data);
  if (sp.type() != PageType::kData) {
    return Status::Corruption("rid does not point at a data page");
  }
  TCOB_ASSIGN_OR_RETURN(Slice raw, sp.Get(rid.slot));
  return MaterializeRecord(raw);
}

Result<Rid> HeapFile::Update(const Rid& rid, const Slice& record) {
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, rid.page_no));
  PageGuard guard(pool_, p);
  SlottedPage sp(p->data);
  TCOB_ASSIGN_OR_RETURN(Slice raw, sp.Get(rid.slot));
  // Free a previous overflow chain, if any, before rewriting.
  PageNo old_chain = kInvalidPageNo;
  if (raw[0] == kKindOverflowStub) {
    old_chain = DecodeFixed32(raw.data() + 1);
  }

  std::string slot_bytes;
  if (record.size() <= kInlineLimit) {
    slot_bytes.push_back(kKindInline);
    slot_bytes.append(record.data(), record.size());
  } else {
    TCOB_ASSIGN_OR_RETURN(PageNo first, WriteOverflowChain(record));
    slot_bytes.push_back(kKindOverflowStub);
    PutFixed32(&slot_bytes, first);
    PutFixed32(&slot_bytes, static_cast<uint32_t>(record.size()));
  }

  Status in_place = sp.Update(rid.slot, slot_bytes);
  Rid result = rid;
  if (in_place.ok()) {
    guard.MarkDirty();
  } else if (in_place.code() == StatusCode::kResourceExhausted) {
    // Relocate: drop the slot here, insert elsewhere.
    TCOB_RETURN_NOT_OK(sp.Delete(rid.slot));
    guard.MarkDirty();
    if (std::find(open_pages_.begin(), open_pages_.end(), rid.page_no) ==
        open_pages_.end()) {
      open_pages_.push_back(rid.page_no);
    }
    guard.Release();
    TCOB_ASSIGN_OR_RETURN(result, InsertStub(slot_bytes));
  } else {
    return in_place;
  }
  if (old_chain != kInvalidPageNo) {
    TCOB_RETURN_NOT_OK(FreeOverflowChain(old_chain));
  }
  TCOB_RETURN_NOT_OK(SaveMeta());
  return result;
}

Status HeapFile::Delete(const Rid& rid) {
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, rid.page_no));
  PageGuard guard(pool_, p);
  SlottedPage sp(p->data);
  TCOB_ASSIGN_OR_RETURN(Slice raw, sp.Get(rid.slot));
  PageNo chain = kInvalidPageNo;
  if (raw[0] == kKindOverflowStub) chain = DecodeFixed32(raw.data() + 1);
  TCOB_RETURN_NOT_OK(sp.Delete(rid.slot));
  guard.MarkDirty();
  guard.Release();
  if (std::find(open_pages_.begin(), open_pages_.end(), rid.page_no) ==
      open_pages_.end()) {
    open_pages_.push_back(rid.page_no);
  }
  if (chain != kInvalidPageNo) TCOB_RETURN_NOT_OK(FreeOverflowChain(chain));
  --record_count_;
  return SaveMeta();
}

Status HeapFile::Scan(
    const std::function<Result<bool>(const Rid&, const Slice&)>& fn) const {
  PageNo cur = first_data_page_;
  while (cur != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard guard(pool_, p);
    SlottedPage sp(p->data);
    uint16_t n = sp.slot_count();
    bool keep_going = true;
    for (uint16_t s = 0; s < n && keep_going; ++s) {
      Result<Slice> raw = sp.Get(s);
      if (!raw.ok()) {
        if (raw.status().IsNotFound()) continue;  // vacant slot
        return raw.status();
      }
      TCOB_ASSIGN_OR_RETURN(std::string rec, MaterializeRecord(raw.value()));
      TCOB_ASSIGN_OR_RETURN(keep_going, fn(Rid(cur, s), Slice(rec)));
    }
    if (!keep_going) return Status::OK();
    cur = sp.next_page();
  }
  return Status::OK();
}

Result<PageNo> HeapFile::AllocOverflowPage() {
  if (free_overflow_head_ != kInvalidPageNo) {
    PageNo pno = free_overflow_head_;
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, pno));
    PageGuard guard(pool_, p);
    free_overflow_head_ = DecodeFixed32(p->data + 4);
    return pno;
  }
  TCOB_ASSIGN_OR_RETURN(Page * p, pool_->NewPage(file_));
  PageGuard guard(pool_, p);
  return p->page_no;
}

Result<PageNo> HeapFile::WriteOverflowChain(const Slice& record) {
  // Allocate and fill chunks front to back.
  PageNo first = kInvalidPageNo;
  PageNo prev = kInvalidPageNo;
  size_t off = 0;
  while (off < record.size() || first == kInvalidPageNo) {
    size_t chunk = std::min<size_t>(kOverflowCapacity, record.size() - off);
    TCOB_ASSIGN_OR_RETURN(PageNo pno, AllocOverflowPage());
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, pno));
    PageGuard guard(pool_, p);
    memset(p->data, 0, kOverflowHeader);
    p->data[0] = static_cast<char>(PageType::kOverflow);
    EncodeFixed16(p->data + 2, static_cast<uint16_t>(chunk));
    EncodeFixed32(p->data + 4, kInvalidPageNo);
    memcpy(p->data + kOverflowHeader, record.data() + off, chunk);
    guard.MarkDirty();
    guard.Release();
    if (prev != kInvalidPageNo) {
      TCOB_ASSIGN_OR_RETURN(Page * pp, pool_->FetchPage(file_, prev));
      PageGuard pg(pool_, pp);
      EncodeFixed32(pp->data + 4, pno);
      pg.MarkDirty();
    } else {
      first = pno;
    }
    prev = pno;
    off += chunk;
    if (record.size() == 0) break;
  }
  return first;
}

Status HeapFile::FreeOverflowChain(PageNo first) {
  PageNo cur = first;
  while (cur != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard guard(pool_, p);
    if (static_cast<PageType>(static_cast<uint8_t>(p->data[0])) !=
        PageType::kOverflow) {
      return Status::Corruption("free of a non-overflow page");
    }
    PageNo next = DecodeFixed32(p->data + 4);
    p->data[0] = static_cast<char>(PageType::kFree);
    EncodeFixed32(p->data + 4, free_overflow_head_);
    guard.MarkDirty();
    free_overflow_head_ = cur;
    cur = next;
  }
  return Status::OK();
}

Result<std::string> HeapFile::ReadOverflowChain(PageNo first,
                                                uint32_t total_len) const {
  std::string out;
  out.reserve(total_len);
  PageNo cur = first;
  while (cur != kInvalidPageNo && out.size() < total_len) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard guard(pool_, p);
    if (static_cast<PageType>(static_cast<uint8_t>(p->data[0])) !=
        PageType::kOverflow) {
      return Status::Corruption("broken overflow chain");
    }
    uint16_t len = DecodeFixed16(p->data + 2);
    out.append(p->data + kOverflowHeader, len);
    cur = DecodeFixed32(p->data + 4);
  }
  if (out.size() != total_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return out;
}

Result<HeapFileStats> HeapFile::Stats() const {
  HeapFileStats stats;
  stats.record_count = record_count_;
  TCOB_ASSIGN_OR_RETURN(stats.total_pages, pool_->disk()->NumPages(file_));
  PageNo cur = first_data_page_;
  while (cur != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard guard(pool_, p);
    ++stats.data_pages;
    cur = SlottedPage(p->data).next_page();
  }
  // Everything that is neither meta, data, nor on the free list is overflow.
  uint64_t free_pages = 0;
  cur = free_overflow_head_;
  while (cur != kInvalidPageNo) {
    TCOB_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(file_, cur));
    PageGuard guard(pool_, p);
    ++free_pages;
    cur = DecodeFixed32(p->data + 4);
  }
  stats.overflow_pages =
      stats.total_pages - 1 - stats.data_pages - free_pages;
  return stats;
}

}  // namespace tcob
