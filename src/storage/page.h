#ifndef TCOB_STORAGE_PAGE_H_
#define TCOB_STORAGE_PAGE_H_

#include <cstdint>

namespace tcob {

/// Size of every on-disk page in bytes.
inline constexpr uint32_t kPageSize = 4096;

/// The last 4 bytes of every page hold a little-endian CRC-32C of the
/// preceding kPageDataSize bytes. The buffer pool stamps the footer on
/// every writeback and verifies it on every miss read; page formats
/// (slotted pages, B+-tree nodes, overflow chains, file metadata) may
/// only use the first kPageDataSize bytes.
inline constexpr uint32_t kPageChecksumSize = 4;
inline constexpr uint32_t kPageDataSize = kPageSize - kPageChecksumSize;

/// Page number within a single file.
using PageNo = uint32_t;
inline constexpr PageNo kInvalidPageNo = 0xFFFFFFFFu;

/// Handle to an open file managed by the DiskManager.
using FileId = uint16_t;
inline constexpr FileId kInvalidFileId = 0xFFFFu;

/// A buffer-pool frame: one page's worth of bytes plus bookkeeping.
///
/// Frames are owned by the BufferPool; callers receive pinned pointers and
/// must Unpin when done. The pin/dirty bookkeeping is guarded by the
/// owning pool shard's latch; page *contents* carry no latch — only
/// readers run concurrently (writes stay single-threaded per Database).
struct Page {
  FileId file_id = kInvalidFileId;
  PageNo page_no = kInvalidPageNo;
  int pin_count = 0;
  bool dirty = false;
  char data[kPageSize];
};

/// Record identifier within one heap file: page number + slot index.
struct Rid {
  PageNo page_no = kInvalidPageNo;
  uint16_t slot = 0;

  Rid() = default;
  Rid(PageNo p, uint16_t s) : page_no(p), slot(s) {}

  bool valid() const { return page_no != kInvalidPageNo; }

  /// Packs into 48 significant bits; used as B+-tree payload.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_no) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid(static_cast<PageNo>(v >> 16), static_cast<uint16_t>(v & 0xffff));
  }
};

inline bool operator==(const Rid& a, const Rid& b) {
  return a.page_no == b.page_no && a.slot == b.slot;
}
inline bool operator!=(const Rid& a, const Rid& b) { return !(a == b); }

/// Computes and stores the CRC-32C footer over buf[0, kPageDataSize).
void StampPageChecksum(char* buf);

/// True when the stored footer matches the page contents.
bool PageChecksumOk(const char* buf);

}  // namespace tcob

#endif  // TCOB_STORAGE_PAGE_H_
