#ifndef TCOB_STORAGE_DISK_MANAGER_H_
#define TCOB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/io_env.h"
#include "storage/page.h"
#include "storage/page_journal.h"

namespace tcob {

/// Cumulative physical I/O counters (monotonic since open).
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// Owns the database's files and performs page-granular physical I/O.
///
/// Each file is a flat array of kPageSize pages addressed by PageNo.
/// All I/O goes through the IoEnv passed at Open — the POSIX filesystem
/// in production, a FaultInjectingIoEnv in fault tests — so benchmarks
/// can observe exact read/write counts and tests can inject failures.
/// Reads are thread-safe (positional ReadAt under a shared lock on the
/// file table); operations that change file metadata — OpenFile,
/// AllocatePage, Truncate — take the exclusive lock and are driven by
/// the single-threaded write path.
///
/// DiskManager moves whole raw pages; it neither stamps nor verifies
/// the per-page checksum footer — that is the BufferPool's job, so a
/// direct ReadPage (e.g. VerifyIntegrity's scan) sees the bytes as-is.
class DiskManager {
 public:
  /// Creates a manager rooted at directory `dir` (created if missing),
  /// performing I/O through `env`. With a non-null `journal`, page
  /// writes and allocations are redirected into it (reads consult it
  /// first) so the data files only change in place when the journal is
  /// applied at a checkpoint — see PageJournal. The journal is not
  /// owned and must already be recovered (Open + ApplyCommitted +
  /// Reset) before any file is opened through this manager.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& dir,
                                                   IoEnv* env,
                                                   PageJournal* journal =
                                                       nullptr);
  /// Convenience overload using the default POSIX environment.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& dir) {
    return Open(dir, IoEnv::Default());
  }

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) `name` under the root directory.
  Result<FileId> OpenFile(const std::string& name);

  /// Reads page `page_no` of `file` into `buf` (kPageSize bytes).
  Status ReadPage(FileId file, PageNo page_no, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `page_no` of `file`.
  Status WritePage(FileId file, PageNo page_no, const char* buf);

  /// Extends `file` by one zeroed page (with a valid checksum footer,
  /// so an unwritten page still verifies) and returns its number.
  Result<PageNo> AllocatePage(FileId file);

  /// Number of pages currently in `file`.
  Result<PageNo> NumPages(FileId file);

  /// fsyncs every open file.
  Status SyncAll();

  /// fsyncs the root directory's entries (new files survive power cut).
  Status SyncDir();

  /// Truncates `file` to zero pages (used by WAL checkpointing).
  Status Truncate(FileId file);

  /// Name (relative to the root directory) of an open file.
  Result<std::string> FileName(FileId file) const;

  /// Names of every open file, indexed by FileId.
  std::vector<std::string> FileNames() const;

  DiskStats stats() const {
    DiskStats s;
    s.reads = reads_.value();
    s.writes = writes_.value();
    s.allocations = allocations_.value();
    return s;
  }
  void ResetStats() {
    reads_.Reset();
    writes_.Reset();
    allocations_.Reset();
  }

  /// Publishes the I/O counters into `registry` under tcob_disk_*.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("tcob_disk_reads_total", &reads_);
    registry->RegisterCounter("tcob_disk_writes_total", &writes_);
    registry->RegisterCounter("tcob_disk_allocations_total", &allocations_);
  }

  const std::string& dir() const { return dir_; }
  IoEnv* env() const { return env_; }

 private:
  DiskManager(std::string dir, IoEnv* env, PageJournal* journal)
      : dir_(std::move(dir)), env_(env), journal_(journal) {}

  struct OpenFileState {
    std::string name;
    std::unique_ptr<IoFile> file;
    PageNo num_pages = 0;
  };

  std::string dir_;
  IoEnv* env_;
  PageJournal* journal_ = nullptr;  // not owned; null = direct I/O
  // Guards files_ (growth on OpenFile, num_pages on Allocate/Truncate);
  // page reads hold it shared around the positional ReadAt.
  mutable std::shared_mutex files_mu_;
  std::vector<OpenFileState> files_;
  Counter reads_;
  Counter writes_;
  Counter allocations_;
};

}  // namespace tcob

#endif  // TCOB_STORAGE_DISK_MANAGER_H_
