#ifndef TCOB_STORAGE_DISK_MANAGER_H_
#define TCOB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace tcob {

/// Cumulative physical I/O counters (monotonic since open).
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// Owns the database's files and performs page-granular physical I/O.
///
/// Each file is a flat array of kPageSize pages addressed by PageNo.
/// All I/O goes through here so that benchmarks can observe exact read /
/// write counts. Reads are thread-safe (positional pread under a shared
/// lock on the file table); operations that change file metadata —
/// OpenFile, AllocatePage, Truncate — take the exclusive lock and are
/// driven by the single-threaded write path.
class DiskManager {
 public:
  /// Creates a manager rooted at directory `dir` (created if missing).
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& dir);

  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) `name` under the root directory.
  Result<FileId> OpenFile(const std::string& name);

  /// Reads page `page_no` of `file` into `buf` (kPageSize bytes).
  Status ReadPage(FileId file, PageNo page_no, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `page_no` of `file`.
  Status WritePage(FileId file, PageNo page_no, const char* buf);

  /// Extends `file` by one zeroed page and returns its number.
  Result<PageNo> AllocatePage(FileId file);

  /// Number of pages currently in `file`.
  Result<PageNo> NumPages(FileId file);

  /// fsyncs every open file.
  Status SyncAll();

  /// Truncates `file` to zero pages (used by WAL checkpointing).
  Status Truncate(FileId file);

  DiskStats stats() const {
    DiskStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.writes = writes_.load(std::memory_order_relaxed);
    s.allocations = allocations_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    allocations_.store(0, std::memory_order_relaxed);
  }

  const std::string& dir() const { return dir_; }

 private:
  explicit DiskManager(std::string dir) : dir_(std::move(dir)) {}

  struct OpenFileState {
    std::string path;
    int fd = -1;
    PageNo num_pages = 0;
  };

  std::string dir_;
  // Guards files_ (growth on OpenFile, num_pages on Allocate/Truncate);
  // page reads hold it shared around the positional pread.
  mutable std::shared_mutex files_mu_;
  std::vector<OpenFileState> files_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocations_{0};
};

}  // namespace tcob

#endif  // TCOB_STORAGE_DISK_MANAGER_H_
