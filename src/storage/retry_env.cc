#include "storage/retry_env.h"

#include <chrono>
#include <thread>

namespace tcob {

namespace {

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

bool IsTransientIoError(const Status& s) {
  if (!s.IsIOError()) return false;
  const std::string& msg = s.message();
  // strerror() spellings of the retryable errno classes, plus the
  // explicit marker the fault injector uses.
  return Contains(msg, "transient") ||
         Contains(msg, "Resource temporarily unavailable") ||  // EAGAIN
         Contains(msg, "Device or resource busy") ||           // EBUSY
         Contains(msg, "Connection timed out") ||              // ETIMEDOUT
         Contains(msg, "No buffer space available") ||         // ENOBUFS
         Contains(msg, "Interrupted system call");             // EINTR
}

void RetryingIoEnv::BackOff(uint32_t attempt) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  TraceEmit(trace_, TraceEventType::kIoRetry, attempt);
  uint64_t backoff = policy_.base_backoff_micros;
  for (uint32_t i = 1; i < attempt && backoff < policy_.max_backoff_micros;
       ++i) {
    backoff *= 2;
  }
  if (backoff > policy_.max_backoff_micros) {
    backoff = policy_.max_backoff_micros;
  }
  // +-25% jitter from a shared LCG, so concurrent retriers spread out.
  uint64_t r = jitter_state_.fetch_add(0x2545f4914f6cdd1dull,
                                       std::memory_order_relaxed);
  r ^= r >> 33;
  uint64_t jitter = backoff / 2 == 0 ? 0 : r % (backoff / 2);
  uint64_t sleep_us = backoff - backoff / 4 + jitter;
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

/// A file handle whose read-side calls retry through the env's policy.
class RetryingIoFile final : public IoFile {
 public:
  RetryingIoFile(RetryingIoEnv* env, std::unique_ptr<IoFile> base)
      : env_(env), base_(std::move(base)) {}

  Result<size_t> ReadAt(uint64_t off, char* buf, size_t n) override {
    Result<size_t> r = base_->ReadAt(off, buf, n);
    for (uint32_t attempt = 1;
         !r.ok() && attempt < env_->policy_.max_attempts &&
         IsTransientIoError(r.status());
         ++attempt) {
      env_->BackOff(attempt);
      r = base_->ReadAt(off, buf, n);
    }
    return r;
  }

  Status WriteAt(uint64_t off, const Slice& data) override {
    return base_->WriteAt(off, data);
  }

  Status Sync() override { return base_->Sync(); }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

  Result<uint64_t> Size() const override {
    Result<uint64_t> r = base_->Size();
    for (uint32_t attempt = 1;
         !r.ok() && attempt < env_->policy_.max_attempts &&
         IsTransientIoError(r.status());
         ++attempt) {
      env_->BackOff(attempt);
      r = base_->Size();
    }
    return r;
  }

 private:
  RetryingIoEnv* env_;
  std::unique_ptr<IoFile> base_;
};

Result<std::unique_ptr<IoFile>> RetryingIoEnv::OpenFile(
    const std::string& path) {
  Result<std::unique_ptr<IoFile>> r = base_->OpenFile(path);
  for (uint32_t attempt = 1; !r.ok() && attempt < policy_.max_attempts &&
                             IsTransientIoError(r.status());
       ++attempt) {
    BackOff(attempt);
    r = base_->OpenFile(path);
  }
  if (!r.ok()) return r.status();
  return std::unique_ptr<IoFile>(
      new RetryingIoFile(this, std::move(r).value()));
}

Status RetryingIoEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Result<bool> RetryingIoEnv::FileExists(const std::string& path) {
  Result<bool> r = base_->FileExists(path);
  for (uint32_t attempt = 1; !r.ok() && attempt < policy_.max_attempts &&
                             IsTransientIoError(r.status());
       ++attempt) {
    BackOff(attempt);
    r = base_->FileExists(path);
  }
  return r;
}

Status RetryingIoEnv::RenameFile(const std::string& from,
                                 const std::string& to) {
  return base_->RenameFile(from, to);
}

Status RetryingIoEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status RetryingIoEnv::SyncDir(const std::string& path) {
  return base_->SyncDir(path);
}

Result<std::vector<std::string>> RetryingIoEnv::ListDir(
    const std::string& path) {
  Result<std::vector<std::string>> r = base_->ListDir(path);
  for (uint32_t attempt = 1; !r.ok() && attempt < policy_.max_attempts &&
                             IsTransientIoError(r.status());
       ++attempt) {
    BackOff(attempt);
    r = base_->ListDir(path);
  }
  return r;
}

}  // namespace tcob
