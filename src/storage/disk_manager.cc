#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>

namespace tcob {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + strerror(errno));
}

}  // namespace

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) != 0) {
    if (mkdir(dir.c_str(), 0755) != 0) {
      return Errno("mkdir", dir);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument(dir + " exists and is not a directory");
  }
  return std::unique_ptr<DiskManager>(new DiskManager(dir));
}

DiskManager::~DiskManager() {
  for (OpenFileState& f : files_) {
    if (f.fd >= 0) close(f.fd);
  }
}

Result<FileId> DiskManager::OpenFile(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].path == name) return static_cast<FileId>(i);
  }
  std::string path = dir_ + "/" + name;
  int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  off_t size = lseek(fd, 0, SEEK_END);
  if (size < 0) {
    close(fd);
    return Errno("lseek", path);
  }
  OpenFileState state;
  state.path = name;
  state.fd = fd;
  state.num_pages = static_cast<PageNo>(size / kPageSize);
  files_.push_back(state);
  return static_cast<FileId>(files_.size() - 1);
}

Status DiskManager::ReadPage(FileId file, PageNo page_no, char* buf) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  const OpenFileState& f = files_[file];
  if (page_no >= f.num_pages) {
    return Status::OutOfRange("read past end of " + f.path + ": page " +
                              std::to_string(page_no));
  }
  ssize_t n = pread(f.fd, buf, kPageSize,
                    static_cast<off_t>(page_no) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("pread", f.path);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(FileId file, PageNo page_no, const char* buf) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  const OpenFileState& f = files_[file];
  if (page_no >= f.num_pages) {
    return Status::OutOfRange("write past end of " + f.path);
  }
  ssize_t n = pwrite(f.fd, buf, kPageSize,
                     static_cast<off_t>(page_no) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("pwrite", f.path);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<PageNo> DiskManager::AllocatePage(FileId file) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  OpenFileState& f = files_[file];
  PageNo page_no = f.num_pages;
  char zeros[kPageSize];
  memset(zeros, 0, sizeof(zeros));
  ssize_t n = pwrite(f.fd, zeros, kPageSize,
                     static_cast<off_t>(page_no) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) return Errno("extend", f.path);
  ++f.num_pages;
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return page_no;
}

Result<PageNo> DiskManager::NumPages(FileId file) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  return files_[file].num_pages;
}

Status DiskManager::SyncAll() {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  for (const OpenFileState& f : files_) {
    if (f.fd >= 0 && fsync(f.fd) != 0) return Errno("fsync", f.path);
  }
  return Status::OK();
}

Status DiskManager::Truncate(FileId file) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  OpenFileState& f = files_[file];
  if (ftruncate(f.fd, 0) != 0) return Errno("ftruncate", f.path);
  f.num_pages = 0;
  return Status::OK();
}

}  // namespace tcob
