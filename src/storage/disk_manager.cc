#include "storage/disk_manager.h"

#include <cstring>
#include <memory>
#include <mutex>

namespace tcob {

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& dir,
                                                       IoEnv* env,
                                                       PageJournal* journal) {
  TCOB_RETURN_NOT_OK(env->CreateDir(dir));
  return std::unique_ptr<DiskManager>(new DiskManager(dir, env, journal));
}

DiskManager::~DiskManager() = default;

Result<FileId> DiskManager::OpenFile(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return static_cast<FileId>(i);
  }
  std::string path = dir_ + "/" + name;
  TCOB_ASSIGN_OR_RETURN(std::unique_ptr<IoFile> file, env_->OpenFile(path));
  TCOB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  OpenFileState state;
  state.name = name;
  state.file = std::move(file);
  state.num_pages = static_cast<PageNo>(size / kPageSize);
  files_.push_back(std::move(state));
  return static_cast<FileId>(files_.size() - 1);
}

Status DiskManager::ReadPage(FileId file, PageNo page_no, char* buf) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  const OpenFileState& f = files_[file];
  if (page_no >= f.num_pages) {
    return Status::OutOfRange("read past end of " + f.name + ": page " +
                              std::to_string(page_no));
  }
  if (journal_ != nullptr) {
    // The journal holds the freshest image of any page written since the
    // last checkpoint; the data file lags until the journal is applied.
    TCOB_ASSIGN_OR_RETURN(bool journaled,
                          journal_->Lookup(f.name, page_no, buf));
    if (journaled) {
      reads_.Increment();
      return Status::OK();
    }
  }
  TCOB_ASSIGN_OR_RETURN(
      size_t n,
      f.file->ReadAt(static_cast<uint64_t>(page_no) * kPageSize, buf,
                     kPageSize));
  if (n != kPageSize) {
    // The file ends mid-page: a torn extension that never completed.
    return Status::Corruption("short page read from " + f.name + " page " +
                              std::to_string(page_no) + ": got " +
                              std::to_string(n) + " of " +
                              std::to_string(kPageSize) + " bytes");
  }
  reads_.Increment();
  return Status::OK();
}

Status DiskManager::WritePage(FileId file, PageNo page_no, const char* buf) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  const OpenFileState& f = files_[file];
  if (page_no >= f.num_pages) {
    return Status::OutOfRange("write past end of " + f.name);
  }
  if (journal_ != nullptr) {
    TCOB_RETURN_NOT_OK(journal_->Append(f.name, page_no, buf));
  } else {
    TCOB_RETURN_NOT_OK(f.file->WriteAt(
        static_cast<uint64_t>(page_no) * kPageSize, Slice(buf, kPageSize)));
  }
  writes_.Increment();
  return Status::OK();
}

Result<PageNo> DiskManager::AllocatePage(FileId file) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  OpenFileState& f = files_[file];
  PageNo page_no = f.num_pages;
  char zeros[kPageSize];
  memset(zeros, 0, sizeof(zeros));
  // Stamp the footer so a freshly extended page passes verification even
  // if it is fetched before its first real writeback.
  StampPageChecksum(zeros);
  if (journal_ != nullptr) {
    // Journaled too: num_pages runs ahead of the data file's size until
    // the checkpoint applies the extension in place.
    TCOB_RETURN_NOT_OK(journal_->Append(f.name, page_no, zeros));
  } else {
    TCOB_RETURN_NOT_OK(f.file->WriteAt(
        static_cast<uint64_t>(page_no) * kPageSize, Slice(zeros, kPageSize)));
  }
  ++f.num_pages;
  allocations_.Increment();
  return page_no;
}

Result<PageNo> DiskManager::NumPages(FileId file) {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  return files_[file].num_pages;
}

Status DiskManager::SyncAll() {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  for (const OpenFileState& f : files_) {
    TCOB_RETURN_NOT_OK(f.file->Sync());
  }
  return Status::OK();
}

Status DiskManager::SyncDir() { return env_->SyncDir(dir_); }

Status DiskManager::Truncate(FileId file) {
  std::unique_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  OpenFileState& f = files_[file];
  if (journal_ != nullptr) journal_->DropFile(f.name);
  TCOB_RETURN_NOT_OK(f.file->Truncate(0));
  f.num_pages = 0;
  return Status::OK();
}

Result<std::string> DiskManager::FileName(FileId file) const {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  if (file >= files_.size()) return Status::InvalidArgument("bad file id");
  return files_[file].name;
}

std::vector<std::string> DiskManager::FileNames() const {
  std::shared_lock<std::shared_mutex> lock(files_mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const OpenFileState& f : files_) names.push_back(f.name);
  return names;
}

}  // namespace tcob
