#include "record/record_codec.h"

#include "common/coding.h"

namespace tcob {

Status EncodeValues(const std::vector<AttrType>& schema,
                    const std::vector<Value>& values, std::string* dst) {
  if (schema.size() != values.size()) {
    return Status::InvalidArgument(
        "record arity mismatch: schema has " + std::to_string(schema.size()) +
        " attributes, got " + std::to_string(values.size()) + " values");
  }
  const size_t bitmap_bytes = (schema.size() + 7) / 8;
  const size_t bitmap_off = dst->size();
  dst->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < schema.size(); ++i) {
    const Value& v = values[i];
    if (v.type() != schema[i]) {
      return Status::TypeError(std::string("attribute ") + std::to_string(i) +
                               ": expected " + AttrTypeName(schema[i]) +
                               ", got " + AttrTypeName(v.type()));
    }
    if (v.is_null()) {
      (*dst)[bitmap_off + i / 8] |= static_cast<char>(1u << (i % 8));
      continue;
    }
    switch (schema[i]) {
      case AttrType::kBool:
        dst->push_back(v.AsBool() ? 1 : 0);
        break;
      case AttrType::kInt:
        PutVarsint64(dst, v.AsInt());
        break;
      case AttrType::kDouble:
        PutDouble(dst, v.AsDouble());
        break;
      case AttrType::kString:
        PutLengthPrefixed(dst, v.AsString());
        break;
      case AttrType::kTimestamp:
        PutVarsint64(dst, v.AsTime());
        break;
      case AttrType::kId:
        PutVarint64(dst, v.AsId());
        break;
    }
  }
  return Status::OK();
}

Result<std::vector<Value>> DecodeValues(const std::vector<AttrType>& schema,
                                        Slice* input) {
  const size_t bitmap_bytes = (schema.size() + 7) / 8;
  if (input->size() < bitmap_bytes) {
    return Status::Corruption("record shorter than its null bitmap");
  }
  const char* bitmap = input->data();
  input->RemovePrefix(bitmap_bytes);
  std::vector<Value> out;
  out.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    const bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      out.push_back(Value::Null(schema[i]));
      continue;
    }
    switch (schema[i]) {
      case AttrType::kBool: {
        if (input->empty()) return Status::Corruption("bool underflow");
        out.push_back(Value::Bool((*input)[0] != 0));
        input->RemovePrefix(1);
        break;
      }
      case AttrType::kInt: {
        int64_t v;
        TCOB_RETURN_NOT_OK(GetVarsint64(input, &v));
        out.push_back(Value::Int(v));
        break;
      }
      case AttrType::kDouble: {
        double v;
        TCOB_RETURN_NOT_OK(GetDouble(input, &v));
        out.push_back(Value::Double(v));
        break;
      }
      case AttrType::kString: {
        Slice s;
        TCOB_RETURN_NOT_OK(GetLengthPrefixed(input, &s));
        out.push_back(Value::String(s.ToString()));
        break;
      }
      case AttrType::kTimestamp: {
        int64_t v;
        TCOB_RETURN_NOT_OK(GetVarsint64(input, &v));
        out.push_back(Value::Time(v));
        break;
      }
      case AttrType::kId: {
        uint64_t v;
        TCOB_RETURN_NOT_OK(GetVarint64(input, &v));
        out.push_back(Value::Id(v));
        break;
      }
    }
  }
  return out;
}

}  // namespace tcob
