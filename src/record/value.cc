#include "record/value.h"

namespace tcob {

const char* AttrTypeName(AttrType t) {
  switch (t) {
    case AttrType::kBool:
      return "BOOL";
    case AttrType::kInt:
      return "INT";
    case AttrType::kDouble:
      return "DOUBLE";
    case AttrType::kString:
      return "STRING";
    case AttrType::kTimestamp:
      return "TIMESTAMP";
    case AttrType::kId:
      return "ID";
  }
  return "?";
}

Result<AttrType> AttrTypeFromName(const std::string& name) {
  if (name == "BOOL") return AttrType::kBool;
  if (name == "INT") return AttrType::kInt;
  if (name == "DOUBLE") return AttrType::kDouble;
  if (name == "STRING") return AttrType::kString;
  if (name == "TIMESTAMP") return AttrType::kTimestamp;
  if (name == "ID") return AttrType::kId;
  return Status::InvalidArgument("unknown attribute type: " + name);
}

namespace {

bool IsNumeric(AttrType t) {
  return t == AttrType::kInt || t == AttrType::kDouble;
}

// INT literals compare against TIMESTAMP and ID attributes (query text
// has no dedicated literal syntax for either).
bool IntLike(AttrType t) {
  return t == AttrType::kInt || t == AttrType::kTimestamp ||
         t == AttrType::kId;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

Result<int> Value::Compare(const Value& other) const {
  const bool compatible =
      type_ == other.type_ || (IsNumeric(type_) && IsNumeric(other.type_)) ||
      (IntLike(type_) && IntLike(other.type_) &&
       (type_ == AttrType::kInt || other.type_ == AttrType::kInt));
  if (!compatible) {
    return Status::TypeError(std::string("cannot compare ") +
                             AttrTypeName(type_) + " with " +
                             AttrTypeName(other.type_));
  }
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  if (IsNumeric(type_) &&
      (type_ == AttrType::kDouble || other.type_ == AttrType::kDouble)) {
    return Cmp(NumericValue(), other.NumericValue());
  }
  switch (type_) {
    case AttrType::kBool:
      return Cmp(AsBool(), other.AsBool());
    case AttrType::kInt:
    case AttrType::kTimestamp:
    case AttrType::kId:
      return Cmp(AsInt(), other.AsInt());
    case AttrType::kDouble:
      return Cmp(AsDouble(), other.AsDouble());
    case AttrType::kString:
      return Cmp(AsString(), other.AsString());
  }
  return Status::Internal("unreachable value type");
}

bool Value::Equals(const Value& other) const {
  Result<int> c = Compare(other);
  return c.ok() && c.value() == 0;
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case AttrType::kBool:
      return AsBool() ? "true" : "false";
    case AttrType::kInt:
      return std::to_string(AsInt());
    case AttrType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case AttrType::kString:
      return "'" + AsString() + "'";
    case AttrType::kTimestamp:
      return "t" + TimestampToString(AsTime());
    case AttrType::kId:
      return "#" + std::to_string(AsId());
  }
  return "?";
}

}  // namespace tcob
