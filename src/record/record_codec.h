#ifndef TCOB_RECORD_RECORD_CODEC_H_
#define TCOB_RECORD_RECORD_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "record/value.h"

namespace tcob {

/// Schema-driven binary record format.
///
/// Layout: a null bitmap of ceil(n/8) bytes (bit i set == attribute i is
/// NULL), followed by the non-null attribute payloads in schema order:
///   BOOL       1 byte
///   INT        zigzag varint
///   DOUBLE     8-byte IEEE-754 LE
///   STRING     varint length + bytes
///   TIMESTAMP  zigzag varint
///   ID         varint
/// The schema itself is not stored per record; the catalog supplies it.

/// Appends the encoded record to *dst. `values` must match `schema`
/// position by position (type mismatch is an InvalidArgument error).
Status EncodeValues(const std::vector<AttrType>& schema,
                    const std::vector<Value>& values, std::string* dst);

/// Decodes a record previously produced by EncodeValues with `schema`.
/// Consumes from *input, leaving any trailing bytes.
Result<std::vector<Value>> DecodeValues(const std::vector<AttrType>& schema,
                                        Slice* input);

}  // namespace tcob

#endif  // TCOB_RECORD_RECORD_CODEC_H_
