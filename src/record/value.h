#ifndef TCOB_RECORD_VALUE_H_
#define TCOB_RECORD_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "time/timestamp.h"

namespace tcob {

/// Attribute data types of the temporal complex-object model.
enum class AttrType : uint8_t {
  kBool = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kTimestamp = 4,  // a valid-time instant stored as data
  kId = 5,         // reference to an atom (surrogate identifier)
};

const char* AttrTypeName(AttrType t);
Result<AttrType> AttrTypeFromName(const std::string& name);

/// Globally unique atom surrogate.
using AtomId = uint64_t;
inline constexpr AtomId kInvalidAtomId = 0;

/// A typed attribute value, possibly NULL.
///
/// NULL is typed: a null Value still knows which AttrType column it
/// belongs to, so comparisons stay well-defined (NULLs sort first and
/// compare equal only to NULLs, SQL-style three-valued logic is *not*
/// used — the model predates it and the query engine treats predicates
/// over NULL as false).
class Value {
 public:
  /// Null of the given type.
  explicit Value(AttrType type) : type_(type), null_(true) {}

  static Value Bool(bool v) { return Value(AttrType::kBool, Payload(v)); }
  static Value Int(int64_t v) { return Value(AttrType::kInt, Payload(v)); }
  static Value Double(double v) { return Value(AttrType::kDouble, Payload(v)); }
  static Value String(std::string v) {
    return Value(AttrType::kString, Payload(std::move(v)));
  }
  static Value Time(Timestamp v) {
    Value out(AttrType::kTimestamp, Payload(static_cast<int64_t>(v)));
    return out;
  }
  static Value Id(AtomId v) {
    Value out(AttrType::kId, Payload(static_cast<int64_t>(v)));
    return out;
  }
  static Value Null(AttrType type) { return Value(type); }

  AttrType type() const { return type_; }
  bool is_null() const { return null_; }

  // Typed accessors; callers must check type() (and is_null()) first.
  bool AsBool() const { return std::get<bool>(payload_); }
  int64_t AsInt() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsString() const { return std::get<std::string>(payload_); }
  Timestamp AsTime() const { return std::get<int64_t>(payload_); }
  AtomId AsId() const { return static_cast<AtomId>(std::get<int64_t>(payload_)); }

  /// Numeric view for arithmetic/comparison across kInt/kDouble.
  double NumericValue() const {
    return type_ == AttrType::kDouble ? AsDouble()
                                      : static_cast<double>(AsInt());
  }

  /// Three-way comparison. Requires comparable types (identical, or both
  /// numeric). NULL < any non-NULL; NULL == NULL.
  Result<int> Compare(const Value& other) const;

  /// Strict equality (type-aware; numeric cross-type compares by value).
  bool Equals(const Value& other) const;

  std::string ToString() const;

 private:
  using Payload = std::variant<bool, int64_t, double, std::string>;

  Value(AttrType type, Payload payload)
      : type_(type), null_(false), payload_(std::move(payload)) {}

  AttrType type_;
  bool null_;
  Payload payload_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }

}  // namespace tcob

#endif  // TCOB_RECORD_VALUE_H_
