#include "tstore/temporal_store.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "record/record_codec.h"

namespace tcob {

const char* StorageStrategyName(StorageStrategy s) {
  switch (s) {
    case StorageStrategy::kSnapshot:
      return "snapshot";
    case StorageStrategy::kIntegrated:
      return "integrated";
    case StorageStrategy::kSeparated:
      return "separated";
  }
  return "?";
}

Result<StorageStrategy> StorageStrategyFromName(const std::string& name) {
  if (name == "snapshot") return StorageStrategy::kSnapshot;
  if (name == "integrated") return StorageStrategy::kIntegrated;
  if (name == "separated") return StorageStrategy::kSeparated;
  return Status::InvalidArgument("unknown storage strategy: " + name);
}

Status EncodeAtomVersion(const std::vector<AttrType>& schema,
                         const AtomVersion& v, std::string* dst) {
  PutVarint64(dst, v.id);
  PutVarint32(dst, v.type);
  PutVarint32(dst, v.version_no);
  PutVarsint64(dst, v.valid.begin);
  PutVarsint64(dst, v.valid.end);
  return EncodeValues(schema, v.attrs, dst);
}

Result<AtomVersion> DecodeAtomVersion(const std::vector<AttrType>& schema,
                                      Slice* input) {
  AtomVersion v;
  TCOB_RETURN_NOT_OK(GetVarint64(input, &v.id));
  TCOB_RETURN_NOT_OK(GetVarint32(input, &v.type));
  TCOB_RETURN_NOT_OK(GetVarint32(input, &v.version_no));
  TCOB_RETURN_NOT_OK(GetVarsint64(input, &v.valid.begin));
  TCOB_RETURN_NOT_OK(GetVarsint64(input, &v.valid.end));
  TCOB_ASSIGN_OR_RETURN(v.attrs, DecodeValues(schema, input));
  return v;
}

Status TemporalAtomStore::VerifyIntegrity(const AtomTypeDef& type) const {
  std::map<AtomId, std::vector<AtomVersion>> by_atom;
  TCOB_RETURN_NOT_OK(DoScanVersions(
      type, Interval::All(), [&](const AtomVersion& v) -> Result<bool> {
        by_atom[v.id].push_back(v);
        return true;
      }));
  for (auto& [id, versions] : by_atom) {
    for (const AtomVersion& v : versions) {
      if (v.valid.empty()) {
        return Status::Corruption(
            "atom " + std::to_string(id) + " of type " + type.name +
            ": empty version interval " + v.valid.ToString());
      }
    }
    Result<VersionTimeline> timeline = TimelineOf(versions);
    if (!timeline.ok()) {
      return Status::Corruption("atom " + std::to_string(id) + " of type " +
                                type.name + ": " +
                                timeline.status().message());
    }
  }
  return VerifyStructure(type);
}

Result<VersionTimeline> TimelineOf(const std::vector<AtomVersion>& versions) {
  std::vector<size_t> order(versions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return versions[a].valid.begin < versions[b].valid.begin;
  });
  VersionTimeline timeline;
  for (size_t idx : order) {
    TCOB_RETURN_NOT_OK(timeline.Append(versions[idx].valid, idx));
  }
  return timeline;
}

}  // namespace tcob
