#include "tstore/temporal_store.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "record/record_codec.h"
#include "tstore/cold_tier.h"

namespace tcob {

const char* StorageStrategyName(StorageStrategy s) {
  switch (s) {
    case StorageStrategy::kSnapshot:
      return "snapshot";
    case StorageStrategy::kIntegrated:
      return "integrated";
    case StorageStrategy::kSeparated:
      return "separated";
  }
  return "?";
}

Result<StorageStrategy> StorageStrategyFromName(const std::string& name) {
  if (name == "snapshot") return StorageStrategy::kSnapshot;
  if (name == "integrated") return StorageStrategy::kIntegrated;
  if (name == "separated") return StorageStrategy::kSeparated;
  return Status::InvalidArgument("unknown storage strategy: " + name);
}

Status EncodeAtomVersion(const std::vector<AttrType>& schema,
                         const AtomVersion& v, std::string* dst) {
  PutVarint64(dst, v.id);
  PutVarint32(dst, v.type);
  PutVarint32(dst, v.version_no);
  PutVarsint64(dst, v.valid.begin);
  PutVarsint64(dst, v.valid.end);
  return EncodeValues(schema, v.attrs, dst);
}

Result<AtomVersion> DecodeAtomVersion(const std::vector<AttrType>& schema,
                                      Slice* input) {
  AtomVersion v;
  TCOB_RETURN_NOT_OK(GetVarint64(input, &v.id));
  TCOB_RETURN_NOT_OK(GetVarint32(input, &v.type));
  TCOB_RETURN_NOT_OK(GetVarint32(input, &v.version_no));
  TCOB_RETURN_NOT_OK(GetVarsint64(input, &v.valid.begin));
  TCOB_RETURN_NOT_OK(GetVarsint64(input, &v.valid.end));
  TCOB_ASSIGN_OR_RETURN(v.attrs, DecodeValues(schema, input));
  return v;
}

ColdTierAccessStats TemporalAtomStore::cold_access_stats() const {
  return cold_ ? cold_->access_stats() : ColdTierAccessStats{};
}

size_t TemporalAtomStore::MigratablePrefix(
    const std::vector<AtomVersion>& versions, Timestamp cutoff) {
  size_t n = 0;
  while (n < versions.size() && !versions[n].valid.open_ended() &&
         versions[n].valid.end <= cutoff) {
    ++n;
  }
  // Anchor rule: a fully-historical atom keeps its newest version hot.
  if (n == versions.size() && n > 0) --n;
  return n;
}

Result<std::map<AtomId, std::vector<AtomVersion>>>
TemporalAtomStore::CollectMigratable(const AtomTypeDef& type,
                                     Timestamp cutoff) const {
  std::map<AtomId, std::vector<AtomVersion>> by_atom;
  TCOB_RETURN_NOT_OK(DoScanVersions(
      type, Interval::All(), [&](const AtomVersion& v) -> Result<bool> {
        by_atom[v.id].push_back(v);
        return true;
      }));
  // DoScanVersions merges the tiers; already-cold versions must not
  // migrate again. They are strictly the oldest prefix of each merged
  // timeline, so dropping the first |cold| entries leaves hot only.
  std::map<AtomId, std::vector<AtomVersion>> cold_atoms;
  TCOB_RETURN_NOT_OK(ColdCollectAll(type, Interval::All(), &cold_atoms));
  std::map<AtomId, std::vector<AtomVersion>> out;
  for (auto& [id, versions] : by_atom) {
    std::sort(versions.begin(), versions.end(),
              [](const AtomVersion& a, const AtomVersion& b) {
                return a.valid.begin < b.valid.begin;
              });
    auto cold_it = cold_atoms.find(id);
    if (cold_it != cold_atoms.end()) {
      if (versions.size() < cold_it->second.size()) {
        return Status::Corruption("atom " + std::to_string(id) +
                                  " of type " + type.name +
                                  ": fewer versions than its cold tier");
      }
      versions.erase(versions.begin(),
                     versions.begin() +
                         static_cast<ptrdiff_t>(cold_it->second.size()));
    }
    size_t n = MigratablePrefix(versions, cutoff);
    if (n == 0) continue;
    versions.resize(n);
    out.emplace(id, std::move(versions));
  }
  return out;
}

Result<std::vector<AtomVersion>> TemporalAtomStore::ColdVersions(
    const AtomTypeDef& type, AtomId id, const Interval& window) const {
  if (!cold_) return std::vector<AtomVersion>{};
  return cold_->VersionsOf(type, id, window);
}

Result<ColdMarkers> TemporalAtomStore::ColdMarkersAt(const AtomTypeDef& type,
                                                     AtomId id,
                                                     Timestamp t) const {
  if (!cold_) return ColdMarkers{};
  return cold_->MarkersAt(type, id, t);
}

Result<bool> TemporalAtomStore::ColdMightHave(const AtomTypeDef& type,
                                              AtomId id) const {
  if (!cold_) return false;
  return cold_->MightHave(type, id);
}

Status TemporalAtomStore::ColdCollectAll(
    const AtomTypeDef& type, const Interval& window,
    std::map<AtomId, std::vector<AtomVersion>>* out) const {
  if (!cold_) return Status::OK();
  return cold_->CollectAll(type, window, out);
}

Status TemporalAtomStore::VerifyIntegrity(const AtomTypeDef& type) const {
  std::map<AtomId, std::vector<AtomVersion>> by_atom;
  TCOB_RETURN_NOT_OK(DoScanVersions(
      type, Interval::All(), [&](const AtomVersion& v) -> Result<bool> {
        by_atom[v.id].push_back(v);
        return true;
      }));
  if (cold_ != nullptr) {
    TCOB_RETURN_NOT_OK(cold_->VerifyIntegrity(type));
    // DoScanVersions above already merged the tiers, so cross-tier
    // overlap — e.g. a version that migrated but was never released
    // from the hot store — appears twice and TimelineOf below catches
    // it. What remains to check is the anchor rule: every atom with
    // cold history must keep at least one hot (or live) version.
    std::map<AtomId, std::vector<AtomVersion>> cold_atoms;
    TCOB_RETURN_NOT_OK(cold_->CollectAll(type, Interval::All(), &cold_atoms));
    for (auto& [id, versions] : cold_atoms) {
      auto it = by_atom.find(id);
      if (it == by_atom.end() || it->second.size() <= versions.size()) {
        return Status::Corruption("atom " + std::to_string(id) + " of type " +
                                  type.name +
                                  ": cold versions without a hot anchor");
      }
    }
  }
  for (auto& [id, versions] : by_atom) {
    for (const AtomVersion& v : versions) {
      if (v.valid.empty()) {
        return Status::Corruption(
            "atom " + std::to_string(id) + " of type " + type.name +
            ": empty version interval " + v.valid.ToString());
      }
    }
    Result<VersionTimeline> timeline = TimelineOf(versions);
    if (!timeline.ok()) {
      return Status::Corruption("atom " + std::to_string(id) + " of type " +
                                type.name + ": " +
                                timeline.status().message());
    }
  }
  return VerifyStructure(type);
}

Result<VersionTimeline> TimelineOf(const std::vector<AtomVersion>& versions) {
  std::vector<size_t> order(versions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return versions[a].valid.begin < versions[b].valid.begin;
  });
  VersionTimeline timeline;
  for (size_t idx : order) {
    TCOB_RETURN_NOT_OK(timeline.Append(versions[idx].valid, idx));
  }
  return timeline;
}

}  // namespace tcob
