#ifndef TCOB_TSTORE_SNAPSHOT_STORE_H_
#define TCOB_TSTORE_SNAPSHOT_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/btree.h"
#include "storage/heap_file.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Baseline physical design: the "temporally ungrouped" relational
/// mapping. Every version is an independent full record in one heap file
/// per atom type; a (atom, version_no) B+-tree locates an atom's
/// versions, which are then filtered linearly by time.
///
/// Consequences (the shapes Fig. 5-8 expect):
///  * updates are cheap appends,
///  * any access to one atom — current or past — touches all its
///    versions' index entries, so cost grows with history length,
///  * full-history reads pay one record fetch per version.
class SnapshotStore : public TemporalAtomStore {
 public:
  SnapshotStore(BufferPool* pool, std::string file_prefix)
      : pool_(pool), prefix_(std::move(file_prefix)) {}

  StorageStrategy strategy() const override {
    return StorageStrategy::kSnapshot;
  }

  Status Insert(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Update(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Delete(const AtomTypeDef& type, AtomId id, Timestamp from) override;

  Result<StoreSpaceStats> SpaceStats() const override;
  Status Flush() override;
  Result<uint64_t> VacuumBefore(const AtomTypeDef& type,
                                Timestamp cutoff) override;
  Result<uint64_t> ReleaseMigrated(const AtomTypeDef& type,
                                   Timestamp cutoff) override;

  /// B+-tree invariants of the index, plus every index entry must
  /// resolve to a readable heap record.
  Status VerifyStructure(const AtomTypeDef& type) const override;

 protected:
  Result<std::optional<AtomVersion>> DoGetAsOf(const AtomTypeDef& type,
                                               AtomId id,
                                               Timestamp t) const override;
  Result<std::vector<AtomVersion>> DoGetVersions(
      const AtomTypeDef& type, AtomId id,
      const Interval& window) const override;
  Status DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                    const VersionCallback& fn) const override;
  Status DoScanVersions(const AtomTypeDef& type, const Interval& window,
                        const VersionCallback& fn) const override;

 private:
  struct TypeState {
    std::unique_ptr<HeapFile> heap;
    std::unique_ptr<BTree> index;  // (id, version_no) -> Rid
  };

  Result<TypeState*> StateOf(TypeId type) const;

  /// All versions of `id`, in version order.
  Result<std::vector<AtomVersion>> AllVersions(const AtomTypeDef& type,
                                               AtomId id) const;

  /// The newest version of `id` (one Floor probe + one record fetch), or
  /// nullopt if the atom was never inserted. `rid_out` receives its
  /// location. Keeps mutations O(log versions) — the baseline's one
  /// redeeming quality is cheap appends, so we don't squander it.
  Result<std::optional<AtomVersion>> NewestVersion(const AtomTypeDef& type,
                                                   AtomId id,
                                                   Rid* rid_out) const;

  static std::string VersionKey(AtomId id, uint32_t version_no);

  BufferPool* pool_;
  std::string prefix_;
  // Guards lazy TypeState creation (map nodes are stable once created).
  mutable std::mutex types_mu_;
  mutable std::map<TypeId, TypeState> types_;
};

}  // namespace tcob

#endif  // TCOB_TSTORE_SNAPSHOT_STORE_H_
