#ifndef TCOB_TSTORE_SEPARATED_STORE_H_
#define TCOB_TSTORE_SEPARATED_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/btree.h"
#include "storage/heap_file.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// The paper's advocated physical design: a *current store* holding
/// exactly the live version of every atom, and an append-only *history
/// store* receiving each version as it is closed, chained newest-to-
/// oldest. Optionally a persistent version index ((atom, begin) ->
/// history RID) replaces chain walking by logarithmic lookup.
///
/// Consequences (the shapes Fig. 5-8 expect):
///  * current-time access cost is independent of history length,
///  * past access pays a chain walk proportional to the temporal
///    distance (or an index lookup when the version index is on),
///  * updates are cheap: one append to history plus one in-place
///    current rewrite,
///  * full-history reads pay one fetch per closed version.
class SeparatedStore : public TemporalAtomStore {
 public:
  SeparatedStore(BufferPool* pool, std::string file_prefix,
                 StoreOptions options)
      : pool_(pool), prefix_(std::move(file_prefix)), options_(options) {}

  StorageStrategy strategy() const override {
    return StorageStrategy::kSeparated;
  }

  Status Insert(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Update(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Delete(const AtomTypeDef& type, AtomId id, Timestamp from) override;

  Result<StoreSpaceStats> SpaceStats() const override;
  Status Flush() override;
  Result<uint64_t> VacuumBefore(const AtomTypeDef& type,
                                Timestamp cutoff) override;
  Result<uint64_t> ReleaseMigrated(const AtomTypeDef& type,
                                   Timestamp cutoff) override;

  /// B+-tree invariants of both indexes, plus every index entry must
  /// resolve to a readable heap record.
  Status VerifyStructure(const AtomTypeDef& type) const override;

  /// Cumulative count of history-chain records visited (benchmark probe
  /// for Fig. 6 / Fig. 10).
  uint64_t chain_hops() const {
    return chain_hops_.load(std::memory_order_relaxed);
  }

 protected:
  Result<std::optional<AtomVersion>> DoGetAsOf(const AtomTypeDef& type,
                                               AtomId id,
                                               Timestamp t) const override;
  Result<std::vector<AtomVersion>> DoGetVersions(
      const AtomTypeDef& type, AtomId id,
      const Interval& window) const override;
  Status DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                    const VersionCallback& fn) const override;
  Status DoScanVersions(const AtomTypeDef& type, const Interval& window,
                        const VersionCallback& fn) const override;

 private:
  struct TypeState {
    std::unique_ptr<HeapFile> current;
    std::unique_ptr<HeapFile> history;
    std::unique_ptr<BTree> current_index;  // id -> current Rid
    std::unique_ptr<BTree> version_index;  // (id, begin) -> history Rid
  };

  /// In-memory image of one current-store record.
  struct CurrentRecord {
    bool has_live = false;
    AtomVersion live;            // meaningful iff has_live
    uint32_t last_version_no = 0;  // newest version number ever assigned
    Timestamp last_end = kMinTimestamp;  // end of the newest closed version
    Rid chain_head;              // newest closed version, invalid if none
    uint32_t chain_len = 0;
  };

  Result<TypeState*> StateOf(TypeId type) const;

  static Status EncodeCurrent(const std::vector<AttrType>& schema,
                              const CurrentRecord& rec, AtomId id, TypeId type,
                              std::string* dst);
  static Result<CurrentRecord> DecodeCurrent(
      const std::vector<AttrType>& schema, AtomId id, TypeId type,
      Slice input);

  /// History record: version + RID of the next older version.
  static Status EncodeHistory(const std::vector<AttrType>& schema,
                              const AtomVersion& v, const Rid& prev,
                              std::string* dst);
  static Result<std::pair<AtomVersion, Rid>> DecodeHistory(
      const std::vector<AttrType>& schema, Slice input);

  Result<CurrentRecord> LoadCurrent(const AtomTypeDef& type, AtomId id,
                                    Rid* rid_out) const;
  Status StoreCurrent(const AtomTypeDef& type, AtomId id, const Rid& rid,
                      const CurrentRecord& rec);

  /// Moves a closed version into the history store, updating the version
  /// index if enabled; returns the new chain head.
  Result<Rid> AppendHistory(const AtomTypeDef& type,
                            const AtomVersion& closed, const Rid& prev);

  /// Finds the closed version of `id` valid at `t` (t earlier than the
  /// live version), via index or chain walk.
  Result<std::optional<AtomVersion>> FindPast(const AtomTypeDef& type,
                                              AtomId id,
                                              const CurrentRecord& cur,
                                              Timestamp t) const;

  /// Collects closed versions of `id` overlapping `window`, oldest first.
  /// When `proved_floor` is non-null it receives the oldest begin the hot
  /// walk proved knowledge of: callers probe the cold tier only when
  /// window.begin precedes it (kMinTimestamp when the walk stopped at a
  /// version already older than the window — hot covers everything the
  /// cold tier could add).
  Result<std::vector<AtomVersion>> CollectPast(
      const AtomTypeDef& type, const CurrentRecord& cur,
      const Interval& window, Timestamp* proved_floor = nullptr) const;

  /// WAL-replay detection: does any version (live, closed, or cold)
  /// begin/end exactly at `at`? Walks the chain, then merges the cold
  /// tier's markers so replay against migrated history still idempotes.
  struct ReplayMarkers {
    bool begins_at = false;
    bool ends_at = false;
  };
  Result<ReplayMarkers> ScanMarkers(const AtomTypeDef& type, AtomId id,
                                    const CurrentRecord& cur,
                                    Timestamp at) const;

  static std::string VersionKey(AtomId id, Timestamp begin);

  BufferPool* pool_;
  std::string prefix_;
  StoreOptions options_;
  // Guards lazy TypeState creation; map nodes are stable once created, so
  // concurrent readers only contend on first touch of a type.
  mutable std::mutex types_mu_;
  mutable std::map<TypeId, TypeState> types_;
  mutable std::atomic<uint64_t> chain_hops_{0};
};

}  // namespace tcob

#endif  // TCOB_TSTORE_SEPARATED_STORE_H_
