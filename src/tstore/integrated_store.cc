#include "tstore/integrated_store.h"

#include "common/coding.h"
#include "record/record_codec.h"

namespace tcob {

Result<IntegratedStore::TypeState*> IntegratedStore::StateOf(
    TypeId type) const {
  std::lock_guard<std::mutex> lock(types_mu_);
  auto it = types_.find(type);
  if (it != types_.end()) return &it->second;
  TypeState state;
  TCOB_ASSIGN_OR_RETURN(
      state.heap,
      HeapFile::Open(pool_, prefix_ + "_heap_" + std::to_string(type)));
  TCOB_ASSIGN_OR_RETURN(
      state.index,
      BTree::Open(pool_, prefix_ + "_idx_" + std::to_string(type)));
  auto [pos, inserted] = types_.emplace(type, std::move(state));
  (void)inserted;
  return &pos->second;
}

Status IntegratedStore::EncodeCluster(const std::vector<AttrType>& schema,
                                      AtomId id, TypeId type,
                                      const std::vector<AtomVersion>& versions,
                                      std::string* dst) {
  PutVarint64(dst, id);
  PutVarint32(dst, type);
  PutVarint32(dst, static_cast<uint32_t>(versions.size()));
  for (const AtomVersion& v : versions) {
    PutVarint32(dst, v.version_no);
    PutVarsint64(dst, v.valid.begin);
    PutVarsint64(dst, v.valid.end);
    TCOB_RETURN_NOT_OK(EncodeValues(schema, v.attrs, dst));
  }
  return Status::OK();
}

Result<std::vector<AtomVersion>> IntegratedStore::DecodeCluster(
    const std::vector<AttrType>& schema, Slice input) {
  uint64_t id;
  uint32_t type, count;
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &id));
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &type));
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &count));
  std::vector<AtomVersion> versions;
  versions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AtomVersion v;
    v.id = id;
    v.type = type;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &v.version_no));
    TCOB_RETURN_NOT_OK(GetVarsint64(&input, &v.valid.begin));
    TCOB_RETURN_NOT_OK(GetVarsint64(&input, &v.valid.end));
    TCOB_ASSIGN_OR_RETURN(v.attrs, DecodeValues(schema, &input));
    versions.push_back(std::move(v));
  }
  return versions;
}

Result<std::vector<AtomVersion>> IntegratedStore::LoadCluster(
    const AtomTypeDef& type, AtomId id, Rid* rid_out) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::string key;
  PutComparableU64(&key, id);
  Result<uint64_t> packed = state->index->Get(key);
  if (!packed.ok()) {
    // Only a clean miss means "no such atom"; I/O and corruption errors
    // must surface as themselves, never as a wrong NotFound answer.
    if (!packed.status().IsNotFound()) return packed.status();
    return Status::NotFound("atom " + std::to_string(id));
  }
  Rid rid = Rid::Unpack(packed.value());
  if (rid_out) *rid_out = rid;
  TCOB_ASSIGN_OR_RETURN(std::string rec, state->heap->Get(rid));
  return DecodeCluster(type.AttrTypes(), Slice(rec));
}

Status IntegratedStore::StoreCluster(const AtomTypeDef& type, AtomId id,
                                     const Rid& rid,
                                     const std::vector<AtomVersion>& versions) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::string rec;
  TCOB_RETURN_NOT_OK(
      EncodeCluster(type.AttrTypes(), id, type.id, versions, &rec));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->heap->Update(rid, rec));
  if (new_rid != rid) {
    std::string key;
    PutComparableU64(&key, id);
    TCOB_RETURN_NOT_OK(state->index->Put(key, new_rid.Pack()));
  }
  return Status::OK();
}

Status IntegratedStore::Insert(const AtomTypeDef& type, AtomId id,
                               std::vector<Value> attrs, Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  Rid rid;
  Result<std::vector<AtomVersion>> existing = LoadCluster(type, id, &rid);
  if (existing.ok()) {
    std::vector<AtomVersion>& versions = existing.value();
    // Idempotent replay: a version starting at `from` means this insert
    // was already applied.
    for (const AtomVersion& v : versions) {
      if (v.valid.begin == from) return Status::OK();
    }
    if (has_cold() && from < versions.front().valid.begin) {
      TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
      if (cold.begins_at) return Status::OK();
    }
    const AtomVersion& last = versions.back();
    if (last.valid.open_ended()) {
      return Status::AlreadyExists("atom " + std::to_string(id) +
                                   " already live");
    }
    if (from < last.valid.end) {
      return Status::InvalidArgument("re-insert before previous deletion");
    }
    versions.push_back(AtomVersion{id, type.id, last.version_no + 1,
                                   Interval(from, kForever),
                                   std::move(attrs)});
    return StoreCluster(type, id, rid, versions);
  }
  std::vector<AtomVersion> versions = {AtomVersion{
      id, type.id, 1, Interval(from, kForever), std::move(attrs)}};
  std::string rec;
  TCOB_RETURN_NOT_OK(
      EncodeCluster(type.AttrTypes(), id, type.id, versions, &rec));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->heap->Insert(rec));
  std::string key;
  PutComparableU64(&key, id);
  return state->index->Put(key, new_rid.Pack());
}

Status IntegratedStore::Update(const AtomTypeDef& type, AtomId id,
                               std::vector<Value> attrs, Timestamp from) {
  Rid rid;
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        LoadCluster(type, id, &rid));
  AtomVersion& current = versions.back();
  // Idempotent replay: see SnapshotStore::Update.
  for (const AtomVersion& v : versions) {
    if (v.valid.begin == from && v.version_no > 1) return Status::OK();
  }
  if (has_cold() && from < versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
    if (cold.begins_update_at) return Status::OK();
  }
  if (!current.valid.open_ended()) {
    return Status::InvalidArgument("update of a dead atom");
  }
  if (current.valid.begin == from) {
    return Status::InvalidArgument(
        "update at the exact begin of the current version");
  }
  if (from < current.valid.begin) {
    return Status::InvalidArgument("retroactive update not supported");
  }
  current.valid.end = from;
  versions.push_back(AtomVersion{id, type.id, current.version_no + 1,
                                 Interval(from, kForever), std::move(attrs)});
  return StoreCluster(type, id, rid, versions);
}

Status IntegratedStore::Delete(const AtomTypeDef& type, AtomId id,
                               Timestamp from) {
  Rid rid;
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        LoadCluster(type, id, &rid));
  AtomVersion& current = versions.back();
  // Idempotent replay: see SnapshotStore::Delete.
  bool ends_at_from = false, begins_at_from = false;
  for (const AtomVersion& v : versions) {
    if (v.valid.end == from) ends_at_from = true;
    if (v.valid.begin == from) begins_at_from = true;
  }
  // Cold versions may carry the marker (a cold version can end exactly
  // where the oldest hot one begins — the migration boundary).
  if (has_cold() && from <= versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
    ends_at_from = ends_at_from || cold.ends_at;
    begins_at_from = begins_at_from || cold.begins_at;
  }
  if (ends_at_from && !begins_at_from) return Status::OK();
  if (!current.valid.open_ended()) {
    return Status::InvalidArgument("delete of a dead atom");
  }
  if (from <= current.valid.begin) {
    return Status::InvalidArgument("delete before the current version began");
  }
  current.valid.end = from;
  return StoreCluster(type, id, rid, versions);
}

Result<std::optional<AtomVersion>> IntegratedStore::DoGetAsOf(
    const AtomTypeDef& type, AtomId id, Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        LoadCluster(type, id, nullptr));
  for (const AtomVersion& v : versions) {
    if (v.valid.Contains(t)) return std::optional<AtomVersion>(v);
  }
  // Probe the cold tier only when t precedes every hot version (cold
  // versions are strictly older than the cluster's oldest entry).
  if (has_cold() && !versions.empty() &&
      t < versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> cold,
                          ColdVersions(type, id, Interval::At(t)));
    for (AtomVersion& v : cold) {
      if (v.valid.Contains(t)) return std::optional<AtomVersion>(std::move(v));
    }
  }
  return std::optional<AtomVersion>();
}

Result<std::vector<AtomVersion>> IntegratedStore::DoGetVersions(
    const AtomTypeDef& type, AtomId id, const Interval& window) const {
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        LoadCluster(type, id, nullptr));
  std::vector<AtomVersion> out;
  if (has_cold() && !versions.empty() &&
      window.begin < versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(out, ColdVersions(type, id, window));
  }
  for (AtomVersion& v : versions) {
    if (v.valid.Overlaps(window)) out.push_back(std::move(v));
  }
  return out;
}

Status IntegratedStore::DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                                 const VersionCallback& fn) const {
  return DoScanVersions(type, Interval::At(t), fn);
}

Status IntegratedStore::DoScanVersions(const AtomTypeDef& type,
                                     const Interval& window,
                                     const VersionCallback& fn) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Scan clusters in index order (ascending atom id) rather than heap
  // order, which is not stable under migration; each atom's cold
  // versions (strictly older) are emitted before its hot cluster.
  std::map<AtomId, std::vector<AtomVersion>> cold;
  TCOB_RETURN_NOT_OK(ColdCollectAll(type, window, &cold));
  return state->index->Scan(
      Slice(), Slice(), [&](const Slice& key, uint64_t packed) -> Result<bool> {
        (void)key;
        TCOB_ASSIGN_OR_RETURN(std::string rec,
                              state->heap->Get(Rid::Unpack(packed)));
        TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                              DecodeCluster(schema, Slice(rec)));
        if (!versions.empty()) {
          auto it = cold.find(versions.front().id);
          if (it != cold.end()) {
            for (AtomVersion& v : it->second) {
              TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(v));
              if (!keep_going) return false;
            }
          }
        }
        for (const AtomVersion& v : versions) {
          if (!v.valid.Overlaps(window)) continue;
          TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(v));
          if (!keep_going) return false;
        }
        return true;
      });
}

Result<StoreSpaceStats> IntegratedStore::SpaceStats() const {
  StoreSpaceStats stats;
  for (const auto& [type_id, state] : types_) {
    (void)type_id;
    TCOB_ASSIGN_OR_RETURN(HeapFileStats heap, state.heap->Stats());
    TCOB_ASSIGN_OR_RETURN(PageNo index_pages,
                          pool_->disk()->NumPages(state.index->file_id()));
    stats.heap_pages += heap.total_pages;
    stats.index_pages += index_pages;
    stats.atom_count += heap.record_count;
  }
  stats.total_bytes = (stats.heap_pages + stats.index_pages) * kPageSize;
  return stats;
}

Status IntegratedStore::Flush() { return pool_->FlushAll(); }

}  // namespace tcob

namespace tcob {

Result<uint64_t> IntegratedStore::VacuumBefore(const AtomTypeDef& type,
                                               Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  // Collect the atoms first (mutating clusters while scanning the heap
  // could revisit relocated records).
  std::vector<AtomId> atoms;
  {
    std::vector<AttrType> schema = type.AttrTypes();
    TCOB_RETURN_NOT_OK(state->heap->Scan(
        [&](const Rid&, const Slice& rec) -> Result<bool> {
          Slice in(rec);
          uint64_t id;
          TCOB_RETURN_NOT_OK(GetVarint64(&in, &id));
          atoms.push_back(id);
          return true;
        }));
  }
  uint64_t removed = 0;
  for (AtomId id : atoms) {
    Rid rid;
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                          LoadCluster(type, id, &rid));
    std::vector<AtomVersion> kept;
    for (AtomVersion& v : versions) {
      if (v.valid.end <= cutoff) {
        ++removed;
      } else {
        kept.push_back(std::move(v));
      }
    }
    if (kept.size() == versions.size()) continue;
    std::string key;
    PutComparableU64(&key, id);
    if (kept.empty()) {
      TCOB_RETURN_NOT_OK(state->heap->Delete(rid));
      TCOB_RETURN_NOT_OK(state->index->Delete(key));
    } else {
      TCOB_RETURN_NOT_OK(StoreCluster(type, id, rid, kept));
    }
  }
  return removed;
}

Result<uint64_t> IntegratedStore::ReleaseMigrated(const AtomTypeDef& type,
                                                  Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AtomId> atoms;
  {
    TCOB_RETURN_NOT_OK(state->heap->Scan(
        [&](const Rid&, const Slice& rec) -> Result<bool> {
          Slice in(rec);
          uint64_t id;
          TCOB_RETURN_NOT_OK(GetVarint64(&in, &id));
          atoms.push_back(id);
          return true;
        }));
  }
  uint64_t released = 0;
  for (AtomId id : atoms) {
    Rid rid;
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                          LoadCluster(type, id, &rid));
    size_t n = MigratablePrefix(versions, cutoff);
    if (n == 0) continue;
    released += n;
    // The anchor rule guarantees a non-empty remainder, so the cluster
    // (and its index entry) always survives.
    std::vector<AtomVersion> kept(versions.begin() + n, versions.end());
    TCOB_RETURN_NOT_OK(StoreCluster(type, id, rid, kept));
  }
  return released;
}

Status IntegratedStore::VerifyStructure(const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(TypeState* state, StateOf(type.id));
  TCOB_RETURN_NOT_OK(state->index->VerifyStructure());
  return state->index->Scan(
      Slice(), Slice(), [&](const Slice&, uint64_t v) -> Result<bool> {
        Result<std::string> rec = state->heap->Get(Rid::Unpack(v));
        if (!rec.ok()) {
          return Status::Corruption("cluster index of type " + type.name +
                                    " references unreadable record: " +
                                    rec.status().message());
        }
        return true;
      });
}

}  // namespace tcob
