#ifndef TCOB_TSTORE_SEGMENT_H_
#define TCOB_TSTORE_SEGMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Immutable cold-history segment codec.
///
/// A segment packs the closed (fully historical) versions of a batch of
/// atoms of one type into a single delta-compressed byte string, stored
/// as one heap record of the cold tier. Layout:
///
///   [magic "TCS1"] [type_id] [fence.begin] [fence.end] [atom_count]
///   directory, ascending atom id:
///     [id delta] [version_count] [payload offset]
///     [extent.begin - fence.begin] [fence.end - extent.end]
///   [payload length] [payload] [CRC-32C footer over everything above]
///
/// Payload, per atom (version chains ascending by begin, contiguous in
/// directory order):
///   first version:  [vno] [begin - fence.begin] [end - begin] [attrs]
///   later versions: [vno delta] [begin - prev.end] [end - begin]
///                   [changed-attr bitmap] [changed attrs only]
///
/// The fence interval covers every version in the segment, so AS OF /
/// HISTORY queries prune a whole segment with one interval test; the
/// per-atom directory extents prune single atoms without touching the
/// payload. Timestamps are frame-of-reference encoded against the fence
/// begin (first version) or the previous version's end (gap encoding),
/// and an unchanged attribute costs one bitmap bit instead of a full
/// value. Every version stored here is closed — open-ended (live)
/// versions never migrate — so all deltas are non-negative varints.
///
/// The reader verifies the CRC before trusting a single field, and every
/// decode step is bounds-checked: truncated or bit-flipped input yields
/// Status::Corruption, never undefined behaviour.

/// One directory row of a decoded segment.
struct SegmentAtomEntry {
  AtomId id = kInvalidAtomId;
  uint32_t version_count = 0;
  uint64_t payload_offset = 0;  // into the payload blob
  Interval extent;              // [first begin, last end) of this atom
};

/// Accumulates atom histories and encodes them into one segment blob.
class SegmentBuilder {
 public:
  SegmentBuilder(TypeId type, std::vector<AttrType> schema)
      : type_(type), schema_(std::move(schema)) {}

  /// Adds the closed versions of one atom (ascending begin, no overlap,
  /// no open-ended interval). Atoms must arrive in ascending id order.
  Status AddAtom(AtomId id, std::vector<AtomVersion> versions);

  bool empty() const { return atoms_.empty(); }
  size_t atom_count() const { return atoms_.size(); }
  uint64_t version_count() const { return version_count_; }

  /// Encodes directory + payload + CRC footer. The builder is spent
  /// afterwards.
  Result<std::string> Finish();

 private:
  struct PendingAtom {
    AtomId id;
    std::vector<AtomVersion> versions;
  };

  TypeId type_;
  std::vector<AttrType> schema_;
  std::vector<PendingAtom> atoms_;
  uint64_t version_count_ = 0;
};

/// Read-side view over one segment blob (owns the bytes). Open parses
/// and validates header + directory; atom payloads decode on demand.
class SegmentReader {
 public:
  static Result<SegmentReader> Open(std::string bytes,
                                    std::vector<AttrType> schema);

  TypeId type() const { return type_; }
  const Interval& fence() const { return fence_; }
  const std::vector<SegmentAtomEntry>& directory() const { return dir_; }
  AtomId min_atom() const { return dir_.empty() ? kInvalidAtomId : dir_.front().id; }
  AtomId max_atom() const { return dir_.empty() ? kInvalidAtomId : dir_.back().id; }
  uint64_t version_count() const { return version_count_; }
  size_t byte_size() const { return bytes_.size(); }

  bool MightContain(AtomId id) const {
    return !dir_.empty() && id >= dir_.front().id && id <= dir_.back().id;
  }

  /// Decodes every version of directory entry `dir_index`, in begin
  /// order. Validates that the chain consumes exactly its payload span.
  Result<std::vector<AtomVersion>> AtomVersions(size_t dir_index) const;

  /// Decodes the versions of atom `id` (binary search over the
  /// directory); empty vector when the atom is not in this segment.
  Result<std::vector<AtomVersion>> VersionsOf(AtomId id) const;

 private:
  SegmentReader() = default;

  std::string bytes_;
  std::vector<AttrType> schema_;
  TypeId type_ = kInvalidTypeId;
  Interval fence_;
  std::vector<SegmentAtomEntry> dir_;
  uint64_t version_count_ = 0;
  size_t payload_begin_ = 0;  // offset of the payload blob in bytes_
  uint64_t payload_len_ = 0;
};

}  // namespace tcob

#endif  // TCOB_TSTORE_SEGMENT_H_
