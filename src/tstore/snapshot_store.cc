#include "tstore/snapshot_store.h"

#include <algorithm>

#include "common/coding.h"

namespace tcob {

std::string SnapshotStore::VersionKey(AtomId id, uint32_t version_no) {
  std::string key;
  PutComparableU64(&key, id);
  PutComparableU64(&key, version_no);
  return key;
}

Result<SnapshotStore::TypeState*> SnapshotStore::StateOf(TypeId type) const {
  std::lock_guard<std::mutex> lock(types_mu_);
  auto it = types_.find(type);
  if (it != types_.end()) return &it->second;
  TypeState state;
  TCOB_ASSIGN_OR_RETURN(
      state.heap,
      HeapFile::Open(pool_, prefix_ + "_heap_" + std::to_string(type)));
  TCOB_ASSIGN_OR_RETURN(
      state.index,
      BTree::Open(pool_, prefix_ + "_vidx_" + std::to_string(type)));
  auto [pos, inserted] = types_.emplace(type, std::move(state));
  (void)inserted;
  return &pos->second;
}

Result<std::vector<AtomVersion>> SnapshotStore::AllVersions(
    const AtomTypeDef& type, AtomId id) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AtomVersion> versions;
  std::string prefix;
  PutComparableU64(&prefix, id);
  std::vector<AttrType> schema = type.AttrTypes();
  Status scan = state->index->ScanPrefix(
      prefix, [&](const Slice& key, uint64_t packed) -> Result<bool> {
        (void)key;
        TCOB_ASSIGN_OR_RETURN(std::string rec,
                              state->heap->Get(Rid::Unpack(packed)));
        Slice in(rec);
        TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
        versions.push_back(std::move(v));
        return true;
      });
  TCOB_RETURN_NOT_OK(scan);
  return versions;
}


Result<std::optional<AtomVersion>> SnapshotStore::NewestVersion(
    const AtomTypeDef& type, AtomId id, Rid* rid_out) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  Result<std::pair<std::string, uint64_t>> floor =
      state->index->Floor(VersionKey(id, UINT32_MAX));
  if (!floor.ok()) {
    if (floor.status().IsNotFound()) return std::optional<AtomVersion>();
    return floor.status();
  }
  std::string prefix;
  PutComparableU64(&prefix, id);
  if (!Slice(floor->first).starts_with(prefix)) {
    return std::optional<AtomVersion>();
  }
  Rid rid = Rid::Unpack(floor->second);
  if (rid_out) *rid_out = rid;
  TCOB_ASSIGN_OR_RETURN(std::string rec, state->heap->Get(rid));
  Slice in(rec);
  std::vector<AttrType> schema = type.AttrTypes();
  TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
  return std::optional<AtomVersion>(std::move(v));
}

Status SnapshotStore::Insert(const AtomTypeDef& type, AtomId id,
                             std::vector<Value> attrs, Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> newest,
                        NewestVersion(type, id, nullptr));
  uint32_t version_no = 1;
  if (newest.has_value()) {
    // Idempotent replay: the newest version starting at `from` means
    // this insert was already applied.
    if (newest->valid.begin == from) return Status::OK();
    if (from < newest->valid.begin) {
      // Replay of an insert older than the newest version: confirm
      // against the full history (rare path; only on WAL replay).
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> all,
                            AllVersions(type, id));
      for (const AtomVersion& v : all) {
        if (v.valid.begin == from) return Status::OK();
      }
      TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
      if (cold.begins_at) return Status::OK();
      return newest->valid.open_ended()
                 ? Status::AlreadyExists("atom " + std::to_string(id) +
                                         " already live")
                 : Status::InvalidArgument(
                       "re-insert before previous deletion");
    }
    if (newest->valid.open_ended()) {
      return Status::AlreadyExists("atom " + std::to_string(id) +
                                   " already live");
    }
    if (from < newest->valid.end) {
      return Status::InvalidArgument("re-insert before previous deletion");
    }
    version_no = newest->version_no + 1;
  }
  AtomVersion v{id, type.id, version_no, Interval(from, kForever),
                std::move(attrs)};
  std::string rec;
  std::vector<AttrType> schema = type.AttrTypes();
  TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, v, &rec));
  TCOB_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(rec));
  return state->index->Put(VersionKey(id, version_no), rid.Pack());
}

Status SnapshotStore::Update(const AtomTypeDef& type, AtomId id,
                             std::vector<Value> attrs, Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  Rid newest_rid;
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> newest,
                        NewestVersion(type, id, &newest_rid));
  if (!newest.has_value()) {
    return Status::NotFound("update of unknown atom " + std::to_string(id));
  }
  std::vector<AttrType> schema = type.AttrTypes();
  // Idempotent replay: the successor this update would create exists.
  if (newest->valid.begin == from && newest->version_no > 1) {
    return Status::OK();
  }
  if (from < newest->valid.begin) {
    // Either a replay of an older update, or a retroactive update.
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> all,
                          AllVersions(type, id));
    for (const AtomVersion& v : all) {
      if (v.valid.begin == from && v.version_no > 1) return Status::OK();
    }
    TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
    if (cold.begins_update_at) return Status::OK();
    return Status::InvalidArgument("retroactive update not supported");
  }
  if (!newest->valid.open_ended()) {
    return Status::InvalidArgument("update of a dead atom");
  }
  if (newest->valid.begin == from) {
    return Status::InvalidArgument(
        "update at the exact begin of the current version");
  }
  // Close the current version in place.
  AtomVersion closed = *newest;
  closed.valid.end = from;
  std::string closed_rec;
  TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, closed, &closed_rec));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid,
                        state->heap->Update(newest_rid, closed_rec));
  if (new_rid != newest_rid) {
    TCOB_RETURN_NOT_OK(
        state->index->Put(VersionKey(id, closed.version_no), new_rid.Pack()));
  }
  // Append the successor version.
  AtomVersion next{id, type.id, closed.version_no + 1,
                   Interval(from, kForever), std::move(attrs)};
  std::string next_rec;
  TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, next, &next_rec));
  TCOB_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(next_rec));
  return state->index->Put(VersionKey(id, next.version_no), rid.Pack());
}

Status SnapshotStore::Delete(const AtomTypeDef& type, AtomId id,
                             Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  Rid newest_rid;
  TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> newest,
                        NewestVersion(type, id, &newest_rid));
  if (!newest.has_value()) {
    return Status::NotFound("delete of unknown atom " + std::to_string(id));
  }
  // Idempotent replay: the newest version already ends at `from` (a
  // successor starting there would itself be the newest version).
  if (!newest->valid.open_ended() && newest->valid.end == from) {
    return Status::OK();
  }
  if (from <= newest->valid.begin) {
    // Either the replay of an older delete (the atom has a gap at
    // `from`), or an invalid early delete.
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> all,
                          AllVersions(type, id));
    bool ends_at = false, begins_at = false;
    for (const AtomVersion& v : all) {
      if (v.valid.end == from) ends_at = true;
      if (v.valid.begin == from) begins_at = true;
    }
    // The markers must cover the full history: a cold version may end
    // exactly where a hot one begins (the migration boundary).
    TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, from));
    ends_at = ends_at || cold.ends_at;
    begins_at = begins_at || cold.begins_at;
    if (ends_at && !begins_at) return Status::OK();
    return Status::InvalidArgument("delete before the current version began");
  }
  if (!newest->valid.open_ended()) {
    return Status::InvalidArgument("delete of a dead atom");
  }
  AtomVersion closed = *newest;
  closed.valid.end = from;
  std::vector<AttrType> schema = type.AttrTypes();
  std::string rec;
  TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, closed, &rec));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->heap->Update(newest_rid, rec));
  if (new_rid != newest_rid) {
    TCOB_RETURN_NOT_OK(
        state->index->Put(VersionKey(id, closed.version_no), new_rid.Pack()));
  }
  return Status::OK();
}

Result<std::optional<AtomVersion>> SnapshotStore::DoGetAsOf(
    const AtomTypeDef& type, AtomId id, Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        AllVersions(type, id));
  if (versions.empty()) {
    // Anchor rule: an atom with cold history always keeps a hot
    // version, so "no hot versions" still means "never inserted".
    return Status::NotFound("atom " + std::to_string(id));
  }
  for (const AtomVersion& v : versions) {
    if (v.valid.Contains(t)) return std::optional<AtomVersion>(v);
  }
  // Cold versions are strictly older than every hot one: probe the
  // cold tier only when t precedes all hot knowledge, never to fill a
  // gap the hot chain already proves.
  if (has_cold() && t < versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> cold,
                          ColdVersions(type, id, Interval::At(t)));
    for (AtomVersion& v : cold) {
      if (v.valid.Contains(t)) return std::optional<AtomVersion>(std::move(v));
    }
  }
  return std::optional<AtomVersion>();
}

Result<std::vector<AtomVersion>> SnapshotStore::DoGetVersions(
    const AtomTypeDef& type, AtomId id, const Interval& window) const {
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                        AllVersions(type, id));
  if (versions.empty()) {
    return Status::NotFound("atom " + std::to_string(id));
  }
  std::vector<AtomVersion> out;
  if (has_cold() && window.begin < versions.front().valid.begin) {
    TCOB_ASSIGN_OR_RETURN(out, ColdVersions(type, id, window));
  }
  for (AtomVersion& v : versions) {
    if (v.valid.Overlaps(window)) out.push_back(std::move(v));
  }
  return out;
}

Status SnapshotStore::DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                               const VersionCallback& fn) const {
  return DoScanVersions(type, Interval::At(t), fn);
}

Status SnapshotStore::DoScanVersions(const AtomTypeDef& type,
                                   const Interval& window,
                                   const VersionCallback& fn) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Scan in version-index order — ascending (atom id, version_no), i.e.
  // ascending (id, begin) — instead of physical heap order. Heap order
  // is not stable under migration (freed slots get reused), so the
  // canonical order keeps scan output identical with and without a cold
  // tier; cold versions merge in front of each atom's hot chain.
  std::map<AtomId, std::vector<AtomVersion>> cold;
  TCOB_RETURN_NOT_OK(ColdCollectAll(type, window, &cold));
  AtomId current = kInvalidAtomId;
  auto emit_cold = [&](AtomId id) -> Result<bool> {
    auto it = cold.find(id);
    if (it == cold.end()) return true;
    for (AtomVersion& v : it->second) {
      TCOB_ASSIGN_OR_RETURN(bool more, fn(v));
      if (!more) return false;
    }
    return true;
  };
  return state->index->Scan(
      Slice(), Slice(), [&](const Slice& key, uint64_t packed) -> Result<bool> {
        (void)key;
        TCOB_ASSIGN_OR_RETURN(std::string rec,
                              state->heap->Get(Rid::Unpack(packed)));
        Slice in(rec);
        TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
        if (v.id != current) {
          current = v.id;
          TCOB_ASSIGN_OR_RETURN(bool more, emit_cold(v.id));
          if (!more) return false;
        }
        if (!v.valid.Overlaps(window)) return true;
        return fn(v);
      });
}

Result<StoreSpaceStats> SnapshotStore::SpaceStats() const {
  StoreSpaceStats stats;
  for (const auto& [type_id, state] : types_) {
    (void)type_id;
    TCOB_ASSIGN_OR_RETURN(HeapFileStats heap, state.heap->Stats());
    TCOB_ASSIGN_OR_RETURN(PageNo index_pages,
                          pool_->disk()->NumPages(state.index->file_id()));
    stats.heap_pages += heap.total_pages;
    stats.index_pages += index_pages;
    stats.version_count += heap.record_count;
  }
  stats.total_bytes = (stats.heap_pages + stats.index_pages) * kPageSize;
  return stats;
}

Status SnapshotStore::Flush() { return pool_->FlushAll(); }

}  // namespace tcob

namespace tcob {

Result<uint64_t> SnapshotStore::VacuumBefore(const AtomTypeDef& type,
                                             Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  struct Victim {
    Rid rid;
    AtomId id;
    uint32_t version_no;
  };
  std::vector<Victim> victims;
  TCOB_RETURN_NOT_OK(state->heap->Scan(
      [&](const Rid& rid, const Slice& rec) -> Result<bool> {
        Slice in(rec);
        TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
        if (v.valid.end <= cutoff) {
          victims.push_back({rid, v.id, v.version_no});
        }
        return true;
      }));
  for (const Victim& victim : victims) {
    TCOB_RETURN_NOT_OK(state->heap->Delete(victim.rid));
    TCOB_RETURN_NOT_OK(
        state->index->Delete(VersionKey(victim.id, victim.version_no)));
  }
  return static_cast<uint64_t>(victims.size());
}

Result<uint64_t> SnapshotStore::ReleaseMigrated(const AtomTypeDef& type,
                                                Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  struct Located {
    Rid rid;
    AtomVersion v;
  };
  std::map<AtomId, std::vector<Located>> by_atom;
  TCOB_RETURN_NOT_OK(state->heap->Scan(
      [&](const Rid& rid, const Slice& rec) -> Result<bool> {
        Slice in(rec);
        TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &in));
        by_atom[v.id].push_back({rid, std::move(v)});
        return true;
      }));
  uint64_t released = 0;
  for (auto& [id, chain] : by_atom) {
    (void)id;
    std::sort(chain.begin(), chain.end(),
              [](const Located& a, const Located& b) {
                return a.v.valid.begin < b.v.valid.begin;
              });
    std::vector<AtomVersion> versions;
    versions.reserve(chain.size());
    for (const Located& l : chain) versions.push_back(l.v);
    size_t n = MigratablePrefix(versions, cutoff);
    for (size_t i = 0; i < n; ++i) {
      TCOB_RETURN_NOT_OK(state->heap->Delete(chain[i].rid));
      TCOB_RETURN_NOT_OK(state->index->Delete(
          VersionKey(chain[i].v.id, chain[i].v.version_no)));
      ++released;
    }
  }
  return released;
}

Status SnapshotStore::VerifyStructure(const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(TypeState* state, StateOf(type.id));
  TCOB_RETURN_NOT_OK(state->index->VerifyStructure());
  return state->index->Scan(
      Slice(), Slice(), [&](const Slice&, uint64_t v) -> Result<bool> {
        Result<std::string> rec = state->heap->Get(Rid::Unpack(v));
        if (!rec.ok()) {
          return Status::Corruption("version index of type " + type.name +
                                    " references unreadable record: " +
                                    rec.status().message());
        }
        return true;
      });
}

}  // namespace tcob
