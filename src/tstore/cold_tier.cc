#include "tstore/cold_tier.h"

#include <algorithm>
#include <utility>

#include "storage/page.h"
#include "tstore/temporal_store.h"

namespace tcob {

namespace {

/// Transient budget charge for one segment's decode buffer, released
/// when the decode scope ends. A refusal (over cap) only registers
/// pressure — the read proceeds regardless; the cap governs caches and
/// buffers, never correctness.
class ScopedDecodeCharge {
 public:
  ScopedDecodeCharge(ResourceBudget* budget, uint64_t bytes)
      : budget_(budget),
        bytes_(bytes),
        charged_(budget != nullptr && budget->TryCharge(bytes)) {}

  ScopedDecodeCharge(const ScopedDecodeCharge&) = delete;
  ScopedDecodeCharge& operator=(const ScopedDecodeCharge&) = delete;

  ~ScopedDecodeCharge() {
    if (charged_) budget_->Release(bytes_);
  }

 private:
  ResourceBudget* budget_;
  uint64_t bytes_;
  bool charged_;
};

}  // namespace

Result<ColdTier::TypeState*> ColdTier::EnsureState(const AtomTypeDef& type,
                                                   bool create) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = types_.find(type.id);
  if (it != types_.end()) {
    if (it->second == nullptr && create) {
      it->second = std::make_unique<TypeState>();
      TCOB_ASSIGN_OR_RETURN(it->second->heap,
                            HeapFile::Open(pool_, HeapName(type.id)));
    }
    return it->second.get();
  }

  // First touch of this type: the heap file's existence on disk decides
  // whether there is cold state to load (read paths must not create a
  // file — a SELECT may never dirty a page).
  DiskManager* disk = pool_->disk();
  std::string path = disk->dir() + "/" + HeapName(type.id);
  TCOB_ASSIGN_OR_RETURN(bool exists, disk->env()->FileExists(path));
  if (!exists && !create) {
    types_[type.id] = nullptr;
    return static_cast<TypeState*>(nullptr);
  }
  auto state = std::make_unique<TypeState>();
  TCOB_ASSIGN_OR_RETURN(state->heap, HeapFile::Open(pool_, HeapName(type.id)));
  if (exists) {
    // Rebuild the segment catalog by scanning the heap (segments are
    // few and the directory parse is cheap; payloads stay untouched).
    std::vector<std::pair<Rid, std::string>> blobs;
    TCOB_RETURN_NOT_OK(state->heap->Scan(
        [&](const Rid& rid, const Slice& record) -> Result<bool> {
          blobs.emplace_back(rid, record.ToString());
          return true;
        }));
    for (auto& [rid, blob] : blobs) {
      TCOB_ASSIGN_OR_RETURN(SegmentInfo info, DescribeBlob(rid, blob, type));
      state->segments.push_back(info);
    }
  }
  TypeState* out = state.get();
  types_[type.id] = std::move(state);
  return out;
}

Result<ColdTier::SegmentInfo> ColdTier::DescribeBlob(
    const Rid& rid, const std::string& blob, const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                        SegmentReader::Open(blob, type.AttrTypes()));
  if (reader.type() != type.id) {
    return Status::Corruption("cold tier: segment of type " +
                              std::to_string(reader.type()) + " in file of " +
                              type.name);
  }
  SegmentInfo info;
  info.rid = rid;
  info.fence = reader.fence();
  info.min_atom = reader.min_atom();
  info.max_atom = reader.max_atom();
  info.atom_count = static_cast<uint32_t>(reader.directory().size());
  info.version_count = reader.version_count();
  info.bytes = blob.size();
  return info;
}

Result<uint64_t> ColdTier::Migrate(
    const AtomTypeDef& type,
    const std::map<AtomId, std::vector<AtomVersion>>& atoms,
    ThreadPool* encoder_pool, uint64_t segment_target_bytes) {
  if (atoms.empty()) return 0;
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/true));
  std::vector<AttrType> schema = type.AttrTypes();
  if (segment_target_bytes == 0) segment_target_bytes = 32 * 1024;

  // Partition the (id-ascending) atoms into segment batches by their
  // full-record encoded size — the same bytes the live stores hold, so
  // the input/output byte counters measure true compression.
  std::vector<std::vector<const std::pair<const AtomId,
                                          std::vector<AtomVersion>>*>>
      batches;
  uint64_t batch_bytes = 0;
  uint64_t total_input = 0;
  for (const auto& entry : atoms) {
    uint64_t atom_bytes = 0;
    for (const AtomVersion& v : entry.second) {
      std::string full;
      TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, v, &full));
      atom_bytes += full.size();
    }
    if (batches.empty() || (batch_bytes > 0 &&
                            batch_bytes + atom_bytes > segment_target_bytes)) {
      batches.emplace_back();
      batch_bytes = 0;
    }
    batches.back().push_back(&entry);
    batch_bytes += atom_bytes;
    total_input += atom_bytes;
  }

  // Segment encoding is pure CPU work over already-collected versions;
  // fan it out. Heap appends below stay serial (single-threaded write
  // path through the journal).
  std::vector<Result<std::string>> encoded(batches.size(),
                                           Result<std::string>(std::string()));
  auto encode_one = [&](size_t b) {
    SegmentBuilder builder(type.id, schema);
    for (const auto* entry : batches[b]) {
      Status s = builder.AddAtom(entry->first, entry->second);
      if (!s.ok()) {
        encoded[b] = s;
        return;
      }
    }
    encoded[b] = builder.Finish();
  };
  if (encoder_pool != nullptr && batches.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(batches.size());
    for (size_t b = 0; b < batches.size(); ++b) {
      tasks.push_back([&encode_one, b] { encode_one(b); });
    }
    encoder_pool->RunAll(std::move(tasks));
  } else {
    for (size_t b = 0; b < batches.size(); ++b) encode_one(b);
  }

  uint64_t migrated = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    TCOB_ASSIGN_OR_RETURN(std::string blob, std::move(encoded[b]));
    TCOB_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(blob));
    TCOB_ASSIGN_OR_RETURN(SegmentInfo info, DescribeBlob(rid, blob, type));
    state->segments.push_back(info);
    migrated += info.version_count;
    segments_built_.Increment();
    output_bytes_.Add(info.bytes);
    TraceEmit(trace_, TraceEventType::kTierSegmentBuild, info.version_count);
  }
  versions_migrated_.Add(migrated);
  input_bytes_.Add(total_input);
  return migrated;
}

Result<std::vector<AtomVersion>> ColdTier::VersionsOf(
    const AtomTypeDef& type, AtomId id, const Interval& window) const {
  std::vector<AtomVersion> out;
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return out;
  for (const SegmentInfo& si : state->segments) {
    if (id < si.min_atom || id > si.max_atom || !si.fence.Overlaps(window)) {
      segments_pruned_.Increment();
      continue;
    }
    segments_scanned_.Increment();
    ScopedDecodeCharge decode_charge(memory_budget_, si.bytes);
    TCOB_ASSIGN_OR_RETURN(std::string blob, state->heap->Get(si.rid));
    TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                          SegmentReader::Open(std::move(blob),
                                              type.AttrTypes()));
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                          reader.VersionsOf(id));
    for (AtomVersion& v : versions) {
      if (v.valid.Overlaps(window)) out.push_back(std::move(v));
    }
  }
  // Successive migrations append time-ascending segments, but one
  // atom's versions may span several of them — normalize the order.
  std::sort(out.begin(), out.end(),
            [](const AtomVersion& a, const AtomVersion& b) {
              return a.valid.begin < b.valid.begin;
            });
  cold_versions_read_.Add(out.size());
  return out;
}

Status ColdTier::CollectAll(
    const AtomTypeDef& type, const Interval& window,
    std::map<AtomId, std::vector<AtomVersion>>* out) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return Status::OK();
  uint64_t collected = 0;
  std::vector<AtomId> touched;
  for (const SegmentInfo& si : state->segments) {
    if (!si.fence.Overlaps(window)) {
      segments_pruned_.Increment();
      continue;
    }
    segments_scanned_.Increment();
    ScopedDecodeCharge decode_charge(memory_budget_, si.bytes);
    TCOB_ASSIGN_OR_RETURN(std::string blob, state->heap->Get(si.rid));
    TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                          SegmentReader::Open(std::move(blob),
                                              type.AttrTypes()));
    for (size_t i = 0; i < reader.directory().size(); ++i) {
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                            reader.AtomVersions(i));
      for (AtomVersion& v : versions) {
        if (!v.valid.Overlaps(window)) continue;
        touched.push_back(v.id);
        (*out)[v.id].push_back(std::move(v));
        ++collected;
      }
    }
  }
  for (AtomId id : touched) {
    auto& versions = (*out)[id];
    std::sort(versions.begin(), versions.end(),
              [](const AtomVersion& a, const AtomVersion& b) {
                return a.valid.begin < b.valid.begin;
              });
  }
  cold_versions_read_.Add(collected);
  return Status::OK();
}

Result<ColdMarkers> ColdTier::MarkersAt(const AtomTypeDef& type, AtomId id,
                                        Timestamp t) const {
  ColdMarkers m;
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return m;
  for (const SegmentInfo& si : state->segments) {
    if (id < si.min_atom || id > si.max_atom || t < si.fence.begin ||
        t > si.fence.end) {
      segments_pruned_.Increment();
      continue;
    }
    segments_scanned_.Increment();
    ScopedDecodeCharge decode_charge(memory_budget_, si.bytes);
    TCOB_ASSIGN_OR_RETURN(std::string blob, state->heap->Get(si.rid));
    TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                          SegmentReader::Open(std::move(blob),
                                              type.AttrTypes()));
    TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                          reader.VersionsOf(id));
    for (const AtomVersion& v : versions) {
      if (v.valid.begin == t) {
        m.begins_at = true;
        if (v.version_no > 1) m.begins_update_at = true;
      }
      if (v.valid.end == t) m.ends_at = true;
    }
  }
  return m;
}

Result<bool> ColdTier::MightHave(const AtomTypeDef& type, AtomId id) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return false;
  for (const SegmentInfo& si : state->segments) {
    if (id >= si.min_atom && id <= si.max_atom) return true;
  }
  return false;
}

Result<uint64_t> ColdTier::VacuumBefore(const AtomTypeDef& type,
                                        Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return 0;
  uint64_t removed = 0;
  std::vector<SegmentInfo> kept;
  for (const SegmentInfo& si : state->segments) {
    if (si.fence.end <= cutoff) {
      // Every version ends within the fence: drop the whole segment
      // without reading its payload.
      TCOB_RETURN_NOT_OK(state->heap->Delete(si.rid));
      removed += si.version_count;
      continue;
    }
    if (si.fence.begin >= cutoff) {
      // end > begin >= cutoff for every version: nothing to remove.
      kept.push_back(si);
      continue;
    }
    // Straddler: decode, filter, rewrite.
    TCOB_ASSIGN_OR_RETURN(std::string blob, state->heap->Get(si.rid));
    TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                          SegmentReader::Open(std::move(blob),
                                              type.AttrTypes()));
    SegmentBuilder builder(type.id, type.AttrTypes());
    uint64_t dropped = 0;
    for (size_t i = 0; i < reader.directory().size(); ++i) {
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                            reader.AtomVersions(i));
      std::vector<AtomVersion> keep_versions;
      for (AtomVersion& v : versions) {
        if (v.valid.end <= cutoff) {
          ++dropped;
        } else {
          keep_versions.push_back(std::move(v));
        }
      }
      if (!keep_versions.empty()) {
        TCOB_RETURN_NOT_OK(builder.AddAtom(reader.directory()[i].id,
                                           std::move(keep_versions)));
      }
    }
    if (dropped == 0) {
      kept.push_back(si);
      continue;
    }
    removed += dropped;
    if (builder.empty()) {
      TCOB_RETURN_NOT_OK(state->heap->Delete(si.rid));
      continue;
    }
    TCOB_ASSIGN_OR_RETURN(std::string rebuilt, builder.Finish());
    TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->heap->Update(si.rid, rebuilt));
    TCOB_ASSIGN_OR_RETURN(SegmentInfo info,
                          DescribeBlob(new_rid, rebuilt, type));
    kept.push_back(info);
  }
  state->segments = std::move(kept);
  return removed;
}

Status ColdTier::VerifyIntegrity(const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return Status::OK();
  for (const SegmentInfo& si : state->segments) {
    TCOB_ASSIGN_OR_RETURN(std::string blob, state->heap->Get(si.rid));
    TCOB_ASSIGN_OR_RETURN(SegmentReader reader,
                          SegmentReader::Open(std::move(blob),
                                              type.AttrTypes()));
    if (reader.type() != type.id || !(reader.fence() == si.fence) ||
        reader.min_atom() != si.min_atom ||
        reader.max_atom() != si.max_atom ||
        reader.version_count() != si.version_count) {
      return Status::Corruption("cold tier: segment catalog mismatch for " +
                                type.name);
    }
    for (size_t i = 0; i < reader.directory().size(); ++i) {
      const SegmentAtomEntry& e = reader.directory()[i];
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> versions,
                            reader.AtomVersions(i));
      for (const AtomVersion& v : versions) {
        if (v.valid.empty() || v.valid.open_ended() ||
            !si.fence.Contains(v.valid) || !e.extent.Contains(v.valid)) {
          return Status::Corruption(
              "cold tier: version outside its fences, atom " +
              std::to_string(v.id) + " of " + type.name);
        }
      }
    }
  }
  return Status::OK();
}

Result<ColdSpaceStats> ColdTier::SpaceStats(const AtomTypeDef& type) const {
  ColdSpaceStats stats;
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return stats;
  for (const SegmentInfo& si : state->segments) {
    stats.segments += 1;
    stats.versions += si.version_count;
    stats.blob_bytes += si.bytes;
  }
  TCOB_ASSIGN_OR_RETURN(HeapFileStats heap_stats, state->heap->Stats());
  stats.total_pages = heap_stats.total_pages;
  return stats;
}

Result<std::vector<ColdTier::SegmentInfo>> ColdTier::Segments(
    const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, EnsureState(type, /*create=*/false));
  if (state == nullptr) return std::vector<SegmentInfo>{};
  return state->segments;
}

}  // namespace tcob
