#include "tstore/store_factory.h"

#include "tstore/integrated_store.h"
#include "tstore/separated_store.h"
#include "tstore/snapshot_store.h"

namespace tcob {

std::unique_ptr<TemporalAtomStore> MakeTemporalStore(
    StorageStrategy strategy, BufferPool* pool, const std::string& prefix,
    const StoreOptions& options) {
  switch (strategy) {
    case StorageStrategy::kSnapshot:
      return std::make_unique<SnapshotStore>(pool, prefix);
    case StorageStrategy::kIntegrated:
      return std::make_unique<IntegratedStore>(pool, prefix);
    case StorageStrategy::kSeparated:
      return std::make_unique<SeparatedStore>(pool, prefix, options);
  }
  return nullptr;
}

}  // namespace tcob
