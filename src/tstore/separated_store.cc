#include "tstore/separated_store.h"

#include <algorithm>

#include "common/coding.h"
#include "record/record_codec.h"

namespace tcob {

std::string SeparatedStore::VersionKey(AtomId id, Timestamp begin) {
  std::string key;
  PutComparableU64(&key, id);
  PutComparableI64(&key, begin);
  return key;
}

Result<SeparatedStore::TypeState*> SeparatedStore::StateOf(
    TypeId type) const {
  std::lock_guard<std::mutex> lock(types_mu_);
  auto it = types_.find(type);
  if (it != types_.end()) return &it->second;
  TypeState state;
  const std::string t = std::to_string(type);
  TCOB_ASSIGN_OR_RETURN(state.current,
                        HeapFile::Open(pool_, prefix_ + "_cur_" + t));
  TCOB_ASSIGN_OR_RETURN(state.history,
                        HeapFile::Open(pool_, prefix_ + "_hist_" + t));
  TCOB_ASSIGN_OR_RETURN(state.current_index,
                        BTree::Open(pool_, prefix_ + "_cidx_" + t));
  if (options_.separated_version_index) {
    TCOB_ASSIGN_OR_RETURN(state.version_index,
                          BTree::Open(pool_, prefix_ + "_vidx_" + t));
  }
  auto [pos, inserted] = types_.emplace(type, std::move(state));
  (void)inserted;
  return &pos->second;
}

Status SeparatedStore::EncodeCurrent(const std::vector<AttrType>& schema,
                                     const CurrentRecord& rec, AtomId id,
                                     TypeId type, std::string* dst) {
  (void)type;
  dst->push_back(rec.has_live ? 1 : 0);
  PutVarint64(dst, id);
  if (rec.has_live) {
    PutVarint32(dst, rec.live.version_no);
    PutVarsint64(dst, rec.live.valid.begin);
    TCOB_RETURN_NOT_OK(EncodeValues(schema, rec.live.attrs, dst));
  }
  PutVarint32(dst, rec.last_version_no);
  PutVarsint64(dst, rec.last_end);
  PutVarint64(dst, rec.chain_head.Pack());
  PutVarint32(dst, rec.chain_len);
  return Status::OK();
}

Result<SeparatedStore::CurrentRecord> SeparatedStore::DecodeCurrent(
    const std::vector<AttrType>& schema, AtomId id, TypeId type,
    Slice input) {
  CurrentRecord rec;
  if (input.empty()) return Status::Corruption("empty current record");
  rec.has_live = input[0] != 0;
  input.RemovePrefix(1);
  uint64_t stored_id;
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &stored_id));
  if (stored_id != id) {
    return Status::Corruption("current record id mismatch");
  }
  if (rec.has_live) {
    rec.live.id = id;
    rec.live.type = type;
    TCOB_RETURN_NOT_OK(GetVarint32(&input, &rec.live.version_no));
    TCOB_RETURN_NOT_OK(GetVarsint64(&input, &rec.live.valid.begin));
    rec.live.valid.end = kForever;
    TCOB_ASSIGN_OR_RETURN(rec.live.attrs, DecodeValues(schema, &input));
  }
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &rec.last_version_no));
  TCOB_RETURN_NOT_OK(GetVarsint64(&input, &rec.last_end));
  uint64_t packed;
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &packed));
  rec.chain_head = Rid::Unpack(packed);
  TCOB_RETURN_NOT_OK(GetVarint32(&input, &rec.chain_len));
  return rec;
}

Status SeparatedStore::EncodeHistory(const std::vector<AttrType>& schema,
                                     const AtomVersion& v, const Rid& prev,
                                     std::string* dst) {
  TCOB_RETURN_NOT_OK(EncodeAtomVersion(schema, v, dst));
  PutVarint64(dst, prev.Pack());
  return Status::OK();
}

Result<std::pair<AtomVersion, Rid>> SeparatedStore::DecodeHistory(
    const std::vector<AttrType>& schema, Slice input) {
  TCOB_ASSIGN_OR_RETURN(AtomVersion v, DecodeAtomVersion(schema, &input));
  uint64_t packed;
  TCOB_RETURN_NOT_OK(GetVarint64(&input, &packed));
  return std::make_pair(std::move(v), Rid::Unpack(packed));
}

Result<SeparatedStore::CurrentRecord> SeparatedStore::LoadCurrent(
    const AtomTypeDef& type, AtomId id, Rid* rid_out) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::string key;
  PutComparableU64(&key, id);
  Result<uint64_t> packed = state->current_index->Get(key);
  if (!packed.ok()) {
    // Only a clean miss means "no such atom"; I/O and corruption errors
    // must surface as themselves, never as a wrong NotFound answer.
    if (!packed.status().IsNotFound()) return packed.status();
    return Status::NotFound("atom " + std::to_string(id));
  }
  Rid rid = Rid::Unpack(packed.value());
  if (rid_out) *rid_out = rid;
  TCOB_ASSIGN_OR_RETURN(std::string rec, state->current->Get(rid));
  return DecodeCurrent(type.AttrTypes(), id, type.id, Slice(rec));
}

Status SeparatedStore::StoreCurrent(const AtomTypeDef& type, AtomId id,
                                    const Rid& rid,
                                    const CurrentRecord& rec) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::string bytes;
  TCOB_RETURN_NOT_OK(EncodeCurrent(type.AttrTypes(), rec, id, type.id, &bytes));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->current->Update(rid, bytes));
  if (new_rid != rid) {
    std::string key;
    PutComparableU64(&key, id);
    TCOB_RETURN_NOT_OK(state->current_index->Put(key, new_rid.Pack()));
  }
  return Status::OK();
}

Result<Rid> SeparatedStore::AppendHistory(const AtomTypeDef& type,
                                          const AtomVersion& closed,
                                          const Rid& prev) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::string bytes;
  TCOB_RETURN_NOT_OK(EncodeHistory(type.AttrTypes(), closed, prev, &bytes));
  TCOB_ASSIGN_OR_RETURN(Rid rid, state->history->Insert(bytes));
  if (state->version_index) {
    TCOB_RETURN_NOT_OK(state->version_index->Put(
        VersionKey(closed.id, closed.valid.begin), rid.Pack()));
  }
  return rid;
}

Status SeparatedStore::Insert(const AtomTypeDef& type, AtomId id,
                              std::vector<Value> attrs, Timestamp from) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  Rid rid;
  Result<CurrentRecord> existing = LoadCurrent(type, id, &rid);
  if (existing.ok()) {
    CurrentRecord& rec = existing.value();
    // Idempotent replay: a version starting at `from` means this insert
    // was already applied.
    TCOB_ASSIGN_OR_RETURN(ReplayMarkers markers,
                          ScanMarkers(type, id, rec, from));
    if (markers.begins_at) return Status::OK();
    if (rec.has_live) {
      return Status::AlreadyExists("atom " + std::to_string(id) +
                                   " already live");
    }
    if (from < rec.last_end) {
      return Status::InvalidArgument("re-insert before previous deletion");
    }
    rec.has_live = true;
    rec.live = AtomVersion{id, type.id, rec.last_version_no + 1,
                           Interval(from, kForever), std::move(attrs)};
    rec.last_version_no = rec.live.version_no;
    return StoreCurrent(type, id, rid, rec);
  }
  CurrentRecord rec;
  rec.has_live = true;
  rec.live = AtomVersion{id, type.id, 1, Interval(from, kForever),
                         std::move(attrs)};
  rec.last_version_no = 1;
  std::string bytes;
  TCOB_RETURN_NOT_OK(EncodeCurrent(type.AttrTypes(), rec, id, type.id, &bytes));
  TCOB_ASSIGN_OR_RETURN(Rid new_rid, state->current->Insert(bytes));
  std::string key;
  PutComparableU64(&key, id);
  return state->current_index->Put(key, new_rid.Pack());
}

Status SeparatedStore::Update(const AtomTypeDef& type, AtomId id,
                              std::vector<Value> attrs, Timestamp from) {
  Rid rid;
  TCOB_ASSIGN_OR_RETURN(CurrentRecord rec, LoadCurrent(type, id, &rid));
  // Idempotent replay: a successor version starting at `from` already
  // exists (version 1 can only come from Insert, so exclude a live v1).
  TCOB_ASSIGN_OR_RETURN(ReplayMarkers markers,
                        ScanMarkers(type, id, rec, from));
  if (markers.begins_at &&
      !(rec.has_live && rec.live.valid.begin == from &&
        rec.live.version_no == 1 && rec.chain_len == 0)) {
    return Status::OK();
  }
  if (!rec.has_live) {
    return Status::InvalidArgument("update of a dead atom");
  }
  if (rec.live.valid.begin == from) {
    return Status::InvalidArgument(
        "update at the exact begin of the current version");
  }
  if (from < rec.live.valid.begin) {
    return Status::InvalidArgument("retroactive update not supported");
  }
  AtomVersion closed = rec.live;
  closed.valid.end = from;
  TCOB_ASSIGN_OR_RETURN(Rid new_head,
                        AppendHistory(type, closed, rec.chain_head));
  rec.chain_head = new_head;
  ++rec.chain_len;
  rec.last_end = from;
  rec.live = AtomVersion{id, type.id, closed.version_no + 1,
                         Interval(from, kForever), std::move(attrs)};
  rec.last_version_no = rec.live.version_no;
  return StoreCurrent(type, id, rid, rec);
}

Status SeparatedStore::Delete(const AtomTypeDef& type, AtomId id,
                              Timestamp from) {
  Rid rid;
  TCOB_ASSIGN_OR_RETURN(CurrentRecord rec, LoadCurrent(type, id, &rid));
  // Idempotent replay: a version ending at `from` with no successor
  // starting there means this delete was already applied.
  TCOB_ASSIGN_OR_RETURN(ReplayMarkers markers,
                        ScanMarkers(type, id, rec, from));
  if (markers.ends_at && !markers.begins_at) return Status::OK();
  if (!rec.has_live) {
    return Status::InvalidArgument("delete of a dead atom");
  }
  if (from <= rec.live.valid.begin) {
    return Status::InvalidArgument("delete before the current version began");
  }
  AtomVersion closed = rec.live;
  closed.valid.end = from;
  TCOB_ASSIGN_OR_RETURN(Rid new_head,
                        AppendHistory(type, closed, rec.chain_head));
  rec.chain_head = new_head;
  ++rec.chain_len;
  rec.last_end = from;
  rec.has_live = false;
  rec.live = AtomVersion{};
  return StoreCurrent(type, id, rid, rec);
}

Result<std::optional<AtomVersion>> SeparatedStore::FindPast(
    const AtomTypeDef& type, AtomId id, const CurrentRecord& cur,
    Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Probes the cold tier once the hot store proved no version of `id`
  // begins at or before `t`. Cold versions are strictly older than every
  // hot one, so a hot-proven gap (a version ending at or before `t` with
  // no successor containing it) is never probed.
  auto find_cold = [&]() -> Result<std::optional<AtomVersion>> {
    if (has_cold()) {
      TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> cold,
                            ColdVersions(type, id, Interval::At(t)));
      for (AtomVersion& v : cold) {
        if (v.valid.Contains(t)) {
          return std::optional<AtomVersion>(std::move(v));
        }
      }
    }
    return std::optional<AtomVersion>();
  };
  if (state->version_index) {
    Result<std::pair<std::string, uint64_t>> floor =
        state->version_index->Floor(VersionKey(id, t));
    if (!floor.ok()) {
      if (floor.status().IsNotFound()) return find_cold();
      return floor.status();
    }
    // The floor entry must belong to the same atom.
    std::string prefix;
    PutComparableU64(&prefix, id);
    if (!Slice(floor.value().first).starts_with(prefix)) {
      return find_cold();
    }
    TCOB_ASSIGN_OR_RETURN(std::string rec,
                          state->history->Get(Rid::Unpack(floor->second)));
    ++chain_hops_;
    TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(rec)));
    if (decoded.first.valid.Contains(t)) {
      return std::optional<AtomVersion>(std::move(decoded.first));
    }
    return std::optional<AtomVersion>();  // gap (deleted period)
  }
  // Chain walk newest-to-oldest until version.begin <= t.
  Rid rid = cur.chain_head;
  while (rid.valid()) {
    TCOB_ASSIGN_OR_RETURN(std::string rec, state->history->Get(rid));
    ++chain_hops_;
    TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(rec)));
    if (decoded.first.valid.begin <= t) {
      if (decoded.first.valid.Contains(t)) {
        return std::optional<AtomVersion>(std::move(decoded.first));
      }
      return std::optional<AtomVersion>();  // gap
    }
    rid = decoded.second;
  }
  return find_cold();
}

Result<std::vector<AtomVersion>> SeparatedStore::CollectPast(
    const AtomTypeDef& type, const CurrentRecord& cur, const Interval& window,
    Timestamp* proved_floor) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Oldest begin the walk reaches; the live version counts as hot
  // knowledge when the chain is empty (all closed versions may have
  // migrated to the cold tier while the atom stays live).
  Timestamp proved = cur.has_live ? cur.live.valid.begin : kForever;
  std::vector<AtomVersion> newest_first;
  Rid rid = cur.chain_head;
  while (rid.valid()) {
    TCOB_ASSIGN_OR_RETURN(std::string rec, state->history->Get(rid));
    ++chain_hops_;
    TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(rec)));
    if (decoded.first.valid.end <= window.begin) {
      // A hot version already older than the window: every cold version
      // is older still, so nothing below can overlap it.
      proved = kMinTimestamp;
      break;
    }
    proved = decoded.first.valid.begin;
    if (decoded.first.valid.Overlaps(window)) {
      newest_first.push_back(std::move(decoded.first));
    }
    rid = decoded.second;
  }
  if (proved_floor) *proved_floor = proved;
  std::reverse(newest_first.begin(), newest_first.end());
  return newest_first;
}

Result<SeparatedStore::ReplayMarkers> SeparatedStore::ScanMarkers(
    const AtomTypeDef& type, AtomId id, const CurrentRecord& cur,
    Timestamp at) const {
  ReplayMarkers markers;
  if (cur.has_live && cur.live.valid.begin == at) markers.begins_at = true;
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  Rid rid = cur.chain_head;
  while (rid.valid()) {
    TCOB_ASSIGN_OR_RETURN(std::string rec, state->history->Get(rid));
    TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(rec)));
    if (decoded.first.valid.begin == at) markers.begins_at = true;
    if (decoded.first.valid.end == at) markers.ends_at = true;
    rid = decoded.second;
  }
  // The markers must cover the full history: a cold version may end
  // exactly where a hot one begins (the migration boundary), and a
  // replayed mutation may predate everything still hot.
  if (has_cold()) {
    TCOB_ASSIGN_OR_RETURN(ColdMarkers cold, ColdMarkersAt(type, id, at));
    markers.begins_at = markers.begins_at || cold.begins_at;
    markers.ends_at = markers.ends_at || cold.ends_at;
  }
  return markers;
}

Result<std::optional<AtomVersion>> SeparatedStore::DoGetAsOf(
    const AtomTypeDef& type, AtomId id, Timestamp t) const {
  TCOB_ASSIGN_OR_RETURN(CurrentRecord rec, LoadCurrent(type, id, nullptr));
  if (rec.has_live && rec.live.valid.Contains(t)) {
    return std::optional<AtomVersion>(rec.live);
  }
  if (rec.has_live && t >= rec.live.valid.begin) {
    return std::optional<AtomVersion>();  // future of a live atom: live wins
  }
  if (!rec.has_live && t >= rec.last_end) {
    return std::optional<AtomVersion>();  // after deletion
  }
  return FindPast(type, id, rec, t);
}

Result<std::vector<AtomVersion>> SeparatedStore::DoGetVersions(
    const AtomTypeDef& type, AtomId id, const Interval& window) const {
  TCOB_ASSIGN_OR_RETURN(CurrentRecord rec, LoadCurrent(type, id, nullptr));
  Timestamp proved = kForever;
  TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> past,
                        CollectPast(type, rec, window, &proved));
  std::vector<AtomVersion> out;
  if (has_cold() && window.begin < proved) {
    TCOB_ASSIGN_OR_RETURN(out, ColdVersions(type, id, window));
  }
  for (AtomVersion& v : past) out.push_back(std::move(v));
  if (rec.has_live && rec.live.valid.Overlaps(window)) {
    out.push_back(rec.live);
  }
  return out;
}

Status SeparatedStore::DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                                const VersionCallback& fn) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Scan in current-index order — ascending atom id — instead of
  // physical heap order. Heap order is not stable under migration
  // (freed slots get reused), so the canonical order keeps scan output
  // identical with and without a cold tier.
  return state->current_index->Scan(
      Slice(), Slice(), [&](const Slice& key, uint64_t packed) -> Result<bool> {
        (void)key;
        TCOB_ASSIGN_OR_RETURN(std::string raw,
                              state->current->Get(Rid::Unpack(packed)));
        Slice peek(raw);
        if (peek.empty()) return Status::Corruption("empty current record");
        // Decode enough to learn the atom id.
        peek.RemovePrefix(1);
        uint64_t id;
        TCOB_RETURN_NOT_OK(GetVarint64(&peek, &id));
        TCOB_ASSIGN_OR_RETURN(
            CurrentRecord rec,
            DecodeCurrent(schema, id, type.id, Slice(raw)));
        if (rec.has_live && rec.live.valid.Contains(t)) {
          return fn(rec.live);
        }
        if ((rec.has_live && t < rec.live.valid.begin) ||
            (!rec.has_live && t < rec.last_end)) {
          TCOB_ASSIGN_OR_RETURN(std::optional<AtomVersion> past,
                                FindPast(type, id, rec, t));
          if (past.has_value()) return fn(*past);
        }
        return true;
      });
}

Status SeparatedStore::DoScanVersions(const AtomTypeDef& type,
                                    const Interval& window,
                                    const VersionCallback& fn) const {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Canonical scan order: ascending atom id via the current index, each
  // atom's cold versions first (they are strictly the oldest), then its
  // hot chain, then the live version. Identical with and without a cold
  // tier — physical heap order is not stable under migration.
  std::map<AtomId, std::vector<AtomVersion>> cold;
  TCOB_RETURN_NOT_OK(ColdCollectAll(type, window, &cold));
  return state->current_index->Scan(
      Slice(), Slice(), [&](const Slice& key, uint64_t packed) -> Result<bool> {
        (void)key;
        TCOB_ASSIGN_OR_RETURN(std::string raw,
                              state->current->Get(Rid::Unpack(packed)));
        Slice peek(raw);
        if (peek.empty()) return Status::Corruption("empty current record");
        peek.RemovePrefix(1);
        uint64_t id;
        TCOB_RETURN_NOT_OK(GetVarint64(&peek, &id));
        TCOB_ASSIGN_OR_RETURN(CurrentRecord rec,
                              DecodeCurrent(schema, id, type.id, Slice(raw)));
        auto it = cold.find(id);
        if (it != cold.end()) {
          for (const AtomVersion& v : it->second) {
            TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(v));
            if (!keep_going) return false;
          }
        }
        TCOB_ASSIGN_OR_RETURN(std::vector<AtomVersion> past,
                              CollectPast(type, rec, window));
        for (const AtomVersion& v : past) {
          TCOB_ASSIGN_OR_RETURN(bool keep_going, fn(v));
          if (!keep_going) return false;
        }
        if (rec.has_live && rec.live.valid.Overlaps(window)) {
          return fn(rec.live);
        }
        return true;
      });
}

Result<StoreSpaceStats> SeparatedStore::SpaceStats() const {
  StoreSpaceStats stats;
  for (const auto& [type_id, state] : types_) {
    (void)type_id;
    TCOB_ASSIGN_OR_RETURN(HeapFileStats cur, state.current->Stats());
    TCOB_ASSIGN_OR_RETURN(HeapFileStats hist, state.history->Stats());
    stats.heap_pages += cur.total_pages + hist.total_pages;
    TCOB_ASSIGN_OR_RETURN(
        PageNo cidx_pages,
        pool_->disk()->NumPages(state.current_index->file_id()));
    stats.index_pages += cidx_pages;
    if (state.version_index) {
      TCOB_ASSIGN_OR_RETURN(
          PageNo vidx_pages,
          pool_->disk()->NumPages(state.version_index->file_id()));
      stats.index_pages += vidx_pages;
    }
    stats.atom_count += cur.record_count;
    stats.version_count += cur.record_count + hist.record_count;
  }
  stats.total_bytes = (stats.heap_pages + stats.index_pages) * kPageSize;
  return stats;
}

Status SeparatedStore::Flush() { return pool_->FlushAll(); }

}  // namespace tcob

namespace tcob {

Result<uint64_t> SeparatedStore::VacuumBefore(const AtomTypeDef& type,
                                              Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Snapshot the current-store entries first (we mutate while iterating
  // otherwise).
  std::vector<std::pair<Rid, AtomId>> atoms;
  TCOB_RETURN_NOT_OK(state->current->Scan(
      [&](const Rid& rid, const Slice& raw) -> Result<bool> {
        Slice peek(raw);
        if (peek.empty()) return Status::Corruption("empty current record");
        peek.RemovePrefix(1);
        uint64_t id;
        TCOB_RETURN_NOT_OK(GetVarint64(&peek, &id));
        atoms.emplace_back(rid, id);
        return true;
      }));

  uint64_t removed = 0;
  for (const auto& [rid, id] : atoms) {
    TCOB_ASSIGN_OR_RETURN(std::string raw, state->current->Get(rid));
    TCOB_ASSIGN_OR_RETURN(CurrentRecord rec,
                          DecodeCurrent(schema, id, type.id, Slice(raw)));
    // Materialize the chain newest-to-oldest.
    std::vector<std::pair<Rid, AtomVersion>> chain;
    Rid r = rec.chain_head;
    while (r.valid()) {
      TCOB_ASSIGN_OR_RETURN(std::string hrec, state->history->Get(r));
      TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(hrec)));
      chain.emplace_back(r, std::move(decoded.first));
      r = decoded.second;
    }
    // Version ends decrease going older, so the drop set is a suffix.
    size_t cut = chain.size();
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].second.valid.end <= cutoff) {
        cut = i;
        break;
      }
    }
    if (cut == chain.size()) continue;  // nothing to vacuum for this atom
    // Remove the dropped suffix (records + version-index entries).
    for (size_t i = cut; i < chain.size(); ++i) {
      TCOB_RETURN_NOT_OK(state->history->Delete(chain[i].first));
      if (state->version_index) {
        TCOB_RETURN_NOT_OK(state->version_index->Delete(
            VersionKey(id, chain[i].second.valid.begin)));
      }
      ++removed;
    }
    // Rebuild the kept prefix oldest-first so the chain pointers are
    // fresh (avoids in-place pointer surgery on variable-size records).
    for (size_t i = 0; i < cut; ++i) {
      TCOB_RETURN_NOT_OK(state->history->Delete(chain[i].first));
    }
    Rid prev;  // invalid
    for (size_t i = cut; i-- > 0;) {
      TCOB_ASSIGN_OR_RETURN(prev, AppendHistory(type, chain[i].second, prev));
    }
    rec.chain_head = prev;
    rec.chain_len = static_cast<uint32_t>(cut);
    if (!rec.has_live && cut == 0) {
      // The whole atom predates the cutoff: forget it entirely.
      TCOB_RETURN_NOT_OK(state->current->Delete(rid));
      std::string key;
      PutComparableU64(&key, id);
      TCOB_RETURN_NOT_OK(state->current_index->Delete(key));
      continue;
    }
    TCOB_RETURN_NOT_OK(StoreCurrent(type, id, rid, rec));
  }
  return removed;
}

Result<uint64_t> SeparatedStore::ReleaseMigrated(const AtomTypeDef& type,
                                                 Timestamp cutoff) {
  TCOB_ASSIGN_OR_RETURN(TypeState * state, StateOf(type.id));
  std::vector<AttrType> schema = type.AttrTypes();
  // Snapshot the current-store entries first (we mutate while iterating
  // otherwise).
  std::vector<std::pair<Rid, AtomId>> atoms;
  TCOB_RETURN_NOT_OK(state->current->Scan(
      [&](const Rid& rid, const Slice& raw) -> Result<bool> {
        Slice peek(raw);
        if (peek.empty()) return Status::Corruption("empty current record");
        peek.RemovePrefix(1);
        uint64_t id;
        TCOB_RETURN_NOT_OK(GetVarint64(&peek, &id));
        atoms.emplace_back(rid, id);
        return true;
      }));

  uint64_t removed = 0;
  for (const auto& [rid, id] : atoms) {
    TCOB_ASSIGN_OR_RETURN(std::string raw, state->current->Get(rid));
    TCOB_ASSIGN_OR_RETURN(CurrentRecord rec,
                          DecodeCurrent(schema, id, type.id, Slice(raw)));
    // Materialize the chain newest-to-oldest.
    std::vector<std::pair<Rid, AtomVersion>> chain;
    Rid r = rec.chain_head;
    while (r.valid()) {
      TCOB_ASSIGN_OR_RETURN(std::string hrec, state->history->Get(r));
      TCOB_ASSIGN_OR_RETURN(auto decoded, DecodeHistory(schema, Slice(hrec)));
      chain.emplace_back(r, std::move(decoded.first));
      r = decoded.second;
    }
    // The shared migration predicate wants the versions sorted by begin:
    // the reversed chain followed by the live version.
    std::vector<AtomVersion> versions;
    versions.reserve(chain.size() + 1);
    for (size_t i = chain.size(); i-- > 0;) versions.push_back(chain[i].second);
    if (rec.has_live) versions.push_back(rec.live);
    size_t migrate = MigratablePrefix(versions, cutoff);
    if (migrate == 0) continue;
    // The oldest `migrate` versions are the last ones of the newest-first
    // chain; remove them (records + version-index entries).
    size_t cut = chain.size() - migrate;
    for (size_t i = cut; i < chain.size(); ++i) {
      TCOB_RETURN_NOT_OK(state->history->Delete(chain[i].first));
      if (state->version_index) {
        TCOB_RETURN_NOT_OK(state->version_index->Delete(
            VersionKey(id, chain[i].second.valid.begin)));
      }
      ++removed;
    }
    // Rebuild the kept prefix oldest-first so the chain pointers are
    // fresh (same scheme as VacuumBefore).
    for (size_t i = 0; i < cut; ++i) {
      TCOB_RETURN_NOT_OK(state->history->Delete(chain[i].first));
    }
    Rid prev;  // invalid
    for (size_t i = cut; i-- > 0;) {
      TCOB_ASSIGN_OR_RETURN(prev, AppendHistory(type, chain[i].second, prev));
    }
    rec.chain_head = prev;
    rec.chain_len = static_cast<uint32_t>(cut);
    // Unlike VacuumBefore there is no "forget entirely" case: the anchor
    // rule keeps the newest closed version (or the live one) hot, so the
    // current record always survives migration.
    TCOB_RETURN_NOT_OK(StoreCurrent(type, id, rid, rec));
  }
  return removed;
}

Status SeparatedStore::VerifyStructure(const AtomTypeDef& type) const {
  TCOB_ASSIGN_OR_RETURN(TypeState* state, StateOf(type.id));
  TCOB_RETURN_NOT_OK(state->current_index->VerifyStructure());
  TCOB_RETURN_NOT_OK(state->current_index->Scan(
      Slice(), Slice(), [&](const Slice&, uint64_t v) -> Result<bool> {
        Result<std::string> rec = state->current->Get(Rid::Unpack(v));
        if (!rec.ok()) {
          return Status::Corruption("current index of type " + type.name +
                                    " references unreadable record: " +
                                    rec.status().message());
        }
        return true;
      }));
  if (state->version_index != nullptr) {
    TCOB_RETURN_NOT_OK(state->version_index->VerifyStructure());
    TCOB_RETURN_NOT_OK(state->version_index->Scan(
        Slice(), Slice(), [&](const Slice&, uint64_t v) -> Result<bool> {
          Result<std::string> rec = state->history->Get(Rid::Unpack(v));
          if (!rec.ok()) {
            return Status::Corruption("version index of type " + type.name +
                                      " references unreadable record: " +
                                      rec.status().message());
          }
          return true;
        }));
  }
  return Status::OK();
}

}  // namespace tcob
