#ifndef TCOB_TSTORE_INTEGRATED_STORE_H_
#define TCOB_TSTORE_INTEGRATED_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/btree.h"
#include "storage/heap_file.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Physical design with embedded version clusters: all versions of an
/// atom live in one growing record, spilling into overflow pages as the
/// history lengthens.
///
/// Consequences (the shapes Fig. 5-8 expect):
///  * reading the *whole* history of an atom is a single (multi-page)
///    record fetch — the cheapest of the three designs,
///  * any access, including current-time access, pays for the entire
///    cluster, so time-slice cost grows with history length,
///  * updates rewrite the cluster, so update cost grows with history
///    length too.
class IntegratedStore : public TemporalAtomStore {
 public:
  IntegratedStore(BufferPool* pool, std::string file_prefix)
      : pool_(pool), prefix_(std::move(file_prefix)) {}

  StorageStrategy strategy() const override {
    return StorageStrategy::kIntegrated;
  }

  Status Insert(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Update(const AtomTypeDef& type, AtomId id, std::vector<Value> attrs,
                Timestamp from) override;
  Status Delete(const AtomTypeDef& type, AtomId id, Timestamp from) override;

  Result<StoreSpaceStats> SpaceStats() const override;
  Status Flush() override;
  Result<uint64_t> VacuumBefore(const AtomTypeDef& type,
                                Timestamp cutoff) override;
  Result<uint64_t> ReleaseMigrated(const AtomTypeDef& type,
                                   Timestamp cutoff) override;

  /// B+-tree invariants of the index, plus every index entry must
  /// resolve to a readable heap record.
  Status VerifyStructure(const AtomTypeDef& type) const override;

 protected:
  Result<std::optional<AtomVersion>> DoGetAsOf(const AtomTypeDef& type,
                                               AtomId id,
                                               Timestamp t) const override;
  Result<std::vector<AtomVersion>> DoGetVersions(
      const AtomTypeDef& type, AtomId id,
      const Interval& window) const override;
  Status DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                    const VersionCallback& fn) const override;
  Status DoScanVersions(const AtomTypeDef& type, const Interval& window,
                        const VersionCallback& fn) const override;

 private:
  struct TypeState {
    std::unique_ptr<HeapFile> heap;
    std::unique_ptr<BTree> index;  // id -> cluster Rid
  };

  Result<TypeState*> StateOf(TypeId type) const;

  /// Cluster codec: [id][type][n] then n x [vno][begin][end][attrs].
  static Status EncodeCluster(const std::vector<AttrType>& schema, AtomId id,
                              TypeId type,
                              const std::vector<AtomVersion>& versions,
                              std::string* dst);
  static Result<std::vector<AtomVersion>> DecodeCluster(
      const std::vector<AttrType>& schema, Slice input);

  /// Loads the cluster of `id`; NotFound if the atom was never inserted.
  Result<std::vector<AtomVersion>> LoadCluster(const AtomTypeDef& type,
                                               AtomId id, Rid* rid_out) const;

  Status StoreCluster(const AtomTypeDef& type, AtomId id, const Rid& rid,
                      const std::vector<AtomVersion>& versions);

  BufferPool* pool_;
  std::string prefix_;
  // Guards lazy TypeState creation (map nodes are stable once created).
  mutable std::mutex types_mu_;
  mutable std::map<TypeId, TypeState> types_;
};

}  // namespace tcob

#endif  // TCOB_TSTORE_INTEGRATED_STORE_H_
