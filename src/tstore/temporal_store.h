#ifndef TCOB_TSTORE_TEMPORAL_STORE_H_
#define TCOB_TSTORE_TEMPORAL_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/slice.h"
#include "record/value.h"
#include "time/interval.h"
#include "time/timeline.h"

namespace tcob {

/// One state of an atom: its attribute values stamped with the interval
/// during which they were valid.
struct AtomVersion {
  AtomId id = kInvalidAtomId;
  TypeId type = kInvalidTypeId;
  uint32_t version_no = 0;  // 1-based, per atom, monotonically increasing
  Interval valid;
  std::vector<Value> attrs;
};

/// Physical design alternatives for atom histories (the paper's subject).
enum class StorageStrategy {
  /// Baseline: every version is an independent full record in one heap;
  /// time selection scans an atom's versions linearly.
  kSnapshot,
  /// All versions of an atom clustered into one growing record ("version
  /// cluster"), spilling to overflow pages as the history grows.
  kIntegrated,
  /// Current store (exactly the live versions) + append-only history
  /// store with newest-to-oldest version chains.
  kSeparated,
};

const char* StorageStrategyName(StorageStrategy s);
Result<StorageStrategy> StorageStrategyFromName(const std::string& name);

/// Tuning knobs shared by the store implementations.
struct StoreOptions {
  /// kSeparated only: maintain a persistent (atom, begin) -> history-RID
  /// directory so past time slices use a logarithmic lookup instead of
  /// walking the version chain. Fig. 10 ablates this.
  bool separated_version_index = true;
};

/// Space accounting of one store (all atom types).
struct StoreSpaceStats {
  uint64_t heap_pages = 0;
  uint64_t index_pages = 0;
  uint64_t total_bytes = 0;
  uint64_t atom_count = 0;
  uint64_t version_count = 0;
};

/// Logical read-access accounting of one store (monotonic counters, like
/// BufferPoolStats). Each counted call is one storage round-trip — index
/// probes, page fetches, record decodes — so query-layer caches aim to
/// minimize exactly these numbers.
struct StoreAccessStats {
  uint64_t get_as_of = 0;
  uint64_t get_versions = 0;
  uint64_t scan_as_of = 0;
  uint64_t scan_versions = 0;

  uint64_t Total() const {
    return get_as_of + get_versions + scan_as_of + scan_versions;
  }

  /// Delta between two snapshots of the same monotonic counters
  /// (EXPLAIN ANALYZE attributes per-query accesses this way).
  StoreAccessStats& operator-=(const StoreAccessStats& o) {
    get_as_of -= o.get_as_of;
    get_versions -= o.get_versions;
    scan_as_of -= o.scan_as_of;
    scan_versions -= o.scan_versions;
    return *this;
  }
};

class ColdTier;

/// Read-access accounting of the cold-history tier (monotonic counters;
/// deltas feed the EXPLAIN ANALYZE tiering span). Zero when no cold
/// tier is attached.
struct ColdTierAccessStats {
  uint64_t segments_pruned = 0;   // skipped via fence / atom-range test
  uint64_t segments_scanned = 0;  // payload actually decoded
  uint64_t cold_versions = 0;     // versions materialized from segments

  ColdTierAccessStats& operator-=(const ColdTierAccessStats& o) {
    segments_pruned -= o.segments_pruned;
    segments_scanned -= o.segments_scanned;
    cold_versions -= o.cold_versions;
    return *this;
  }
};

/// Whether an atom begins or ends a cold version exactly at one instant
/// (replay-idempotence checks for retroactive DML consult this, so DML
/// against old timestamps reports the same status with and without
/// tiering).
struct ColdMarkers {
  bool begins_at = false;         // some cold version begins at t
  bool begins_update_at = false;  // ... with version_no > 1 (an update)
  bool ends_at = false;           // some cold version ends at t
};

/// Storage-strategy-independent interface over versioned atoms.
///
/// Mutation contract (shared by all implementations):
///  * Insert creates version 1 valid in [from, forever).
///  * Update closes the current version at `from` and opens a successor
///    valid in [from, forever). `from` must be strictly after the current
///    version's begin.
///  * Delete closes the current version at `from`, leaving the atom with
///    no live version (it may be re-inserted later, resuming its history).
///
/// All three mutations are idempotent with respect to WAL replay: an
/// operation whose effects are already present reports OK without
/// changing anything.
class TemporalAtomStore {
 public:
  using VersionCallback =
      std::function<Result<bool>(const AtomVersion&)>;

  virtual ~TemporalAtomStore() = default;

  virtual StorageStrategy strategy() const = 0;

  virtual Status Insert(const AtomTypeDef& type, AtomId id,
                        std::vector<Value> attrs, Timestamp from) = 0;
  virtual Status Update(const AtomTypeDef& type, AtomId id,
                        std::vector<Value> attrs, Timestamp from) = 0;
  virtual Status Delete(const AtomTypeDef& type, AtomId id,
                        Timestamp from) = 0;

  /// The version of atom `id` valid at `t`, or nullopt if the atom did
  /// not exist then. NotFound only if the atom was never inserted.
  Result<std::optional<AtomVersion>> GetAsOf(const AtomTypeDef& type,
                                             AtomId id, Timestamp t) const {
    get_as_of_.Increment();
    return DoGetAsOf(type, id, t);
  }

  /// All versions of `id` overlapping `window`, in time order.
  Result<std::vector<AtomVersion>> GetVersions(const AtomTypeDef& type,
                                               AtomId id,
                                               const Interval& window) const {
    get_versions_.Increment();
    return DoGetVersions(type, id, window);
  }

  /// Streams the version of *every* atom of `type` valid at `t`.
  Status ScanAsOf(const AtomTypeDef& type, Timestamp t,
                  const VersionCallback& fn) const {
    scan_as_of_.Increment();
    return DoScanAsOf(type, t, fn);
  }

  /// Streams every version of every atom of `type` overlapping `window`.
  Status ScanVersions(const AtomTypeDef& type, const Interval& window,
                      const VersionCallback& fn) const {
    scan_versions_.Increment();
    return DoScanVersions(type, window, fn);
  }

  /// Snapshot of the cumulative read-access counters (see
  /// StoreAccessStats). The counters are bookkeeping, not state: they are
  /// relaxed atomics incremented by concurrent readers, and resetting
  /// them is a const operation so benchmarks can meter individual query
  /// phases against a const store — safely even while readers run.
  StoreAccessStats access_stats() const {
    StoreAccessStats s;
    s.get_as_of = get_as_of_.value();
    s.get_versions = get_versions_.value();
    s.scan_as_of = scan_as_of_.value();
    s.scan_versions = scan_versions_.value();
    return s;
  }
  void ResetAccessStats() const {
    get_as_of_.Reset();
    get_versions_.Reset();
    scan_as_of_.Reset();
    scan_versions_.Reset();
  }

  /// Publishes the access counters into `registry` under tcob_store_*.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("tcob_store_get_as_of_total", &get_as_of_);
    registry->RegisterCounter("tcob_store_get_versions_total", &get_versions_);
    registry->RegisterCounter("tcob_store_scan_as_of_total", &scan_as_of_);
    registry->RegisterCounter("tcob_store_scan_versions_total",
                              &scan_versions_);
  }

  virtual Result<StoreSpaceStats> SpaceStats() const = 0;

  /// Structural self-check of the physical state backing `type`: every
  /// version interval must be well-formed (begin < end) and each atom's
  /// versions must form a non-overlapping timeline; then the strategy's
  /// VerifyStructure validates its B+-trees and record plumbing.
  /// Read-only; returns Corruption describing the first violation.
  Status VerifyIntegrity(const AtomTypeDef& type) const;

  /// Strategy-specific structural checks behind VerifyIntegrity (B+-tree
  /// invariants, index-to-heap resolution). Default: nothing to check.
  virtual Status VerifyStructure(const AtomTypeDef& type) const {
    (void)type;
    return Status::OK();
  }

  /// Flushes all store state through the buffer pool to disk.
  virtual Status Flush() = 0;

  /// Temporal vacuuming: physically removes every version whose validity
  /// ends at or before `cutoff` (versions overlapping the cutoff stay).
  /// Returns the number of versions removed. Vacuuming is a physical
  /// reorganization, not a logged operation — the Database wraps it in
  /// checkpoints so WAL replay never observes a vacuumed store.
  virtual Result<uint64_t> VacuumBefore(const AtomTypeDef& type,
                                        Timestamp cutoff) = 0;

  // ---- cold-history tiering ----

  /// Attaches the cold tier. Afterwards every public read transparently
  /// merges hot store + cold segments in timeline order; mutations and
  /// NotFound semantics are unaffected (the anchor rule below keeps at
  /// least one version of every atom hot).
  void AttachColdTier(ColdTier* cold) { cold_ = cold; }
  ColdTier* cold_tier() const { return cold_; }

  /// Snapshot of the attached tier's read counters (zeros when none).
  ColdTierAccessStats cold_access_stats() const;

  /// Versions eligible for migration at `cutoff`, grouped per atom in
  /// ascending begin order: every version with valid.end <= cutoff,
  /// except that an atom whose versions would *all* migrate keeps its
  /// newest one hot (the anchor rule — hot stores never forget an atom,
  /// so id allocation, version numbering and NotFound semantics are
  /// identical with and without tiering). Reads only hot state.
  Result<std::map<AtomId, std::vector<AtomVersion>>> CollectMigratable(
      const AtomTypeDef& type, Timestamp cutoff) const;

  /// Physically removes exactly the versions CollectMigratable(cutoff)
  /// reported — called after they were durably written to the cold
  /// tier. Returns the number of versions removed.
  virtual Result<uint64_t> ReleaseMigrated(const AtomTypeDef& type,
                                           Timestamp cutoff) = 0;

 protected:
  /// Shared migration predicate: number of leading versions of a
  /// begin-sorted, non-overlapping chain that migrate at `cutoff`
  /// (closed versions form a prefix; the anchor rule holds one back
  /// when the whole chain is old). CollectMigratable and every
  /// ReleaseMigrated implementation use this, so the two sides always
  /// agree exactly.
  static size_t MigratablePrefix(const std::vector<AtomVersion>& versions,
                                 Timestamp cutoff);

  // Cold-tier read helpers for the strategy implementations; all are
  // no-ops (empty / false) when no tier is attached. Implemented in the
  // .cc against the full ColdTier type.
  bool has_cold() const { return cold_ != nullptr; }
  Result<std::vector<AtomVersion>> ColdVersions(const AtomTypeDef& type,
                                                AtomId id,
                                                const Interval& window) const;
  Result<ColdMarkers> ColdMarkersAt(const AtomTypeDef& type, AtomId id,
                                    Timestamp t) const;
  Result<bool> ColdMightHave(const AtomTypeDef& type, AtomId id) const;
  Status ColdCollectAll(const AtomTypeDef& type, const Interval& window,
                        std::map<AtomId, std::vector<AtomVersion>>* out) const;

 protected:
  /// Strategy-specific read paths behind the counting wrappers above.
  virtual Result<std::optional<AtomVersion>> DoGetAsOf(const AtomTypeDef& type,
                                                       AtomId id,
                                                       Timestamp t) const = 0;
  virtual Result<std::vector<AtomVersion>> DoGetVersions(
      const AtomTypeDef& type, AtomId id, const Interval& window) const = 0;
  virtual Status DoScanAsOf(const AtomTypeDef& type, Timestamp t,
                            const VersionCallback& fn) const = 0;
  virtual Status DoScanVersions(const AtomTypeDef& type,
                                const Interval& window,
                                const VersionCallback& fn) const = 0;

 private:
  ColdTier* cold_ = nullptr;

  // Relaxed-atomic Counters (see common/metrics.h): concurrent fan-out
  // readers bump them lock-free and totals stay exact.
  mutable Counter get_as_of_;
  mutable Counter get_versions_;
  mutable Counter scan_as_of_;
  mutable Counter scan_versions_;
};

// ---- shared record codecs ----

/// Full per-version record: [id][type][version_no][begin][end][attrs].
Status EncodeAtomVersion(const std::vector<AttrType>& schema,
                         const AtomVersion& v, std::string* dst);
Result<AtomVersion> DecodeAtomVersion(const std::vector<AttrType>& schema,
                                      Slice* input);

/// Builds a VersionTimeline (payload = index) over a version list sorted
/// by begin. Fails on overlapping versions.
Result<VersionTimeline> TimelineOf(const std::vector<AtomVersion>& versions);

}  // namespace tcob

#endif  // TCOB_TSTORE_TEMPORAL_STORE_H_
