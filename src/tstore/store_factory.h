#ifndef TCOB_TSTORE_STORE_FACTORY_H_
#define TCOB_TSTORE_STORE_FACTORY_H_

#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Instantiates the TemporalAtomStore for `strategy`, with its files
/// named "<prefix>_*" under the pool's disk manager.
std::unique_ptr<TemporalAtomStore> MakeTemporalStore(
    StorageStrategy strategy, BufferPool* pool, const std::string& prefix,
    const StoreOptions& options);

}  // namespace tcob

#endif  // TCOB_TSTORE_STORE_FACTORY_H_
