#include "tstore/segment.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "record/record_codec.h"

namespace tcob {

namespace {

constexpr uint32_t kSegmentMagic = 0x54435331;  // "TCS1"
constexpr size_t kFooterSize = 4;               // CRC-32C

size_t BitmapBytes(size_t n_attrs) { return (n_attrs + 7) / 8; }

}  // namespace

Status SegmentBuilder::AddAtom(AtomId id, std::vector<AtomVersion> versions) {
  if (id == kInvalidAtomId) {
    return Status::InvalidArgument("segment: invalid atom id");
  }
  if (!atoms_.empty() && id <= atoms_.back().id) {
    return Status::InvalidArgument("segment: atoms must be added in "
                                   "ascending id order");
  }
  if (versions.empty()) {
    return Status::InvalidArgument("segment: atom with no versions");
  }
  for (size_t i = 0; i < versions.size(); ++i) {
    const AtomVersion& v = versions[i];
    if (v.valid.empty() || v.valid.open_ended()) {
      return Status::InvalidArgument(
          "segment: version interval must be closed and non-empty, got " +
          v.valid.ToString());
    }
    if (v.attrs.size() != schema_.size()) {
      return Status::InvalidArgument("segment: attribute count mismatch");
    }
    if (i > 0) {
      if (v.valid.begin < versions[i - 1].valid.end) {
        return Status::InvalidArgument("segment: versions overlap or are "
                                       "out of order");
      }
      if (v.version_no <= versions[i - 1].version_no) {
        return Status::InvalidArgument("segment: version numbers must "
                                       "increase along the chain");
      }
    }
  }
  version_count_ += versions.size();
  atoms_.push_back(PendingAtom{id, std::move(versions)});
  return Status::OK();
}

Result<std::string> SegmentBuilder::Finish() {
  if (atoms_.empty()) {
    return Status::InvalidArgument("segment: empty segment");
  }
  Interval fence = atoms_.front().versions.front().valid;
  for (const PendingAtom& a : atoms_) {
    fence.begin = std::min(fence.begin, a.versions.front().valid.begin);
    fence.end = std::max(fence.end, a.versions.back().valid.end);
  }

  // Payload first: the directory needs every atom's offset.
  std::string payload;
  std::vector<uint64_t> offsets;
  offsets.reserve(atoms_.size());
  for (const PendingAtom& a : atoms_) {
    offsets.push_back(payload.size());
    const AtomVersion* prev = nullptr;
    for (const AtomVersion& v : a.versions) {
      if (prev == nullptr) {
        PutVarint32(&payload, v.version_no);
        PutVarint64(&payload,
                    static_cast<uint64_t>(v.valid.begin - fence.begin));
        PutVarint64(&payload,
                    static_cast<uint64_t>(v.valid.end - v.valid.begin));
        TCOB_RETURN_NOT_OK(EncodeValues(schema_, v.attrs, &payload));
      } else {
        PutVarint32(&payload, v.version_no - prev->version_no);
        PutVarint64(&payload,
                    static_cast<uint64_t>(v.valid.begin - prev->valid.end));
        PutVarint64(&payload,
                    static_cast<uint64_t>(v.valid.end - v.valid.begin));
        std::string bitmap(BitmapBytes(schema_.size()), '\0');
        std::vector<AttrType> changed_schema;
        std::vector<Value> changed_values;
        for (size_t i = 0; i < schema_.size(); ++i) {
          if (!v.attrs[i].Equals(prev->attrs[i])) {
            bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
            changed_schema.push_back(schema_[i]);
            changed_values.push_back(v.attrs[i]);
          }
        }
        payload.append(bitmap);
        TCOB_RETURN_NOT_OK(
            EncodeValues(changed_schema, changed_values, &payload));
      }
      prev = &v;
    }
  }

  std::string out;
  PutFixed32(&out, kSegmentMagic);
  PutVarint32(&out, type_);
  PutVarsint64(&out, fence.begin);
  PutVarsint64(&out, fence.end);
  PutVarint32(&out, static_cast<uint32_t>(atoms_.size()));
  AtomId prev_id = 0;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const PendingAtom& a = atoms_[i];
    PutVarint64(&out, a.id - prev_id);
    prev_id = a.id;
    PutVarint32(&out, static_cast<uint32_t>(a.versions.size()));
    PutVarint64(&out, offsets[i]);
    PutVarint64(&out, static_cast<uint64_t>(a.versions.front().valid.begin -
                                            fence.begin));
    PutVarint64(&out, static_cast<uint64_t>(fence.end -
                                            a.versions.back().valid.end));
  }
  PutVarint64(&out, payload.size());
  out.append(payload);
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  atoms_.clear();
  version_count_ = 0;
  return out;
}

Result<SegmentReader> SegmentReader::Open(std::string bytes,
                                          std::vector<AttrType> schema) {
  SegmentReader r;
  r.bytes_ = std::move(bytes);
  r.schema_ = std::move(schema);
  if (r.bytes_.size() < kFooterSize + 4) {
    return Status::Corruption("segment: truncated (no footer)");
  }
  size_t body_len = r.bytes_.size() - kFooterSize;
  Slice footer(r.bytes_.data() + body_len, kFooterSize);
  uint32_t stored_crc;
  TCOB_RETURN_NOT_OK(GetFixed32(&footer, &stored_crc));
  if (stored_crc != Crc32c(r.bytes_.data(), body_len)) {
    return Status::Corruption("segment: checksum mismatch");
  }

  Slice in(r.bytes_.data(), body_len);
  uint32_t magic;
  TCOB_RETURN_NOT_OK(GetFixed32(&in, &magic));
  if (magic != kSegmentMagic) {
    return Status::Corruption("segment: bad magic");
  }
  uint32_t type_raw;
  TCOB_RETURN_NOT_OK(GetVarint32(&in, &type_raw));
  r.type_ = type_raw;
  TCOB_RETURN_NOT_OK(GetVarsint64(&in, &r.fence_.begin));
  TCOB_RETURN_NOT_OK(GetVarsint64(&in, &r.fence_.end));
  if (r.fence_.empty()) {
    return Status::Corruption("segment: empty fence interval");
  }
  uint64_t fence_span =
      static_cast<uint64_t>(r.fence_.end) - static_cast<uint64_t>(r.fence_.begin);
  uint32_t atom_count;
  TCOB_RETURN_NOT_OK(GetVarint32(&in, &atom_count));
  if (atom_count == 0) {
    return Status::Corruption("segment: zero atoms");
  }
  r.dir_.reserve(atom_count);
  AtomId prev_id = 0;
  uint64_t prev_offset = 0;
  for (uint32_t i = 0; i < atom_count; ++i) {
    SegmentAtomEntry e;
    uint64_t id_delta;
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &id_delta));
    if (id_delta == 0) {
      return Status::Corruption("segment: non-ascending atom ids");
    }
    e.id = prev_id + id_delta;
    prev_id = e.id;
    TCOB_RETURN_NOT_OK(GetVarint32(&in, &e.version_count));
    if (e.version_count == 0) {
      return Status::Corruption("segment: atom with zero versions");
    }
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &e.payload_offset));
    if (i == 0 ? e.payload_offset != 0 : e.payload_offset <= prev_offset) {
      return Status::Corruption("segment: non-ascending payload offsets");
    }
    prev_offset = e.payload_offset;
    uint64_t begin_delta, end_delta;
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &begin_delta));
    TCOB_RETURN_NOT_OK(GetVarint64(&in, &end_delta));
    if (begin_delta > fence_span || end_delta > fence_span) {
      return Status::Corruption("segment: atom extent outside fence");
    }
    e.extent.begin = r.fence_.begin + static_cast<Timestamp>(begin_delta);
    e.extent.end = r.fence_.end - static_cast<Timestamp>(end_delta);
    if (e.extent.empty()) {
      return Status::Corruption("segment: empty atom extent");
    }
    r.version_count_ += e.version_count;
    r.dir_.push_back(e);
  }
  TCOB_RETURN_NOT_OK(GetVarint64(&in, &r.payload_len_));
  if (in.size() != r.payload_len_) {
    return Status::Corruption("segment: payload length mismatch");
  }
  for (const SegmentAtomEntry& e : r.dir_) {
    if (e.payload_offset >= r.payload_len_) {
      return Status::Corruption("segment: payload offset out of range");
    }
  }
  r.payload_begin_ = body_len - static_cast<size_t>(r.payload_len_);
  return r;
}

Result<std::vector<AtomVersion>> SegmentReader::AtomVersions(
    size_t dir_index) const {
  if (dir_index >= dir_.size()) {
    return Status::InvalidArgument("segment: directory index out of range");
  }
  const SegmentAtomEntry& e = dir_[dir_index];
  uint64_t chain_end = dir_index + 1 < dir_.size()
                           ? dir_[dir_index + 1].payload_offset
                           : payload_len_;
  Slice chain(bytes_.data() + payload_begin_ + e.payload_offset,
              static_cast<size_t>(chain_end - e.payload_offset));
  std::vector<AtomVersion> out;
  out.reserve(e.version_count);
  for (uint32_t i = 0; i < e.version_count; ++i) {
    AtomVersion v;
    v.id = e.id;
    v.type = type_;
    if (i == 0) {
      TCOB_RETURN_NOT_OK(GetVarint32(&chain, &v.version_no));
      uint64_t begin_delta, len;
      TCOB_RETURN_NOT_OK(GetVarint64(&chain, &begin_delta));
      TCOB_RETURN_NOT_OK(GetVarint64(&chain, &len));
      uint64_t fence_span = static_cast<uint64_t>(fence_.end) -
                            static_cast<uint64_t>(fence_.begin);
      if (begin_delta > fence_span || len == 0 ||
          len > fence_span - begin_delta) {
        return Status::Corruption("segment: version outside fence");
      }
      v.valid.begin = fence_.begin + static_cast<Timestamp>(begin_delta);
      v.valid.end = v.valid.begin + static_cast<Timestamp>(len);
      TCOB_ASSIGN_OR_RETURN(v.attrs, DecodeValues(schema_, &chain));
    } else {
      const AtomVersion& prev = out.back();
      uint32_t vno_delta;
      TCOB_RETURN_NOT_OK(GetVarint32(&chain, &vno_delta));
      if (vno_delta == 0) {
        return Status::Corruption("segment: non-increasing version number");
      }
      v.version_no = prev.version_no + vno_delta;
      uint64_t gap, len;
      TCOB_RETURN_NOT_OK(GetVarint64(&chain, &gap));
      TCOB_RETURN_NOT_OK(GetVarint64(&chain, &len));
      uint64_t room = static_cast<uint64_t>(fence_.end) -
                      static_cast<uint64_t>(prev.valid.end);
      if (gap > room || len == 0 || len > room - gap) {
        return Status::Corruption("segment: version outside fence");
      }
      v.valid.begin = prev.valid.end + static_cast<Timestamp>(gap);
      v.valid.end = v.valid.begin + static_cast<Timestamp>(len);
      size_t nbytes = BitmapBytes(schema_.size());
      if (chain.size() < nbytes) {
        return Status::Corruption("segment: truncated change bitmap");
      }
      const char* bitmap = chain.data();
      chain.RemovePrefix(nbytes);
      std::vector<AttrType> changed_schema;
      std::vector<size_t> changed_pos;
      for (size_t a = 0; a < schema_.size(); ++a) {
        if (bitmap[a / 8] & (1u << (a % 8))) {
          changed_schema.push_back(schema_[a]);
          changed_pos.push_back(a);
        }
      }
      TCOB_ASSIGN_OR_RETURN(std::vector<Value> changed,
                            DecodeValues(changed_schema, &chain));
      v.attrs = prev.attrs;
      for (size_t a = 0; a < changed_pos.size(); ++a) {
        v.attrs[changed_pos[a]] = std::move(changed[a]);
      }
    }
    out.push_back(std::move(v));
  }
  if (!chain.empty()) {
    return Status::Corruption("segment: trailing bytes in atom chain");
  }
  return out;
}

Result<std::vector<AtomVersion>> SegmentReader::VersionsOf(AtomId id) const {
  auto it = std::lower_bound(
      dir_.begin(), dir_.end(), id,
      [](const SegmentAtomEntry& e, AtomId target) { return e.id < target; });
  if (it == dir_.end() || it->id != id) return std::vector<AtomVersion>{};
  return AtomVersions(static_cast<size_t>(it - dir_.begin()));
}

}  // namespace tcob
