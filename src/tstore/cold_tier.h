#ifndef TCOB_TSTORE_COLD_TIER_H_
#define TCOB_TSTORE_COLD_TIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/resource_budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/heap_file.h"
#include "tstore/segment.h"
#include "tstore/temporal_store.h"

namespace tcob {

/// Space accounting of the cold tier for one atom type.
struct ColdSpaceStats {
  uint64_t segments = 0;
  uint64_t versions = 0;
  uint64_t blob_bytes = 0;   // compressed segment payload bytes
  uint64_t total_pages = 0;  // on-disk pages of the cold heap file
};

/// Cumulative migration accounting (monotonic counters).
struct ColdTierMigrationStats {
  uint64_t segments_built = 0;
  uint64_t versions_migrated = 0;
  uint64_t input_bytes = 0;   // full-record encoding of migrated versions
  uint64_t output_bytes = 0;  // delta-compressed segment bytes
};

/// The cold-history tier: immutable delta-compressed segments holding
/// closed atom versions older than the tiering watermark.
///
/// One heap file per atom type ("<prefix>_cold_<type>"), each record one
/// segment blob, read and written through the shared BufferPool — so
/// cold pages carry CRC footers, compete for the same frames, and every
/// mutation (migration append, vacuum drop/rewrite) stages in the page
/// journal and becomes durable only at the enclosing checkpoint's commit
/// point, exactly like the live stores.
///
/// Read paths prune on the per-segment fence interval and atom-id range
/// before touching a page; the pruned/scanned counters feed EXPLAIN
/// ANALYZE. The hot stores guarantee (anchor rule) that every atom with
/// cold versions still has at least one hot version, and that all cold
/// versions of an atom are strictly older than its hot ones.
class ColdTier {
 public:
  ColdTier(BufferPool* pool, std::string prefix)
      : pool_(pool), prefix_(std::move(prefix)) {}

  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  /// In-memory descriptor of one segment record.
  struct SegmentInfo {
    Rid rid;
    Interval fence;
    AtomId min_atom = kInvalidAtomId;
    AtomId max_atom = kInvalidAtomId;
    uint32_t atom_count = 0;
    uint64_t version_count = 0;
    uint64_t bytes = 0;
  };

  /// Appends segments holding `atoms` (per atom: closed versions in
  /// ascending begin order), partitioned so each segment's input stays
  /// near `segment_target_bytes`. Segment encoding is CPU-only and fans
  /// out on `encoder_pool` when provided; heap appends stay serial.
  /// Returns the number of versions written.
  Result<uint64_t> Migrate(
      const AtomTypeDef& type,
      const std::map<AtomId, std::vector<AtomVersion>>& atoms,
      ThreadPool* encoder_pool, uint64_t segment_target_bytes);

  /// Every cold version of `id` overlapping `window`, ascending begin.
  Result<std::vector<AtomVersion>> VersionsOf(const AtomTypeDef& type,
                                              AtomId id,
                                              const Interval& window) const;

  /// All cold versions of every atom overlapping `window`, merged into
  /// *out (appended per atom, then each atom's list sorted by begin).
  Status CollectAll(const AtomTypeDef& type, const Interval& window,
                    std::map<AtomId, std::vector<AtomVersion>>* out) const;

  Result<ColdMarkers> MarkersAt(const AtomTypeDef& type, AtomId id,
                                Timestamp t) const;

  /// Cheap gate: false when no segment's atom-id range covers `id`.
  /// Never touches a payload page (directory metadata only).
  Result<bool> MightHave(const AtomTypeDef& type, AtomId id) const;

  /// Drops every cold version whose validity ends at or before `cutoff`:
  /// whole segments with fence.end <= cutoff are deleted without being
  /// read; straddling segments are decoded, filtered and rewritten.
  /// Returns the number of versions removed.
  Result<uint64_t> VacuumBefore(const AtomTypeDef& type, Timestamp cutoff);

  /// Re-opens and fully decodes every segment (CRC, structure, interval
  /// sanity) and cross-checks the in-memory catalog against it.
  Status VerifyIntegrity(const AtomTypeDef& type) const;

  Result<ColdSpaceStats> SpaceStats(const AtomTypeDef& type) const;

  /// Copies of the segment descriptors of `type` (for `.tiering`).
  Result<std::vector<SegmentInfo>> Segments(const AtomTypeDef& type) const;

  ColdTierAccessStats access_stats() const {
    ColdTierAccessStats s;
    s.segments_pruned = segments_pruned_.value();
    s.segments_scanned = segments_scanned_.value();
    s.cold_versions = cold_versions_read_.value();
    return s;
  }
  void ResetAccessStats() const {
    segments_pruned_.Reset();
    segments_scanned_.Reset();
    cold_versions_read_.Reset();
  }

  ColdTierMigrationStats migration_stats() const {
    ColdTierMigrationStats s;
    s.segments_built = segments_built_.value();
    s.versions_migrated = versions_migrated_.value();
    s.input_bytes = input_bytes_.value();
    s.output_bytes = output_bytes_.value();
    return s;
  }

  /// Charges segment decode buffers against `budget` (may be null) for
  /// the duration of each decode. A refused charge never fails a read —
  /// it only counts as budget pressure.
  void set_memory_budget(ResourceBudget* budget) { memory_budget_ = budget; }

  /// Attaches the flight recorder (segment-build events).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Publishes the tier counters into `registry` under tcob_cold_*.
  void RegisterMetrics(MetricsRegistry* registry) const {
    registry->RegisterCounter("tcob_cold_segments_pruned_total",
                              &segments_pruned_);
    registry->RegisterCounter("tcob_cold_segments_scanned_total",
                              &segments_scanned_);
    registry->RegisterCounter("tcob_cold_versions_read_total",
                              &cold_versions_read_);
    registry->RegisterCounter("tcob_cold_segments_built_total",
                              &segments_built_);
    registry->RegisterCounter("tcob_cold_versions_migrated_total",
                              &versions_migrated_);
    registry->RegisterCounter("tcob_cold_input_bytes_total", &input_bytes_);
    registry->RegisterCounter("tcob_cold_output_bytes_total", &output_bytes_);
  }

 private:
  struct TypeState {
    std::unique_ptr<HeapFile> heap;
    std::vector<SegmentInfo> segments;
  };

  std::string HeapName(TypeId type) const {
    return prefix_ + "_cold_" + std::to_string(type);
  }

  /// Returns the cached state for `type`, rebuilding the in-memory
  /// segment catalog from the heap file on first touch. Read paths pass
  /// create=false and get nullptr when no cold file exists; the
  /// migration path passes create=true and formats one.
  Result<TypeState*> EnsureState(const AtomTypeDef& type, bool create) const;

  Result<SegmentInfo> DescribeBlob(const Rid& rid, const std::string& blob,
                                   const AtomTypeDef& type) const;

  BufferPool* pool_;
  std::string prefix_;
  ResourceBudget* memory_budget_ = nullptr;
  TraceRecorder* trace_ = nullptr;

  // Lazy catalog; guarded by mu_ for load/registration. Loaded states
  // are only mutated by the single-threaded write path (migrate,
  // vacuum), while concurrent query workers read them lock-free.
  mutable std::mutex mu_;
  mutable std::map<TypeId, std::unique_ptr<TypeState>> types_;

  mutable Counter segments_pruned_;
  mutable Counter segments_scanned_;
  mutable Counter cold_versions_read_;
  mutable Counter segments_built_;
  mutable Counter versions_migrated_;
  mutable Counter input_bytes_;
  mutable Counter output_bytes_;
};

}  // namespace tcob

#endif  // TCOB_TSTORE_COLD_TIER_H_
