#include "time/interval.h"

#include <cassert>

namespace tcob {

std::string TimestampToString(Timestamp t) {
  if (t == kForever) return "forever";
  return std::to_string(t);
}

std::string Interval::ToString() const {
  if (empty()) return "[empty)";
  return "[" + TimestampToString(begin) + ", " + TimestampToString(end) + ")";
}

AllenRelation ClassifyAllen(const Interval& a, const Interval& b) {
  assert(!a.empty() && !b.empty());
  if (a.end < b.begin) return AllenRelation::kBefore;
  if (a.end == b.begin) return AllenRelation::kMeets;
  if (b.end < a.begin) return AllenRelation::kAfter;
  if (b.end == a.begin) return AllenRelation::kMetBy;
  // From here the intervals properly intersect.
  if (a.begin == b.begin) {
    if (a.end == b.end) return AllenRelation::kEquals;
    return a.end < b.end ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.end == b.end) {
    return a.begin > b.begin ? AllenRelation::kFinishes
                             : AllenRelation::kFinishedBy;
  }
  if (a.begin > b.begin && a.end < b.end) return AllenRelation::kDuring;
  if (b.begin > a.begin && b.end < a.end) return AllenRelation::kContains;
  return a.begin < b.begin ? AllenRelation::kOverlaps
                           : AllenRelation::kOverlappedBy;
}

const char* AllenRelationName(AllenRelation r) {
  switch (r) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kAfter:
      return "after";
  }
  return "?";
}

}  // namespace tcob
