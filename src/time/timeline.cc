#include "time/timeline.h"

#include <algorithm>

namespace tcob {

Status VersionTimeline::Append(const Interval& valid, uint64_t payload) {
  if (valid.empty()) {
    return Status::InvalidArgument("timeline entry interval is empty");
  }
  if (!entries_.empty()) {
    const Interval& last = entries_.back().valid;
    if (last.open_ended()) {
      return Status::InvalidArgument(
          "cannot append after an open-ended timeline entry; close it first");
    }
    if (valid.begin < last.end) {
      return Status::InvalidArgument("timeline entries must not overlap: " +
                                     valid.ToString() + " vs " +
                                     last.ToString());
    }
  }
  entries_.push_back({valid, payload});
  return Status::OK();
}

Status VersionTimeline::CloseLast(Timestamp at) {
  if (entries_.empty()) {
    return Status::InvalidArgument("timeline is empty");
  }
  Interval& last = entries_.back().valid;
  if (!last.open_ended()) {
    return Status::InvalidArgument("last timeline entry is already closed");
  }
  if (at <= last.begin) {
    return Status::InvalidArgument(
        "close point must be after the last entry's begin");
  }
  last.end = at;
  return Status::OK();
}

std::optional<uint64_t> VersionTimeline::AsOf(Timestamp t) const {
  // First entry with valid.end > t; it contains t iff its begin <= t.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), t,
      [](Timestamp v, const TimelineEntry& e) { return v < e.valid.end; });
  if (it != entries_.end() && it->valid.Contains(t)) return it->payload;
  return std::nullopt;
}

std::vector<TimelineEntry> VersionTimeline::Overlapping(
    const Interval& window) const {
  std::vector<TimelineEntry> out;
  if (window.empty()) return out;
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), window.begin,
      [](Timestamp v, const TimelineEntry& e) { return v < e.valid.end; });
  for (; it != entries_.end() && it->valid.begin < window.end; ++it) {
    out.push_back(*it);
  }
  return out;
}

TemporalElement VersionTimeline::Lifespan() const {
  TemporalElement span;
  for (const TimelineEntry& e : entries_) span.Add(e.valid);
  return span;
}

std::vector<Timestamp> VersionTimeline::BoundariesIn(
    const Interval& window) const {
  std::vector<Timestamp> out;
  for (const TimelineEntry& e : Overlapping(window)) {
    if (e.valid.begin >= window.begin) out.push_back(e.valid.begin);
    if (!e.valid.open_ended() && e.valid.end < window.end) {
      out.push_back(e.valid.end);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string VersionTimeline::ToString() const {
  std::string out = "timeline[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) out += " ";
    out += entries_[i].valid.ToString() + "->" +
           std::to_string(entries_[i].payload);
  }
  out += "]";
  return out;
}

}  // namespace tcob
