#include "time/calendar.h"

#include <cstdio>

namespace tcob {

const char* GranularityName(Granularity g) {
  switch (g) {
    case Granularity::kDay:
      return "day";
    case Granularity::kHour:
      return "hour";
    case Granularity::kMinute:
      return "minute";
    case Granularity::kSecond:
      return "second";
  }
  return "?";
}

bool operator==(const CivilDate& a, const CivilDate& b) {
  return a.year == b.year && a.month == b.month && a.day == b.day;
}

bool operator==(const CivilTime& a, const CivilTime& b) {
  return a.date == b.date && a.hour == b.hour && a.minute == b.minute &&
         a.second == b.second;
}

int64_t DaysFromCivil(const CivilDate& date) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int64_t y = date.year;
  const int64_t m = date.month;
  const int64_t d = date.day;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                           // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;   // [0,146096]
  return era * 146097 + doe - 719468;
}

CivilDate CivilFromDays(int64_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                        // [0,146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;   // [0, 399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  CivilDate out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  return out;
}

bool IsValidDate(const CivilDate& date) {
  if (date.month < 1 || date.month > 12) return false;
  if (date.day < 1) return false;
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int max_day = kDays[date.month - 1];
  const bool leap = (date.year % 4 == 0 && date.year % 100 != 0) ||
                    date.year % 400 == 0;
  if (date.month == 2 && leap) max_day = 29;
  return date.day <= max_day;
}

int64_t Calendar::UnitsPerDay() const {
  switch (granularity_) {
    case Granularity::kDay:
      return 1;
    case Granularity::kHour:
      return 24;
    case Granularity::kMinute:
      return 24 * 60;
    case Granularity::kSecond:
      return 24 * 60 * 60;
  }
  return 1;
}

Timestamp Calendar::FromDate(const CivilDate& date) const {
  return DaysFromCivil(date) * UnitsPerDay();
}

Timestamp Calendar::FromCivil(const CivilTime& time) const {
  Timestamp base = FromDate(time.date);
  switch (granularity_) {
    case Granularity::kDay:
      return base;
    case Granularity::kHour:
      return base + time.hour;
    case Granularity::kMinute:
      return base + time.hour * 60 + time.minute;
    case Granularity::kSecond:
      return base + time.hour * 3600 + time.minute * 60 + time.second;
  }
  return base;
}

CivilTime Calendar::ToCivil(Timestamp t) const {
  const int64_t per_day = UnitsPerDay();
  int64_t days = t / per_day;
  int64_t rem = t % per_day;
  if (rem < 0) {
    rem += per_day;
    --days;
  }
  CivilTime out;
  out.date = CivilFromDays(days);
  switch (granularity_) {
    case Granularity::kDay:
      break;
    case Granularity::kHour:
      out.hour = static_cast<int>(rem);
      break;
    case Granularity::kMinute:
      out.hour = static_cast<int>(rem / 60);
      out.minute = static_cast<int>(rem % 60);
      break;
    case Granularity::kSecond:
      out.hour = static_cast<int>(rem / 3600);
      out.minute = static_cast<int>((rem / 60) % 60);
      out.second = static_cast<int>(rem % 60);
      break;
  }
  return out;
}

Result<Timestamp> Calendar::Parse(const std::string& text) const {
  CivilTime time;
  int matched =
      sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &time.date.year,
             &time.date.month, &time.date.day, &time.hour, &time.minute,
             &time.second);
  if (matched != 3 && matched != 6) {
    return Status::ParseError("expected YYYY-MM-DD[ HH:MM:SS]: " + text);
  }
  if (!IsValidDate(time.date)) {
    return Status::InvalidArgument("invalid calendar date: " + text);
  }
  if (matched == 6 &&
      (time.hour < 0 || time.hour > 23 || time.minute < 0 ||
       time.minute > 59 || time.second < 0 || time.second > 59)) {
    return Status::InvalidArgument("invalid time of day: " + text);
  }
  return FromCivil(time);
}

std::string Calendar::Format(Timestamp t) const {
  if (t == kForever) return "forever";
  CivilTime time = ToCivil(t);
  char buf[40];
  if (granularity_ == Granularity::kDay) {
    snprintf(buf, sizeof(buf), "%04d-%02d-%02d", time.date.year,
             time.date.month, time.date.day);
  } else {
    snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
             time.date.year, time.date.month, time.date.day, time.hour,
             time.minute, time.second);
  }
  return buf;
}

}  // namespace tcob
