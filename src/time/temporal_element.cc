#include "time/temporal_element.h"

#include <algorithm>

namespace tcob {

void TemporalElement::Add(const Interval& iv) {
  if (iv.empty()) return;
  // Find the run of existing intervals mergeable with iv, replace the run
  // with the merged interval. intervals_ stays sorted and canonical.
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  Interval merged = iv;
  size_t i = 0;
  // Keep everything strictly before (non-adjacent to) iv.
  while (i < intervals_.size() && intervals_[i].end < merged.begin) {
    out.push_back(intervals_[i++]);
  }
  // Merge the overlapping/adjacent run.
  while (i < intervals_.size() && intervals_[i].begin <= merged.end) {
    merged = merged.Merge(intervals_[i++]);
  }
  out.push_back(merged);
  while (i < intervals_.size()) out.push_back(intervals_[i++]);
  intervals_ = std::move(out);
}

void TemporalElement::Subtract(const Interval& iv) {
  if (iv.empty() || intervals_.empty()) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const Interval& cur : intervals_) {
    if (!cur.Overlaps(iv)) {
      out.push_back(cur);
      continue;
    }
    if (cur.begin < iv.begin) out.emplace_back(cur.begin, iv.begin);
    if (cur.end > iv.end) out.emplace_back(iv.end, cur.end);
  }
  intervals_ = std::move(out);
}

TemporalElement TemporalElement::Union(const TemporalElement& o) const {
  TemporalElement result = *this;
  for (const Interval& iv : o.intervals_) result.Add(iv);
  return result;
}

TemporalElement TemporalElement::Intersect(const TemporalElement& o) const {
  TemporalElement result;
  // Two-pointer sweep over the sorted interval lists.
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < o.intervals_.size()) {
    Interval x = intervals_[i].Intersect(o.intervals_[j]);
    if (!x.empty()) result.intervals_.push_back(x);
    if (intervals_[i].end < o.intervals_[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return result;
}

TemporalElement TemporalElement::Difference(const TemporalElement& o) const {
  TemporalElement result = *this;
  for (const Interval& iv : o.intervals_) result.Subtract(iv);
  return result;
}

TemporalElement TemporalElement::Complement() const {
  TemporalElement result;
  Timestamp cursor = kMinTimestamp;
  for (const Interval& iv : intervals_) {
    if (cursor < iv.begin) result.intervals_.emplace_back(cursor, iv.begin);
    cursor = iv.end;
  }
  if (cursor < kForever) result.intervals_.emplace_back(cursor, kForever);
  return result;
}

bool TemporalElement::Contains(Timestamp t) const {
  // Binary search for the first interval with end > t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Timestamp v, const Interval& iv) { return v < iv.end; });
  return it != intervals_.end() && it->Contains(t);
}

bool TemporalElement::Overlaps(const Interval& iv) const {
  if (iv.empty()) return false;
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](Timestamp v, const Interval& cur) { return v < cur.end; });
  return it != intervals_.end() && it->Overlaps(iv);
}

Timestamp TemporalElement::Duration() const {
  Timestamp total = 0;
  for (const Interval& iv : intervals_) {
    if (iv.open_ended()) return kForever;
    total += iv.length();
  }
  return total;
}

std::string TemporalElement::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i) out += " ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

bool operator==(const TemporalElement& a, const TemporalElement& b) {
  return a.intervals() == b.intervals();
}

}  // namespace tcob
