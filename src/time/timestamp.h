#ifndef TCOB_TIME_TIMESTAMP_H_
#define TCOB_TIME_TIMESTAMP_H_

#include <cstdint>
#include <limits>
#include <string>

namespace tcob {

/// A valid-time instant, measured in discrete chronons.
///
/// The temporal complex-object model is defined over a discrete, totally
/// ordered time axis. A chronon is the indivisible unit; applications map
/// it to whatever granularity they need (days, seconds, ...). Two
/// distinguished values bound the axis:
///  * kMinTimestamp — the beginning of time,
///  * kForever      — the special "until changed" upper bound (exclusive);
///    an open-ended version is valid in [begin, kForever).
using Timestamp = int64_t;

inline constexpr Timestamp kMinTimestamp = 0;
inline constexpr Timestamp kForever = std::numeric_limits<int64_t>::max();

/// Renders t as a decimal chronon count, or "forever" for kForever.
std::string TimestampToString(Timestamp t);

}  // namespace tcob

#endif  // TCOB_TIME_TIMESTAMP_H_
