#ifndef TCOB_TIME_CALENDAR_H_
#define TCOB_TIME_CALENDAR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "time/timestamp.h"

namespace tcob {

/// What one chronon means on the calendar.
enum class Granularity {
  kDay,
  kHour,
  kMinute,
  kSecond,
};

const char* GranularityName(Granularity g);

/// A proleptic-Gregorian calendar date.
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
};

/// Date plus time-of-day.
struct CivilTime {
  CivilDate date;
  int hour = 0;
  int minute = 0;
  int second = 0;
};

bool operator==(const CivilDate& a, const CivilDate& b);
bool operator==(const CivilTime& a, const CivilTime& b);

/// Days since the Unix epoch (1970-01-01) for a civil date; negative
/// before the epoch. Howard Hinnant's days_from_civil algorithm.
int64_t DaysFromCivil(const CivilDate& date);
/// Inverse of DaysFromCivil.
CivilDate CivilFromDays(int64_t days);

/// True for 1..12 / valid day-of-month (leap years handled).
bool IsValidDate(const CivilDate& date);

/// Maps between the abstract chronon axis and calendar datetimes.
///
/// The temporal model is defined over abstract chronons; applications
/// pick a granularity and an epoch. A Calendar instance makes that
/// mapping explicit so databases can store "2024-03-01" as a chronon
/// and render query results back as dates.
///
/// Chronon 0 == the Unix epoch at the chosen granularity; dates before
/// 1970 map to negative numbers and are clamped to kMinTimestamp = 0
/// by Clamp() helpers (the model's axis starts at 0), so pick an epoch
/// granularity appropriate for your data.
class Calendar {
 public:
  explicit Calendar(Granularity granularity = Granularity::kDay)
      : granularity_(granularity) {}

  Granularity granularity() const { return granularity_; }

  /// Chronon of midnight at `date`.
  Timestamp FromDate(const CivilDate& date) const;
  /// Chronon of the civil datetime (time-of-day ignored at kDay).
  Timestamp FromCivil(const CivilTime& time) const;
  /// Civil datetime of chronon `t`.
  CivilTime ToCivil(Timestamp t) const;

  /// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS".
  Result<Timestamp> Parse(const std::string& text) const;
  /// Renders `t` ("YYYY-MM-DD" at kDay, full datetime otherwise);
  /// kForever renders as "forever".
  std::string Format(Timestamp t) const;

 private:
  /// Chronons per day at this granularity.
  int64_t UnitsPerDay() const;

  Granularity granularity_;
};

}  // namespace tcob

#endif  // TCOB_TIME_CALENDAR_H_
