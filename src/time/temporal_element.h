#ifndef TCOB_TIME_TEMPORAL_ELEMENT_H_
#define TCOB_TIME_TEMPORAL_ELEMENT_H_

#include <string>
#include <vector>

#include "time/interval.h"

namespace tcob {

/// A temporal element: a finite union of disjoint, non-adjacent,
/// non-empty intervals kept in canonical sorted order.
///
/// Temporal elements are the closure of intervals under union,
/// intersection and difference; they appear as the validity of derived
/// facts (e.g. "the period during which employee e worked in department d"
/// may be a union of several intervals).
class TemporalElement {
 public:
  TemporalElement() = default;
  explicit TemporalElement(const Interval& iv) { Add(iv); }

  /// Adds an interval, merging with any mergeable neighbors.
  void Add(const Interval& iv);

  /// Removes an interval from the covered set.
  void Subtract(const Interval& iv);

  /// Set union / intersection / difference.
  TemporalElement Union(const TemporalElement& o) const;
  TemporalElement Intersect(const TemporalElement& o) const;
  TemporalElement Difference(const TemporalElement& o) const;

  /// Complement relative to the whole time axis.
  TemporalElement Complement() const;

  bool Contains(Timestamp t) const;
  bool Overlaps(const Interval& iv) const;
  bool empty() const { return intervals_.empty(); }

  /// Total number of chronons covered (saturates on open-ended sets).
  Timestamp Duration() const;

  /// Earliest instant covered; requires !empty().
  Timestamp Min() const { return intervals_.front().begin; }
  /// Exclusive upper bound of coverage; requires !empty().
  Timestamp Max() const { return intervals_.back().end; }

  const std::vector<Interval>& intervals() const { return intervals_; }
  size_t size() const { return intervals_.size(); }

  /// "{[a,b) [c,d) ...}".
  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;  // sorted, disjoint, non-adjacent
};

bool operator==(const TemporalElement& a, const TemporalElement& b);
inline bool operator!=(const TemporalElement& a, const TemporalElement& b) {
  return !(a == b);
}

}  // namespace tcob

#endif  // TCOB_TIME_TEMPORAL_ELEMENT_H_
