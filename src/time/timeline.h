#ifndef TCOB_TIME_TIMELINE_H_
#define TCOB_TIME_TIMELINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "time/interval.h"
#include "time/temporal_element.h"

namespace tcob {

/// One entry of a VersionTimeline: a validity interval tagged with an
/// opaque payload handle (version number, RID, vector index — caller's
/// choice).
struct TimelineEntry {
  Interval valid;
  uint64_t payload = 0;
};

/// The time-ordered history of one object: a sequence of non-overlapping
/// validity intervals, each naming a payload (version).
///
/// Intervals are kept sorted by begin. Gaps are legal — they represent
/// periods during which the object did not exist (logically deleted and
/// later re-inserted). Overlap is an invariant violation and is rejected.
class VersionTimeline {
 public:
  VersionTimeline() = default;

  /// Appends an entry; its interval must begin at or after the end of the
  /// last entry (histories are built in chronological order).
  Status Append(const Interval& valid, uint64_t payload);

  /// Truncates the (open-ended) last entry to end at `at`. Fails unless a
  /// last entry exists, is open-ended and begins before `at`.
  Status CloseLast(Timestamp at);

  /// Payload valid at instant t, if any.
  std::optional<uint64_t> AsOf(Timestamp t) const;

  /// All entries whose validity overlaps `window`, in time order.
  std::vector<TimelineEntry> Overlapping(const Interval& window) const;

  /// The union of all validity intervals (the object's lifespan).
  TemporalElement Lifespan() const;

  /// All distinct interval boundaries (begins and finite ends) inside
  /// `window`, plus window.begin itself if the timeline is live there.
  /// Used to derive molecule-level change points.
  std::vector<Timestamp> BoundariesIn(const Interval& window) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<TimelineEntry>& entries() const { return entries_; }
  const TimelineEntry& back() const { return entries_.back(); }

  /// True if the newest entry is open-ended (object currently alive).
  bool IsLive() const {
    return !entries_.empty() && entries_.back().valid.open_ended();
  }

  std::string ToString() const;

 private:
  std::vector<TimelineEntry> entries_;  // sorted by valid.begin, disjoint
};

}  // namespace tcob

#endif  // TCOB_TIME_TIMELINE_H_
