#ifndef TCOB_TIME_INTERVAL_H_
#define TCOB_TIME_INTERVAL_H_

#include <string>

#include "time/timestamp.h"

namespace tcob {

/// A half-open valid-time interval [begin, end).
///
/// All version timestamps in TCOB are expressed as such intervals; an
/// open-ended ("until changed") version has end == kForever. The empty
/// interval is represented canonically as begin == end.
struct Interval {
  Timestamp begin = kMinTimestamp;
  Timestamp end = kForever;

  Interval() = default;
  Interval(Timestamp b, Timestamp e) : begin(b), end(e) {}

  /// [kMinTimestamp, kForever) — the whole time axis.
  static Interval All() { return Interval(kMinTimestamp, kForever); }
  /// The single-chronon interval [t, t+1).
  static Interval At(Timestamp t) { return Interval(t, t + 1); }
  /// Canonical empty interval.
  static Interval Empty() { return Interval(0, 0); }

  bool empty() const { return begin >= end; }
  bool open_ended() const { return end == kForever; }

  /// Number of chronons covered (kForever-bounded intervals report a
  /// saturated length).
  Timestamp length() const { return empty() ? 0 : end - begin; }

  bool Contains(Timestamp t) const { return t >= begin && t < end; }
  bool Contains(const Interval& o) const {
    return !o.empty() && o.begin >= begin && o.end <= end;
  }
  bool Overlaps(const Interval& o) const {
    return !empty() && !o.empty() && begin < o.end && o.begin < end;
  }
  /// True if this interval ends exactly where `o` begins.
  bool Meets(const Interval& o) const { return !empty() && end == o.begin; }
  /// Strictly before with a gap or meeting: all of *this < all of o.
  bool Before(const Interval& o) const { return !empty() && end <= o.begin; }
  bool After(const Interval& o) const { return o.Before(*this); }
  /// Allen's "during": properly inside o.
  bool During(const Interval& o) const {
    return !empty() && begin > o.begin && end < o.end;
  }
  /// Adjacent or overlapping (union would be a single interval).
  bool Mergeable(const Interval& o) const {
    return !empty() && !o.empty() && begin <= o.end && o.begin <= end;
  }

  Interval Intersect(const Interval& o) const {
    Timestamp b = begin > o.begin ? begin : o.begin;
    Timestamp e = end < o.end ? end : o.end;
    return b < e ? Interval(b, e) : Empty();
  }

  /// Union of mergeable intervals; requires Mergeable(o).
  Interval Merge(const Interval& o) const {
    return Interval(begin < o.begin ? begin : o.begin,
                    end > o.end ? end : o.end);
  }

  /// "[b, e)" with kForever rendered as "forever".
  std::string ToString() const;
};

inline bool operator==(const Interval& a, const Interval& b) {
  return (a.empty() && b.empty()) || (a.begin == b.begin && a.end == b.end);
}
inline bool operator!=(const Interval& a, const Interval& b) {
  return !(a == b);
}
/// Orders by begin, then end; used for sorting version lists.
inline bool operator<(const Interval& a, const Interval& b) {
  return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
}

/// The thirteen Allen relations between non-empty intervals.
enum class AllenRelation {
  kBefore,
  kMeets,
  kOverlaps,
  kStarts,
  kDuring,
  kFinishes,
  kEquals,
  kFinishedBy,
  kContains,
  kStartedBy,
  kOverlappedBy,
  kMetBy,
  kAfter,
};

/// Classifies the relation of `a` to `b`. Both must be non-empty.
AllenRelation ClassifyAllen(const Interval& a, const Interval& b);

const char* AllenRelationName(AllenRelation r);

}  // namespace tcob

#endif  // TCOB_TIME_INTERVAL_H_
