#include "common/cancellation.h"

namespace tcob {

Status QueryContext::DeadlineStatus() const {
  return Status::DeadlineExceeded("query deadline exceeded (" +
                                  std::to_string(timeout_micros_) + "us)");
}

}  // namespace tcob
