#ifndef TCOB_COMMON_METRICS_H_
#define TCOB_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcob {

/// Monotonic event counter. Updates are lock-free relaxed atomics:
/// concurrent writers never lose an increment, so totals are exact (the
/// PR-2 fan-out workers all bump the same store/pool counters).
///
/// Non-copyable on purpose — a Counter is an identity (one named series
/// in a MetricsRegistry), not a value. Snapshots copy `value()`.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  /// Benchmarks meter individual phases against const components, so
  /// resetting is permitted on const counters (bookkeeping, not state).
  void Reset() const { v_.store(0, std::memory_order_relaxed); }

 private:
  mutable std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, watermarks).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time copy of one histogram (cumulative "le" semantics live
/// in `bounds`/`counts` pairs; the final slot of `counts` is +inf).
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;  // inclusive upper bounds, one per bucket
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries (last = +inf)
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const { return count ? static_cast<double>(sum) / count : 0.0; }

  /// Estimated `q`-quantile (q in [0, 1]) by linear interpolation within
  /// the bucket holding the target rank — the usual Prometheus
  /// histogram_quantile estimate, so it is only as sharp as the bucket
  /// bounds. Observations in the +inf bucket clamp to the last finite
  /// bound. 0 when the histogram is empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram with lock-free recording. A value v lands in
/// the first bucket whose bound satisfies v <= bound (Prometheus "le"
/// semantics); values above every bound land in the implicit +inf
/// bucket. Bounds are fixed at construction, so Observe is a linear (or
/// binary) probe plus two relaxed fetch_adds — no allocation, no lock.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// 1us .. 10s in a 1-2-5 progression — the default for query and I/O
  /// latencies recorded in microseconds.
  static std::vector<uint64_t> LatencyBucketsUs();

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  size_t bucket_count() const { return bounds_.size() + 1; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of every registered metric, with text (Prometheus
/// exposition style) and JSON renderings.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const {
    auto it = counters.find(name);
    return it != counters.end() ? it->second : fallback;
  }
  int64_t GaugeOr(const std::string& name, int64_t fallback = 0) const {
    auto it = gauges.find(name);
    return it != gauges.end() ? it->second : fallback;
  }

  /// Prometheus-style exposition text: "# TYPE name kind" comments,
  /// histogram buckets as name_bucket{le="..."} rows.
  std::string ToText() const;
  std::string ToJson() const;
};

/// Central name -> metric directory of one database instance.
///
/// Components own their Counters/Gauges/Histograms and keep updating
/// them lock-free; the registry holds non-owning pointers (registrants
/// must outlive it — the Database owns both sides, destroyed together).
/// The mutex guards only registration and snapshotting, never the hot
/// update path. Value-producing callbacks cover derived metrics (file
/// sizes, capacities) that have no stored counter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void RegisterCounter(const std::string& name, const Counter* c);
  void RegisterCounterFn(const std::string& name,
                         std::function<uint64_t()> fn);
  void RegisterGauge(const std::string& name, const Gauge* g);
  void RegisterGaugeFn(const std::string& name, std::function<int64_t()> fn);
  void RegisterHistogram(const std::string& name, const Histogram* h);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, const Counter*> counters_;
  std::map<std::string, std::function<uint64_t()>> counter_fns_;
  std::map<std::string, const Gauge*> gauges_;
  std::map<std::string, std::function<int64_t()>> gauge_fns_;
  std::map<std::string, const Histogram*> histograms_;
};

/// Wall-clock stopwatch for trace spans (steady clock, microseconds).
class StopwatchUs {
 public:
  StopwatchUs() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace tcob

#endif  // TCOB_COMMON_METRICS_H_
