#ifndef TCOB_COMMON_CANCELLATION_H_
#define TCOB_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace tcob {

/// Per-query cancellation scope: an optional wall-clock deadline plus an
/// atomic cancel token, shared (via shared_ptr) by everyone driving one
/// query — the executor's emit loop, the materializer's fan-out workers,
/// the version cache's pin path and the streaming cursor.
///
/// Cancellation is cooperative: nothing is interrupted mid-operation.
/// Workers call Check() at batch boundaries (per molecule, per pinned
/// atom, every few dozen scan callbacks) and unwind with a clean
/// Status::Cancelled / Status::DeadlineExceeded, so a query aborts in
/// bounded time while every frame, pin and producer thread is released
/// through the normal error path.
///
/// Check() is cheap enough for hot loops: one relaxed atomic load, plus
/// one steady_clock read only when a deadline is armed.
class QueryContext {
 public:
  QueryContext() = default;

  /// A context with no deadline (cancel-only).
  static std::shared_ptr<QueryContext> Create() {
    return std::make_shared<QueryContext>();
  }

  /// A context whose Check() starts failing `timeout_micros` from now.
  /// 0 means no deadline.
  static std::shared_ptr<QueryContext> WithDeadline(uint64_t timeout_micros) {
    auto ctx = std::make_shared<QueryContext>();
    if (timeout_micros > 0) ctx->ArmDeadline(timeout_micros);
    return ctx;
  }

  /// Arms (or re-arms) the deadline at now + `timeout_micros`.
  void ArmDeadline(uint64_t timeout_micros) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_micros);
    timeout_micros_ = timeout_micros;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Stamps the query id this context belongs to (set once at open,
  /// before the context is shared; read by the flight recorder's
  /// worker-thread attribution).
  void set_query_id(uint64_t qid) { query_id_ = qid; }
  uint64_t query_id() const { return query_id_; }

  /// Requests cancellation; safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  /// The armed deadline (meaningful only when has_deadline()).
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// True once the armed deadline has passed.
  bool deadline_expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline_;
  }

  /// OK while the query may keep running. Cancelled takes precedence
  /// over DeadlineExceeded (an explicit stop beats a timer).
  Status Check() const {
    if (cancelled_.load(std::memory_order_acquire)) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline_.load(std::memory_order_acquire)) {
      // Stride the clock: a vDSO clock_gettime per poll point would
      // dominate sub-100µs queries that merely have a deadline armed.
      // Sampling every 16th poll bounds the extra overshoot at 16
      // units of work — negligible against the µs-scale poll spacing —
      // and the counter is per-thread so fan-out workers don't bounce
      // a shared cache line.
      thread_local uint32_t poll_stride = 0;
      if ((++poll_stride & 15u) == 0 &&
          std::chrono::steady_clock::now() >= deadline_) {
        return DeadlineStatus();
      }
    }
    return Status::OK();
  }

 private:
  /// Builds the (allocating) DeadlineExceeded status off the hot path.
  Status DeadlineStatus() const;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t timeout_micros_ = 0;
  uint64_t query_id_ = 0;
};

}  // namespace tcob

#endif  // TCOB_COMMON_CANCELLATION_H_
