#include "common/temp_dir.h"

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

namespace tcob {

namespace {

void RemoveRecursively(const std::string& path) {
  DIR* dir = opendir(path.c_str());
  if (dir == nullptr) {
    unlink(path.c_str());
    return;
  }
  struct dirent* entry;
  while ((entry = readdir(dir)) != nullptr) {
    if (strcmp(entry->d_name, ".") == 0 || strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    std::string child = path + "/" + entry->d_name;
    struct stat st;
    if (lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveRecursively(child);
    } else {
      unlink(child.c_str());
    }
  }
  closedir(dir);
  rmdir(path.c_str());
}

}  // namespace

TempDir::TempDir() {
  const char* base = getenv("TMPDIR");
  std::string tmpl = std::string(base ? base : "/tmp") + "/tcob-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = mkdtemp(buf.data());
  if (made != nullptr) path_ = made;
}

TempDir::~TempDir() {
  if (!path_.empty()) RemoveRecursively(path_);
}

}  // namespace tcob
