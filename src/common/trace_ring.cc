#include "common/trace_ring.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace tcob {

namespace {

/// Steady-clock microseconds (the same clock every span timer in the
/// engine uses, so trace timestamps line up with EXPLAIN ANALYZE).
uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small process-wide thread ordinal: stable for the thread's lifetime
/// and far more readable in a trace viewer than a pthread id.
uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local uint64_t g_thread_query_id = 0;

/// One-entry thread-local ring cache. Most threads talk to one recorder
/// at a time (their database's); switching recorders falls back to the
/// registry lookup under the recorder mutex.
thread_local uint64_t g_cached_recorder_id = 0;
thread_local void* g_cached_ring = nullptr;

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

constexpr size_t kWordsPerEvent = 4;

}  // namespace

const char* TraceCategoryName(uint32_t cat_bit) {
  switch (cat_bit) {
    case kTraceCatQuery: return "query";
    case kTraceCatSpan: return "span";
    case kTraceCatWal: return "wal";
    case kTraceCatCheckpoint: return "checkpoint";
    case kTraceCatTier: return "tier";
    case kTraceCatPool: return "pool";
    case kTraceCatAdmission: return "admission";
    case kTraceCatCancel: return "cancel";
    case kTraceCatBudget: return "budget";
    case kTraceCatHealth: return "health";
    case kTraceCatIo: return "io";
    case kTraceCatTxn: return "txn";
    default: return "?";
  }
}

uint32_t TraceEventCategory(TraceEventType t) {
  switch (t) {
    case TraceEventType::kQueryBegin:
    case TraceEventType::kQueryEnd:
      return kTraceCatQuery;
    case TraceEventType::kSpanBegin:
    case TraceEventType::kSpanEnd:
      return kTraceCatSpan;
    case TraceEventType::kWalAppend:
    case TraceEventType::kWalFsyncBegin:
    case TraceEventType::kWalFsyncEnd:
      return kTraceCatWal;
    case TraceEventType::kCheckpointPhaseBegin:
    case TraceEventType::kCheckpointPhaseEnd:
      return kTraceCatCheckpoint;
    case TraceEventType::kTierPhaseBegin:
    case TraceEventType::kTierPhaseEnd:
    case TraceEventType::kTierSegmentBuild:
      return kTraceCatTier;
    case TraceEventType::kPoolMiss:
    case TraceEventType::kPoolEvict:
    case TraceEventType::kPoolSteal:
      return kTraceCatPool;
    case TraceEventType::kAdmissionEnqueue:
    case TraceEventType::kAdmissionGrant:
    case TraceEventType::kAdmissionTimeout:
      return kTraceCatAdmission;
    case TraceEventType::kCancelFire:
    case TraceEventType::kDeadlineFire:
      return kTraceCatCancel;
    case TraceEventType::kBudgetRefusal:
    case TraceEventType::kBudgetPressure:
      return kTraceCatBudget;
    case TraceEventType::kHealthTransition:
      return kTraceCatHealth;
    case TraceEventType::kIoRetry:
      return kTraceCatIo;
    case TraceEventType::kTxnBegin:
    case TraceEventType::kTxnCommit:
    case TraceEventType::kTxnAbort:
    case TraceEventType::kTxnConflict:
      return kTraceCatTxn;
  }
  return kTraceCatQuery;
}

char TraceEventPhase(TraceEventType t) {
  switch (t) {
    case TraceEventType::kQueryBegin:
    case TraceEventType::kSpanBegin:
    case TraceEventType::kWalFsyncBegin:
    case TraceEventType::kCheckpointPhaseBegin:
    case TraceEventType::kTierPhaseBegin:
      return 'B';
    case TraceEventType::kQueryEnd:
    case TraceEventType::kSpanEnd:
    case TraceEventType::kWalFsyncEnd:
    case TraceEventType::kCheckpointPhaseEnd:
    case TraceEventType::kTierPhaseEnd:
      return 'E';
    default:
      return 'i';
  }
}

namespace {

const char* SpanName(uint64_t arg) {
  switch (static_cast<TraceSpanId>(arg)) {
    case TraceSpanId::kPlan: return "plan";
    case TraceSpanId::kExecute: return "execute";
    case TraceSpanId::kAggregate: return "aggregate";
    case TraceSpanId::kSort: return "sort";
    case TraceSpanId::kStream: return "stream";
    case TraceSpanId::kWorker: return "worker";
  }
  return "span";
}

const char* CheckpointPhaseName(uint64_t arg) {
  switch (static_cast<TraceCheckpointPhase>(arg)) {
    case TraceCheckpointPhase::kFlushPages: return "ckpt:flush_pages";
    case TraceCheckpointPhase::kSaveCatalog: return "ckpt:save_catalog";
    case TraceCheckpointPhase::kJournalCommit: return "ckpt:journal_commit";
    case TraceCheckpointPhase::kJournalApply: return "ckpt:journal_apply";
    case TraceCheckpointPhase::kSaveMeta: return "ckpt:save_meta";
    case TraceCheckpointPhase::kWalTruncate: return "ckpt:wal_truncate";
  }
  return "ckpt";
}

const char* TierPhaseName(uint64_t arg) {
  switch (static_cast<TraceTierPhase>(arg)) {
    case TraceTierPhase::kCheckpoint: return "tier:checkpoint";
    case TraceTierPhase::kCollect: return "tier:collect";
    case TraceTierPhase::kMigrate: return "tier:migrate";
    case TraceTierPhase::kRelease: return "tier:release";
  }
  return "tier";
}

}  // namespace

const char* TraceEventName(TraceEventType t, uint64_t arg) {
  switch (t) {
    case TraceEventType::kQueryBegin:
    case TraceEventType::kQueryEnd:
      return "query";
    case TraceEventType::kSpanBegin:
    case TraceEventType::kSpanEnd:
      return SpanName(arg);
    case TraceEventType::kWalAppend: return "wal_append";
    case TraceEventType::kWalFsyncBegin:
    case TraceEventType::kWalFsyncEnd:
      return "wal_fsync";
    case TraceEventType::kCheckpointPhaseBegin:
    case TraceEventType::kCheckpointPhaseEnd:
      return CheckpointPhaseName(arg);
    case TraceEventType::kTierPhaseBegin:
    case TraceEventType::kTierPhaseEnd:
      return TierPhaseName(arg);
    case TraceEventType::kTierSegmentBuild: return "tier_segment";
    case TraceEventType::kPoolMiss: return "pool_miss";
    case TraceEventType::kPoolEvict: return "pool_evict";
    case TraceEventType::kPoolSteal: return "pool_steal";
    case TraceEventType::kAdmissionEnqueue: return "admission_enqueue";
    case TraceEventType::kAdmissionGrant: return "admission_grant";
    case TraceEventType::kAdmissionTimeout: return "admission_timeout";
    case TraceEventType::kCancelFire: return "cancel_fire";
    case TraceEventType::kDeadlineFire: return "deadline_fire";
    case TraceEventType::kBudgetRefusal: return "budget_refusal";
    case TraceEventType::kBudgetPressure: return "budget_pressure";
    case TraceEventType::kHealthTransition: return "health_transition";
    case TraceEventType::kIoRetry: return "io_retry";
    case TraceEventType::kTxnBegin: return "txn_begin";
    case TraceEventType::kTxnCommit: return "txn_commit";
    case TraceEventType::kTxnAbort: return "txn_abort";
    case TraceEventType::kTxnConflict: return "txn_conflict";
  }
  return "event";
}

int TraceCategoryIndex(uint32_t cat_bit) {
  for (int i = 0; i < kTraceCategoryCount; ++i) {
    if (cat_bit == (1u << i)) return i;
  }
  return 0;
}

/// One thread's single-writer ring: `capacity` fixed 4-word slots plus
/// a head counter. The writer fills the slot's words (relaxed) and then
/// publishes with a release store of head; readers acquire-load head,
/// copy, re-load head and discard anything the writer could have lapped
/// (index <= head' - capacity). All cross-thread words are atomic, so
/// concurrent dump-while-recording is TSan-clean by construction.
struct TraceRecorder::Ring {
  Ring(size_t capacity_events, uint32_t thread_ordinal)
      : capacity(capacity_events),
        tid(thread_ordinal),
        words(std::make_unique<std::atomic<uint64_t>[]>(capacity_events *
                                                        kWordsPerEvent)) {
    for (size_t i = 0; i < capacity * kWordsPerEvent; ++i) {
      words[i].store(0, std::memory_order_relaxed);
    }
  }

  const size_t capacity;
  const uint32_t tid;
  std::unique_ptr<std::atomic<uint64_t>[]> words;
  std::atomic<uint64_t> head{0};
};

TraceRecorder::TraceRecorder(const TraceOptions& options)
    : id_(NextRecorderId()),
      enabled_(options.enabled),
      configured_mask_(options.categories),
      live_mask_(options.enabled ? options.categories : 0),
      ring_capacity_(std::max<uint64_t>(
          64, options.ring_bytes / (kWordsPerEvent * sizeof(uint64_t)))) {}

TraceRecorder::~TraceRecorder() = default;

uint64_t TraceRecorder::ThreadQueryId() { return g_thread_query_id; }

void TraceRecorder::SetThreadQueryId(uint64_t qid) {
  g_thread_query_id = qid;
}

void TraceRecorder::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  live_mask_.store(on ? configured_mask_.load(std::memory_order_relaxed) : 0,
                   std::memory_order_relaxed);
}

void TraceRecorder::set_categories(uint32_t mask) {
  configured_mask_.store(mask, std::memory_order_relaxed);
  if (enabled_.load(std::memory_order_relaxed)) {
    live_mask_.store(mask, std::memory_order_relaxed);
  }
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  if (g_cached_recorder_id == id_) {
    return static_cast<Ring*>(g_cached_ring);
  }
  uint32_t tid = ThisThreadOrdinal();
  std::lock_guard<std::mutex> lock(mu_);
  Ring* ring = nullptr;
  for (const auto& r : rings_) {
    if (r->tid == tid) {
      ring = r.get();
      break;
    }
  }
  if (ring == nullptr) {
    rings_.push_back(std::make_unique<Ring>(ring_capacity_, tid));
    ring = rings_.back().get();
  }
  g_cached_recorder_id = id_;
  g_cached_ring = ring;
  return ring;
}

void TraceRecorder::Emit(TraceEventType type, uint64_t arg) {
  uint32_t cat = TraceEventCategory(type);
  if ((live_mask_.load(std::memory_order_relaxed) & cat) == 0) return;
  Record(NowMicros(), type, arg, g_thread_query_id);
}

void TraceRecorder::EmitAt(uint64_t ts_us, TraceEventType type, uint64_t arg,
                           uint64_t query_id) {
  uint32_t cat = TraceEventCategory(type);
  if ((live_mask_.load(std::memory_order_relaxed) & cat) == 0) return;
  Record(ts_us, type, arg, query_id);
}

void TraceRecorder::Record(uint64_t ts_us, TraceEventType type, uint64_t arg,
                           uint64_t query_id) {
  Ring* ring = RingForThisThread();
  uint64_t seq = ring->head.load(std::memory_order_relaxed);
  size_t base = (seq % ring->capacity) * kWordsPerEvent;
  if (seq >= ring->capacity) {
    // Overwriting the oldest event: classify the drop from the old
    // slot's packed type word (this thread wrote it, so it's coherent).
    uint64_t old_w1 = ring->words[base + 1].load(std::memory_order_relaxed);
    auto old_type = static_cast<TraceEventType>(old_w1 & 0xffffu);
    dropped_[TraceCategoryIndex(TraceEventCategory(old_type))].Increment();
  }
  ring->words[base].store(ts_us, std::memory_order_relaxed);
  ring->words[base + 1].store(
      (static_cast<uint64_t>(ring->tid) << 32) |
          static_cast<uint64_t>(static_cast<uint16_t>(type)),
      std::memory_order_relaxed);
  ring->words[base + 2].store(query_id, std::memory_order_relaxed);
  ring->words[base + 3].store(arg, std::memory_order_relaxed);
  ring->head.store(seq + 1, std::memory_order_release);
  recorded_[TraceCategoryIndex(TraceEventCategory(type))].Increment();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  struct Raw {
    uint64_t seq;
    TraceEvent ev;
  };
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    uint64_t h1 = ring->head.load(std::memory_order_acquire);
    uint64_t window = std::min<uint64_t>(h1, ring->capacity);
    std::vector<Raw> local;
    local.reserve(window);
    for (uint64_t seq = h1 - window; seq < h1; ++seq) {
      size_t base = (seq % ring->capacity) * kWordsPerEvent;
      Raw r;
      r.seq = seq;
      r.ev.ts_us = ring->words[base].load(std::memory_order_relaxed);
      uint64_t w1 = ring->words[base + 1].load(std::memory_order_relaxed);
      r.ev.tid = static_cast<uint32_t>(w1 >> 32);
      r.ev.type = static_cast<TraceEventType>(w1 & 0xffffu);
      r.ev.query_id = ring->words[base + 2].load(std::memory_order_relaxed);
      r.ev.arg = ring->words[base + 3].load(std::memory_order_relaxed);
      local.push_back(r);
    }
    // Anything the writer may have lapped while we copied is torn —
    // including the slot of the write possibly in flight at head', which
    // reuses the slot of seq head' - capacity. Discard both.
    uint64_t h2 = ring->head.load(std::memory_order_acquire);
    for (const Raw& r : local) {
      if (h2 >= ring->capacity && r.seq <= h2 - ring->capacity) continue;
      out.push_back(r.ev);
    }
  }
  // Global timeline; stable so same-microsecond events keep their
  // per-thread program order (each ring was appended in order).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::string TraceRecorder::DumpJson() const {
  std::vector<TraceEvent> events = Snapshot();

  // Strictly balance spans per thread: a close whose open was
  // overwritten (or whose name no longer matches the innermost open) is
  // dropped; opens still dangling at the end are closed at the last
  // timestamp. The result always satisfies LIFO name-matched balance.
  struct Open {
    size_t index;
    const char* name;
  };
  std::vector<char> keep(events.size(), 1);
  std::vector<std::pair<uint32_t, std::vector<Open>>> stacks;
  auto stack_of = [&stacks](uint32_t tid) -> std::vector<Open>& {
    for (auto& [t, s] : stacks) {
      if (t == tid) return s;
    }
    stacks.emplace_back(tid, std::vector<Open>{});
    return stacks.back().second;
  };
  uint64_t last_ts = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.ts_us > last_ts) last_ts = ev.ts_us;
    char ph = TraceEventPhase(ev.type);
    if (ph == 'B') {
      stack_of(ev.tid).push_back({i, TraceEventName(ev.type, ev.arg)});
    } else if (ph == 'E') {
      auto& stack = stack_of(ev.tid);
      const char* name = TraceEventName(ev.type, ev.arg);
      if (!stack.empty() &&
          std::string(stack.back().name) == name) {
        stack.pop_back();
      } else {
        keep[i] = 0;  // orphaned close
      }
    }
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"ts\":0,\"args\":{\"name\":\"tcob\"}}";
  auto emit_one = [&os](const char* name, const char* cat, char ph,
                        uint64_t ts, uint32_t tid, uint64_t qid,
                        uint64_t arg) {
    os << ",{\"name\":\"" << name << "\",\"cat\":\"" << cat
       << "\",\"ph\":\"" << ph << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":"
       << tid;
    if (ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"qid\":" << qid << ",\"arg\":" << arg << "}}";
  };
  for (size_t i = 0; i < events.size(); ++i) {
    if (!keep[i]) continue;
    const TraceEvent& ev = events[i];
    emit_one(TraceEventName(ev.type, ev.arg),
             TraceCategoryName(TraceEventCategory(ev.type)),
             TraceEventPhase(ev.type), ev.ts_us, ev.tid, ev.query_id,
             ev.arg);
  }
  // Close dangling opens (LIFO per thread) so viewers and the validator
  // see balanced spans even mid-flight.
  for (auto& [tid, stack] : stacks) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const TraceEvent& b = events[it->index];
      emit_one(it->name, TraceCategoryName(TraceEventCategory(b.type)), 'E',
               last_ts, tid, b.query_id, b.arg);
    }
  }
  os << "]}";
  return os.str();
}

bool TraceRecorder::DumpToFile(const std::string& path) const {
  std::string json = DumpJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = (n == json.size());
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

void TraceRecorder::RegisterMetrics(MetricsRegistry* registry) const {
  for (int i = 0; i < kTraceCategoryCount; ++i) {
    std::string cat = TraceCategoryName(1u << i);
    registry->RegisterCounter("tcob_trace_" + cat + "_recorded_total",
                              &recorded_[i]);
    registry->RegisterCounter("tcob_trace_" + cat + "_dropped_total",
                              &dropped_[i]);
  }
}

}  // namespace tcob
