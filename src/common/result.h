#ifndef TCOB_COMMON_RESULT_H_
#define TCOB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tcob {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced. Mirrors arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<int> Parse(...);
///   TCOB_ASSIGN_OR_RETURN(int v, Parse(...));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK Status (the error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Internal helpers for TCOB_ASSIGN_OR_RETURN.
#define TCOB_CONCAT_IMPL_(x, y) x##y
#define TCOB_CONCAT_(x, y) TCOB_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// binds the value to `lhs` (which may include a type declaration).
#define TCOB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  TCOB_ASSIGN_OR_RETURN_IMPL_(                                  \
      TCOB_CONCAT_(_tcob_result_, __LINE__), lhs, rexpr)

#define TCOB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace tcob

#endif  // TCOB_COMMON_RESULT_H_
